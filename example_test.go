package grass_test

import (
	"fmt"

	grass "github.com/approx-analytics/grass"
)

// ExampleSimulate runs a tiny hand-built error-bound job under RAS and
// prints its accuracy: with ε = 0.2 the job stops after 80% of its tasks.
func ExampleSimulate() {
	work := make([]float64, 20)
	for i := range work {
		work[i] = 1
	}
	jobs := []*grass.Job{{ID: 0, InputWork: work, Bound: grass.NewError(0.2)}}

	cfg := grass.DefaultSimConfig()
	cfg.Cluster.Machines = 10
	cfg.Seed = 7

	stats, err := grass.Simulate(cfg, "ras", jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accuracy %.2f\n", stats.Results[0].Accuracy)
	// Output: accuracy 0.80
}

// ExampleNewDeadline shows bound construction and target computation.
func ExampleNewDeadline() {
	d := grass.NewDeadline(30)
	e := grass.NewError(0.1)
	x := grass.Exact()
	fmt.Println(d.Kind, e.TargetTasks(100), x.Epsilon)
	// Output: deadline 90 0
}

// ExampleGenerateTrace summarizes a synthetic workload.
func ExampleGenerateTrace() {
	tc := grass.DefaultTraceConfig(grass.Facebook, grass.Spark, grass.ErrorBound)
	tc.Jobs = 5
	tc.Seed = 3
	jobs, err := grass.GenerateTrace(tc)
	if err != nil {
		panic(err)
	}
	for _, j := range jobs {
		fmt.Printf("job %d: %d tasks, eps %.2f\n", j.ID, j.NumTasks(), j.Bound.Epsilon)
	}
	// Output:
	// job 0: 655 tasks, eps 0.28
	// job 1: 1229 tasks, eps 0.10
	// job 2: 34 tasks, eps 0.28
	// job 3: 11 tasks, eps 0.06
	// job 4: 7 tasks, eps 0.10
}
