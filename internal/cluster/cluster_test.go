package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approx-analytics/grass/internal/dist"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Machines: 0, SlotsPerMachine: 1},
		{Machines: 1, SlotsPerMachine: 0},
		{Machines: 1, SlotsPerMachine: 1, HeterogeneitySigma: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if (Config{Machines: 10, SlotsPerMachine: 2}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestAcquireRelease(t *testing.T) {
	rng := dist.NewRNG(1)
	c, err := New(Config{Machines: 3, SlotsPerMachine: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSlots() != 6 || c.FreeSlots() != 6 || c.BusySlots() != 0 {
		t.Fatalf("fresh cluster counts wrong: %d %d %d", c.TotalSlots(), c.FreeSlots(), c.BusySlots())
	}
	var ms []Machine
	for i := 0; i < 6; i++ {
		m, ok := c.Acquire(rng)
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		ms = append(ms, m)
	}
	if _, ok := c.Acquire(rng); ok {
		t.Fatal("acquire succeeded on full cluster")
	}
	if c.Utilization() != 1 {
		t.Fatalf("utilization %v, want 1", c.Utilization())
	}
	for _, m := range ms {
		c.Release(m.ID)
	}
	if c.FreeSlots() != 6 || c.BusySlots() != 0 {
		t.Fatal("counts wrong after full release")
	}
	if c.Utilization() != 0 {
		t.Fatalf("utilization %v, want 0", c.Utilization())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	rng := dist.NewRNG(2)
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 1}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	c.Release(0)
}

func TestReleaseUnknownMachinePanics(t *testing.T) {
	rng := dist.NewRNG(2)
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 1}, rng)
	c.Acquire(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unknown machine did not panic")
		}
	}()
	c.Release(5)
}

func TestHomogeneousSlowdowns(t *testing.T) {
	rng := dist.NewRNG(3)
	c, _ := New(Config{Machines: 10, SlotsPerMachine: 1}, rng)
	for _, s := range c.Slowdowns() {
		if s != 1 {
			t.Fatalf("homogeneous cluster has slowdown %v", s)
		}
	}
}

func TestHeterogeneousSlowdowns(t *testing.T) {
	rng := dist.NewRNG(4)
	c, _ := New(Config{Machines: 200, SlotsPerMachine: 1, HeterogeneitySigma: 0.3}, rng)
	s := c.Slowdowns()
	if dist.StdDev(s) == 0 {
		t.Fatal("heterogeneous cluster has identical machines")
	}
	med := dist.Median(s)
	if med < 0.7 || med > 1.4 {
		t.Fatalf("median slowdown %v, expected near 1", med)
	}
	for _, v := range s {
		if v <= 0 {
			t.Fatalf("non-positive slowdown %v", v)
		}
	}
}

func TestAcquireSpreadsAcrossMachines(t *testing.T) {
	rng := dist.NewRNG(5)
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 4}, rng)
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		m, ok := c.Acquire(rng)
		if !ok {
			t.Fatal("acquire failed")
		}
		seen[m.ID]++
	}
	if len(seen) < 3 {
		t.Fatalf("8 acquisitions landed on only %d machines", len(seen))
	}
}

func TestSlotConservationProperty(t *testing.T) {
	// Under any interleaving of acquires and releases, free+busy == total and
	// utilization stays in [0,1].
	if err := quick.Check(func(seed int64, ops []bool) bool {
		rng := dist.NewRNG(seed)
		c, err := New(Config{Machines: 5, SlotsPerMachine: 3}, rng)
		if err != nil {
			return false
		}
		var held []int
		for _, acquire := range ops {
			if acquire {
				if m, ok := c.Acquire(rng); ok {
					held = append(held, m.ID)
				}
			} else if len(held) > 0 {
				c.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if c.FreeSlots()+c.BusySlots() != c.TotalSlots() {
				return false
			}
			u := c.Utilization()
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateNonFinite(t *testing.T) {
	cases := []struct {
		name  string
		sigma float64
		ok    bool
	}{
		{"zero", 0, true},
		{"positive", 0.3, true},
		{"negative", -1, false},
		{"nan", math.NaN(), false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Config{Machines: 1, SlotsPerMachine: 1, HeterogeneitySigma: tc.sigma}.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("sigma=%v: got err=%v, want ok=%v", tc.sigma, err, tc.ok)
			}
		})
	}
}

func TestCrashRestore(t *testing.T) {
	rng := dist.NewRNG(6)
	c, _ := New(Config{Machines: 3, SlotsPerMachine: 2}, rng)
	if !c.Crash(1) {
		t.Fatal("Crash(1) failed on a healthy machine")
	}
	if c.Crash(1) {
		t.Fatal("Crash(1) succeeded twice")
	}
	if c.Crash(-1) || c.Crash(99) {
		t.Fatal("Crash accepted an unknown machine")
	}
	if !c.Down(1) || c.Down(0) || c.Down(2) {
		t.Fatal("Down flags wrong after crash")
	}
	if c.TotalSlots() != 4 || c.FreeSlots() != 4 {
		t.Fatalf("after crash: total=%d free=%d, want 4 4", c.TotalSlots(), c.FreeSlots())
	}
	// No Acquire may land on the down machine.
	for i := 0; i < 4; i++ {
		m, ok := c.Acquire(rng)
		if !ok || m.ID == 1 {
			t.Fatalf("acquire %d: ok=%v id=%d", i, ok, m.ID)
		}
	}
	if c.Restore(0) {
		t.Fatal("Restore succeeded on a machine that is up")
	}
	if !c.Restore(1) {
		t.Fatal("Restore(1) failed")
	}
	if c.Down(1) {
		t.Fatal("machine still down after restore")
	}
	if c.TotalSlots() != 6 || c.FreeSlots() != 2 || c.BusySlots() != 4 {
		t.Fatalf("after restore: total=%d free=%d busy=%d", c.TotalSlots(), c.FreeSlots(), c.BusySlots())
	}
}

func TestCrashWithRunningCopiesParksReleases(t *testing.T) {
	rng := dist.NewRNG(7)
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 2}, rng)
	// Occupy both slots of machine 0 via AcquireOn.
	if !c.AcquireOn(0) || !c.AcquireOn(0) {
		t.Fatal("AcquireOn(0) failed with free slots")
	}
	if !c.Crash(0) {
		t.Fatal("Crash(0) failed")
	}
	// The two running copies' slots are still busy; total already shrank.
	if c.TotalSlots() != 2 || c.FreeSlots() != 2 || c.BusySlots() != 2 {
		t.Fatalf("mid-crash: total=%d free=%d busy=%d", c.TotalSlots(), c.FreeSlots(), c.BusySlots())
	}
	// Killing the copies parks their slots: busy drops, free does not grow.
	c.Release(0)
	c.Release(0)
	if c.FreeSlots() != 2 || c.BusySlots() != 0 {
		t.Fatalf("after parked releases: free=%d busy=%d", c.FreeSlots(), c.BusySlots())
	}
	// Restore returns the machine's full capacity exactly once.
	if !c.Restore(0) {
		t.Fatal("Restore(0) failed")
	}
	if c.TotalSlots() != 4 || c.FreeSlots() != 4 || c.BusySlots() != 0 {
		t.Fatalf("after restore: total=%d free=%d busy=%d", c.TotalSlots(), c.FreeSlots(), c.BusySlots())
	}
}

func TestAcquireOn(t *testing.T) {
	rng := dist.NewRNG(8)
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 1}, rng)
	if c.AcquireOn(-1) || c.AcquireOn(2) {
		t.Fatal("AcquireOn accepted an unknown machine")
	}
	if !c.AcquireOn(1) {
		t.Fatal("AcquireOn(1) failed with a free slot")
	}
	if c.AcquireOn(1) {
		t.Fatal("AcquireOn(1) succeeded with no free slot")
	}
	c.Crash(0)
	if c.AcquireOn(0) {
		t.Fatal("AcquireOn succeeded on a down machine")
	}
	c.Release(1)
	if c.FreeSlots() != 1 || c.BusySlots() != 0 {
		t.Fatalf("free=%d busy=%d", c.FreeSlots(), c.BusySlots())
	}
}

func TestSetFactorAppliesAtAcquire(t *testing.T) {
	rng := dist.NewRNG(9)
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 2}, rng)
	m, _ := c.Acquire(rng)
	if m.Slowdown != 1 {
		t.Fatalf("unperturbed slowdown %v, want 1", m.Slowdown)
	}
	if c.Factor(0) != 1 {
		t.Fatalf("default factor %v, want 1", c.Factor(0))
	}
	c.SetFactor(0, 3)
	if c.Factor(0) != 3 {
		t.Fatalf("factor %v, want 3", c.Factor(0))
	}
	m2, _ := c.Acquire(rng)
	if m2.Slowdown != 3 {
		t.Fatalf("perturbed slowdown %v, want 3", m2.Slowdown)
	}
	// The copy acquired before the perturbation keeps its machine's static
	// view (launch-time semantics); the raw Machine accessor stays static.
	if c.Machine(0).Slowdown != 1 {
		t.Fatalf("static Machine slowdown %v, want 1", c.Machine(0).Slowdown)
	}
	c.SetFactor(0, 1)
	c.Release(m.ID)
	m3, _ := c.Acquire(rng)
	if m3.Slowdown != 1 {
		t.Fatalf("restored slowdown %v, want 1", m3.Slowdown)
	}
}

func TestFreeSlotsUnderSaturation(t *testing.T) {
	rng := dist.NewRNG(10)
	c, _ := New(Config{Machines: 2, SlotsPerMachine: 2}, rng)
	for i := 0; i < 4; i++ {
		if _, ok := c.Acquire(rng); !ok {
			t.Fatalf("acquire %d failed", i)
		}
	}
	if c.FreeSlots() != 0 {
		t.Fatalf("saturated FreeSlots %d, want 0", c.FreeSlots())
	}
	if _, ok := c.Acquire(rng); ok {
		t.Fatal("Acquire succeeded on a saturated cluster")
	}
	if c.AcquireOn(0) {
		t.Fatal("AcquireOn succeeded on a saturated cluster")
	}
	if c.Utilization() != 1 {
		t.Fatalf("saturated utilization %v, want 1", c.Utilization())
	}
}

// TestFreeListConsistencyWithFaults extends the slot-conservation property
// to the dynamic-membership operations: under any interleaving of acquire,
// release, targeted acquire, crash and restore, the free list never holds a
// down machine, never exceeds capacity, and free+busy == total once no
// running copy remains parked on a down machine.
func TestFreeListConsistencyWithFaults(t *testing.T) {
	if err := quick.Check(func(seed int64, ops []byte) bool {
		rng := dist.NewRNG(seed)
		const machines, slots = 4, 2
		c, err := New(Config{Machines: machines, SlotsPerMachine: slots}, rng)
		if err != nil {
			return false
		}
		var held []int
		parked := 0 // copies still busy on a down machine
		for _, op := range ops {
			id := int(op>>4) % machines
			switch op % 5 {
			case 0:
				if m, ok := c.Acquire(rng); ok {
					held = append(held, m.ID)
				}
			case 1:
				if c.AcquireOn(id) {
					held = append(held, id)
				}
			case 2:
				if len(held) > 0 {
					m := held[len(held)-1]
					held = held[:len(held)-1]
					if c.Down(m) {
						parked--
					}
					c.Release(m)
				}
			case 3:
				if c.Crash(id) {
					for _, m := range held {
						if m == id {
							parked++
						}
					}
				}
			case 4:
				if c.Down(id) {
					// Only restore once nothing is parked on it, mirroring
					// the injector's kill-then-restore ordering.
					stillHeld := false
					for _, m := range held {
						if m == id {
							stillHeld = true
							break
						}
					}
					if !stillHeld {
						c.Restore(id)
					}
				}
			}
			// Invariants after every op.
			if c.FreeSlots()+c.BusySlots() != c.TotalSlots()+parked {
				return false
			}
			if c.BusySlots() != len(held) {
				return false
			}
			for i := 0; i < machines; i++ {
				if c.Down(i) {
					for _, fid := range freeList(c) {
						if fid == i {
							return false
						}
					}
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// freeList exposes the free list's contents for invariant checks.
func freeList(c *Cluster) []int { return c.free }
