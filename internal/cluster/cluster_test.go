package cluster

import (
	"testing"
	"testing/quick"

	"github.com/approx-analytics/grass/internal/dist"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Machines: 0, SlotsPerMachine: 1},
		{Machines: 1, SlotsPerMachine: 0},
		{Machines: 1, SlotsPerMachine: 1, HeterogeneitySigma: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if (Config{Machines: 10, SlotsPerMachine: 2}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestAcquireRelease(t *testing.T) {
	rng := dist.NewRNG(1)
	c, err := New(Config{Machines: 3, SlotsPerMachine: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSlots() != 6 || c.FreeSlots() != 6 || c.BusySlots() != 0 {
		t.Fatalf("fresh cluster counts wrong: %d %d %d", c.TotalSlots(), c.FreeSlots(), c.BusySlots())
	}
	var ms []Machine
	for i := 0; i < 6; i++ {
		m, ok := c.Acquire(rng)
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		ms = append(ms, m)
	}
	if _, ok := c.Acquire(rng); ok {
		t.Fatal("acquire succeeded on full cluster")
	}
	if c.Utilization() != 1 {
		t.Fatalf("utilization %v, want 1", c.Utilization())
	}
	for _, m := range ms {
		c.Release(m.ID)
	}
	if c.FreeSlots() != 6 || c.BusySlots() != 0 {
		t.Fatal("counts wrong after full release")
	}
	if c.Utilization() != 0 {
		t.Fatalf("utilization %v, want 0", c.Utilization())
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	rng := dist.NewRNG(2)
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 1}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	c.Release(0)
}

func TestReleaseUnknownMachinePanics(t *testing.T) {
	rng := dist.NewRNG(2)
	c, _ := New(Config{Machines: 1, SlotsPerMachine: 1}, rng)
	c.Acquire(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unknown machine did not panic")
		}
	}()
	c.Release(5)
}

func TestHomogeneousSlowdowns(t *testing.T) {
	rng := dist.NewRNG(3)
	c, _ := New(Config{Machines: 10, SlotsPerMachine: 1}, rng)
	for _, s := range c.Slowdowns() {
		if s != 1 {
			t.Fatalf("homogeneous cluster has slowdown %v", s)
		}
	}
}

func TestHeterogeneousSlowdowns(t *testing.T) {
	rng := dist.NewRNG(4)
	c, _ := New(Config{Machines: 200, SlotsPerMachine: 1, HeterogeneitySigma: 0.3}, rng)
	s := c.Slowdowns()
	if dist.StdDev(s) == 0 {
		t.Fatal("heterogeneous cluster has identical machines")
	}
	med := dist.Median(s)
	if med < 0.7 || med > 1.4 {
		t.Fatalf("median slowdown %v, expected near 1", med)
	}
	for _, v := range s {
		if v <= 0 {
			t.Fatalf("non-positive slowdown %v", v)
		}
	}
}

func TestAcquireSpreadsAcrossMachines(t *testing.T) {
	rng := dist.NewRNG(5)
	c, _ := New(Config{Machines: 4, SlotsPerMachine: 4}, rng)
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		m, ok := c.Acquire(rng)
		if !ok {
			t.Fatal("acquire failed")
		}
		seen[m.ID]++
	}
	if len(seen) < 3 {
		t.Fatalf("8 acquisitions landed on only %d machines", len(seen))
	}
}

func TestSlotConservationProperty(t *testing.T) {
	// Under any interleaving of acquires and releases, free+busy == total and
	// utilization stays in [0,1].
	if err := quick.Check(func(seed int64, ops []bool) bool {
		rng := dist.NewRNG(seed)
		c, err := New(Config{Machines: 5, SlotsPerMachine: 3}, rng)
		if err != nil {
			return false
		}
		var held []int
		for _, acquire := range ops {
			if acquire {
				if m, ok := c.Acquire(rng); ok {
					held = append(held, m.ID)
				}
			} else if len(held) > 0 {
				c.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if c.FreeSlots()+c.BusySlots() != c.TotalSlots() {
				return false
			}
			u := c.Utilization()
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
