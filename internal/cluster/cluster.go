// Package cluster models the compute substrate: machines with heterogeneous
// speeds, compute slots, and utilization accounting. The paper's EC2 testbed
// (200 nodes) maps to a Config; heterogeneity is one of the two straggler
// causes the paper cites (§2.1), alongside heavy-tailed task work.
package cluster

import (
	"fmt"

	"github.com/approx-analytics/grass/internal/dist"
)

// Config describes a cluster.
type Config struct {
	// Machines is the node count (paper: 200).
	Machines int
	// SlotsPerMachine is the number of concurrent task slots per node.
	SlotsPerMachine int
	// HeterogeneitySigma is the lognormal sigma of per-machine slowdown
	// factors. Zero gives a homogeneous cluster. A slowdown of f multiplies
	// every copy duration on that machine by f.
	HeterogeneitySigma float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("cluster: %d machines", c.Machines)
	}
	if c.SlotsPerMachine <= 0 {
		return fmt.Errorf("cluster: %d slots per machine", c.SlotsPerMachine)
	}
	if c.HeterogeneitySigma < 0 {
		return fmt.Errorf("cluster: negative heterogeneity sigma %v", c.HeterogeneitySigma)
	}
	return nil
}

// Machine is one node; Slowdown multiplies copy durations placed on it.
type Machine struct {
	ID       int
	Slowdown float64
}

// Cluster tracks slot occupancy across machines. It is not safe for
// concurrent use; the discrete-event simulator is single-threaded by design.
type Cluster struct {
	machines []Machine
	free     []int // machine IDs with a free slot, one entry per free slot
	busy     int
	total    int
}

// New builds a cluster, drawing machine slowdowns from a lognormal with the
// configured sigma (median slowdown 1.0).
func New(cfg Config, rng *dist.RNG) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		machines: make([]Machine, cfg.Machines),
		total:    cfg.Machines * cfg.SlotsPerMachine,
	}
	ln := dist.Lognormal{Mu: 0, Sigma: cfg.HeterogeneitySigma}
	for i := range c.machines {
		slow := 1.0
		if cfg.HeterogeneitySigma > 0 {
			slow = ln.Sample(rng)
		}
		c.machines[i] = Machine{ID: i, Slowdown: slow}
	}
	c.free = make([]int, 0, c.total)
	for s := 0; s < cfg.SlotsPerMachine; s++ {
		for i := range c.machines {
			c.free = append(c.free, i)
		}
	}
	return c, nil
}

// TotalSlots returns the cluster's slot capacity.
func (c *Cluster) TotalSlots() int { return c.total }

// FreeSlots returns the number of currently unoccupied slots.
func (c *Cluster) FreeSlots() int { return len(c.free) }

// BusySlots returns the number of occupied slots.
func (c *Cluster) BusySlots() int { return c.busy }

// Utilization returns busy/total in [0, 1].
func (c *Cluster) Utilization() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.busy) / float64(c.total)
}

// Machine returns the machine with the given ID.
func (c *Cluster) Machine(id int) Machine { return c.machines[id] }

// Acquire takes one free slot, picking a random free slot so task placement
// spreads across machines (like a real scheduler's locality-agnostic
// fallback). It returns the machine the slot lives on and true, or false if
// the cluster is fully busy.
func (c *Cluster) Acquire(rng *dist.RNG) (Machine, bool) {
	if len(c.free) == 0 {
		return Machine{}, false
	}
	i := rng.Intn(len(c.free))
	id := c.free[i]
	c.free[i] = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.busy++
	return c.machines[id], true
}

// Release returns a slot on machine id to the free pool. It panics if more
// slots are released than were acquired — that is always a simulator bug.
func (c *Cluster) Release(id int) {
	if c.busy <= 0 {
		panic("cluster: Release without matching Acquire")
	}
	if id < 0 || id >= len(c.machines) {
		panic(fmt.Sprintf("cluster: Release of unknown machine %d", id))
	}
	c.busy--
	c.free = append(c.free, id)
}

// Slowdowns returns each machine's slowdown factor (for tests and reports).
func (c *Cluster) Slowdowns() []float64 {
	out := make([]float64, len(c.machines))
	for i, m := range c.machines {
		out[i] = m.Slowdown
	}
	return out
}
