// Package cluster models the compute substrate: machines with heterogeneous
// speeds, compute slots, and utilization accounting. The paper's EC2 testbed
// (200 nodes) maps to a Config; heterogeneity is one of the two straggler
// causes the paper cites (§2.1), alongside heavy-tailed task work.
package cluster

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/dist"
)

// Config describes a cluster.
type Config struct {
	// Machines is the node count (paper: 200).
	Machines int
	// SlotsPerMachine is the number of concurrent task slots per node.
	SlotsPerMachine int
	// HeterogeneitySigma is the lognormal sigma of per-machine slowdown
	// factors. Zero gives a homogeneous cluster. A slowdown of f multiplies
	// every copy duration on that machine by f.
	HeterogeneitySigma float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("cluster: %d machines", c.Machines)
	}
	if c.SlotsPerMachine <= 0 {
		return fmt.Errorf("cluster: %d slots per machine", c.SlotsPerMachine)
	}
	// NaN fails every ordered comparison, so "< 0" alone would wave it
	// through into the lognormal sampler; reject non-finite values outright.
	if math.IsNaN(c.HeterogeneitySigma) || math.IsInf(c.HeterogeneitySigma, 0) {
		return fmt.Errorf("cluster: non-finite heterogeneity sigma %v", c.HeterogeneitySigma)
	}
	if c.HeterogeneitySigma < 0 {
		return fmt.Errorf("cluster: negative heterogeneity sigma %v", c.HeterogeneitySigma)
	}
	return nil
}

// Machine is one node; Slowdown multiplies copy durations placed on it.
type Machine struct {
	ID       int
	Slowdown float64
}

// Cluster tracks slot occupancy across machines. It is not safe for
// concurrent use; the discrete-event simulator is single-threaded by design.
//
// Membership is dynamic: Crash removes a machine's slots from the pool
// (running copies stay the caller's problem — Release on a down machine
// parks the slot instead of refreeing it) and Restore brings them back.
// SetFactor overlays a time-varying multiplier on a machine's static
// Slowdown — the fault injector's rack-storm mechanism. Both overlays are
// allocated lazily so a fault-free cluster pays nothing.
type Cluster struct {
	machines []Machine
	free     []int // machine IDs with a free slot, one entry per free slot
	// factor is a time-varying slowdown multiplier per machine (nil until
	// the first SetFactor; 1.0 means unperturbed). Applied at Acquire time,
	// so only copies launched during a perturbation are slowed.
	factor []float64
	// down marks crashed machines (nil until the first Crash).
	down     []bool
	busy     int
	total    int
	slotsPer int
}

// New builds a cluster, drawing machine slowdowns from a lognormal with the
// configured sigma (median slowdown 1.0).
func New(cfg Config, rng *dist.RNG) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		machines: make([]Machine, cfg.Machines),
		total:    cfg.Machines * cfg.SlotsPerMachine,
		slotsPer: cfg.SlotsPerMachine,
	}
	ln := dist.Lognormal{Mu: 0, Sigma: cfg.HeterogeneitySigma}
	for i := range c.machines {
		slow := 1.0
		if cfg.HeterogeneitySigma > 0 {
			slow = ln.Sample(rng)
		}
		c.machines[i] = Machine{ID: i, Slowdown: slow}
	}
	c.free = make([]int, 0, c.total)
	for s := 0; s < cfg.SlotsPerMachine; s++ {
		for i := range c.machines {
			c.free = append(c.free, i)
		}
	}
	return c, nil
}

// TotalSlots returns the cluster's slot capacity.
func (c *Cluster) TotalSlots() int { return c.total }

// FreeSlots returns the number of currently unoccupied slots.
func (c *Cluster) FreeSlots() int { return len(c.free) }

// BusySlots returns the number of occupied slots.
func (c *Cluster) BusySlots() int { return c.busy }

// Utilization returns busy/total in [0, 1].
func (c *Cluster) Utilization() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.busy) / float64(c.total)
}

// Machine returns the machine with the given ID.
func (c *Cluster) Machine(id int) Machine { return c.machines[id] }

// Acquire takes one free slot, picking a random free slot so task placement
// spreads across machines (like a real scheduler's locality-agnostic
// fallback). It returns the machine the slot lives on and true, or false if
// the cluster is fully busy.
func (c *Cluster) Acquire(rng *dist.RNG) (Machine, bool) {
	if len(c.free) == 0 {
		return Machine{}, false
	}
	i := rng.Intn(len(c.free))
	id := c.free[i]
	c.free[i] = c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.busy++
	m := c.machines[id]
	if c.factor != nil {
		m.Slowdown *= c.factor[id]
	}
	return m, true
}

// AcquireOn takes one free slot on the given machine, or reports false if
// the machine is down, unknown, or has no free slot. The fault injector's
// background-interference bursts use it to pin load to specific machines;
// unlike Acquire it draws no randomness.
func (c *Cluster) AcquireOn(id int) bool {
	if id < 0 || id >= len(c.machines) {
		return false
	}
	if c.down != nil && c.down[id] {
		return false
	}
	for i, fid := range c.free {
		if fid == id {
			c.free[i] = c.free[len(c.free)-1]
			c.free = c.free[:len(c.free)-1]
			c.busy++
			return true
		}
	}
	return false
}

// Crash takes machine id out of the cluster: its free slots leave the pool
// and its capacity leaves TotalSlots. Slots currently running copies remain
// counted busy until the caller kills the copies and Releases them (those
// releases park rather than refree — see Release). Reports false if the
// machine is already down or unknown.
func (c *Cluster) Crash(id int) bool {
	if id < 0 || id >= len(c.machines) {
		return false
	}
	if c.down == nil {
		c.down = make([]bool, len(c.machines))
	}
	if c.down[id] {
		return false
	}
	c.down[id] = true
	// Compact the free list in place, dropping this machine's entries.
	kept := c.free[:0]
	for _, fid := range c.free {
		if fid != id {
			kept = append(kept, fid)
		}
	}
	c.free = kept
	c.total -= c.slotsPer
	return true
}

// Restore brings a crashed machine back with all its slots free. By the
// time a restore fires, every copy that was running on the machine has been
// killed and its slot parked, so exactly slotsPer slots return. Reports
// false if the machine is not down.
func (c *Cluster) Restore(id int) bool {
	if id < 0 || id >= len(c.machines) || c.down == nil || !c.down[id] {
		return false
	}
	c.down[id] = false
	for s := 0; s < c.slotsPer; s++ {
		c.free = append(c.free, id)
	}
	c.total += c.slotsPer
	return true
}

// Down reports whether machine id is currently crashed.
func (c *Cluster) Down(id int) bool {
	return c.down != nil && id >= 0 && id < len(c.down) && c.down[id]
}

// SetFactor sets machine id's time-varying slowdown multiplier, applied on
// top of its static Slowdown for copies acquired while it is in effect.
func (c *Cluster) SetFactor(id int, f float64) {
	if c.factor == nil {
		c.factor = make([]float64, len(c.machines))
		for i := range c.factor {
			c.factor[i] = 1
		}
	}
	c.factor[id] = f
}

// Factor returns machine id's current time-varying multiplier (1.0 when
// none has been set).
func (c *Cluster) Factor(id int) float64 {
	if c.factor == nil {
		return 1
	}
	return c.factor[id]
}

// Machines returns the number of machines the cluster was built with,
// including any currently down.
func (c *Cluster) Machines() int { return len(c.machines) }

// Release returns a slot on machine id to the free pool. If the machine is
// down, the slot is parked instead: it leaves the busy count but does not
// rejoin the free list (Restore re-adds the machine's full capacity). It
// panics if more slots are released than were acquired — that is always a
// simulator bug.
func (c *Cluster) Release(id int) {
	if c.busy <= 0 {
		panic("cluster: Release without matching Acquire")
	}
	if id < 0 || id >= len(c.machines) {
		panic(fmt.Sprintf("cluster: Release of unknown machine %d", id))
	}
	c.busy--
	if c.down != nil && c.down[id] {
		return
	}
	c.free = append(c.free, id)
}

// Slowdowns returns each machine's slowdown factor (for tests and reports).
func (c *Cluster) Slowdowns() []float64 {
	out := make([]float64, len(c.machines))
	for i, m := range c.machines {
		out[i] = m.Slowdown
	}
	return out
}
