package serve

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// serveTestConfig mirrors the sched shard harness: 30 machines so 3
// partitions split evenly.
func serveTestConfig(seed int64) sched.Config {
	return sched.Config{
		Cluster:          cluster.Config{Machines: 30, SlotsPerMachine: 2, HeterogeneitySigma: 0.2},
		Estimator:        estimate.Config{TRemNoise: 0.4, TNewNoise: 0.15, Prior: 1},
		DurationBeta:     1.259,
		DurationCap:      30,
		TailFrac:         0.25,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
		Seed:             seed,
	}
}

func serveTestTrace(jobs int, seed int64) trace.Config {
	tc := trace.DefaultConfig(trace.Facebook, trace.Hadoop, trace.MixedBound)
	tc.Jobs = jobs
	tc.Seed = seed
	tc.Slots = 60
	tc.Load = 0.7
	return tc
}

func serveFactory(t testing.TB, policy string) func(int64) (spec.Factory, error) {
	t.Helper()
	return func(seed int64) (spec.Factory, error) {
		return testNewFactory(policy, seed)
	}
}

// replayReference composes the plain engine per partition — exactly the
// shard harness's ground truth — and returns (merged stats, results by
// JobID).
func replayReference(t *testing.T, cfg sched.Config, tc trace.Config, parts int, policy string) *sched.RunStats {
	t.Helper()
	stats := make([]*sched.RunStats, parts)
	for p := 0; p < parts; p++ {
		factory, err := testNewFactory(policy, sched.ShardSeed(cfg.Seed, p, parts))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := sched.New(sched.ShardConfig(cfg, p, parts), factory)
		if err != nil {
			t.Fatal(err)
		}
		src, err := trace.NewShardStream(tc, p, parts)
		if err != nil {
			t.Fatal(err)
		}
		if stats[p], err = sim.RunSource(src); err != nil {
			t.Fatal(err)
		}
	}
	return sched.MergeShardStats(cfg, parts, stats)
}

// collectResults wires an OnResult that gathers every job result; the
// returned fetch sorts them into canonical JobID order.
func collectResults() (func(int, sched.JobResult), func() []sched.JobResult) {
	var mu sync.Mutex
	var rs []sched.JobResult
	on := func(_ int, r sched.JobResult) {
		mu.Lock()
		rs = append(rs, r)
		mu.Unlock()
	}
	fetch := func() []sched.JobResult {
		mu.Lock()
		defer mu.Unlock()
		sort.Slice(rs, func(i, j int) bool { return rs[i].JobID < rs[j].JobID })
		return rs
	}
	return on, fetch
}

// TestServeTraceTimedMatchesReplay is the tentpole's determinism
// guarantee: a trace-timed serve run — full stream through the admission
// driver, jobs routed by ID mod P — produces results byte-identical to
// the offline composed replay, at one partition and at three.
func TestServeTraceTimedMatchesReplay(t *testing.T) {
	cfg := serveTestConfig(11)
	tc := serveTestTrace(60, 11)
	for _, parts := range []int{1, 3} {
		want := replayReference(t, cfg, tc, parts, "gs")
		src, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		on, fetch := collectResults()
		srv, err := New(Config{
			Sim:        cfg,
			NewFactory: serveFactory(t, "gs"),
			Partitions: parts,
			Source:     src,
			OnResult:   on,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := srv.Wait()
		if err != nil {
			t.Fatal(err)
		}
		got := fetch()
		if len(got) != len(want.Results) {
			t.Fatalf("parts=%d: served %d results, replay %d", parts, len(got), len(want.Results))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want.Results[i]) {
				t.Fatalf("parts=%d: job %d diverged from replay\nserve:  %+v\nreplay: %+v",
					parts, got[i].JobID, got[i], want.Results[i])
			}
		}
		if sum.Makespan != want.Makespan || sum.Events != want.Events ||
			sum.MeanUtilization != want.MeanUtilization || sum.EstimatorAccuracy != want.EstimatorAccuracy {
			t.Fatalf("parts=%d: summary aggregates diverged from replay\nserve:  %+v\nreplay: %+v", parts, sum, want)
		}
		if sum.Jobs != uint64(tc.Jobs) {
			t.Fatalf("parts=%d: summary counted %d jobs, want %d", parts, sum.Jobs, tc.Jobs)
		}
		// The sketch's quantiles must be the quantiles of the replay's own
		// latency multiset, within the default 1% guarantee.
		lat := make([]float64, 0, len(want.Results))
		for _, r := range want.Results {
			lat = append(lat, r.Duration)
		}
		sort.Float64s(lat)
		for _, q := range []struct{ q, got float64 }{
			{0.50, sum.P50}, {0.95, sum.P95}, {0.99, sum.P99},
		} {
			rank := int(math.Ceil(q.q * float64(len(lat))))
			if rank < 1 {
				rank = 1
			}
			exact := lat[rank-1]
			if rel := math.Abs(q.got-exact) / exact; rel > 0.011 {
				t.Errorf("parts=%d q=%g: sketch %v vs exact %v (rel %.4f)", parts, q.q, q.got, exact, rel)
			}
		}
		if sum.MaxLatency != lat[len(lat)-1] {
			t.Errorf("parts=%d: max latency %v, want exact %v", parts, sum.MaxLatency, lat[len(lat)-1])
		}
	}
}

// TestServeSubmitMatchesReplay drives the admission API by hand — no
// source attached — and must still reproduce the replay byte-for-byte.
func TestServeSubmitMatchesReplay(t *testing.T) {
	cfg := serveTestConfig(13)
	tc := serveTestTrace(50, 13)
	want := replayReference(t, cfg, tc, 1, "late")
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	on, fetch := collectResults()
	srv, err := New(Config{Sim: cfg, NewFactory: serveFactory(t, "late"), OnResult: on})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := srv.Submit(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	if _, err := srv.Wait(); err != nil {
		t.Fatal(err)
	}
	got := fetch()
	if !reflect.DeepEqual(got, want.Results) {
		t.Fatalf("submit-driven serve diverged from replay (%d vs %d results)", len(got), len(want.Results))
	}
	// Closed admission rejects further jobs with the sentinel.
	if err := srv.Submit(context.Background(), jobs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestServePoissonDeterministic: two identical Poisson-paced runs yield
// identical virtual-time summaries, and a different pace seed yields a
// different arrival pattern (the load process actually re-times jobs).
func TestServePoissonDeterministic(t *testing.T) {
	run := func(paceSeed int64) *Summary {
		tc := serveTestTrace(80, 7)
		src, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{
			Sim:        serveTestConfig(7),
			NewFactory: serveFactory(t, "gs"),
			Partitions: 3,
			Source:     src,
			Pace:       Pace{Mode: Poisson, Rate: 0.5, Seed: paceSeed},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := srv.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(42), run(42)
	a.Wall, b.Wall = 0, 0 // wall clock is observational
	a.MaxQueueDepth, b.MaxQueueDepth = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical Poisson runs diverged:\n%+v\n%+v", a, b)
	}
	c := run(43)
	if c.Makespan == a.Makespan && c.Events == a.Events {
		t.Fatal("different pace seeds produced identical runs — re-timing is not happening")
	}
}

// TestServeWallPacingPreservesResults: wall pacing slows admission in real
// time but must not move a single virtual-time result.
func TestServeWallPacingPreservesResults(t *testing.T) {
	tc := serveTestTrace(30, 5)
	cfg := serveTestConfig(5)
	run := func(wallSpeed float64) *Summary {
		src, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{
			Sim:        cfg,
			NewFactory: serveFactory(t, "gs"),
			Source:     src,
			Pace:       Pace{Mode: TraceTimed, WallSpeed: wallSpeed},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := srv.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	flat := run(0)
	// Fast enough to finish in well under a second, slow enough that the
	// pacing branch actually sleeps between arrivals.
	paced := run(1e5)
	flat.Wall, paced.Wall = 0, 0
	flat.MaxQueueDepth, paced.MaxQueueDepth = 0, 0
	if !reflect.DeepEqual(flat, paced) {
		t.Fatalf("wall pacing changed virtual-time results:\nflat:  %+v\npaced: %+v", flat, paced)
	}
}

// TestServeCancel: cancelling the service context stops a run mid-flight —
// Wait returns ctx.Err() promptly, Submit unblocks, and building a fresh
// server afterwards works.
func TestServeCancel(t *testing.T) {
	tc := serveTestTrace(5_000, 3)
	src, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := New(Config{
		Sim:        serveTestConfig(3),
		NewFactory: serveFactory(t, "gs"),
		Partitions: 3,
		Source:     src,
		Ctx:        ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let some work happen, then pull the plug.
	for srv.Snapshot().Done == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	done := make(chan struct{})
	var waitErr error
	go func() {
		_, waitErr = srv.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return within 10s of cancellation")
	}
	if !errors.Is(waitErr, context.Canceled) {
		t.Fatalf("Wait after cancel: %v, want context.Canceled", waitErr)
	}
	// The engine state was abandoned consistently: a fresh serve run over
	// the same workload still matches the replay.
	src2, err := trace.NewStream(serveTestTrace(20, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Sim: serveTestConfig(3), NewFactory: serveFactory(t, "gs"), Source: src2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeSubmitConcurrent is the race test: many goroutines submitting
// disjoint job IDs, snapshots being read throughout, an eventual Close —
// run under -race in CI. Determinism is not asserted (submission
// interleaving across goroutines is not ordered); invariants are.
func TestServeSubmitConcurrent(t *testing.T) {
	const submitters, perSubmitter = 8, 40
	srv, err := New(Config{
		Sim:        serveTestConfig(9),
		NewFactory: serveFactory(t, "nospec"),
		Partitions: 3,
		QueueCap:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				srv.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				j := &task.Job{
					ID:        g*perSubmitter + i,
					InputWork: []float64{1, 2},
					Bound:     task.NewDeadline(50),
				}
				if err := srv.Submit(context.Background(), j); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	srv.Close()
	sum, err := srv.Wait()
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(submitters * perSubmitter); sum.Jobs != want {
		t.Fatalf("served %d jobs, want %d", sum.Jobs, want)
	}
	if sum.P50 <= 0 || math.IsInf(sum.P99, 0) || math.IsNaN(sum.P99) {
		t.Fatalf("latency quantiles insane: p50=%v p99=%v", sum.P50, sum.P99)
	}
	snap := srv.Snapshot()
	if snap.Done != uint64(submitters*perSubmitter) || snap.QueueDepth != 0 {
		t.Fatalf("post-drain snapshot: done=%d depth=%d", snap.Done, snap.QueueDepth)
	}
}

// TestServeSubmitValidation: the admission edge rejects bad jobs without
// poisoning the partition loops.
func TestServeSubmitValidation(t *testing.T) {
	srv, err := New(Config{Sim: serveTestConfig(1), NewFactory: serveFactory(t, "gs")})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(context.Background(), nil); err == nil {
		t.Error("nil job admitted")
	}
	if err := srv.Submit(context.Background(), &task.Job{ID: -1, InputWork: []float64{1}}); err == nil {
		t.Error("negative-ID job admitted")
	}
	if err := srv.Submit(context.Background(), &task.Job{ID: 0}); err == nil {
		t.Error("invalid (no tasks) job admitted")
	}
	// A good job still goes through after the rejections.
	j := &task.Job{ID: 0, Arrival: 5, InputWork: []float64{1}, Bound: task.NewDeadline(10)}
	if err := srv.Submit(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrivals are clamped to the partition's admission clock,
	// not errored — a live submitter cannot rewind virtual time.
	j2 := &task.Job{ID: 1, Arrival: 2, InputWork: []float64{1}, Bound: task.NewDeadline(10)}
	if err := srv.Submit(context.Background(), j2); err != nil {
		t.Fatal(err)
	}
	if j2.Arrival < j.Arrival {
		t.Fatalf("arrival clamp missing: %v < %v", j2.Arrival, j.Arrival)
	}
	srv.Close()
	if _, err := srv.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeConfigValidation: New rejects broken configurations up front.
func TestServeConfigValidation(t *testing.T) {
	good := func() Config {
		return Config{Sim: serveTestConfig(1), NewFactory: serveFactory(t, "gs")}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil factory", func(c *Config) { c.NewFactory = nil }},
		{"negative partitions", func(c *Config) { c.Partitions = -1 }},
		{"partitions exceed machines", func(c *Config) { c.Partitions = 31 }},
		{"negative queue cap", func(c *Config) { c.QueueCap = -1 }},
		{"poisson without rate", func(c *Config) { c.Pace = Pace{Mode: Poisson} }},
		{"unknown pace mode", func(c *Config) { c.Pace = Pace{Mode: PaceMode(99)} }},
		{"negative wall speed", func(c *Config) { c.Pace = Pace{WallSpeed: -1} }},
		{"bad sim config", func(c *Config) { c.Sim.DurationBeta = -1 }},
	}
	for _, tc := range cases {
		cfg := good()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}

// TestServeStreamRecycling: with a Releaser source the server hands every
// job back — the stream's pool sees as many releases as jobs served, the
// bounded-memory property live serving inherits from replays.
func TestServeStreamRecycling(t *testing.T) {
	tc := serveTestTrace(100, 17)
	src, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingStream{Stream: src}
	srv, err := New(Config{
		Sim:        serveTestConfig(17),
		NewFactory: serveFactory(t, "gs"),
		Partitions: 3,
		Source:     cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := srv.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 100 {
		t.Fatalf("served %d jobs, want 100", sum.Jobs)
	}
	if got := cs.released.Load(); got != 100 {
		t.Fatalf("source got %d jobs back, want all 100", got)
	}
}
