package serve

import (
	"sync/atomic"

	"github.com/approx-analytics/grass/internal/exp"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// testNewFactory resolves a policy name the way the public Serve wrapper
// does, dropping the oracle flag (no oracle policies in these tests).
func testNewFactory(policy string, seed int64) (spec.Factory, error) {
	f, _, err := exp.NewFactory(policy, seed)
	return f, err
}

// countingStream wraps trace.Stream to count how many jobs the server
// hands back to the pool.
type countingStream struct {
	*trace.Stream
	released atomic.Int64
}

func (c *countingStream) Release(j *task.Job) {
	c.released.Add(1)
	c.Stream.Release(j)
}
