// Package serve turns the deterministic replay engine into a long-running
// scheduler service: jobs arrive open-loop through a Submit admission API
// (or an attached source driver, see feed.go), flow into per-partition
// sched.Simulator event loops via sched.RunSource, and the service reports
// the metrics a production straggler-mitigation system is judged on —
// p50/p95/p99/p999 job latency, queue depth, and slot utilization — while
// it runs.
//
// # Determinism
//
// The engine underneath is untouched: admission queues feed the exact
// RunSource path every replay uses, so a server fed a trace's jobs with
// their trace arrival times produces results byte-identical to the plain
// replay of that trace — and with Partitions > 1, byte-identical to
// sched.RunSharded under the same partition count (partitions get
// ShardConfig sub-clusters and ShardSeed-derived seeds, and jobs route by
// ID mod P exactly like trace.NewShardStream). Latency telemetry merges
// across partitions through the metrics.Sketch's loss-free bucket
// addition, folded in canonical ascending-partition order, so the final
// SLO summary is deterministic for any wall-clock interleaving. Wall-clock
// pacing (feed.go) only changes WHEN jobs become available in real time,
// never the virtual-time outcome.
//
// # Threading
//
// Each partition owns one goroutine running its simulator; Submit may be
// called from any number of goroutines. Telemetry is kept off the hot
// path: gauges are atomics written once per job completion (never per
// event), and the latency sketch takes one short per-partition mutex per
// finished job. Snapshot and the final summary read copies — the
// management surface never touches simulator state, the discipline
// ndn-dpdk applies to its data planes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// ErrClosed is returned by Submit once the server stopped accepting jobs.
var ErrClosed = errors.New("serve: server closed to new submissions")

// Config parameterizes a Server.
type Config struct {
	// Sim is the unpartitioned simulator configuration; with Partitions > 1
	// each partition runs under sched.ShardConfig(Sim, p, Partitions).
	Sim sched.Config
	// NewFactory builds one partition's policy factory from its seed —
	// policy state must not be shared across partitions.
	NewFactory func(seed int64) (spec.Factory, error)
	// Partitions splits the cluster into this many self-contained engines
	// (the sharded-execution MODEL; results are comparable only at equal
	// partition counts). 0 or 1 is the plain engine.
	Partitions int
	// QueueCap is each partition's admission buffer; Submit blocks (applies
	// backpressure) when a partition's queue is full. 0 means 1024.
	QueueCap int
	// Alpha is the latency sketch's relative-error guarantee; 0 means
	// metrics.DefaultSketchAlpha (1%).
	Alpha float64
	// Ctx cancels the whole service: running partitions stop promptly
	// (sched.Simulator.SetContext), blocked Submits unblock, and Wait
	// returns ctx.Err(). Nil means never cancelled.
	Ctx context.Context
	// OnResult, when set, observes every finished job. It is called on the
	// owning partition's serve goroutine — concurrently across partitions —
	// so it must be safe for concurrent use when Partitions > 1.
	OnResult func(part int, r sched.JobResult)

	// Source, when set, attaches the open-loop arrival driver: the server
	// pulls jobs from Source and submits them itself, paced by Pace, then
	// closes admission when the source ends or a bound (MaxJobs, For) is
	// hit. See feed.go. Jobs route to partitions by ID mod Partitions, so a
	// plain trace.Stream fed here reproduces trace.NewShardStream's
	// partitioning exactly. If Source implements sched.Releaser, finished
	// jobs are recycled back to it (bounded-memory serving).
	Source sched.Source
	// Pace selects how driver arrivals are timed; the zero value is
	// trace-timed, flat out. Ignored without Source.
	Pace Pace
	// MaxJobs bounds the driver's admissions; 0 means until Source ends.
	MaxJobs int
	// For bounds the driver in wall-clock time: admission closes once this
	// much real time has elapsed (running jobs still drain). 0 means
	// unbounded.
	For time.Duration
}

// Server is a live scheduler service. Build with New, feed with Submit (or
// an attached Config.Source), stop admission with Close, and collect the
// final summary with Wait. Snapshot reports live telemetry at any point.
type Server struct {
	cfg   Config
	ctx   context.Context
	parts []*partition
	rec   *recycler // non-nil iff Config.Source recycles finished jobs
	wg    sync.WaitGroup

	closeOnce sync.Once
	waitOnce  sync.Once
	summary   *Summary
	waitErr   error
	start     time.Time
}

// partition is one self-contained engine: its own queue, simulator
// goroutine, sketch and gauges.
type partition struct {
	idx   int
	queue chan *task.Job

	// mu serializes admission: the closed flag, the monotone arrival
	// clock, and the queue send (so same-partition submissions enter the
	// queue in arrival order).
	mu          sync.Mutex
	closed      bool
	lastArrival float64

	loopDone chan struct{}
	stats    *sched.RunStats
	err      error

	// Telemetry. The sketch is guarded by tmu (one short critical section
	// per finished job, snapshot merges read clones); gauges are atomics.
	tmu       sync.Mutex
	sketch    *metrics.Sketch
	slots     int // this partition's slot count, for utilization weighting
	submitted atomic.Uint64
	done      atomic.Uint64
	depth     atomic.Int64
	depthMax  atomic.Int64
	utilBits  atomic.Uint64
	vnowBits  atomic.Uint64
}

// New validates cfg, starts one serve goroutine per partition (and the
// arrival driver, when Config.Source is set), and returns the running
// server.
func New(cfg Config) (*Server, error) {
	if cfg.NewFactory == nil {
		return nil, fmt.Errorf("serve: nil NewFactory")
	}
	if err := cfg.Sim.Validate(); err != nil {
		return nil, err
	}
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("serve: %d partitions", cfg.Partitions)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitions > cfg.Sim.Cluster.Machines {
		return nil, fmt.Errorf("serve: %d partitions exceed %d machines (a partition needs at least one)",
			cfg.Partitions, cfg.Sim.Cluster.Machines)
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("serve: negative queue capacity %d", cfg.QueueCap)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if err := cfg.Pace.validate(); err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Server{cfg: cfg, ctx: ctx, start: time.Now()}
	if rel, ok := cfg.Source.(sched.Releaser); ok {
		s.rec = &recycler{rel: rel}
	}
	for p := 0; p < cfg.Partitions; p++ {
		part := &partition{
			idx:      p,
			queue:    make(chan *task.Job, cfg.QueueCap),
			loopDone: make(chan struct{}),
			sketch:   metrics.NewSketch(cfg.Alpha),
			slots:    sched.ShardConfig(cfg.Sim, p, cfg.Partitions).Cluster.Machines * cfg.Sim.Cluster.SlotsPerMachine,
		}
		s.parts = append(s.parts, part)
	}
	for _, part := range s.parts {
		s.wg.Add(1)
		go func(part *partition) {
			defer s.wg.Done()
			s.runPartition(part)
		}(part)
	}
	if cfg.Source != nil {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.drive()
		}()
	}
	return s, nil
}

// runPartition builds one partition's simulator and drains its admission
// queue to completion — the engine's unmodified RunSource path.
func (s *Server) runPartition(p *partition) {
	defer close(p.loopDone)
	parts := s.cfg.Partitions
	factory, err := s.cfg.NewFactory(sched.ShardSeed(s.cfg.Sim.Seed, p.idx, parts))
	if err != nil {
		p.err = err
		return
	}
	sim, err := sched.New(sched.ShardConfig(s.cfg.Sim, p.idx, parts), factory)
	if err != nil {
		p.err = err
		return
	}
	if s.cfg.Ctx != nil {
		sim.SetContext(s.cfg.Ctx)
	}
	sim.OnResult(func(r sched.JobResult) {
		p.tmu.Lock()
		p.sketch.Observe(r.Duration)
		p.tmu.Unlock()
		p.done.Add(1)
		p.utilBits.Store(math.Float64bits(sim.Utilization()))
		p.vnowBits.Store(math.Float64bits(sim.VirtualNow()))
		if s.cfg.OnResult != nil {
			s.cfg.OnResult(p.idx, r)
		}
	})
	p.stats, p.err = sim.RunSource(&queueSource{p: p, done: s.ctx.Done(), sink: s.rec})
}

// queueSource adapts a partition's admission queue to the simulator's
// Source interface. Next blocks until a job is submitted, admission closes,
// or the server's context is cancelled (the simulator's own periodic check
// then surfaces ctx.Err()). Release forwards finished jobs to the server's
// recycle sink when one is attached.
type queueSource struct {
	p    *partition
	done <-chan struct{}
	sink *recycler
}

func (q *queueSource) Next() (*task.Job, bool) {
	select {
	case j, ok := <-q.p.queue:
		if !ok {
			return nil, false
		}
		q.p.depth.Add(-1)
		return j, true
	case <-q.done:
		return nil, false
	}
}

func (q *queueSource) Release(j *task.Job) {
	if q.sink != nil {
		q.sink.put(j)
	}
}

// Submit admits one job into the service. The job must have a non-negative
// ID (jobs route to partitions by ID mod Partitions) and pass validation —
// invalid jobs are rejected here, at the admission edge, instead of
// poisoning a partition's event loop mid-run. The job's Arrival is its
// position on the virtual-time axis; arrivals that would run the
// partition's admission clock backwards are clamped forward to the last
// admitted arrival (a live submitter usually leaves Arrival zero and lets
// the clamp assign "now"). Submit blocks when the partition's queue is
// full — that is the open-loop backpressure signal — until space frees,
// ctx or the server's context is done, admission is closed, or the
// partition's engine exits. The server owns the job from a successful
// Submit until its result is delivered.
func (s *Server) Submit(ctx context.Context, j *task.Job) error {
	if j == nil {
		return fmt.Errorf("serve: nil job")
	}
	if j.ID < 0 {
		return fmt.Errorf("serve: job ID %d must be non-negative", j.ID)
	}
	if err := j.Validate(); err != nil {
		return err
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	p := s.parts[j.ID%len(s.parts)]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if j.Arrival < p.lastArrival {
		j.Arrival = p.lastArrival
	}
	p.lastArrival = j.Arrival
	select {
	case p.queue <- j:
		p.submitted.Add(1)
		d := p.depth.Add(1)
		for {
			max := p.depthMax.Load()
			if d <= max || p.depthMax.CompareAndSwap(max, d) {
				break
			}
		}
		return nil
	case <-p.loopDone:
		if p.err != nil {
			return fmt.Errorf("serve: partition %d engine exited: %w", p.idx, p.err)
		}
		return fmt.Errorf("serve: partition %d engine exited", p.idx)
	case <-ctxDone:
		return ctx.Err()
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// Close stops admission: subsequent Submits return ErrClosed, queued jobs
// drain, and the partition engines finish once their in-flight work
// completes. Close never interrupts running jobs — cancel the Config.Ctx
// for that. Safe to call more than once and concurrently with Submit.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		for _, p := range s.parts {
			p.mu.Lock()
			p.closed = true
			close(p.queue)
			p.mu.Unlock()
		}
	})
}

// Wait blocks until every partition engine (and the driver, if attached)
// has exited, then returns the merged run summary. Submit-driven servers
// must Close first — without it the engines wait for more jobs forever.
// If the server's context was cancelled, Wait returns ctx.Err(); a
// partition failure returns the lowest-index partition's error. Wait is
// idempotent.
func (s *Server) Wait() (*Summary, error) {
	s.waitOnce.Do(func() {
		s.wg.Wait()
		if err := s.ctx.Err(); err != nil {
			s.waitErr = err
			return
		}
		for _, p := range s.parts {
			if p.err != nil {
				s.waitErr = fmt.Errorf("serve: partition %d: %w", p.idx, p.err)
				return
			}
		}
		s.summary = s.buildSummary()
	})
	return s.summary, s.waitErr
}

// buildSummary merges per-partition results in canonical ascending order.
func (s *Server) buildSummary() *Summary {
	stats := make([]*sched.RunStats, len(s.parts))
	sketch := metrics.NewSketch(s.cfg.Alpha)
	sum := &Summary{Partitions: len(s.parts), Wall: time.Since(s.start)}
	for i, p := range s.parts {
		stats[i] = p.stats
		p.tmu.Lock()
		sketch.Merge(p.sketch)
		p.tmu.Unlock()
		sum.Jobs += p.done.Load()
		if d := p.depthMax.Load(); d > sum.MaxQueueDepth {
			sum.MaxQueueDepth = d
		}
	}
	merged := sched.MergeShardStats(s.cfg.Sim, len(s.parts), stats)
	sum.Events = merged.Events
	sum.Makespan = merged.Makespan
	sum.MeanUtilization = merged.MeanUtilization
	sum.EstimatorAccuracy = merged.EstimatorAccuracy
	sum.fillLatency(sketch)
	return sum
}

// recycler is the cross-goroutine hand-back lane for finished jobs: the
// partition engines put, the single driver goroutine drains into the
// source's pool (trace.Stream is not safe for concurrent use, so only the
// driver ever touches it).
type recycler struct {
	rel  sched.Releaser
	mu   sync.Mutex
	jobs []*task.Job
}

func (r *recycler) put(j *task.Job) {
	r.mu.Lock()
	r.jobs = append(r.jobs, j)
	r.mu.Unlock()
}

// drain swaps the accumulated jobs out, reusing buf's capacity.
func (r *recycler) drain(buf []*task.Job) []*task.Job {
	r.mu.Lock()
	out := r.jobs
	r.jobs = buf[:0]
	r.mu.Unlock()
	return out
}

// Snapshot is the live telemetry read: queue and progress gauges plus the
// canonical cross-partition merge of the latency sketch. Gauges are
// observational — their values depend on when, in wall clock, the snapshot
// lands — while the final Summary's virtual-time fields are deterministic.
type Snapshot struct {
	Submitted, Done                              uint64
	QueueDepth                                   int64
	VirtualNow                                   float64 // furthest partition's simulation clock
	Utilization                                  float64 // slot-weighted mean of partition utilizations
	P50, P95, P99, P999, MeanLatency, MaxLatency float64
}

// Snapshot reports the service's current telemetry. Safe from any
// goroutine, any time between New and after Wait.
func (s *Server) Snapshot() Snapshot {
	var snap Snapshot
	sketch := metrics.NewSketch(s.cfg.Alpha)
	var utilWeighted float64
	var slots int
	for _, p := range s.parts {
		snap.Submitted += p.submitted.Load()
		snap.Done += p.done.Load()
		snap.QueueDepth += p.depth.Load()
		if v := math.Float64frombits(p.vnowBits.Load()); v > snap.VirtualNow {
			snap.VirtualNow = v
		}
		utilWeighted += math.Float64frombits(p.utilBits.Load()) * float64(p.slots)
		slots += p.slots
		p.tmu.Lock()
		c := p.sketch.Clone()
		p.tmu.Unlock()
		sketch.Merge(c)
	}
	if slots > 0 {
		snap.Utilization = utilWeighted / float64(slots)
	}
	snap.P50 = sketch.Quantile(0.50)
	snap.P95 = sketch.Quantile(0.95)
	snap.P99 = sketch.Quantile(0.99)
	snap.P999 = sketch.Quantile(0.999)
	if n := sketch.Count(); n > 0 {
		snap.MeanLatency = sketch.Sum() / float64(n)
	}
	snap.MaxLatency = sketch.Max()
	return snap
}

// Summary is the final report of a serve run. Every virtual-time field —
// Jobs, Events, Makespan, MeanUtilization, the latency quantiles — is
// deterministic for a fixed (Config.Sim.Seed, Partitions, job sequence);
// MaxQueueDepth and Wall are wall-clock observations.
type Summary struct {
	Jobs              uint64
	Events            uint64
	Makespan          float64
	MeanUtilization   float64
	EstimatorAccuracy float64
	Partitions        int

	// Job latency (completion minus arrival, virtual time units) SLO
	// quantiles, within the sketch's relative-error guarantee; Min/Max are
	// exact.
	P50, P95, P99, P999                 float64
	MeanLatency, MinLatency, MaxLatency float64

	MaxQueueDepth int64
	Wall          time.Duration
}

func (sum *Summary) fillLatency(sk *metrics.Sketch) {
	sum.P50 = sk.Quantile(0.50)
	sum.P95 = sk.Quantile(0.95)
	sum.P99 = sk.Quantile(0.99)
	sum.P999 = sk.Quantile(0.999)
	if n := sk.Count(); n > 0 {
		sum.MeanLatency = sk.Sum() / float64(n)
	}
	sum.MinLatency = sk.Min()
	sum.MaxLatency = sk.Max()
}
