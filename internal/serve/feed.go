package serve

import (
	"fmt"
	"time"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
)

// PaceMode selects how the arrival driver times the jobs it pulls from
// Config.Source.
type PaceMode int

const (
	// TraceTimed keeps each job's own Arrival from the source — the open
	// problem's "replay the trace through the service" mode. A trace-timed
	// serve run is byte-identical to the offline replay of the same trace at
	// the same partition count.
	TraceTimed PaceMode = iota
	// Poisson discards the source's arrival times and re-times jobs on a
	// single global Poisson process of Pace.Rate jobs per virtual-time
	// unit, drawn from Pace.Seed — the classic open-loop load generator
	// shape. Deterministic for a fixed (Rate, Seed, job sequence).
	Poisson
)

func (m PaceMode) String() string {
	switch m {
	case TraceTimed:
		return "trace"
	case Poisson:
		return "poisson"
	default:
		return fmt.Sprintf("PaceMode(%d)", int(m))
	}
}

// Pace times the arrival driver. The zero value is trace-timed with no
// wall-clock pacing: jobs feed as fast as backpressure admits, and the
// virtual-time results are exactly the offline replay's.
type Pace struct {
	// Mode picks the virtual-time arrival process.
	Mode PaceMode
	// Rate is the Poisson arrival rate (jobs per virtual-time unit);
	// required > 0 when Mode is Poisson, ignored otherwise.
	Rate float64
	// Seed draws the Poisson interarrivals (independent of Config.Sim.Seed
	// so load and straggler luck decouple). Used only when Mode is Poisson.
	Seed int64
	// WallSpeed, when > 0, paces admission in REAL time: a job whose
	// virtual arrival is T units after the first job's is released
	// T/WallSpeed seconds after the driver started (WallSpeed 10 replays
	// ten virtual-time units per wall second). Wall pacing changes only
	// when jobs become available to the engines — never the virtual-time
	// results, which stay those of the unpaced run. 0 feeds flat out.
	WallSpeed float64
}

func (p Pace) validate() error {
	switch p.Mode {
	case TraceTimed:
	case Poisson:
		if !(p.Rate > 0) {
			return fmt.Errorf("serve: poisson pacing needs a positive rate, got %v", p.Rate)
		}
	default:
		return fmt.Errorf("serve: unknown pace mode %d", int(p.Mode))
	}
	if p.WallSpeed < 0 {
		return fmt.Errorf("serve: negative wall speed %v", p.WallSpeed)
	}
	return nil
}

// drive is the open-loop arrival driver: one goroutine that pulls jobs
// from Config.Source, re-times them per Pace, submits them, recycles
// finished jobs back to the source, and closes admission when the source
// ends or a bound trips. Single-goroutine by design — trace.Stream and its
// pool are not safe for concurrent use, so only this goroutine ever
// touches the source.
func (s *Server) drive() {
	var (
		admitted  int
		rng       *dist.RNG
		exp       dist.Exponential
		clock     float64 // Poisson global arrival clock
		first     = true
		firstArr  float64
		wallStart time.Time
		buf       []*task.Job
	)
	if s.cfg.Pace.Mode == Poisson {
		rng = dist.NewRNG(s.cfg.Pace.Seed)
		exp = dist.Exponential{Mu: 1 / s.cfg.Pace.Rate}
	}
	deadline := time.Time{}
	if s.cfg.For > 0 {
		deadline = time.Now().Add(s.cfg.For)
	}
	for {
		if s.ctx.Err() != nil {
			break
		}
		if s.cfg.MaxJobs > 0 && admitted >= s.cfg.MaxJobs {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		// Hand finished jobs back to the source's pool before pulling the
		// next one — the pull may be what needs the storage.
		buf = s.recycleDrain(buf)
		j, ok := s.cfg.Source.Next()
		if !ok {
			break
		}
		switch s.cfg.Pace.Mode {
		case Poisson:
			clock += exp.Sample(rng)
			j.Arrival = clock
		}
		if first {
			first = false
			firstArr = j.Arrival
			wallStart = time.Now()
		}
		if ws := s.cfg.Pace.WallSpeed; ws > 0 {
			due := wallStart.Add(time.Duration((j.Arrival - firstArr) / ws * float64(time.Second)))
			if wait := time.Until(due); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-s.ctx.Done():
					t.Stop()
				}
			}
		}
		if err := s.Submit(s.ctx, j); err != nil {
			// Cancellation and engine exits surface through Wait; the job
			// that never entered goes back to the pool like a rejected one.
			s.recyclePut(j)
			break
		}
		admitted++
	}
	// Stop admission; engines drain what was admitted. Keep recycling until
	// every partition loop exits, so a Releaser source gets each admitted
	// job back exactly once even after the driver is done submitting.
	s.Close()
	s.recycleUntilDone(buf)
}

// recycleDrain empties the hand-back lane into the source's pool. Caller
// must be the driver goroutine (sole toucher of the source).
func (s *Server) recycleDrain(buf []*task.Job) []*task.Job {
	if s.rec == nil {
		return buf
	}
	jobs := s.rec.drain(buf)
	for _, j := range jobs {
		s.rec.rel.Release(j)
	}
	return jobs
}

// recyclePut hands one job straight back (driver goroutine only).
func (s *Server) recyclePut(j *task.Job) {
	if s.rec != nil {
		s.rec.rel.Release(j)
	}
}

// recycleUntilDone keeps draining the hand-back lane until every
// partition's engine has exited, then performs a final sweep. It inherits
// the driver's exclusive claim on the source — the driver goroutine has
// stopped touching it by the time this runs.
func (s *Server) recycleUntilDone(buf []*task.Job) {
	if s.rec == nil {
		return
	}
	for _, p := range s.parts {
		for {
			select {
			case <-p.loopDone:
			case <-time.After(time.Millisecond):
				buf = s.recycleDrain(buf)
				continue
			}
			break
		}
	}
	s.recycleDrain(buf)
}
