// Package fault defines deterministic, seed-derived fault schedules for the
// simulator: machine crash/restart, correlated rack-scoped slowdown storms,
// and background-load interference bursts. A schedule is pure configuration
// plus a Stream of pre-seeded random draws — the scheduler's injector turns
// the draws into simulator events, so the same (workload seed, fault seed)
// pair replays the identical fault timeline on every run, for any worker
// count, and a zero Config costs nothing.
//
// Each fault channel (crash, storm, interference) draws from its own
// dist.SubSeed substream and is self-paced: the next occurrence is drawn
// when the previous one is armed, never when it fires, so the interleaving
// of channels cannot perturb any channel's draw sequence. The fault seed
// itself derives from the simulation seed through a reserved SubSeed tag
// unless pinned explicitly, keeping fault randomness disjoint from the
// placement/duration/estimator streams by construction.
package fault

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/dist"
)

// seedTag is the reserved dist.SubSeed tag that derives a fault seed from
// the simulation seed when Config.Seed is zero. It sits far above the tags
// the scheduler uses for partitions (part index) and learners, so fault
// streams never collide with existing substreams.
const seedTag = 1 << 30

// Config describes one deterministic fault schedule. The zero value means
// "no faults" and is free: Enabled reports false and the scheduler builds
// no injector. Inter-fault gaps are exponential with the configured mean
// (memoryless, like real failure processes); durations are fixed so a
// scenario's intensity is a two-parameter knob (how often × how long).
type Config struct {
	// Seed pins the fault randomness. Zero derives it from the simulation
	// seed, so default runs stay reproducible without extra flags while
	// -fault-seed can vary the fault timeline against a fixed workload.
	Seed int64

	// RackSize groups machines [0..R-1], [R..2R-1], ... into racks for
	// correlated slowdown storms. Required (>0) when StormEvery > 0.
	RackSize int

	// CrashEvery is the mean sim-time gap between machine crashes (0
	// disables crashes). Each crash picks a uniform machine; if it is
	// already down the crash is a no-op but the draw still advances.
	CrashEvery float64
	// CrashDowntime is how long a crashed machine stays gone before its
	// slots rejoin the cluster.
	CrashDowntime float64

	// StormEvery is the mean gap between rack slowdown storms (0 disables).
	// A storm multiplies every machine in a uniform rack by StormFactor for
	// StormDuration; overlapping storms on one rack extend, not compound.
	StormEvery    float64
	StormDuration float64
	StormFactor   float64

	// InterfereEvery is the mean gap between background-load bursts (0
	// disables). A burst occupies up to InterfereSlots free slots on a
	// uniform machine for InterfereDuration — external load the scheduler
	// cannot see, only feel.
	InterfereEvery    float64
	InterfereDuration float64
	InterfereSlots    int
}

// Enabled reports whether the schedule injects any faults at all.
func (c Config) Enabled() bool {
	return c.CrashEvery > 0 || c.StormEvery > 0 || c.InterfereEvery > 0
}

// finite rejects NaN and ±Inf — comparisons like "<= 0" silently accept
// NaN, the validation gap this package must not reintroduce.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the schedule. A disabled channel's other parameters are
// ignored, so partial configs (e.g. crashes only) stay terse.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CrashEvery", c.CrashEvery},
		{"CrashDowntime", c.CrashDowntime},
		{"StormEvery", c.StormEvery},
		{"StormDuration", c.StormDuration},
		{"StormFactor", c.StormFactor},
		{"InterfereEvery", c.InterfereEvery},
		{"InterfereDuration", c.InterfereDuration},
	} {
		if !finite(f.v) || f.v < 0 {
			return fmt.Errorf("fault: %s = %v, want finite and >= 0", f.name, f.v)
		}
	}
	if c.CrashEvery > 0 && c.CrashDowntime <= 0 {
		return fmt.Errorf("fault: crashes enabled with CrashDowntime %v", c.CrashDowntime)
	}
	if c.StormEvery > 0 {
		if c.StormDuration <= 0 {
			return fmt.Errorf("fault: storms enabled with StormDuration %v", c.StormDuration)
		}
		if c.StormFactor <= 0 {
			return fmt.Errorf("fault: storms enabled with StormFactor %v", c.StormFactor)
		}
		if c.RackSize <= 0 {
			return fmt.Errorf("fault: storms enabled with RackSize %d", c.RackSize)
		}
	}
	if c.InterfereEvery > 0 {
		if c.InterfereDuration <= 0 {
			return fmt.Errorf("fault: interference enabled with InterfereDuration %v", c.InterfereDuration)
		}
		if c.InterfereSlots <= 0 {
			return fmt.Errorf("fault: interference enabled with InterfereSlots %d", c.InterfereSlots)
		}
	}
	return nil
}

// Shard derives the fault schedule for one partition of a sharded run. The
// partition owns partMachines of totalMachines machines, so each channel's
// cluster-wide rate scales down proportionally (the mean gap scales up by
// total/part) and the partition draws from its own seed substream — the
// same scheme sched.ShardConfig applies to the workload seed. parts == 1
// returns the config unchanged, preserving "one partition IS the plain
// engine" byte-for-byte.
func (c Config) Shard(part, parts, partMachines, totalMachines int) Config {
	if parts <= 1 || !c.Enabled() {
		return c
	}
	scale := float64(totalMachines) / float64(partMachines)
	if c.CrashEvery > 0 {
		c.CrashEvery *= scale
	}
	if c.StormEvery > 0 {
		c.StormEvery *= scale
	}
	if c.InterfereEvery > 0 {
		c.InterfereEvery *= scale
	}
	if c.Seed != 0 {
		c.Seed = dist.SubSeed(c.Seed, part)
	}
	return c
}

// Stream is the pre-seeded source of fault draws for one simulation (or one
// partition of one). Each channel owns an independent RNG, so draws on one
// channel never shift another's timeline.
type Stream struct {
	crash    *dist.RNG
	storm    *dist.RNG
	intf     *dist.RNG
	cfg      Config
	machines int
	racks    int
}

// NewStream builds the draw source for a cluster of the given size. simSeed
// and part feed the derived fault seed when cfg.Seed is zero: the reserved
// tag splits fault randomness off the simulation seed, and the partition
// index splits partitions off each other (mirroring sched.ShardSeed, which
// has already rewritten simSeed per partition — so part is folded in only
// through that rewritten seed, keeping parts == 1 identical to unsharded).
func NewStream(cfg Config, simSeed int64, machines int) *Stream {
	base := cfg.Seed
	if base == 0 {
		base = dist.SubSeed(simSeed, seedTag)
	}
	racks := 0
	if cfg.RackSize > 0 {
		racks = (machines + cfg.RackSize - 1) / cfg.RackSize
	}
	return &Stream{
		crash:    dist.NewRNG(dist.SubSeed(base, 1)),
		storm:    dist.NewRNG(dist.SubSeed(base, 2)),
		intf:     dist.NewRNG(dist.SubSeed(base, 3)),
		cfg:      cfg,
		machines: machines,
		racks:    racks,
	}
}

// Racks returns the number of racks the stream's cluster divides into
// (zero when storms are disabled or RackSize is unset).
func (s *Stream) Racks() int { return s.racks }

// RackRange returns the half-open machine ID range [lo, hi) of a rack.
func (s *Stream) RackRange(rack int) (lo, hi int) {
	lo = rack * s.cfg.RackSize
	hi = lo + s.cfg.RackSize
	if hi > s.machines {
		hi = s.machines
	}
	return lo, hi
}

// NextCrash draws the next crash: its absolute time after now and the
// target machine.
func (s *Stream) NextCrash(now float64) (t float64, machine int) {
	gap := dist.Exponential{Mu: s.cfg.CrashEvery}.Sample(s.crash)
	return now + gap, s.crash.Intn(s.machines)
}

// NextStorm draws the next rack slowdown storm: its absolute time and the
// target rack.
func (s *Stream) NextStorm(now float64) (t float64, rack int) {
	gap := dist.Exponential{Mu: s.cfg.StormEvery}.Sample(s.storm)
	return now + gap, s.storm.Intn(s.racks)
}

// NextInterfere draws the next background-load burst: its absolute time
// and the target machine.
func (s *Stream) NextInterfere(now float64) (t float64, machine int) {
	gap := dist.Exponential{Mu: s.cfg.InterfereEvery}.Sample(s.intf)
	return now + gap, s.intf.Intn(s.machines)
}
