package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"crashes", Config{CrashEvery: 10, CrashDowntime: 5}, true},
		{"crash no downtime", Config{CrashEvery: 10}, false},
		{"crash nan every", Config{CrashEvery: nan, CrashDowntime: 5}, false},
		{"crash inf downtime", Config{CrashEvery: 10, CrashDowntime: inf}, false},
		{"crash negative", Config{CrashEvery: -1, CrashDowntime: 5}, false},
		{"storms", Config{StormEvery: 10, StormDuration: 5, StormFactor: 2, RackSize: 4}, true},
		{"storm no rack", Config{StormEvery: 10, StormDuration: 5, StormFactor: 2}, false},
		{"storm no duration", Config{StormEvery: 10, StormFactor: 2, RackSize: 4}, false},
		{"storm no factor", Config{StormEvery: 10, StormDuration: 5, RackSize: 4}, false},
		{"storm nan factor", Config{StormEvery: 10, StormDuration: 5, StormFactor: nan, RackSize: 4}, false},
		{"interference", Config{InterfereEvery: 10, InterfereDuration: 5, InterfereSlots: 1}, true},
		{"interfere no slots", Config{InterfereEvery: 10, InterfereDuration: 5}, false},
		{"interfere no duration", Config{InterfereEvery: 10, InterfereSlots: 1}, false},
		{"interfere nan every", Config{InterfereEvery: nan, InterfereDuration: 5, InterfereSlots: 1}, false},
		// Disabled channels ignore their other parameters.
		{"idle params", Config{CrashDowntime: 7, StormFactor: 3, InterfereSlots: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if (Config{CrashDowntime: 5, StormFactor: 2, InterfereSlots: 1}).Enabled() {
		t.Fatal("config with only idle parameters reports enabled")
	}
	for _, c := range []Config{
		{CrashEvery: 1, CrashDowntime: 1},
		{StormEvery: 1, StormDuration: 1, StormFactor: 2, RackSize: 4},
		{InterfereEvery: 1, InterfereDuration: 1, InterfereSlots: 1},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v reports disabled", c)
		}
	}
}

func TestScenarios(t *testing.T) {
	names := Scenarios()
	want := []string{"contended", "crashy", "overload-mixed", "rack-storm"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Scenarios() = %v, want %v", names, want)
	}
	for _, n := range names {
		c, err := Scenario(n)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q does not validate: %v", n, err)
		}
		if !c.Enabled() {
			t.Fatalf("preset %q is disabled", n)
		}
	}
	for _, n := range []string{"", "none"} {
		c, err := Scenario(n)
		if err != nil || c.Enabled() {
			t.Fatalf("Scenario(%q) = %+v, %v; want zero config", n, c, err)
		}
	}
	if _, err := Scenario("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestShard(t *testing.T) {
	base := Config{
		RackSize:   4,
		CrashEvery: 10, CrashDowntime: 5,
		StormEvery: 20, StormDuration: 5, StormFactor: 2,
		InterfereEvery: 40, InterfereDuration: 5, InterfereSlots: 1,
	}
	// One partition is the identity — the plain engine byte-for-byte.
	if got := base.Shard(0, 1, 200, 200); !reflect.DeepEqual(got, base) {
		t.Fatalf("Shard(parts=1) changed the config: %+v", got)
	}
	// A partition owning a quarter of the machines sees a quarter of each
	// channel's rate: mean gaps scale by 4.
	got := base.Shard(1, 4, 50, 200)
	if got.CrashEvery != 40 || got.StormEvery != 80 || got.InterfereEvery != 160 {
		t.Fatalf("scaled gaps %v %v %v, want 40 80 160", got.CrashEvery, got.StormEvery, got.InterfereEvery)
	}
	// Durations, factors and sizes are intensive — unscaled.
	if got.CrashDowntime != 5 || got.StormDuration != 5 || got.StormFactor != 2 ||
		got.InterfereDuration != 5 || got.InterfereSlots != 1 || got.RackSize != 4 {
		t.Fatalf("intensive fields changed: %+v", got)
	}
	// A derived (zero) seed stays zero — the partition split rides the
	// already-rewritten simulation seed. A pinned seed splits per partition.
	if got.Seed != 0 {
		t.Fatalf("derived seed became %d", got.Seed)
	}
	pinned := base
	pinned.Seed = 99
	s1 := pinned.Shard(1, 4, 50, 200).Seed
	s2 := pinned.Shard(2, 4, 50, 200).Seed
	if s1 == 99 || s2 == 99 || s1 == s2 {
		t.Fatalf("pinned seed did not split per partition: %d %d", s1, s2)
	}
	// A disabled schedule shards to itself.
	if got := (Config{}).Shard(1, 4, 50, 200); got.Enabled() || !reflect.DeepEqual(got, Config{}) {
		t.Fatalf("disabled schedule changed under Shard: %+v", got)
	}
}

func TestStreamDeterminismAndIndependence(t *testing.T) {
	cfg := Config{
		RackSize:   5,
		CrashEvery: 10, CrashDowntime: 5,
		StormEvery: 20, StormDuration: 5, StormFactor: 2,
		InterfereEvery: 40, InterfereDuration: 5, InterfereSlots: 1,
	}
	type draw struct {
		t float64
		i int
	}
	run := func(interleave bool) (crashes, storms, intfs []draw) {
		s := NewStream(cfg, 7, 20)
		now := 0.0
		for k := 0; k < 50; k++ {
			ct, cm := s.NextCrash(now)
			crashes = append(crashes, draw{ct, cm})
			if interleave {
				// Extra draws on the other channels between crash draws.
				st, sr := s.NextStorm(now)
				storms = append(storms, draw{st, sr})
				it, im := s.NextInterfere(now)
				intfs = append(intfs, draw{it, im})
			}
		}
		if !interleave {
			for k := 0; k < 50; k++ {
				st, sr := s.NextStorm(now)
				storms = append(storms, draw{st, sr})
				it, im := s.NextInterfere(now)
				intfs = append(intfs, draw{it, im})
			}
		}
		return
	}
	c1, s1, i1 := run(true)
	c2, s2, i2 := run(false)
	// Channel independence: the crash sequence is identical whether or not
	// storm/interference draws interleave, and vice versa.
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(i1, i2) {
		t.Fatal("channel draw sequences depend on interleaving")
	}
	for _, d := range c1 {
		if d.t <= 0 || d.i < 0 || d.i >= 20 {
			t.Fatalf("crash draw out of range: %+v", d)
		}
	}
	for _, d := range s1 {
		if d.i < 0 || d.i >= s1StreamRacks(cfg, 20) {
			t.Fatalf("storm rack out of range: %+v", d)
		}
	}
	// Different sim seeds (derived fault seed) give different timelines;
	// a pinned Seed overrides the sim seed entirely.
	a := NewStream(cfg, 7, 20)
	b := NewStream(cfg, 8, 20)
	at, _ := a.NextCrash(0)
	bt, _ := b.NextCrash(0)
	if at == bt {
		t.Fatal("different sim seeds drew the identical first crash")
	}
	pinned := cfg
	pinned.Seed = 42
	p1 := NewStream(pinned, 7, 20)
	p2 := NewStream(pinned, 8, 20)
	p1t, p1m := p1.NextCrash(0)
	p2t, p2m := p2.NextCrash(0)
	if p1t != p2t || p1m != p2m {
		t.Fatal("pinned fault seed still varies with the sim seed")
	}
}

func s1StreamRacks(cfg Config, machines int) int {
	return (machines + cfg.RackSize - 1) / cfg.RackSize
}

func TestRackRange(t *testing.T) {
	cfg := Config{RackSize: 8, StormEvery: 1, StormDuration: 1, StormFactor: 2}
	s := NewStream(cfg, 1, 20) // racks: [0,8) [8,16) [16,20)
	if s.Racks() != 3 {
		t.Fatalf("Racks() = %d, want 3", s.Racks())
	}
	cases := [][3]int{{0, 0, 8}, {1, 8, 16}, {2, 16, 20}}
	for _, c := range cases {
		lo, hi := s.RackRange(c[0])
		if lo != c[1] || hi != c[2] {
			t.Fatalf("RackRange(%d) = [%d,%d), want [%d,%d)", c[0], lo, hi, c[1], c[2])
		}
	}
	none := NewStream(Config{}, 1, 20)
	if none.Racks() != 0 {
		t.Fatalf("rackless stream has %d racks", none.Racks())
	}
}
