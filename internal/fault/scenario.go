package fault

import (
	"fmt"
	"sort"
)

// Named scenario presets. Rates are in simulator time units against the
// default cluster (200 machines × 2 slots, Hadoop task scale ≈ 10 units
// median copy duration): the mean number of concurrently-applied faults is
// duration/every per channel, so each preset states its steady-state
// intensity rather than leaving it implicit.
var scenarios = map[string]Config{
	// crashy: machine churn. A crash roughly every 25 time units with 200
	// units of downtime keeps ≈ 8 of 200 machines (4% of capacity) down on
	// average, each crash killing the copies running on it — the pure
	// lost-work/respeculation scenario.
	"crashy": {
		CrashEvery:    25,
		CrashDowntime: 200,
	},
	// rack-storm: correlated stragglers. Racks of 20 machines; a storm
	// roughly every 60 units slowing one whole rack 3× for 90 units keeps
	// ≈ 1.5 racks (15% of the cluster) stormed on average — the paper's
	// machine heterogeneity (§2.1) made time-varying and spatially
	// correlated, the regime speculation policies disagree about most.
	"rack-storm": {
		RackSize:      20,
		StormEvery:    60,
		StormDuration: 90,
		StormFactor:   3,
	},
	// contended: background load. A burst roughly every 4 units seizing up
	// to 2 free slots on one machine for 50 units keeps ≈ 25 slots of 400
	// (6% of capacity) occupied by invisible external work.
	"contended": {
		InterfereEvery:    4,
		InterfereDuration: 50,
		InterfereSlots:    2,
	},
	// overload-mixed: all three channels at moderate intensity — ≈ 2% of
	// machines down, ≈ 1 rack stormed, ≈ 3% of slots interfered — the
	// hostile-but-survivable cluster a production scheduler actually sees.
	"overload-mixed": {
		RackSize:          20,
		CrashEvery:        50,
		CrashDowntime:     100,
		StormEvery:        100,
		StormDuration:     80,
		StormFactor:       2.5,
		InterfereEvery:    10,
		InterfereDuration: 40,
		InterfereSlots:    2,
	},
}

// Scenario resolves a named fault preset. "" and "none" mean no faults
// (the zero Config).
func Scenario(name string) (Config, error) {
	if name == "" || name == "none" {
		return Config{}, nil
	}
	c, ok := scenarios[name]
	if !ok {
		return Config{}, fmt.Errorf("fault: unknown scenario %q (have %v)", name, Scenarios())
	}
	return c, nil
}

// Scenarios lists the preset names in stable order.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
