package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundKindString(t *testing.T) {
	if DeadlineBound.String() != "deadline" || ErrorBound.String() != "error" {
		t.Fatal("bound kind names wrong")
	}
	if BoundKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestBoundConstructors(t *testing.T) {
	d := NewDeadline(10)
	if d.Kind != DeadlineBound || d.Deadline != 10 {
		t.Fatal("NewDeadline wrong")
	}
	e := NewError(0.2)
	if e.Kind != ErrorBound || e.Epsilon != 0.2 {
		t.Fatal("NewError wrong")
	}
	x := Exact()
	if x.Kind != ErrorBound || x.Epsilon != 0 {
		t.Fatal("Exact should be a zero-epsilon error bound")
	}
}

func TestBoundValidate(t *testing.T) {
	bad := []Bound{
		NewDeadline(0),
		NewDeadline(-1),
		NewDeadline(math.NaN()),
		NewDeadline(math.Inf(1)),
		NewError(-0.1),
		NewError(1),
		NewError(math.NaN()),
		{Kind: BoundKind(7)},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("case %d: invalid bound %+v accepted", i, b)
		}
	}
	good := []Bound{NewDeadline(1), NewError(0), NewError(0.99)}
	for i, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("case %d: valid bound rejected: %v", i, err)
		}
	}
}

func TestTargetTasks(t *testing.T) {
	cases := []struct {
		b    Bound
		n    int
		want int
	}{
		{NewError(0), 100, 100},
		{NewError(0.1), 100, 90},
		{NewError(0.25), 10, 8},
		{NewError(0.999), 10, 1}, // floor at 1
		{NewDeadline(5), 100, 100},
		{NewError(0.5), 0, 0},
		{NewError(0.3), 1, 1},
	}
	for i, c := range cases {
		if got := c.b.TargetTasks(c.n); got != c.want {
			t.Errorf("case %d: TargetTasks(%d) = %d, want %d", i, c.n, got, c.want)
		}
	}
}

func TestTargetTasksProperty(t *testing.T) {
	// Target is always in [1, n] for n >= 1 and monotone in (1-eps).
	if err := quick.Check(func(n int, epsRaw float64) bool {
		if n < 1 {
			n = -n + 1
		}
		if n > 1e6 {
			n = n % 1e6
			if n < 1 {
				n = 1
			}
		}
		eps := math.Mod(math.Abs(epsRaw), 1)
		got := NewError(eps).TargetTasks(n)
		return got >= 1 && got <= n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJobBasics(t *testing.T) {
	j := &Job{
		ID:        1,
		Arrival:   3,
		InputWork: []float64{1, 2, 3},
		Phases:    []Phase{{NumTasks: 2, WorkScale: 1}},
		Bound:     NewDeadline(10),
	}
	if j.NumTasks() != 3 {
		t.Errorf("NumTasks = %d", j.NumTasks())
	}
	if j.DAGLength() != 2 {
		t.Errorf("DAGLength = %d", j.DAGLength())
	}
	if j.TotalWork() != 6 {
		t.Errorf("TotalWork = %v", j.TotalWork())
	}
	if err := j.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestJobValidateRejects(t *testing.T) {
	base := func() *Job {
		return &Job{ID: 1, InputWork: []float64{1}, Bound: NewDeadline(5)}
	}
	cases := []func(*Job){
		func(j *Job) { j.InputWork = nil },
		func(j *Job) { j.InputWork = []float64{0} },
		func(j *Job) { j.InputWork = []float64{-1} },
		func(j *Job) { j.InputWork = []float64{math.NaN()} },
		func(j *Job) { j.Phases = []Phase{{NumTasks: 0, WorkScale: 1}} },
		func(j *Job) { j.Phases = []Phase{{NumTasks: 1, WorkScale: 0}} },
		func(j *Job) { j.Arrival = -1 },
		func(j *Job) { j.Bound = NewDeadline(-1) },
	}
	for i, mutate := range cases {
		j := base()
		mutate(j)
		if j.Validate() == nil {
			t.Errorf("case %d: invalid job accepted: %+v", i, j)
		}
	}
}

func TestBins(t *testing.T) {
	cases := []struct {
		n    int
		want SizeBin
	}{
		{1, Small}, {49, Small}, {50, Small},
		{51, Medium}, {300, Medium}, {500, Medium},
		{501, Large}, {5000, Large},
	}
	for _, c := range cases {
		if got := BinOf(c.n); got != c.want {
			t.Errorf("BinOf(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	if Small.String() != "<50" || Medium.String() != "51-500" || Large.String() != ">500" {
		t.Fatal("bin labels wrong")
	}
}

func TestJobBin(t *testing.T) {
	j := &Job{InputWork: make([]float64, 600)}
	for i := range j.InputWork {
		j.InputWork[i] = 1
	}
	if j.Bin() != Large {
		t.Fatalf("600-task job binned as %v", j.Bin())
	}
}
