// Package task defines the static description of analytics jobs: tasks with
// intrinsic work, DAG phases, approximation bounds (deadline / error / exact)
// and the job-size bins the paper's evaluation reports on.
package task

import (
	"fmt"
	"math"
)

// BoundKind distinguishes the two approximation dimensions of §2.1.
type BoundKind int

const (
	// DeadlineBound jobs maximize accuracy (fraction of input tasks
	// completed) within a time limit.
	DeadlineBound BoundKind = iota
	// ErrorBound jobs minimize the time to complete a (1−ε) fraction of
	// their input tasks. ε = 0 is an exact job.
	ErrorBound
)

// String returns the kind name.
func (k BoundKind) String() string {
	switch k {
	case DeadlineBound:
		return "deadline"
	case ErrorBound:
		return "error"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(k))
	}
}

// Bound is a job's approximation bound.
type Bound struct {
	Kind BoundKind
	// Deadline is the time allowed after the job starts receiving slots
	// (DeadlineBound only).
	Deadline float64
	// Epsilon is the tolerated fraction of skipped input tasks in [0, 1)
	// (ErrorBound only). Zero means exact computation.
	Epsilon float64
}

// NewDeadline returns a deadline bound of d time units.
func NewDeadline(d float64) Bound {
	return Bound{Kind: DeadlineBound, Deadline: d}
}

// NewError returns an error bound of eps.
func NewError(eps float64) Bound {
	return Bound{Kind: ErrorBound, Epsilon: eps}
}

// Exact returns the bound for an exact computation (error bound of zero) —
// per the paper, exact jobs are subsumed as ε=0 error-bound jobs.
func Exact() Bound {
	return Bound{Kind: ErrorBound, Epsilon: 0}
}

// Validate reports whether the bound's parameters are sane.
func (b Bound) Validate() error {
	switch b.Kind {
	case DeadlineBound:
		if b.Deadline <= 0 || math.IsNaN(b.Deadline) || math.IsInf(b.Deadline, 0) {
			return fmt.Errorf("task: deadline %v must be positive and finite", b.Deadline)
		}
	case ErrorBound:
		if b.Epsilon < 0 || b.Epsilon >= 1 || math.IsNaN(b.Epsilon) {
			return fmt.Errorf("task: epsilon %v must be in [0, 1)", b.Epsilon)
		}
	default:
		return fmt.Errorf("task: unknown bound kind %d", int(b.Kind))
	}
	return nil
}

// TargetTasks returns how many of n input tasks must complete to satisfy an
// error bound: ceil(n × (1−ε)), at least 1 for n ≥ 1. For deadline bounds it
// returns n (all tasks are wanted; the deadline cuts execution off).
func (b Bound) TargetTasks(n int) int {
	if n <= 0 {
		return 0
	}
	if b.Kind == DeadlineBound {
		return n
	}
	t := int(math.Ceil(float64(n) * (1 - b.Epsilon)))
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	return t
}

// Phase describes one intermediate DAG phase (e.g. reduce or join) that runs
// after the input phase completes its required fraction (§5.2).
type Phase struct {
	// NumTasks is the phase's task count (typically much smaller than the
	// input phase).
	NumTasks int
	// WorkScale is the mean intrinsic work of a phase task.
	WorkScale float64
}

// Job is the static description of one analytics job.
type Job struct {
	// ID identifies the job within a trace.
	ID int
	// Arrival is the submission time.
	Arrival float64
	// InputWork holds the intrinsic work (normalized data size × processing
	// cost) of each input task. len(InputWork) is the input task count.
	InputWork []float64
	// Phases are the intermediate DAG phases after the input phase, in
	// execution order. Empty for single-phase jobs; a "DAG length" of L in
	// the paper's Figure 9 means len(Phases) == L−1.
	Phases []Phase
	// Bound is the approximation bound.
	Bound Bound
	// DeadlineFactor records how the deadline was calibrated: the fraction
	// added on top of the job's ideal duration (§6.1 sets it uniformly in
	// [2%, 20%]). Zero for error-bound jobs. Used to bin Figure 6a.
	DeadlineFactor float64
	// IdealDuration is the calibrated ideal job duration the deadline was
	// derived from (median task duration substituted for every task).
	IdealDuration float64
}

// NumTasks returns the input-phase task count — the count the paper bins and
// measures accuracy over.
func (j *Job) NumTasks() int { return len(j.InputWork) }

// DAGLength returns the total number of phases including the input phase.
func (j *Job) DAGLength() int { return 1 + len(j.Phases) }

// TotalWork returns the summed intrinsic work of all input tasks.
func (j *Job) TotalWork() float64 {
	s := 0.0
	for _, w := range j.InputWork {
		s += w
	}
	return s
}

// Validate checks the job description.
func (j *Job) Validate() error {
	if len(j.InputWork) == 0 {
		return fmt.Errorf("task: job %d has no input tasks", j.ID)
	}
	for i, w := range j.InputWork {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("task: job %d input task %d has invalid work %v", j.ID, i, w)
		}
	}
	for i, p := range j.Phases {
		if p.NumTasks <= 0 {
			return fmt.Errorf("task: job %d phase %d has %d tasks", j.ID, i, p.NumTasks)
		}
		if p.WorkScale <= 0 {
			return fmt.Errorf("task: job %d phase %d has work scale %v", j.ID, i, p.WorkScale)
		}
	}
	if j.Arrival < 0 || math.IsNaN(j.Arrival) {
		return fmt.Errorf("task: job %d has invalid arrival %v", j.ID, j.Arrival)
	}
	return j.Bound.Validate()
}

// SizeBin is the paper's job-size classification (§6.1).
type SizeBin int

const (
	// Small jobs have < 50 tasks.
	Small SizeBin = iota
	// Medium jobs have 51–500 tasks (50 exactly counts as small's upper
	// boundary; the paper's bins are "<50", "51-500", ">501" — we treat
	// [0,50] as small, (50,500] as medium, (500,∞) as large).
	Medium
	// Large jobs have > 500 tasks.
	Large
)

// AllBins lists the bins in display order.
var AllBins = []SizeBin{Small, Medium, Large}

// String returns the paper's bin label.
func (b SizeBin) String() string {
	switch b {
	case Small:
		return "<50"
	case Medium:
		return "51-500"
	case Large:
		return ">500"
	default:
		return fmt.Sprintf("SizeBin(%d)", int(b))
	}
}

// BinOf classifies a task count.
func BinOf(numTasks int) SizeBin {
	switch {
	case numTasks <= 50:
		return Small
	case numTasks <= 500:
		return Medium
	default:
		return Large
	}
}

// Bin classifies the job by its input task count.
func (j *Job) Bin() SizeBin { return BinOf(j.NumTasks()) }
