package sched

import (
	"testing"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// TestEstimatorBumpDirtiesExactly pins the estimator-version invalidation
// property: an ObserveCompletion (version bump) must re-derive exactly
// the views whose fresh-copy estimate changed — no more (an unchanged
// normalized median rewrites nothing, because TNew = median × work × bias
// and work/bias are immutable) and no fewer (a moved median rewrites
// every incomplete task, completed tasks excluded).
func TestEstimatorBumpDirtiesExactly(t *testing.T) {
	s, err := New(smallConfig(5), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	s.incMinTasks = 0 // incremental views for every phase size
	s.admit(uniformJob(0, 60, task.Exact(), 0))
	js := s.active[0]
	// Run until a few tasks completed, so "every incomplete task" is a
	// strict subset of the phase and the exclusion of completed tasks is
	// observable.
	for js.phase.completed < 5 {
		if !s.eng.Step() {
			t.Fatal("drained before 5 completions")
		}
	}
	if js.done || js.phase == nil {
		t.Fatal("job finished prematurely")
	}
	// Bring the views current, then observe which tasks each controlled
	// bump re-derives.
	s.refreshViews(js)
	var refreshed []int
	js.jv.onTNewRefresh = func(i int) { refreshed = append(refreshed, i) }

	incomplete := map[int]bool{}
	tnewBefore := map[int]float64{}
	for i := 0; i < js.phase.n; i++ {
		if js.tasks.completed[i] {
			continue
		}
		incomplete[i] = true
		tnewBefore[i] = js.jv.vs.At(i).TNew
	}

	// Case 1: insert the current median back into the estimator window.
	// The median is provably unchanged, so no estimate moved and the
	// refresh must rewrite nothing — while still advancing the cached
	// version so the check is not repeated.
	medBefore := s.est.NormalizedMedian()
	verBefore := s.est.Version()
	s.est.ObserveCompletion(medBefore)
	if s.est.Version() == verBefore {
		t.Fatal("ObserveCompletion did not bump the version")
	}
	if s.est.NormalizedMedian() != medBefore {
		t.Fatal("precondition failed: inserting the median moved the median")
	}
	s.refreshViews(js)
	if len(refreshed) != 0 {
		t.Fatalf("unchanged median re-derived %d views, want 0: %v", len(refreshed), refreshed)
	}
	if js.jv.estVer != s.est.Version() {
		t.Fatal("cached estimator version not advanced on a no-op bump")
	}
	for i, want := range tnewBefore {
		if got := js.jv.vs.At(i).TNew; got != want {
			t.Fatalf("task %d TNew moved on a no-op bump: %v -> %v", i, want, got)
		}
	}

	// Case 2: insert far-tail values until the median moves (the
	// duplicated middle from case 1 can absorb one insertion). Every
	// incomplete task's estimate then changes (its bias and work are
	// fixed, so TNew changes iff the median does), and the refresh must
	// re-derive exactly the incomplete set.
	for i := 0; i < 8 && s.est.NormalizedMedian() == medBefore; i++ {
		s.est.ObserveCompletion(100 * medBefore)
	}
	if s.est.NormalizedMedian() == medBefore {
		t.Fatal("precondition failed: tail observations did not move the median")
	}
	refreshed = refreshed[:0]
	s.refreshViews(js)
	got := map[int]bool{}
	for _, i := range refreshed {
		if got[i] {
			t.Fatalf("task %d re-derived twice in one refresh", i)
		}
		got[i] = true
		if !incomplete[i] {
			t.Fatalf("completed (or foreign) task %d re-derived", i)
		}
		if js.jv.vs.At(i).TNew == tnewBefore[i] {
			t.Fatalf("task %d re-derived but its estimate did not change", i)
		}
	}
	for i := range incomplete {
		if !got[i] {
			t.Fatalf("incomplete task %d (estimate changed) was not re-derived", i)
		}
	}
}

// TestLazyTNewRescaleIsInexact pins the reason the estimator-median patch
// loop in refreshViews stays O(incomplete) instead of becoming a lazy
// multiplicative epoch (the ROADMAP's "sub-O(n) exact TNew rescale if a
// provably exact scheme exists"): neither candidate scheme reproduces the
// patched values bit for bit, so neither can be hash-identical. The test
// hunts a deterministic sample space for witnesses of all three failure
// modes and requires each to appear — if float semantics somehow made
// these schemes exact, this test failing would be the signal to revisit.
func TestLazyTNewRescaleIsInexact(t *testing.T) {
	rng := dist.NewRNG(99)
	epochMiss, reassocMiss, orderFlips := 0, 0, 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		m1 := 0.5 + rng.Float64()*2          // median before the move
		m2 := m1 * (0.9 + rng.Float64()*0.2) // median after
		w := 0.1 + rng.Float64()*10          // task work (immutable)
		b := 0.5 + rng.Float64()             // tnew bias (immutable)
		patched := m2 * w * b                // the patch loop's left-to-right product
		if (m1*w*b)*(m2/m1) != patched {
			epochMiss++ // lazy epoch multiplier on the stored key
		}
		if m2*(w*b) != patched {
			reassocMiss++ // immutable per-task base, median applied on read
		}
		// Near-tied neighbor keys: a uniform positive rescale is monotone
		// per key but rounding can flip the ORDER of two keys, which is
		// why ResortByTNew revalidates after every bulk rescale.
		w2 := w * (1 + (rng.Float64()-0.5)*1e-15)
		b2 := b * (1 + (rng.Float64()-0.5)*1e-15)
		a1, c1 := m1*w*b, m1*w2*b2
		a2, c2 := m2*w*b, m2*w2*b2
		if a1 != c1 && a2 != c2 && (a1 < c1) != (a2 < c2) {
			orderFlips++
		}
	}
	if epochMiss == 0 {
		t.Error("epoch-multiplied keys matched the patch loop everywhere — lazy epoch may be exact after all; revisit views.go")
	}
	if reassocMiss == 0 {
		t.Error("re-associated keys matched the patch loop everywhere — factored base may be exact after all; revisit views.go")
	}
	if orderFlips == 0 {
		t.Error("no order flips among near-tied keys — the ResortByTNew rationale may be stale")
	}
	t.Logf("witnesses in %d trials: epoch %d, reassociation %d, order flips %d",
		trials, epochMiss, reassocMiss, orderFlips)
}
