package sched

import (
	"reflect"
	"strings"
	"testing"

	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// sourceTestTrace is the trace the equivalence tests replay: mixed bound
// kinds on a small cluster, big enough for fair-share preemption, deadlines
// and speculation to all trigger.
func sourceTestTrace(dag int) trace.Config {
	tc := trace.DefaultConfig(trace.Facebook, trace.Hadoop, trace.MixedBound)
	tc.Jobs = 80
	tc.Slots = 80
	tc.Seed = 11
	if dag > 1 {
		tc.DAGLength = dag
	}
	return tc
}

func sourceTestConfig() Config {
	c := benchConfig(5)
	c.Cluster.Machines = 40
	return c
}

func policyUnderTest(t *testing.T, name string) spec.Factory {
	t.Helper()
	switch name {
	case "gs":
		return spec.Stateless(spec.NewGS())
	case "ras":
		return spec.Stateless(spec.NewRAS())
	case "late":
		return spec.Stateless(spec.NewLATE())
	case "mantri":
		return spec.Stateless(spec.NewMantri())
	case "nospec":
		return spec.Stateless(spec.NoSpec{})
	default:
		t.Fatalf("unknown test policy %q", name)
		return nil
	}
}

// TestRunSourceMatchesRun is the streaming pipeline's acceptance guarantee
// at the simulator layer: replaying a trace from a pooled stream produces
// RunStats identical — results, makespan, utilization, event count — to
// materializing the same trace and calling Run.
func TestRunSourceMatchesRun(t *testing.T) {
	for _, dag := range []int{1, 3} {
		for _, pol := range []string{"gs", "ras", "late", "mantri", "nospec"} {
			tc := sourceTestTrace(dag)
			jobs, err := trace.Generate(tc)
			if err != nil {
				t.Fatal(err)
			}
			simA, err := New(sourceTestConfig(), policyUnderTest(t, pol))
			if err != nil {
				t.Fatal(err)
			}
			want, err := simA.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := trace.NewStream(tc)
			if err != nil {
				t.Fatal(err)
			}
			simB, err := New(sourceTestConfig(), policyUnderTest(t, pol))
			if err != nil {
				t.Fatal(err)
			}
			got, err := simB.RunSource(stream)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dag=%d policy=%s: streamed RunStats differ from materialized run\n got: %+v\nwant: %+v",
					dag, pol, got, want)
			}
		}
	}
}

// countingStream wraps trace.Stream to count pool traffic.
type countingStream struct {
	*trace.Stream
	released int
}

func (c *countingStream) Release(j *task.Job) {
	c.released++
	c.Stream.Release(j)
}

// TestRunSourceReleasesJobs: every finished job goes back to the stream's
// pool, so replay memory tracks the in-flight set, not the trace length.
func TestRunSourceReleasesJobs(t *testing.T) {
	tc := sourceTestTrace(1)
	stream, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingStream{Stream: stream}
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.RunSource(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Results) != tc.Jobs {
		t.Fatalf("got %d results, want %d", len(stats.Results), tc.Jobs)
	}
	if cs.released != tc.Jobs {
		t.Fatalf("released %d jobs back to the pool, want %d", cs.released, tc.Jobs)
	}
}

// TestOnResultStreamsResults: with a result handler installed the simulator
// retains no per-job results, and the streamed results (sorted by job ID)
// match the accumulated ones exactly.
func TestOnResultStreamsResults(t *testing.T) {
	tc := sourceTestTrace(1)
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	simA, err := New(sourceTestConfig(), spec.Stateless(spec.NewRAS()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := simA.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := New(sourceTestConfig(), spec.Stateless(spec.NewRAS()))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]JobResult, 0, tc.Jobs)
	simB.OnResult(func(r JobResult) { got = append(got, r) })
	stats, err := simB.RunSource(stream)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != nil {
		t.Fatalf("simulator accumulated %d results despite handler", len(stats.Results))
	}
	if stats.Makespan != want.Makespan || stats.Events != want.Events {
		t.Fatalf("aggregates differ: makespan %v/%v events %d/%d",
			stats.Makespan, want.Makespan, stats.Events, want.Events)
	}
	byID := make([]JobResult, len(got))
	for _, r := range got {
		byID[r.JobID] = r
	}
	if !reflect.DeepEqual(byID, want.Results) {
		t.Fatal("streamed results differ from accumulated results")
	}
}

// fakeSource yields a fixed job list without validation or pooling.
type fakeSource struct {
	jobs []*task.Job
}

func (f *fakeSource) Next() (*task.Job, bool) {
	if len(f.jobs) == 0 {
		return nil, false
	}
	j := f.jobs[0]
	f.jobs = f.jobs[1:]
	return j, true
}

// TestRunSourceMatchesRunOnTiedTimestamps: real cluster logs quantize
// timestamps, so arrivals routinely tie with each other and with earlier-
// scheduled simulation events (here: job 0's input deadline lands exactly
// on jobs 1 and 2's arrival). AtFirst ranks arrivals identically in both
// paths, so the streamed replay still reproduces Run event for event.
func TestRunSourceMatchesRunOnTiedTimestamps(t *testing.T) {
	mkJobs := func() []*task.Job {
		return []*task.Job{
			uniformJob(0, 120, task.NewDeadline(5), 0),
			uniformJob(1, 30, task.Exact(), 5),
			uniformJob(2, 30, task.NewError(0.1), 5),
		}
	}
	simA, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := simA.Run(mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	simB, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := simB.RunSource(&fakeSource{jobs: mkJobs()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tied-timestamp stream diverged from materialized run\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRunSourceRejectsUnsorted: out-of-order arrivals surface as an error
// even when discovered mid-stream.
func TestRunSourceRejectsUnsorted(t *testing.T) {
	src := &fakeSource{jobs: []*task.Job{
		uniformJob(0, 4, task.Exact(), 10),
		uniformJob(1, 4, task.Exact(), 5),
	}}
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSource(src); err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted stream not rejected: %v", err)
	}
}

// TestRunSourceRejectsInvalidJob: a mid-stream invalid job stops admission
// and the error surfaces after running jobs drain.
func TestRunSourceRejectsInvalidJob(t *testing.T) {
	bad := uniformJob(1, 4, task.Exact(), 1)
	bad.InputWork = nil
	src := &fakeSource{jobs: []*task.Job{
		uniformJob(0, 4, task.Exact(), 0),
		bad,
	}}
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSource(src); err == nil || !strings.Contains(err.Error(), "no input tasks") {
		t.Fatalf("invalid mid-stream job not rejected: %v", err)
	}
	if _, err := sim.RunSource(nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// trackingSource yields a fixed job list and records pool traffic per job
// ID, so double-releases and leaks on the error path are both visible.
type trackingSource struct {
	jobs     []*task.Job
	pulled   int
	released map[int]int
}

func (s *trackingSource) Next() (*task.Job, bool) {
	if s.pulled >= len(s.jobs) {
		return nil, false
	}
	j := s.jobs[s.pulled]
	s.pulled++
	return j, true
}

func (s *trackingSource) Release(j *task.Job) {
	if s.released == nil {
		s.released = map[int]int{}
	}
	s.released[j.ID]++
}

// TestRunSourceMidStreamErrorContract is the regression test for the
// documented srcErr drain contract: when job k fails validation mid-stream,
// (a) the error surfaces with nil stats, (b) an installed OnResult handler
// has observed exactly the k admitted jobs — a strict prefix, (c) a
// Releaser source got each admitted job back exactly once, (d) the
// offending job itself was released exactly once — not zero times (leak),
// not twice (double release), and (e) nothing past the offending job was
// ever pulled.
func TestRunSourceMidStreamErrorContract(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*task.Job)
		errWant string
	}{
		{"invalid job", func(j *task.Job) { j.InputWork = nil }, "no input tasks"},
		{"unsorted arrival", func(j *task.Job) { j.Arrival = 0 }, "not sorted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const good = 5
			var jobs []*task.Job
			for i := 0; i < good; i++ {
				jobs = append(jobs, uniformJob(i, 4, task.Exact(), float64(i)))
			}
			bad := uniformJob(good, 4, task.Exact(), float64(good))
			tc.corrupt(bad)
			jobs = append(jobs, bad,
				uniformJob(good+1, 4, task.Exact(), float64(good+1)))
			src := &trackingSource{jobs: jobs}
			sim, err := New(sourceTestConfig(), spec.Stateless(spec.NoSpec{}))
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]int{}
			sim.OnResult(func(r JobResult) { seen[r.JobID]++ })
			stats, err := sim.RunSource(src)
			if err == nil || !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %v, want %q", err, tc.errWant)
			}
			if stats != nil {
				t.Fatal("error path returned non-nil stats")
			}
			if len(seen) != good {
				t.Fatalf("OnResult observed %d jobs, want the %d admitted", len(seen), good)
			}
			for id := 0; id < good; id++ {
				if seen[id] != 1 {
					t.Errorf("OnResult saw job %d %d times", id, seen[id])
				}
				if src.released[id] != 1 {
					t.Errorf("admitted job %d released %d times, want exactly once", id, src.released[id])
				}
			}
			if src.released[bad.ID] != 1 {
				t.Errorf("offending job released %d times, want exactly once", src.released[bad.ID])
			}
			if src.pulled != good+1 {
				t.Errorf("source pulled %d jobs — admission must stop at the offending job (want %d)", src.pulled, good+1)
			}
		})
	}
}

// TestRunSourceFirstPullErrorShortCircuits: a bad job at the very first
// pull returns immediately — nothing admitted, nothing observed, and the
// offending job still goes back to the pool exactly once.
func TestRunSourceFirstPullErrorShortCircuits(t *testing.T) {
	bad := uniformJob(0, 4, task.Exact(), 0)
	bad.InputWork = nil
	src := &trackingSource{jobs: []*task.Job{bad, uniformJob(1, 4, task.Exact(), 1)}}
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sim.OnResult(func(JobResult) { calls++ })
	if _, err := sim.RunSource(src); err == nil {
		t.Fatal("first-pull invalid job not rejected")
	}
	if calls != 0 {
		t.Fatalf("OnResult called %d times with nothing admitted", calls)
	}
	if src.released[0] != 1 {
		t.Fatalf("offending first job released %d times, want exactly once", src.released[0])
	}
	if src.pulled != 1 {
		t.Fatalf("pulled %d jobs after a first-pull failure", src.pulled)
	}
}
