package sched

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// pend is an estimate handed to a policy, scored against ground truth when
// the copy leaves the system (§5.1's accuracy bookkeeping).
type pend struct {
	est float64
	at  float64
}

// copyRun is one executing copy of a task.
type copyRun struct {
	machineID   int
	start       float64
	duration    float64 // ground-truth total runtime
	speculative bool
	ev          *simevent.Event
	estTNew     float64 // t_new estimate at launch, 0 when not recorded
	tremBias    float64 // persistent estimation error of this copy's t_rem
	pendTRem    []pend
}

func (c *copyRun) remaining(now float64) float64 {
	r := c.start + c.duration - now
	if r < 0 {
		return 0
	}
	return r
}

// taskRun is the runtime state of one task.
type taskRun struct {
	index      int
	work       float64
	copies     []*copyRun
	completed  bool
	span       float64 // first launch to completion, for straggler stats
	firstStart float64
	nextFactor float64 // predrawn duration factor for the next copy (oracle lookahead)
	tnewBias   float64 // persistent estimation error of this task's t_new
}

// phaseRun is one DAG phase in flight.
type phaseRun struct {
	tasks     []*taskRun
	completed int
	target    int // completions needed to satisfy this phase
}

func (p *phaseRun) satisfied() bool { return p.completed >= p.target }

// jobState is the runtime state of one job.
type jobState struct {
	job      *task.Job
	policy   spec.Policy
	phaseIdx int
	phase    *phaseRun
	running  int
	specRun  int
	done     bool
	declined bool // within the current dispatch round

	inputDeadlineAbs float64 // deadline jobs: when the input phase freezes
	deadlineEv       *simevent.Event
	inputEnd         float64
	res              JobResult
}

// Simulator executes one trace under one speculation policy family.
type Simulator struct {
	cfg     Config
	factory spec.Factory

	eng *simevent.Engine
	cl  *cluster.Cluster
	est *estimate.Estimator

	rngPlace *dist.RNG
	rngDur   *dist.RNG
	rngEst   *dist.RNG

	inputDist dist.Sampler
	interDist dist.Sampler

	active  []*jobState
	results []JobResult

	// interObs records intermediate-phase spans by DAG length, the basis of
	// §5.2's deadline decomposition for multi-phase jobs.
	interObs map[int][]float64

	utilIntegral float64
	lastUtilT    float64

	viewBuf []spec.TaskView
}

// New builds a simulator for cfg driving the given policy family.
func New(cfg Config, factory spec.Factory) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("sched: nil policy factory")
	}
	root := dist.NewRNG(cfg.Seed)
	clRNG := root.Split()
	s := &Simulator{
		cfg:      cfg,
		factory:  factory,
		eng:      simevent.New(),
		rngPlace: root.Split(),
		rngDur:   root.Split(),
		rngEst:   root.Split(),
		interObs: make(map[int][]float64),
	}
	var err error
	if s.cl, err = cluster.New(cfg.Cluster, clRNG); err != nil {
		return nil, err
	}
	if s.est, err = estimate.New(cfg.Estimator, s.rngEst); err != nil {
		return nil, err
	}
	if s.inputDist, err = newFactorDist(cfg.DurationBeta, cfg.DurationCap, cfg.TailFrac, cfg.TailStart); err != nil {
		return nil, err
	}
	// Intermediate tasks straggle less (§5.2): halve the tail probability
	// and lighten its shape.
	interTail := cfg.TailFrac / 2
	if interTail >= 1 {
		interTail = 1
	}
	if s.interDist, err = newFactorDist(cfg.IntermediateBeta, cfg.DurationCap, interTail, cfg.TailStart); err != nil {
		return nil, err
	}
	return s, nil
}

// Run simulates the trace to completion and returns aggregate statistics.
// jobs must be sorted by arrival time.
func (s *Simulator) Run(jobs []*task.Job) (*RunStats, error) {
	prev := math.Inf(-1)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.Arrival < prev {
			return nil, fmt.Errorf("sched: jobs not sorted by arrival (job %d at %v after %v)", j.ID, j.Arrival, prev)
		}
		prev = j.Arrival
		j := j
		s.eng.At(j.Arrival, func(*simevent.Engine) { s.admit(j) })
	}
	limit := s.cfg.MaxEvents
	if limit == 0 {
		limit = 50_000_000
	}
	if _, err := s.eng.Run(limit); err != nil {
		return nil, err
	}
	if len(s.active) > 0 {
		return nil, fmt.Errorf("sched: event queue drained with %d jobs unfinished (policy %s declined forever?)",
			len(s.active), s.factory.Name())
	}
	sort.Slice(s.results, func(i, j int) bool { return s.results[i].JobID < s.results[j].JobID })
	makespan := s.eng.Now()
	s.noteUtil()
	stats := &RunStats{
		Results:           s.results,
		Makespan:          makespan,
		Events:            s.eng.Fired(),
		EstimatorAccuracy: s.est.Accuracy(),
	}
	if makespan > 0 {
		stats.MeanUtilization = s.utilIntegral / makespan
	}
	return stats, nil
}

// noteUtil integrates utilization over time; call before occupancy changes.
func (s *Simulator) noteUtil() {
	now := s.eng.Now()
	s.utilIntegral += s.cl.Utilization() * (now - s.lastUtilT)
	s.lastUtilT = now
}

// admit creates the job's runtime state, schedules its deadline, and tries
// to give it slots.
func (s *Simulator) admit(j *task.Job) {
	js := &jobState{
		job:    j,
		policy: s.factory.NewPolicy(j.ID, j.NumTasks()),
		res: JobResult{
			JobID:          j.ID,
			NumTasks:       j.NumTasks(),
			Bin:            j.Bin(),
			Kind:           j.Bound.Kind,
			Deadline:       j.Bound.Deadline,
			Epsilon:        j.Bound.Epsilon,
			DeadlineFactor: j.DeadlineFactor,
			DAGLength:      j.DAGLength(),
		},
	}
	js.phase = s.newInputPhase(j)
	s.active = append(s.active, js)
	if j.Bound.Kind == task.DeadlineBound {
		inputBudget := j.Bound.Deadline - s.intermediateEstimate(j)
		if min := 0.05 * j.Bound.Deadline; inputBudget < min {
			inputBudget = min
		}
		js.inputDeadlineAbs = j.Arrival + inputBudget
		js.deadlineEv = s.eng.At(js.inputDeadlineAbs, func(*simevent.Engine) { s.onInputDeadline(js) })
	}
	s.dispatch()
}

func (s *Simulator) newInputPhase(j *task.Job) *phaseRun {
	tasks := make([]*taskRun, len(j.InputWork))
	for i, w := range j.InputWork {
		tasks[i] = &taskRun{index: i, work: w}
	}
	return &phaseRun{tasks: tasks, target: j.Bound.TargetTasks(len(tasks))}
}

// intermediateEstimate predicts the time the job's intermediate phases will
// need, to subtract from the deadline (§5.2): the median of observed spans
// of completed jobs with the same DAG length, falling back to an analytic
// estimate before enough samples exist.
func (s *Simulator) intermediateEstimate(j *task.Job) float64 {
	if len(j.Phases) == 0 {
		return 0
	}
	if obs := s.interObs[j.DAGLength()]; len(obs) >= 3 {
		return dist.Median(obs)
	}
	share := s.fairShare(1)
	meanFactor := s.interDist.Mean()
	est := 0.0
	for _, p := range j.Phases {
		waves := math.Ceil(float64(p.NumTasks) / float64(share))
		est += waves * p.WorkScale * meanFactor
	}
	return est
}

// fairShare returns the slot share of one job when extra more jobs join the
// current active set.
func (s *Simulator) fairShare(extra int) int {
	n := extra
	for _, js := range s.active {
		if !js.done {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	share := s.cl.TotalSlots() / n
	if share < 1 {
		share = 1
	}
	return share
}

// dispatch fills free slots max-min fairly: repeatedly offer a slot to the
// active job holding the fewest running copies; a job that declines (its
// policy finds nothing worth launching) is skipped for the rest of the
// round. This is the fair scheduler the paper assumes ("within the slots
// allocated to the job, typically based on fair allocations", §8).
func (s *Simulator) dispatch() {
	for _, js := range s.active {
		js.declined = false
	}
	shares := s.waterfillShares()
	for s.cl.FreeSlots() > 0 {
		// Most underserved job first (largest share deficit); jobs beyond
		// their share may still use leftover slots (work conservation).
		var best *jobState
		bestDef := 0
		for _, js := range s.active {
			if js.done || js.declined {
				continue
			}
			def := shares[js] - js.running
			if best == nil || def > bestDef ||
				(def == bestDef && js.running < best.running) ||
				(def == bestDef && js.running == best.running && js.job.ID < best.job.ID) {
				best, bestDef = js, def
			}
		}
		if best == nil {
			return
		}
		if !s.tryLaunch(best) {
			best.declined = true
		}
	}
	s.preemptForFairness(shares)
}

// waterfillShares computes max-min fair slot shares over job demands: a job
// demanding less than the equal split keeps its demand, and the slack is
// redistributed among the bigger jobs (the water-filling allocation fair
// schedulers implement). Demand is approximated by the job's incomplete
// task count in its current phase.
func (s *Simulator) waterfillShares() map[*jobState]int {
	type dj struct {
		js *jobState
		d  int
	}
	var jobs []dj
	for _, js := range s.active {
		if js.done || js.phase == nil {
			continue
		}
		d := len(js.phase.tasks) - js.phase.completed
		if d < 0 {
			d = 0
		}
		jobs = append(jobs, dj{js, d})
	}
	shares := make(map[*jobState]int, len(jobs))
	if len(jobs) == 0 {
		return shares
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].d != jobs[j].d {
			return jobs[i].d < jobs[j].d
		}
		return jobs[i].js.job.ID < jobs[j].js.job.ID
	})
	remaining := s.cl.TotalSlots()
	for i, e := range jobs {
		level := remaining / (len(jobs) - i)
		give := e.d
		if give > level {
			give = level
		}
		shares[e.js] = give
		remaining -= give
	}
	return shares
}

// preemptForFairness restores max-min fairness when the cluster is full: a
// job strictly below its fair share may take slots from jobs strictly above
// theirs, killing the over-share job's youngest copy (the least work lost —
// the rule Hadoop's fair scheduler uses). Without preemption a job arriving
// into a busy cluster waits for task completions and short deadline-bound
// jobs starve behind long copies.
func (s *Simulator) preemptForFairness(shares map[*jobState]int) {
	for {
		// Neediest under-share job that still wants work.
		var claimant *jobState
		claimDef := 0
		for _, js := range s.active {
			if js.done || js.declined {
				continue
			}
			if def := shares[js] - js.running; def > claimDef ||
				(def == claimDef && def > 0 && js.job.ID < claimant.job.ID) {
				claimant, claimDef = js, def
			}
		}
		if claimant == nil {
			return
		}
		// Most over-share job to take a slot from.
		var victim *jobState
		victimExcess := 0
		for _, js := range s.active {
			if js.done {
				continue
			}
			if ex := js.running - shares[js]; ex > victimExcess {
				victim, victimExcess = js, ex
			}
		}
		if victim == nil {
			return
		}
		if !s.preemptYoungest(victim) {
			return
		}
		if !s.tryLaunch(claimant) {
			claimant.declined = true
			// The freed slot stays free for the next event; stop rather
			// than churn more of the victim's work.
			return
		}
	}
}

// preemptYoungest kills the victim's most recently launched copy, returning
// the task to the unscheduled pool if that was its only copy.
func (s *Simulator) preemptYoungest(victim *jobState) bool {
	if victim.phase == nil {
		return false
	}
	var t *taskRun
	ci := -1
	for _, tr := range victim.phase.tasks {
		for i, c := range tr.copies {
			if ci == -1 || c.start > t.copies[ci].start {
				t, ci = tr, i
			}
		}
	}
	if ci == -1 {
		return false
	}
	s.noteUtil()
	c := t.copies[ci]
	s.eng.Cancel(c.ev)
	s.cl.Release(c.machineID)
	victim.running--
	if c.speculative {
		victim.specRun--
	}
	victim.res.Preempted++
	s.scoreCopy(c, s.eng.Now())
	t.copies = append(t.copies[:ci], t.copies[ci+1:]...)
	return true
}

// tryLaunch asks the job's policy for a launch and executes it.
func (s *Simulator) tryLaunch(js *jobState) bool {
	phase := js.phase
	if phase == nil || phase.satisfied() {
		return false
	}
	ctx := s.buildCtx(js)
	views := s.buildViews(js, ctx)
	if len(views) == 0 {
		return false
	}
	d, ok := js.policy.Pick(ctx, views)
	if !ok {
		return false
	}
	if d.TaskIndex < 0 || d.TaskIndex >= len(phase.tasks) {
		panic(fmt.Sprintf("sched: policy %s picked invalid task %d", js.policy.Name(), d.TaskIndex))
	}
	t := phase.tasks[d.TaskIndex]
	if t.completed {
		panic(fmt.Sprintf("sched: policy %s picked completed task %d", js.policy.Name(), d.TaskIndex))
	}
	// Recover the estimate the policy saw, for accuracy scoring.
	var estTNew float64
	for _, v := range views {
		if v.Index == d.TaskIndex {
			estTNew = v.TNew
			break
		}
	}
	s.launch(js, t, d.Speculative, estTNew)
	return true
}

// launch starts one copy of t on a free slot.
func (s *Simulator) launch(js *jobState, t *taskRun, speculative bool, estTNew float64) {
	s.noteUtil()
	m, ok := s.cl.Acquire(s.rngPlace)
	if !ok {
		panic("sched: launch without a free slot")
	}
	factor := t.nextFactor
	if factor <= 0 {
		factor = s.drawFactor(js)
	}
	t.nextFactor = 0 // consumed
	now := s.eng.Now()
	c := &copyRun{
		machineID:   m.ID,
		start:       now,
		duration:    t.work * factor * m.Slowdown,
		speculative: speculative,
		tremBias:    1,
	}
	if !s.cfg.Oracle {
		c.estTNew = estTNew
		c.tremBias = s.est.SampleTRemBias()
	}
	if len(t.copies) == 0 {
		t.firstStart = now
	}
	t.copies = append(t.copies, c)
	js.running++
	js.res.Launched++
	if speculative {
		js.specRun++
		js.res.Speculative++
	}
	c.ev = s.eng.At(now+c.duration, func(*simevent.Engine) { s.onCopyComplete(js, t, c) })
}

// drawFactor samples a duration factor from the phase-appropriate tail.
func (s *Simulator) drawFactor(js *jobState) float64 {
	if js.phaseIdx == 0 {
		return s.inputDist.Sample(s.rngDur)
	}
	return s.interDist.Sample(s.rngDur)
}

// buildCtx assembles the policy context for the job's current phase.
func (s *Simulator) buildCtx(js *jobState) spec.Ctx {
	now := s.eng.Now()
	ctx := spec.Ctx{
		TotalTasks:        len(js.phase.tasks),
		TargetTasks:       js.phase.target,
		CompletedTasks:    js.phase.completed,
		WaveWidth:         s.fairShare(0),
		RunningCopies:     js.running,
		SpeculativeCopies: js.specRun,
		Utilization:       s.cl.Utilization(),
		Now:               now,
	}
	if s.cfg.Oracle {
		ctx.EstimationAccuracy = 1
	} else {
		ctx.EstimationAccuracy = s.est.Accuracy()
	}
	if js.phaseIdx == 0 && js.job.Bound.Kind == task.DeadlineBound {
		ctx.Kind = task.DeadlineBound
		ctx.RemainingTime = js.inputDeadlineAbs - now
		if ctx.RemainingTime < 0 {
			ctx.RemainingTime = 0
		}
	} else {
		// Error-bound input phases and every intermediate phase: complete
		// `target` tasks as fast as possible.
		ctx.Kind = task.ErrorBound
	}
	return ctx
}

// buildViews produces the policy's TaskViews for unfinished tasks of the
// current phase. In oracle mode the views carry ground truth (exact
// remaining time, the exact duration the next copy would have); otherwise
// they carry estimator output, and the estimates are remembered for
// accuracy scoring.
func (s *Simulator) buildViews(js *jobState, ctx spec.Ctx) []spec.TaskView {
	now := s.eng.Now()
	s.viewBuf = s.viewBuf[:0]
	for _, t := range js.phase.tasks {
		if t.completed {
			continue
		}
		v := spec.TaskView{Index: t.index}
		if len(t.copies) > 0 {
			v.Running = true
			v.Copies = len(t.copies)
			bestCopy := t.copies[0]
			trueRem := bestCopy.remaining(now)
			for _, c := range t.copies[1:] {
				if r := c.remaining(now); r < trueRem {
					trueRem, bestCopy = r, c
				}
			}
			v.Elapsed = now - t.firstStart
			if bestCopy.duration > 0 {
				p := (now - bestCopy.start) / bestCopy.duration
				if p > 0.999 {
					p = 0.999
				}
				if p < 0 {
					p = 0
				}
				v.Progress = p
			}
			if s.cfg.Oracle {
				v.Speculable = true
				v.TRem = trueRem
			} else {
				v.Speculable = v.Progress >= s.cfg.MinSpecProgress
				// Extrapolation error shrinks as progress accumulates: a
				// nearly-done copy's remaining time is well known.
				bias := 1 + (bestCopy.tremBias-1)*(1-v.Progress)
				v.TRem = trueRem * bias
				if v.Speculable && len(bestCopy.pendTRem) < 4 {
					bestCopy.pendTRem = append(bestCopy.pendTRem, pend{est: v.TRem, at: now})
				}
			}
		}
		if s.cfg.Oracle {
			if t.nextFactor <= 0 {
				t.nextFactor = s.drawFactor(js)
			}
			v.TNew = t.work * t.nextFactor
		} else {
			if t.tnewBias == 0 {
				t.tnewBias = s.est.SampleTNewBias()
			}
			v.TNew = s.est.NormalizedMedian() * t.work * t.tnewBias
		}
		s.viewBuf = append(s.viewBuf, v)
	}
	return s.viewBuf
}

// onCopyComplete handles a copy finishing: the task completes, sibling
// copies are killed ("the earliest among the original and speculative
// copies is picked while the rest are killed"), and the job advances.
func (s *Simulator) onCopyComplete(js *jobState, t *taskRun, c *copyRun) {
	s.noteUtil()
	now := s.eng.Now()
	s.cl.Release(c.machineID)
	js.running--
	if c.speculative {
		js.specRun--
	}
	s.scoreCopy(c, now)
	if t.completed {
		// Sibling kills cancel events, so this cannot happen; keep the
		// guard cheap rather than crash a long experiment.
		s.dispatch()
		return
	}
	t.completed = true
	t.span = now - t.firstStart
	s.est.ObserveCompletion(c.duration / t.work)
	// Kill the losing copies.
	for _, o := range t.copies {
		if o == c {
			continue
		}
		s.eng.Cancel(o.ev)
		s.cl.Release(o.machineID)
		js.running--
		if o.speculative {
			js.specRun--
		}
		js.res.Killed++
		s.scoreCopy(o, now)
	}
	t.copies = nil
	js.phase.completed++
	if js.phaseIdx == 0 {
		if po, ok := js.policy.(spec.ProgressObserver); ok {
			po.OnTaskComplete(js.phase.completed, now-js.job.Arrival)
		}
	}
	if js.phase.satisfied() {
		s.finishPhase(js)
	}
	s.dispatch()
}

// scoreCopy settles the copy's recorded estimates against ground truth.
func (s *Simulator) scoreCopy(c *copyRun, now float64) {
	if s.cfg.Oracle {
		return
	}
	if c.estTNew > 0 {
		s.est.RecordTNew(c.estTNew, c.duration)
	}
	for _, p := range c.pendTRem {
		actual := c.duration - (p.at - c.start)
		if actual > 0 {
			s.est.RecordTRem(p.est, actual)
		}
	}
	c.pendTRem = nil
}

// onInputDeadline freezes a deadline job's input phase: accuracy is locked
// to the completed fraction and remaining input copies are killed.
func (s *Simulator) onInputDeadline(js *jobState) {
	js.deadlineEv = nil
	if js.done || js.phaseIdx > 0 {
		return
	}
	s.finishPhase(js)
	s.dispatch()
}

// finishPhase closes the current phase, killing its running copies, and
// advances to the next phase or completes the job.
func (s *Simulator) finishPhase(js *jobState) {
	s.noteUtil()
	now := s.eng.Now()
	// Kill every copy still running in this phase (unneeded work).
	for _, t := range js.phase.tasks {
		for _, c := range t.copies {
			s.eng.Cancel(c.ev)
			s.cl.Release(c.machineID)
			js.running--
			if c.speculative {
				js.specRun--
			}
			js.res.Killed++
			s.scoreCopy(c, now)
		}
		t.copies = nil
	}
	if js.phaseIdx == 0 {
		js.inputEnd = now
		total := len(js.phase.tasks)
		js.res.Accuracy = float64(js.phase.completed) / float64(total)
		js.res.InputDuration = now - js.job.Arrival
		js.res.StragglerRatio = s.stragglerRatio(js.phase)
		if js.deadlineEv != nil {
			s.eng.Cancel(js.deadlineEv)
			js.deadlineEv = nil
		}
	}
	// Advance.
	if js.phaseIdx >= len(js.job.Phases) {
		s.finishJob(js)
		return
	}
	p := js.job.Phases[js.phaseIdx]
	js.phaseIdx++
	tasks := make([]*taskRun, p.NumTasks)
	for i := range tasks {
		tasks[i] = &taskRun{index: i, work: p.WorkScale}
	}
	js.phase = &phaseRun{tasks: tasks, target: p.NumTasks}
}

// stragglerRatio returns max/median of work-normalized completed task spans.
func (s *Simulator) stragglerRatio(p *phaseRun) float64 {
	spans := make([]float64, 0, len(p.tasks))
	for _, t := range p.tasks {
		if t.completed && t.work > 0 {
			spans = append(spans, t.span/t.work)
		}
	}
	if len(spans) < 2 {
		return 1
	}
	med := dist.Median(spans)
	if med <= 0 {
		return 1
	}
	return dist.Max(spans) / med
}

// finishJob records the result and notifies learning policies.
func (s *Simulator) finishJob(js *jobState) {
	now := s.eng.Now()
	js.done = true
	js.phase = nil
	js.res.Duration = now - js.job.Arrival
	if js.job.DAGLength() > 1 {
		s.interObs[js.job.DAGLength()] = append(s.interObs[js.job.DAGLength()], now-js.inputEnd)
	}
	if ob, ok := js.policy.(spec.Observer); ok {
		ctx := spec.Ctx{
			Kind:               js.job.Bound.Kind,
			TotalTasks:         js.job.NumTasks(),
			WaveWidth:          s.fairShare(0),
			Utilization:        s.cl.Utilization(),
			EstimationAccuracy: s.est.Accuracy(),
			Now:                now,
		}
		if s.cfg.Oracle {
			ctx.EstimationAccuracy = 1
		}
		ob.OnJobEnd(ctx, js.res.Accuracy, js.res.InputDuration)
	}
	s.results = append(s.results, js.res)
	// Compact the active list.
	keep := s.active[:0]
	for _, a := range s.active {
		if !a.done {
			keep = append(keep, a)
		}
	}
	s.active = keep
}
