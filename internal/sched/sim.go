package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// pend is an estimate handed to a policy, scored against ground truth when
// the copy leaves the system (§5.1's accuracy bookkeeping).
type pend struct {
	est float64
	at  float64
}

// copyRun is one executing copy of a task. Instances are recycled through
// the simulator's free list: a copy dies (completes, is killed or is
// preempted) strictly before its slot is reused, so the dispatch hot path
// launches without allocating.
type copyRun struct {
	machineID int
	start     float64
	duration  float64 // ground-truth total runtime
	ev        *simevent.Event
	estTNew   float64 // t_new estimate at launch, 0 when not recorded
	tremBias  float64 // persistent estimation error of this copy's t_rem

	// pendTRem holds up to 4 outstanding t_rem estimates awaiting scoring;
	// inline storage avoids a heap slice per copy.
	pendTRem [4]pend
	pendN    int

	// js/task identify the copy's owner (task is the slot into js.tasks) so
	// fn — the completion callback handed to the event engine — can be built
	// once per pooled instance and reused across recycles instead of
	// allocating a fresh closure per launch.
	js          *jobState
	fn          func(*simevent.Engine)
	task        int32
	speculative bool
}

func (c *copyRun) remaining(now float64) float64 {
	r := c.start + c.duration - now
	if r < 0 {
		return 0
	}
	return r
}

// taskBlock is the hot per-task run state of a job's current phase, laid
// out struct-of-arrays and indexed by task slot. The fields the dispatch
// hot path touches every event — copy lists, completion flags, the cached
// best-copy ends, the estimator bias factors — each live in their own
// contiguous array, so the refresh and rebuild walks (and a batch of
// same-time completions) stream through memory instead of chasing one
// pointer per task. Only one phase is alive at a time, so one block
// (recycled across phases and, via the simulator's jobState pool, across
// jobs) serves the whole DAG.
type taskBlock struct {
	work       []float64
	span       []float64 // first launch to completion, for straggler stats
	firstStart []float64
	nextFactor []float64 // predrawn duration factor for the next copy (oracle lookahead)
	tnewBias   []float64 // persistent estimation error of each task's t_new

	// View caches, maintained on copy launch/completion/preemption instead
	// of being recomputed on every launch attempt (the dispatch hot path).
	bestEnd   []float64  // best[i].start + best[i].duration
	best      []*copyRun // earliest-finishing copy; first appended wins ties
	copies    [][]*copyRun
	completed []bool
	dirty     []bool // task is on its job's incremental-view dirty list
}

// reset sizes every array to n tasks and zeroes the slots, keeping pooled
// capacity (including each task's copy-list backing array) when it fits.
func (tb *taskBlock) reset(n int) {
	if cap(tb.work) < n {
		tb.work = make([]float64, n)
		tb.span = make([]float64, n)
		tb.firstStart = make([]float64, n)
		tb.nextFactor = make([]float64, n)
		tb.tnewBias = make([]float64, n)
		tb.bestEnd = make([]float64, n)
		tb.best = make([]*copyRun, n)
		tb.copies = make([][]*copyRun, n)
		tb.completed = make([]bool, n)
		tb.dirty = make([]bool, n)
		return
	}
	tb.work = tb.work[:n]
	tb.span = tb.span[:n]
	tb.firstStart = tb.firstStart[:n]
	tb.nextFactor = tb.nextFactor[:n]
	tb.tnewBias = tb.tnewBias[:n]
	tb.bestEnd = tb.bestEnd[:n]
	tb.best = tb.best[:n]
	tb.copies = tb.copies[:n]
	tb.completed = tb.completed[:n]
	tb.dirty = tb.dirty[:n]
	for i := 0; i < n; i++ {
		tb.work[i], tb.span[i], tb.firstStart[i] = 0, 0, 0
		tb.nextFactor[i], tb.tnewBias[i], tb.bestEnd[i] = 0, 0, 0
		tb.best[i] = nil
		tb.copies[i] = tb.copies[i][:0]
		tb.completed[i], tb.dirty[i] = false, false
	}
}

// recomputeBest rescans task i's copies in append order for the
// earliest-finishing one (strict < keeps the first among ties, matching
// the view the policies have always seen).
func (tb *taskBlock) recomputeBest(i int) {
	tb.best[i] = nil
	tb.bestEnd[i] = math.Inf(1)
	for _, c := range tb.copies[i] {
		if end := c.start + c.duration; end < tb.bestEnd[i] {
			tb.best[i], tb.bestEnd[i] = c, end
		}
	}
}

// phaseRun is one DAG phase in flight; its per-task state is the job's
// taskBlock, sized n.
type phaseRun struct {
	n         int // task count
	completed int
	target    int // completions needed to satisfy this phase
}

func (p *phaseRun) satisfied() bool { return p.completed >= p.target }

// jobState is the runtime state of one job.
type jobState struct {
	job    *task.Job
	policy spec.Policy
	// inc is the policy's delta-aware fast path, when it implements
	// spec.IncrementalPolicy (every built-in policy does); nil falls back
	// to the from-scratch buildViews + Pick reference path.
	inc spec.IncrementalPolicy
	// jv is the incrementally maintained candidate view state (views.go).
	jv       jobViews
	phaseIdx int
	phase    *phaseRun
	running  int
	specRun  int

	// share is the job's max-min fair slot share, refreshed at the start of
	// each dispatch round; demandPos is the job's position in the
	// simulator's demand-ordered index.
	share     int
	demandPos int

	inputDeadlineAbs float64 // deadline jobs: when the input phase freezes
	deadlineEv       *simevent.Event
	inputEnd         float64
	res              JobResult

	// Pooled per-job storage, kept across phases and — via the simulator's
	// jobState free list — across jobs: the struct-of-arrays task block of
	// the current phase, the phaseRun describing it, and the reusable
	// deadline-event closure (built once per pooled instance, like
	// copyRun.fn). Only one phase is alive at a time, so one block serves
	// the whole DAG; reset overwrites it when the phase advances (the old
	// phase's copies were killed and its stats recorded by then).
	tasks      taskBlock
	phaseBuf   phaseRun
	deadlineFn func(*simevent.Engine)

	done     bool
	declined bool // within the current dispatch round
}

// demand approximates the job's slot demand by the incomplete task count of
// its current phase — the quantity the waterfill allocation levels.
func (js *jobState) demand() int {
	if js.phase == nil {
		return 0
	}
	d := js.phase.n - js.phase.completed
	if d < 0 {
		d = 0
	}
	return d
}

// demandLess orders the waterfill index: ascending demand, ties by job ID.
func demandLess(a, b *jobState) bool {
	da, db := a.demand(), b.demand()
	if da != db {
		return da < db
	}
	return a.job.ID < b.job.ID
}

// Simulator executes one trace under one speculation policy family.
type Simulator struct {
	cfg     Config
	factory spec.Factory

	eng *simevent.Engine
	cl  *cluster.Cluster
	est *estimate.Estimator

	rngPlace *dist.RNG
	rngDur   *dist.RNG
	rngEst   *dist.RNG

	inputDist dist.Sampler
	interDist dist.Sampler

	active  []*jobState
	results []JobResult

	// byDemand is the demand-ordered job index the waterfill share
	// computation walks: every non-done job, sorted by (demand, job ID) and
	// maintained incrementally as jobs arrive, complete tasks, change phase
	// and finish — so each dispatch round costs O(jobs) instead of
	// O(jobs·log jobs) with fresh allocations.
	byDemand []*jobState
	// dheap is the reusable deficit-ordered max-heap the dispatch round pops
	// the most underserved job from.
	dheap []*jobState

	// interObs records intermediate-phase spans by DAG length, the basis of
	// §5.2's deadline decomposition for multi-phase jobs. Capped at
	// maxInterObs samples per length so DAG replays stay bounded. interMed
	// caches each length's median (admissions vastly outnumber appends in a
	// long replay; an entry is dropped when its sample list grows).
	interObs map[int][]float64
	interMed map[int]float64

	// Streaming admission state (RunSource): the source being drained, its
	// optional recycler, the job whose arrival event is pending, the shared
	// arrival closure, and the monotonicity watermark. srcErr records a
	// mid-stream validation failure; admission stops and the error surfaces
	// once running jobs drain.
	src         Source
	rel         Releaser
	pendingJob  *task.Job
	arrivalFn   func(*simevent.Engine)
	prevArrival float64
	srcErr      error

	// flt is the fault injector, nil without a fault schedule — the nil
	// check is the entire hot-path cost of the feature when disabled.
	flt *faultInjector
	// arrivalsQueued counts arrival events scheduled but not yet fired —
	// with the active set it defines idleForFaults, evaluated identically
	// for Run (all arrivals up front) and RunSource (one pending arrival).
	arrivalsQueued int

	// onResult, when set, receives each finished job's result instead of
	// s.results accumulating them.
	onResult func(JobResult)

	// ctx, when set, cancels the run: the event loop checks it every
	// ctxCheckEvery events and Run/RunSource return ctx.Err().
	ctx context.Context

	utilIntegral float64
	lastUtilT    float64

	viewBuf  []spec.TaskView
	copyPool []*copyRun
	// jsPool recycles finished jobs' runtime state — the jobState itself,
	// its incremental ViewSet arrays, dirty list and phase task blocks keep
	// their capacity across jobs, so a long replay admits without
	// reallocating per-job state (the PR-4 follow-up: the incremental path
	// cost ~0.3 allocs/event in per-job slices).
	jsPool []*jobState

	// incMinTasks is the phase size at which launch attempts switch from
	// the from-scratch buildViews walk to the incrementally maintained
	// ViewSet. Both paths are locked hash-identical by the differential
	// tests, so the choice is purely a cost crossover: below it the
	// rebuild's tight O(tasks) scan beats the ordered-index bookkeeping,
	// above it attempts cost O(running + dirtied) instead of O(tasks).
	// Tests force 0 to run every phase incrementally.
	incMinTasks int

	// viewTouches counts complete task views derived or visited — the unit
	// of work the rebuild path performs for every incomplete task on every
	// launch attempt; with launchAttempts it yields the touches-per-attempt
	// figure BENCH_sim.json tracks (the incremental path's headline win).
	// tnewRescales separately counts single-field TNew patches from
	// estimator-median movements (bounded by one per incomplete task per
	// completion, independent of the attempt rate).
	viewTouches    uint64
	tnewRescales   uint64
	launchAttempts uint64

	// checkViews, when set (differential tests), observes every
	// incremental launch attempt right after the policy decided, with the
	// refreshed ViewSet still untouched by the launch itself.
	checkViews func(js *jobState, ctx spec.Ctx, vs *spec.ViewSet, d spec.Decision, ok bool)
}

// TouchStats reports how many complete task views the simulator derived or
// visited, how many single-field TNew rescales estimator-median movements
// forced, and how many launch attempts ran — the per-attempt cost the
// incremental views bound by O(running + dirtied) instead of O(tasks).
func (s *Simulator) TouchStats() (viewTouches, tnewRescales, launchAttempts uint64) {
	return s.viewTouches, s.tnewRescales, s.launchAttempts
}

// newCopy takes a copyRun from the free list (or mints one), owned by job
// js's task slot ti.
func (s *Simulator) newCopy(js *jobState, ti int) *copyRun {
	if n := len(s.copyPool); n > 0 {
		c := s.copyPool[n-1]
		s.copyPool = s.copyPool[:n-1]
		*c = copyRun{js: js, task: int32(ti), fn: c.fn}
		return c
	}
	c := &copyRun{js: js, task: int32(ti)}
	c.fn = func(*simevent.Engine) { s.onCopyComplete(c.js, int(c.task), c) }
	return c
}

// freeCopy returns a dead copy (scored, released, unlinked) to the pool.
func (s *Simulator) freeCopy(c *copyRun) {
	c.js, c.task, c.ev = nil, 0, nil
	s.copyPool = append(s.copyPool, c)
}

// takeJobState pops a recycled jobState or mints one. The caller (admit)
// overwrites every live field; pooled storage arrives reset by
// freeJobState with capacity intact.
func (s *Simulator) takeJobState() *jobState {
	if n := len(s.jsPool); n > 0 {
		js := s.jsPool[n-1]
		s.jsPool[n-1] = nil
		s.jsPool = s.jsPool[:n-1]
		return js
	}
	js := &jobState{}
	js.deadlineFn = func(*simevent.Engine) { s.onInputDeadline(js) }
	return js
}

// freeJobState recycles a finished job's runtime state: references are
// dropped and scalars zeroed, while the pooled storage — the incremental
// ViewSet's arrays, the dirty list, the phase task blocks, the deadline
// closure — keeps its capacity for the next admitted job.
func (s *Simulator) freeJobState(js *jobState) {
	jv := js.jv
	jv.invalidate()
	jv.onTNewRefresh = nil
	tasks := js.tasks
	deadlineFn := js.deadlineFn
	*js = jobState{jv: jv, tasks: tasks, deadlineFn: deadlineFn}
	s.jsPool = append(s.jsPool, js)
}

// insertDemand places a newly admitted job into the demand-ordered index.
func (s *Simulator) insertDemand(js *jobState) {
	lo, hi := 0, len(s.byDemand)
	for lo < hi {
		mid := (lo + hi) / 2
		if demandLess(s.byDemand[mid], js) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.byDemand = append(s.byDemand, nil)
	copy(s.byDemand[lo+1:], s.byDemand[lo:])
	s.byDemand[lo] = js
	for i := lo; i < len(s.byDemand); i++ {
		s.byDemand[i].demandPos = i
	}
}

// removeDemand drops a finished job from the demand-ordered index.
func (s *Simulator) removeDemand(js *jobState) {
	i := js.demandPos
	copy(s.byDemand[i:], s.byDemand[i+1:])
	s.byDemand = s.byDemand[:len(s.byDemand)-1]
	for ; i < len(s.byDemand); i++ {
		s.byDemand[i].demandPos = i
	}
	js.demandPos = -1
}

// repositionDemand restores order after js's demand changed (a task
// completed, or the job advanced to a new phase). Single-element moves keep
// the index sorted in O(distance moved), which for the common
// one-completion decrement is a handful of swaps.
func (s *Simulator) repositionDemand(js *jobState) {
	i := js.demandPos
	for i > 0 && demandLess(js, s.byDemand[i-1]) {
		s.byDemand[i] = s.byDemand[i-1]
		s.byDemand[i].demandPos = i
		i--
	}
	for i < len(s.byDemand)-1 && demandLess(s.byDemand[i+1], js) {
		s.byDemand[i] = s.byDemand[i+1]
		s.byDemand[i].demandPos = i
		i++
	}
	s.byDemand[i] = js
	js.demandPos = i
}

// New builds a simulator for cfg driving the given policy family.
func New(cfg Config, factory spec.Factory) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("sched: nil policy factory")
	}
	root := dist.NewRNG(cfg.Seed)
	clRNG := root.Split()
	s := &Simulator{
		cfg:         cfg,
		factory:     factory,
		eng:         simevent.NewKind(cfg.EventQueue),
		rngPlace:    root.Split(),
		rngDur:      root.Split(),
		rngEst:      root.Split(),
		interObs:    make(map[int][]float64),
		interMed:    make(map[int]float64),
		incMinTasks: defaultIncMinTasks,
	}
	var err error
	if s.cl, err = cluster.New(cfg.Cluster, clRNG); err != nil {
		return nil, err
	}
	if s.est, err = estimate.New(cfg.Estimator, s.rngEst); err != nil {
		return nil, err
	}
	if s.inputDist, err = newFactorDist(cfg.DurationBeta, cfg.DurationCap, cfg.TailFrac, cfg.TailStart); err != nil {
		return nil, err
	}
	// Intermediate tasks straggle less (§5.2): halve the tail probability
	// and lighten its shape. Clamp before halving — Validate bounds TailFrac
	// to (0, 1], so the clamp only matters for callers that skipped it, but
	// clamping after the division could never trigger at all.
	interTail := cfg.TailFrac
	if interTail > 1 {
		interTail = 1
	}
	interTail /= 2
	if s.interDist, err = newFactorDist(cfg.IntermediateBeta, cfg.DurationCap, interTail, cfg.TailStart); err != nil {
		return nil, err
	}
	// The injector derives its randomness from the simulation seed through
	// a reserved SubSeed tag (never root.Split()), so enabling faults does
	// not perturb the placement/duration/estimator streams — and a zero
	// schedule builds nothing at all.
	if cfg.Faults.Enabled() {
		s.flt = newFaultInjector(s, cfg.Faults)
	}
	return s, nil
}

// Run simulates a materialized trace to completion and returns aggregate
// statistics. jobs must be sorted by arrival time; the whole trace is
// validated up front. For traces too large to materialize, use RunSource.
func (s *Simulator) Run(jobs []*task.Job) (*RunStats, error) {
	prev := math.Inf(-1)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if j.Arrival < prev {
			return nil, fmt.Errorf("sched: jobs not sorted by arrival (job %d at %v after %v)", j.ID, j.Arrival, prev)
		}
		prev = j.Arrival
		j := j
		// AtFirst: arrivals outrank same-time simulation events, so the
		// admission order at tied timestamps matches RunSource's exactly.
		s.arrivalsQueued++
		s.eng.AtFirst(j.Arrival, func(*simevent.Engine) {
			s.arrivalsQueued--
			s.admit(j)
		})
	}
	return s.finishRun()
}

// ctxCheckEvery is how many events fire between context checks. Large
// enough that the check (one atomic load inside ctx.Err) vanishes next to
// the per-event work, small enough that cancellation lands within
// microseconds of wall clock on any realistic event rate.
const ctxCheckEvery = 4096

// SetContext installs a cancellation context: Run and RunSource return
// ctx.Err() promptly once ctx is done, checked every ctxCheckEvery events.
// A cancelled simulator's internal pools and the partially simulated state
// are abandoned in a consistent state (the loop only stops between events),
// but the simulator itself must not be reused — build a fresh one. Must be
// called before Run/RunSource. A nil ctx (the default) disables checking.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// RunUntil fires all events up to simulation time t and advances the clock
// to exactly t, honoring the cancellation context with the same cadence as
// Run/RunSource (every ctxCheckEvery events). A cancelled drain returns
// ctx.Err() with the queue intact; like a cancelled Run, the simulator must
// not be reused afterwards. Admission must already be scheduled (Run
// arrivals or a RunSource feed) for the drain to have anything to fire.
func (s *Simulator) RunUntil(t float64) error {
	var check func() error
	if s.ctx != nil {
		check = s.ctx.Err
	}
	if _, err := s.eng.RunUntilEvery(t, ctxCheckEvery, check); err != nil {
		return err
	}
	if s.ctx != nil {
		return s.ctx.Err()
	}
	return nil
}

// Utilization reports the cluster's instantaneous slot utilization — a
// telemetry gauge for live serving. Only safe from the simulator's own
// goroutine (e.g. inside an OnResult handler).
func (s *Simulator) Utilization() float64 { return s.cl.Utilization() }

// VirtualNow reports the simulation clock — same access contract as
// Utilization.
func (s *Simulator) VirtualNow() float64 { return s.eng.Now() }

// finishRun drains the event queue and assembles the run statistics — the
// shared tail of Run and RunSource.
func (s *Simulator) finishRun() (*RunStats, error) {
	limit := s.cfg.MaxEvents
	if limit == 0 {
		limit = 50_000_000
	}
	var check func() error
	if s.ctx != nil {
		check = s.ctx.Err
	}
	if _, err := s.eng.RunEvery(limit, ctxCheckEvery, check); err != nil {
		return nil, err
	}
	// A cancel that lands in the final partial batch (or after the queue
	// drained) still surfaces: once ctx is done the run NEVER reports
	// success, so callers can rely on cancel ⇒ ctx.Err().
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
	}
	if s.srcErr != nil {
		return nil, s.srcErr
	}
	if len(s.active) > 0 {
		return nil, fmt.Errorf("sched: event queue drained with %d jobs unfinished (policy %s declined forever?)",
			len(s.active), s.factory.Name())
	}
	if s.onResult == nil {
		sort.Slice(s.results, func(i, j int) bool { return s.results[i].JobID < s.results[j].JobID })
	}
	makespan := s.eng.Now()
	s.noteUtil()
	stats := &RunStats{
		Results:           s.results,
		Makespan:          makespan,
		Events:            s.eng.Fired(),
		EstimatorAccuracy: s.est.Accuracy(),
	}
	if s.flt != nil {
		stats.Faults = s.flt.stats
	}
	if makespan > 0 {
		stats.MeanUtilization = s.utilIntegral / makespan
	}
	return stats, nil
}

// noteUtil integrates utilization over time; call before occupancy changes.
func (s *Simulator) noteUtil() {
	now := s.eng.Now()
	s.utilIntegral += s.cl.Utilization() * (now - s.lastUtilT)
	s.lastUtilT = now
}

// admit creates the job's runtime state, schedules its deadline, and tries
// to give it slots.
func (s *Simulator) admit(j *task.Job) {
	if s.flt != nil {
		s.flt.wake()
	}
	js := s.takeJobState()
	js.job = j
	js.policy = s.factory.NewPolicy(j.ID, j.NumTasks())
	js.res = JobResult{
		JobID:          j.ID,
		NumTasks:       j.NumTasks(),
		Bin:            j.Bin(),
		Kind:           j.Bound.Kind,
		Deadline:       j.Bound.Deadline,
		Epsilon:        j.Bound.Epsilon,
		DeadlineFactor: j.DeadlineFactor,
		DAGLength:      j.DAGLength(),
	}
	js.inc, _ = js.policy.(spec.IncrementalPolicy)
	js.phase = s.newInputPhase(js, j)
	s.active = append(s.active, js)
	s.insertDemand(js)
	if j.Bound.Kind == task.DeadlineBound {
		inputBudget := j.Bound.Deadline - s.intermediateEstimate(j)
		if min := 0.05 * j.Bound.Deadline; inputBudget < min {
			inputBudget = min
		}
		js.inputDeadlineAbs = j.Arrival + inputBudget
		js.deadlineEv = s.eng.At(js.inputDeadlineAbs, js.deadlineFn)
	}
	s.dispatch()
}

// newInputPhase builds the job's input phase in js's pooled task block
// (struct-of-arrays, not one object per task — and on a recycled jobState,
// no alloc at all).
func (s *Simulator) newInputPhase(js *jobState, j *task.Job) *phaseRun {
	n := len(j.InputWork)
	js.tasks.reset(n)
	copy(js.tasks.work, j.InputWork)
	js.phaseBuf = phaseRun{n: n, target: j.Bound.TargetTasks(n)}
	return &js.phaseBuf
}

// intermediateEstimate predicts the time the job's intermediate phases will
// need, to subtract from the deadline (§5.2): the median of observed spans
// of completed jobs with the same DAG length, falling back to an analytic
// estimate before enough samples exist.
func (s *Simulator) intermediateEstimate(j *task.Job) float64 {
	if len(j.Phases) == 0 {
		return 0
	}
	if obs := s.interObs[j.DAGLength()]; len(obs) >= 3 {
		med, ok := s.interMed[j.DAGLength()]
		if !ok {
			med = dist.Median(obs)
			s.interMed[j.DAGLength()] = med
		}
		return med
	}
	share := s.fairShare(1)
	meanFactor := s.interDist.Mean()
	est := 0.0
	for _, p := range j.Phases {
		waves := math.Ceil(float64(p.NumTasks) / float64(share))
		est += waves * p.WorkScale * meanFactor
	}
	return est
}

// fairShare returns the slot share of one job when extra more jobs join the
// current active set.
func (s *Simulator) fairShare(extra int) int {
	n := len(s.byDemand) + extra
	if n < 1 {
		n = 1
	}
	share := s.cl.TotalSlots() / n
	if share < 1 {
		share = 1
	}
	return share
}

// dispatch fills free slots max-min fairly: repeatedly offer a slot to the
// active job holding the fewest running copies; a job that declines (its
// policy finds nothing worth launching) is skipped for the rest of the
// round. This is the fair scheduler the paper assumes ("within the slots
// allocated to the job, typically based on fair allocations", §8).
//
// The round is allocation-free: shares come from one O(jobs) walk over the
// maintained demand index, and the most-underserved job comes from a
// reusable deficit-ordered heap — only the popped or launched-into top entry
// ever moves, so each slot costs O(log jobs) instead of a full rescan.
func (s *Simulator) dispatch() {
	s.refreshShares()
	h := s.dheap[:0]
	for _, js := range s.byDemand {
		js.declined = false
		h = append(h, js)
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownDeficit(h, i)
	}
	for s.cl.FreeSlots() > 0 {
		if len(h) == 0 {
			// Every job declined; the remaining free slots stay free.
			s.dheap = h
			return
		}
		// Most underserved job first (largest share deficit); jobs beyond
		// their share may still use leftover slots (work conservation).
		best := h[0]
		if s.tryLaunch(best) {
			// best.running grew, shrinking its deficit: restore heap order.
			siftDownDeficit(h, 0)
		} else {
			best.declined = true
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
			siftDownDeficit(h, 0)
		}
	}
	s.dheap = h
	s.preemptForFairness()
}

// refreshShares recomputes max-min fair slot shares over job demands: a job
// demanding less than the equal split keeps its demand, and the slack is
// redistributed among the bigger jobs (the water-filling allocation fair
// schedulers implement). The demand-ordered index is maintained across
// events, so this is a single O(jobs) walk with no sorting or allocation.
func (s *Simulator) refreshShares() {
	remaining := s.cl.TotalSlots()
	n := len(s.byDemand)
	for i, js := range s.byDemand {
		level := remaining / (n - i)
		give := js.demand()
		if give > level {
			give = level
		}
		js.share = give
		remaining -= give
	}
}

// deficitBetter reports whether a should be offered a slot before b: larger
// share deficit first, then fewer running copies, then lower job ID — a
// total order, so the dispatch sequence is deterministic.
func deficitBetter(a, b *jobState) bool {
	da, db := a.share-a.running, b.share-b.running
	if da != db {
		return da > db
	}
	if a.running != b.running {
		return a.running < b.running
	}
	return a.job.ID < b.job.ID
}

// siftDownDeficit restores the max-heap property of h from index i.
func siftDownDeficit(h []*jobState, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && deficitBetter(h[r], h[l]) {
			m = r
		}
		if !deficitBetter(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// preemptForFairness restores max-min fairness when the cluster is full: a
// job strictly below its fair share may take slots from jobs strictly above
// theirs, killing the over-share job's youngest copy (the least work lost —
// the rule Hadoop's fair scheduler uses). Without preemption a job arriving
// into a busy cluster waits for task completions and short deadline-bound
// jobs starve behind long copies.
func (s *Simulator) preemptForFairness() {
	for {
		// Neediest under-share job that still wants work.
		var claimant *jobState
		claimDef := 0
		for _, js := range s.active {
			if js.done || js.declined {
				continue
			}
			if def := js.share - js.running; def > claimDef ||
				(def == claimDef && def > 0 && js.job.ID < claimant.job.ID) {
				claimant, claimDef = js, def
			}
		}
		if claimant == nil {
			return
		}
		// Most over-share job to take a slot from.
		var victim *jobState
		victimExcess := 0
		for _, js := range s.active {
			if js.done {
				continue
			}
			if ex := js.running - js.share; ex > victimExcess {
				victim, victimExcess = js, ex
			}
		}
		if victim == nil {
			return
		}
		if !s.preemptYoungest(victim) {
			return
		}
		if !s.tryLaunch(claimant) {
			claimant.declined = true
			// The freed slot stays free for the next event; stop rather
			// than churn more of the victim's work.
			return
		}
	}
}

// preemptYoungest kills the victim's most recently launched copy, returning
// the task to the unscheduled pool if that was its only copy.
func (s *Simulator) preemptYoungest(victim *jobState) bool {
	if victim.phase == nil {
		return false
	}
	tb := &victim.tasks
	ti, ci := -1, -1
	for i := 0; i < victim.phase.n; i++ {
		for k, c := range tb.copies[i] {
			if ci == -1 || c.start > tb.copies[ti][ci].start {
				ti, ci = i, k
			}
		}
	}
	if ci == -1 {
		return false
	}
	s.noteUtil()
	c := tb.copies[ti][ci]
	s.eng.Cancel(c.ev)
	s.cl.Release(c.machineID)
	victim.running--
	if c.speculative {
		victim.specRun--
	}
	victim.res.Preempted++
	s.scoreCopy(c, s.eng.Now())
	tb.copies[ti] = append(tb.copies[ti][:ci], tb.copies[ti][ci+1:]...)
	if tb.best[ti] == c {
		tb.recomputeBest(ti)
	}
	s.freeCopy(c)
	s.notePreempt(victim, ti)
	return true
}

// tryLaunch asks the job's policy for a launch and executes it. Policies
// implementing spec.IncrementalPolicy select from the maintained ViewSet
// (refreshed in O(running + dirtied)); others get the from-scratch
// buildViews reference path.
func (s *Simulator) tryLaunch(js *jobState) bool {
	phase := js.phase
	if phase == nil || phase.satisfied() {
		return false
	}
	ctx := s.buildCtx(js)
	s.launchAttempts++
	var d spec.Decision
	var ok bool
	var estTNew float64
	if js.inc != nil && phase.n >= s.incMinTasks {
		vs := s.refreshViews(js)
		if vs.Len() == 0 {
			return false
		}
		d, ok = js.inc.PickIncremental(ctx, vs)
		if s.checkViews != nil {
			s.checkViews(js, ctx, vs, d, ok)
		}
		if !ok {
			return false
		}
		if d.TaskIndex >= 0 && d.TaskIndex < phase.n {
			// The estimate the policy saw, for accuracy scoring.
			estTNew = vs.At(d.TaskIndex).TNew
		}
	} else {
		views := s.buildViews(js)
		if len(views) == 0 {
			return false
		}
		d, ok = js.policy.Pick(ctx, views)
		if !ok {
			return false
		}
		// Recover the estimate the policy saw, for accuracy scoring.
		for _, v := range views {
			if v.Index == d.TaskIndex {
				estTNew = v.TNew
				break
			}
		}
	}
	if d.TaskIndex < 0 || d.TaskIndex >= phase.n {
		panic(fmt.Sprintf("sched: policy %s picked invalid task %d", js.policy.Name(), d.TaskIndex))
	}
	if js.tasks.completed[d.TaskIndex] {
		panic(fmt.Sprintf("sched: policy %s picked completed task %d", js.policy.Name(), d.TaskIndex))
	}
	s.launch(js, d.TaskIndex, d.Speculative, estTNew)
	return true
}

// launch starts one copy of task slot ti on a free slot.
func (s *Simulator) launch(js *jobState, ti int, speculative bool, estTNew float64) {
	s.noteUtil()
	m, ok := s.cl.Acquire(s.rngPlace)
	if !ok {
		panic("sched: launch without a free slot")
	}
	tb := &js.tasks
	factor := tb.nextFactor[ti]
	if factor <= 0 {
		factor = s.drawFactor(js)
	}
	tb.nextFactor[ti] = 0 // consumed
	now := s.eng.Now()
	c := s.newCopy(js, ti)
	c.machineID = m.ID
	c.start = now
	c.duration = tb.work[ti] * factor * m.Slowdown
	c.speculative = speculative
	c.tremBias = 1
	if !s.cfg.Oracle {
		c.estTNew = estTNew
		c.tremBias = s.est.SampleTRemBias()
	}
	if len(tb.copies[ti]) == 0 {
		tb.firstStart[ti] = now
	}
	tb.copies[ti] = append(tb.copies[ti], c)
	if end := c.start + c.duration; tb.best[ti] == nil || end < tb.bestEnd[ti] {
		tb.best[ti], tb.bestEnd[ti] = c, end
	}
	js.running++
	js.res.Launched++
	if speculative {
		js.specRun++
		js.res.Speculative++
	}
	c.ev = s.eng.At(now+c.duration, c.fn)
	s.noteLaunch(js, ti)
}

// drawFactor samples a duration factor from the phase-appropriate tail.
func (s *Simulator) drawFactor(js *jobState) float64 {
	if js.phaseIdx == 0 {
		return s.inputDist.Sample(s.rngDur)
	}
	return s.interDist.Sample(s.rngDur)
}

// buildCtx assembles the policy context for the job's current phase.
func (s *Simulator) buildCtx(js *jobState) spec.Ctx {
	now := s.eng.Now()
	ctx := spec.Ctx{
		TotalTasks:        js.phase.n,
		TargetTasks:       js.phase.target,
		CompletedTasks:    js.phase.completed,
		WaveWidth:         s.fairShare(0),
		RunningCopies:     js.running,
		SpeculativeCopies: js.specRun,
		Utilization:       s.cl.Utilization(),
		Now:               now,
	}
	if s.cfg.Oracle {
		ctx.EstimationAccuracy = 1
	} else {
		ctx.EstimationAccuracy = s.est.Accuracy()
	}
	if js.phaseIdx == 0 && js.job.Bound.Kind == task.DeadlineBound {
		ctx.Kind = task.DeadlineBound
		ctx.RemainingTime = js.inputDeadlineAbs - now
		if ctx.RemainingTime < 0 {
			ctx.RemainingTime = 0
		}
	} else {
		// Error-bound input phases and every intermediate phase: complete
		// `target` tasks as fast as possible.
		ctx.Kind = task.ErrorBound
	}
	return ctx
}

// buildViews produces the policy's TaskViews for unfinished tasks of the
// current phase from scratch — the reference path the incremental views
// (views.go) are held equivalent to. In oracle mode the views carry
// ground truth (exact remaining time, the exact duration the next copy
// would have); otherwise they carry estimator output, and the estimates
// are remembered for accuracy scoring.
func (s *Simulator) buildViews(js *jobState) []spec.TaskView {
	now := s.eng.Now()
	tb := &js.tasks
	s.viewBuf = s.viewBuf[:0]
	for i := 0; i < js.phase.n; i++ {
		if tb.completed[i] {
			continue
		}
		v := s.taskView(js, i, now, true)
		if !s.cfg.Oracle && v.Speculable {
			if bc := tb.best[i]; bc.pendN < len(bc.pendTRem) {
				bc.pendTRem[bc.pendN] = pend{est: v.TRem, at: now}
				bc.pendN++
			}
		}
		s.viewBuf = append(s.viewBuf, v)
	}
	s.viewTouches += uint64(len(s.viewBuf))
	return s.viewBuf
}

// onCopyComplete handles a copy finishing: the task completes, sibling
// copies are killed ("the earliest among the original and speculative
// copies is picked while the rest are killed"), and the job advances.
func (s *Simulator) onCopyComplete(js *jobState, ti int, c *copyRun) {
	s.noteUtil()
	now := s.eng.Now()
	s.cl.Release(c.machineID)
	js.running--
	if c.speculative {
		js.specRun--
	}
	s.scoreCopy(c, now)
	tb := &js.tasks
	if tb.completed[ti] {
		// Sibling kills cancel events, so this cannot happen; keep the
		// guard cheap rather than crash a long experiment.
		s.dispatch()
		return
	}
	tb.completed[ti] = true
	tb.span[ti] = now - tb.firstStart[ti]
	s.noteComplete(js, ti)
	s.est.ObserveCompletion(c.duration / tb.work[ti])
	// Kill the losing copies.
	for _, o := range tb.copies[ti] {
		if o == c {
			continue
		}
		s.eng.Cancel(o.ev)
		s.cl.Release(o.machineID)
		js.running--
		if o.speculative {
			js.specRun--
		}
		js.res.Killed++
		s.scoreCopy(o, now)
	}
	for _, o := range tb.copies[ti] {
		s.freeCopy(o)
	}
	tb.copies[ti] = tb.copies[ti][:0]
	tb.best[ti] = nil
	js.phase.completed++
	s.repositionDemand(js)
	if js.phaseIdx == 0 {
		if po, ok := js.policy.(spec.ProgressObserver); ok {
			po.OnTaskComplete(js.phase.completed, now-js.job.Arrival)
		}
	}
	if js.phase.satisfied() {
		s.finishPhase(js)
	}
	s.dispatch()
}

// scoreCopy settles the copy's recorded estimates against ground truth.
func (s *Simulator) scoreCopy(c *copyRun, now float64) {
	if s.cfg.Oracle {
		return
	}
	if c.estTNew > 0 {
		s.est.RecordTNew(c.estTNew, c.duration)
	}
	for i := 0; i < c.pendN; i++ {
		p := c.pendTRem[i]
		actual := c.duration - (p.at - c.start)
		if actual > 0 {
			s.est.RecordTRem(p.est, actual)
		}
	}
	c.pendN = 0
}

// onInputDeadline freezes a deadline job's input phase: accuracy is locked
// to the completed fraction and remaining input copies are killed.
func (s *Simulator) onInputDeadline(js *jobState) {
	js.deadlineEv = nil
	if js.done || js.phaseIdx > 0 {
		return
	}
	s.finishPhase(js)
	s.dispatch()
}

// finishPhase closes the current phase, killing its running copies, and
// advances to the next phase or completes the job.
func (s *Simulator) finishPhase(js *jobState) {
	s.noteUtil()
	now := s.eng.Now()
	// The phase's candidate views die with it; the next phase's are built
	// lazily at its first launch attempt.
	js.jv.invalidate()
	// Kill every copy still running in this phase (unneeded work).
	tb := &js.tasks
	for i := 0; i < js.phase.n; i++ {
		for _, c := range tb.copies[i] {
			s.eng.Cancel(c.ev)
			s.cl.Release(c.machineID)
			js.running--
			if c.speculative {
				js.specRun--
			}
			js.res.Killed++
			s.scoreCopy(c, now)
			s.freeCopy(c)
		}
		tb.copies[i] = tb.copies[i][:0]
		tb.best[i] = nil
	}
	if js.phaseIdx == 0 {
		js.inputEnd = now
		total := js.phase.n
		js.res.Accuracy = float64(js.phase.completed) / float64(total)
		js.res.InputDuration = now - js.job.Arrival
		js.res.StragglerRatio = s.stragglerRatio(js)
		if js.deadlineEv != nil {
			s.eng.Cancel(js.deadlineEv)
			js.deadlineEv = nil
		}
	}
	// Advance.
	if js.phaseIdx >= len(js.job.Phases) {
		s.finishJob(js)
		return
	}
	p := js.job.Phases[js.phaseIdx]
	js.phaseIdx++
	js.tasks.reset(p.NumTasks)
	for i := range js.tasks.work {
		js.tasks.work[i] = p.WorkScale
	}
	js.phaseBuf = phaseRun{n: p.NumTasks, target: p.NumTasks}
	js.phase = &js.phaseBuf
	s.repositionDemand(js)
}

// stragglerRatio returns max/median of work-normalized completed task spans
// of the job's current phase.
func (s *Simulator) stragglerRatio(js *jobState) float64 {
	tb := &js.tasks
	spans := make([]float64, 0, js.phase.n)
	for i := 0; i < js.phase.n; i++ {
		if tb.completed[i] && tb.work[i] > 0 {
			spans = append(spans, tb.span[i]/tb.work[i])
		}
	}
	if len(spans) < 2 {
		return 1
	}
	med := dist.Median(spans)
	if med <= 0 {
		return 1
	}
	return dist.Max(spans) / med
}

// maxInterObs caps the per-DAG-length intermediate-span observations that
// feed intermediateEstimate: the median of thousands of samples no longer
// moves, and without a cap a million-job DAG replay would grow the list
// forever.
const maxInterObs = 4096

// finishJob records the result and notifies learning policies.
func (s *Simulator) finishJob(js *jobState) {
	now := s.eng.Now()
	js.done = true
	js.phase = nil
	s.removeDemand(js)
	js.res.Duration = now - js.job.Arrival
	if dl := js.job.DAGLength(); dl > 1 && len(s.interObs[dl]) < maxInterObs {
		s.interObs[dl] = append(s.interObs[dl], now-js.inputEnd)
		delete(s.interMed, dl)
	}
	if ob, ok := js.policy.(spec.Observer); ok {
		ctx := spec.Ctx{
			Kind:               js.job.Bound.Kind,
			TotalTasks:         js.job.NumTasks(),
			WaveWidth:          s.fairShare(0),
			Utilization:        s.cl.Utilization(),
			EstimationAccuracy: s.est.Accuracy(),
			Now:                now,
		}
		if s.cfg.Oracle {
			ctx.EstimationAccuracy = 1
		}
		ob.OnJobEnd(ctx, js.res.Accuracy, js.res.InputDuration)
	}
	if s.onResult != nil {
		s.onResult(js.res)
	} else {
		s.results = append(s.results, js.res)
	}
	// Compact the active list.
	keep := s.active[:0]
	for _, a := range s.active {
		if !a.done {
			keep = append(keep, a)
		}
	}
	s.active = keep
	// Nothing reads js.job past this point: recycle it.
	s.releaseJob(js)
	// Nor the runtime state — recycle that too. Every copy is dead (freed
	// to the copy pool), the deadline event is cancelled, and js left the
	// active and demand indexes above.
	s.freeJobState(js)
}
