package sched

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// benchConfig is the cluster used by the dispatch benchmarks: big enough for
// real multi-job fair sharing, small enough that one full simulation is a
// sensible benchmark iteration.
func benchConfig(seed int64) Config {
	return Config{
		Cluster:          cluster.Config{Machines: 40, SlotsPerMachine: 2, HeterogeneitySigma: 0.2},
		Estimator:        estimate.Config{TRemNoise: 0.4, TNewNoise: 0.15, Prior: 1},
		DurationBeta:     1.259,
		DurationCap:      30,
		TailFrac:         0.25,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
		Seed:             seed,
	}
}

// benchJobs builds a deterministic mixed workload: overlapping jobs of
// varying size under all three bound kinds, so the dispatch path sees the
// multi-job share computation, speculation, deadlines and early exits.
func benchJobs(n int) []*task.Job {
	jobs := make([]*task.Job, 0, n)
	for i := 0; i < n; i++ {
		size := 20 + (i%8)*25
		var bound task.Bound
		switch i % 3 {
		case 0:
			bound = task.Exact()
		case 1:
			bound = task.NewError(0.1)
		default:
			bound = task.NewDeadline(25)
		}
		jobs = append(jobs, uniformJob(i, size, bound, float64(i)*2.5))
	}
	return jobs
}

// benchStream feeds the bench workload through the streaming admission
// path (without pooling: the slice owns the jobs).
type benchStream struct{ jobs []*task.Job }

func (s *benchStream) Next() (*task.Job, bool) {
	if len(s.jobs) == 0 {
		return nil, false
	}
	j := s.jobs[0]
	s.jobs = s.jobs[1:]
	return j, true
}

// runSimBench runs full simulations of the bench workload under one policy
// and reports per-event wall clock, per-event heap allocations and
// task-view touches per launch attempt — the numbers BENCH_sim.json tracks
// across PRs. With stream set, jobs are injected through RunSource instead
// of the materializing Run.
func runSimBench(b *testing.B, stream, forceInc bool, q simevent.QueueKind, factory func() spec.Factory) {
	b.Helper()
	jobs := benchJobs(60)
	var events, allocs, touches, attempts uint64
	var nanos int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(1)
		cfg.EventQueue = q
		s, err := New(cfg, factory())
		if err != nil {
			b.Fatal(err)
		}
		if forceInc {
			s.incMinTasks = 0
		}
		run := func() (*RunStats, error) { return s.Run(jobs) }
		if stream {
			src := &benchStream{jobs: jobs}
			run = func() (*RunStats, error) { return s.RunSource(src) }
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		t0 := time.Now()
		stats, err := run()
		nanos += time.Since(t0).Nanoseconds()
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
		events += stats.Events
		allocs += m1.Mallocs - m0.Mallocs
		to, _, at := s.TouchStats()
		touches += to
		attempts += at
	}
	if events > 0 {
		b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
		b.ReportMetric(float64(nanos)/float64(events), "ns/event")
	}
	if attempts > 0 {
		b.ReportMetric(float64(touches)/float64(attempts), "touches/attempt")
	}
}

// BenchmarkSimulatorQuick is the macro benchmark of the dispatch hot path:
// one iteration simulates the full mixed workload end to end. The policy
// sub-benchmarks cover the paper's main contenders; "late" additionally
// exercises the percentile machinery of the LATE baseline. The workload's
// jobs are all below the incremental-views size crossover, so the plain
// variants exercise the production default (the rebuild walk at these
// sizes); the "-inc" variants force the incrementally maintained ViewSet
// for every phase — the small-job end of the incremental-vs-rebuild
// comparison BENCH_sim.json records (BenchmarkLargeJobReplay is the
// large-job end, where the incremental path wins by an order of
// magnitude).
func BenchmarkSimulatorQuick(b *testing.B) {
	b.Run("gs", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
	b.Run("ras", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewRAS()) })
	})
	b.Run("late", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewLATE()) })
	})
	// The streaming admission path (RunSource) on the same workload: one
	// reusable arrival closure instead of one closure per job.
	b.Run("gs-stream", func(b *testing.B) {
		runSimBench(b, true, false, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
	b.Run("gs-inc", func(b *testing.B) {
		runSimBench(b, false, true, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
	b.Run("ras-inc", func(b *testing.B) {
		runSimBench(b, false, true, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewRAS()) })
	})
	b.Run("late-inc", func(b *testing.B) {
		runSimBench(b, false, true, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewLATE()) })
	})
	// The heap reference queue on the gs workload: the same simulation
	// byte for byte (TestReplayQueueKindInvariance), so the ns/event gap
	// against "gs" is purely the queue implementation.
	b.Run("gs-heap", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Heap, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
	// The learning policy itself, under both learner stores. Record and
	// Aggregate ride the job lifecycle (sample completions, switch-point
	// evaluations), not the per-event hot path, so both variants should
	// track the stateless baselines; the gap between them is the price of
	// mergeable (partition-invariant) learning.
	b.Run("grass", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Calendar, func() spec.Factory { return benchGrassFactory(core.LearnerRing) })
	})
	b.Run("grass-sketch", func(b *testing.B) {
		runSimBench(b, false, false, simevent.Calendar, func() spec.Factory { return benchGrassFactory(core.LearnerSketch) })
	})
}

// BenchmarkSimulatorFaults prices the fault-injection path: the same full
// mixed-workload simulation as BenchmarkSimulatorQuick, off versus under the
// rack-storm scenario, for the cheapest policy (nospec) and the learning one
// (grass). The "off" variants must match the BenchmarkSimulatorQuick
// baselines — faults disabled means no injector is even constructed, so the
// hot path pays only a nil check (scripts/perfwall.sh walls the byte-level
// half of that claim; this benchmark tracks the per-event cost). The storm
// variants price an active schedule: extra AtLast events, slowdown-factor
// rewrites and the respeculation they trigger.
func BenchmarkSimulatorFaults(b *testing.B) {
	storm := func() fault.Config {
		fc, err := fault.Scenario("rack-storm")
		if err != nil {
			b.Fatal(err)
		}
		return fc
	}
	run := func(b *testing.B, fc fault.Config, factory func() spec.Factory) {
		b.Helper()
		jobs := benchJobs(60)
		var events, allocs uint64
		var nanos int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := benchConfig(1)
			cfg.Faults = fc
			s, err := New(cfg, factory())
			if err != nil {
				b.Fatal(err)
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.StartTimer()
			t0 := time.Now()
			stats, err := s.Run(jobs)
			nanos += time.Since(t0).Nanoseconds()
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			b.StartTimer()
			if err != nil {
				b.Fatal(err)
			}
			if fc.Enabled() && stats.Faults.Storms == 0 {
				b.Fatal("storm scenario fired no storms")
			}
			events += stats.Events
			allocs += m1.Mallocs - m0.Mallocs
		}
		if events > 0 {
			b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
			b.ReportMetric(float64(nanos)/float64(events), "ns/event")
		}
	}
	b.Run("nospec-off", func(b *testing.B) {
		run(b, fault.Config{}, func() spec.Factory { return spec.Stateless(spec.NoSpec{}) })
	})
	b.Run("nospec-storm", func(b *testing.B) {
		run(b, storm(), func() spec.Factory { return spec.Stateless(spec.NoSpec{}) })
	})
	b.Run("grass-off", func(b *testing.B) {
		run(b, fault.Config{}, func() spec.Factory { return benchGrassFactory(core.LearnerRing) })
	})
	b.Run("grass-storm", func(b *testing.B) {
		run(b, storm(), func() spec.Factory { return benchGrassFactory(core.LearnerRing) })
	})
}

// benchGrassFactory builds a GRASS factory for the bench workload with the
// given learner implementation.
func benchGrassFactory(k core.LearnerKind) spec.Factory {
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.Learner = k
	f, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// BenchmarkDispatch is the micro benchmark of one dispatch round: the cluster
// is saturated by evenly matched jobs, so dispatch computes the fair-share
// table and scans for an underserved job but launches nothing — isolating
// the round bookkeeping that has been incremental and allocation-free
// since PR 2. (Launch-attempt view costs are covered by BenchmarkBuildViews
// and BenchmarkLargeJobReplay: a saturated round never reaches tryLaunch.)
func BenchmarkDispatch(b *testing.B) {
	for _, njobs := range []int{4, 16, 64} {
		b.Run(map[int]string{4: "jobs=4", 16: "jobs=16", 64: "jobs=64"}[njobs], func(b *testing.B) {
			s, err := New(benchConfig(1), spec.Stateless(spec.NoSpec{}))
			if err != nil {
				b.Fatal(err)
			}
			// Admit njobs oversized jobs at t=0: the launch loop inside admit
			// saturates the cluster and every job ends at exactly its share.
			for i := 0; i < njobs; i++ {
				s.admit(uniformJob(i, 400, task.Exact(), 0))
			}
			if s.cl.FreeSlots() != 0 {
				b.Fatalf("cluster not saturated: %d free", s.cl.FreeSlots())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.dispatch()
			}
		})
	}
}

// BenchmarkLargeJobReplay is the large-job replay profile: a handful of
// overlapping 2000-task jobs simulated end to end under GS, where the
// pre-incremental path rescanned thousands of incomplete tasks on every
// launch attempt. touches/attempt is the headline comparison BENCH_sim.json
// records — the incremental path must touch at least 3x fewer views per
// attempt than the rebuild path (in practice the gap is far larger: an
// attempt touches the running set, not the whole job).
func BenchmarkLargeJobReplay(b *testing.B) {
	jobs := func() []*task.Job {
		return []*task.Job{
			uniformJob(0, 2000, task.Exact(), 0),
			uniformJob(1, 2000, task.NewError(0.1), 5),
			uniformJob(2, 2000, task.NewError(0.05), 10),
			uniformJob(3, 2000, task.Exact(), 15),
		}
	}
	run := func(b *testing.B, q simevent.QueueKind, factory func() spec.Factory) {
		b.Helper()
		var touches, rescales, attempts, events uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := benchConfig(1)
			cfg.EventQueue = q
			s, err := New(cfg, factory())
			if err != nil {
				b.Fatal(err)
			}
			js := jobs()
			b.StartTimer()
			stats, err := s.Run(js)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			to, re, at := s.TouchStats()
			touches += to
			rescales += re
			attempts += at
			events += stats.Events
			b.StartTimer()
		}
		if attempts > 0 {
			b.ReportMetric(float64(touches)/float64(attempts), "touches/attempt")
			b.ReportMetric(float64(rescales)/float64(attempts), "rescales/attempt")
		}
		if events > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
		}
	}
	b.Run("incremental", func(b *testing.B) {
		run(b, simevent.Calendar, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
	b.Run("rebuild", func(b *testing.B) {
		run(b, simevent.Calendar, func() spec.Factory { return rebuildOnly{spec.Stateless(spec.NewGS())} })
	})
	// The same replay on the heap reference queue: large jobs keep
	// thousands of pending events queued, the regime the calendar queue's
	// O(1) amortized operations target.
	b.Run("incremental-heap", func(b *testing.B) {
		run(b, simevent.Heap, func() spec.Factory { return spec.Stateless(spec.NewGS()) })
	})
}

// BenchmarkShardedReplay is the shard-scaling benchmark: a mixed-bound
// streamed trace partitioned 4 ways (the model is FIXED across
// sub-benchmarks — every workers= variant computes byte-identical
// results) and executed with 1, 2 and 4 worker goroutines. On a
// multi-core machine ns/op falls toward max(partition wall); the
// "balance" metric (Σ partition walls / max partition wall) is the
// machine-independent ceiling on that speedup — ≥2.5 at 4 partitions is
// the scaling sanity floor scripts/perfwall.sh walls, and the figure that
// bounds what -shards 4 buys on the 1M-job replay (BENCH_sim.json PR-5).
func BenchmarkShardedReplay(b *testing.B) {
	const parts = 4
	cfg := benchConfig(1)
	tc := trace.DefaultConfig(trace.Facebook, trace.Hadoop, trace.MixedBound)
	tc.Jobs = 2000
	tc.Seed = 1
	tc.Slots = cfg.Cluster.Machines * cfg.Cluster.SlotsPerMachine
	tc.Load = 0.7
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var events uint64
			var sumWall, maxWallSum time.Duration
			walls := make([]time.Duration, parts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := RunSharded(ShardedRun{
					Config:  cfg,
					Parts:   parts,
					Workers: workers,
					NewFactory: func(int64) (spec.Factory, error) {
						return spec.Stateless(spec.NewGS()), nil
					},
					NewSource: func(p int) (Source, error) { return trace.NewShardStream(tc, p, parts) },
					Walls:     walls,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += stats.Events
				var max time.Duration
				for _, w := range walls {
					sumWall += w
					if w > max {
						max = w
					}
				}
				maxWallSum += max
			}
			if events > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			}
			if maxWallSum > 0 {
				b.ReportMetric(float64(sumWall)/float64(maxWallSum), "balance")
			}
		})
	}
}

// BenchmarkBuildViews measures the per-launch-attempt view cost for one
// mid-flight job: the from-scratch rebuild walks all 300 tasks, the
// incremental refresh only the running set (nothing is dirty between
// attempts at one timestamp — the steady state of a dispatch round).
func BenchmarkBuildViews(b *testing.B) {
	setup := func(b *testing.B) (*Simulator, *jobState) {
		s, err := New(benchConfig(1), spec.Stateless(spec.NoSpec{}))
		if err != nil {
			b.Fatal(err)
		}
		s.admit(uniformJob(0, 300, task.Exact(), 0))
		return s, s.active[0]
	}
	b.Run("rebuild", func(b *testing.B) {
		s, js := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.buildViews(js)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		s, js := setup(b)
		s.refreshViews(js) // build once; iterations measure the steady state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.refreshViews(js)
		}
	})
}
