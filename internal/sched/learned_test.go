package sched

import (
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// sketchGrassFactory builds a partition-seeded GRASS factory using the
// mergeable sketch learner — the configuration whose learned state folds
// across partitions.
func sketchGrassFactory(seed int64) (spec.Factory, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Learner = core.LearnerSketch
	return core.New(cfg)
}

// learnedShardedRun executes one sharded run capturing the merged learned
// state alongside the stats.
func learnedShardedRun(t *testing.T, cfg Config, tc trace.Config, parts, workers int, seed spec.LearnedState) (*RunStats, spec.LearnedState) {
	t.Helper()
	var state spec.LearnedState
	stats, err := RunSharded(ShardedRun{
		Config:     cfg,
		Parts:      parts,
		Workers:    workers,
		NewFactory: sketchGrassFactory,
		NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, parts) },
		Learned:    seed,
		OnLearned:  func(s spec.LearnedState) { state = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, state
}

// TestShardedLearnedWorkerInvariance: the merged learned state, like the
// merged stats, is a pure function of the model (Config, Seed, Parts) —
// byte-identical for any worker count.
func TestShardedLearnedWorkerInvariance(t *testing.T) {
	cfg := shardTestConfig(11, false)
	tc := shardTestTrace(120, 23, false)
	const parts = 4
	refStats, refState := learnedShardedRun(t, cfg, tc, parts, 1, nil)
	if refState == nil {
		t.Fatal("sketch-learner run exported no learned state")
	}
	for _, workers := range []int{2, 4} {
		stats, state := learnedShardedRun(t, cfg, tc, parts, workers, nil)
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("workers=%d changed merged stats", workers)
		}
		if !reflect.DeepEqual(state, refState) {
			t.Errorf("workers=%d changed merged learned state", workers)
		}
	}
}

// TestShardedLearnedMatchesComposed: RunSharded's merged learned state is
// DeepEqual to a hand-composed sequence of plain-engine runs — one per
// partition, states exported and folded by MergeLearnedStates in
// ascending partition order.
func TestShardedLearnedMatchesComposed(t *testing.T) {
	cfg := shardTestConfig(7, false)
	tc := shardTestTrace(120, 31, false)
	const parts = 3
	states := make([]spec.LearnedState, parts)
	for p := 0; p < parts; p++ {
		factory, err := sketchGrassFactory(ShardSeed(cfg.Seed, p, parts))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(ShardConfig(cfg, p, parts), factory)
		if err != nil {
			t.Fatal(err)
		}
		src, err := trace.NewShardStream(tc, p, parts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.RunSource(src); err != nil {
			t.Fatal(err)
		}
		states[p] = exportLearned(factory)
	}
	want := MergeLearnedStates(states)
	_, got := learnedShardedRun(t, cfg, tc, parts, 2, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded learned state diverges from composed plain-engine reference")
	}
}

// TestShardedLearnedSeedEpoch: seeding a run with previously merged state
// (the "next epoch") is deterministic for any worker count, and the
// epoch-2 export is a DELTA — this run's own sample jobs only, the same
// count as an unseeded run, never the seeded base re-exported (which a
// P-way merge would otherwise fold P times).
func TestShardedLearnedSeedEpoch(t *testing.T) {
	cfg := shardTestConfig(5, false)
	tc := shardTestTrace(120, 17, false)
	const parts = 2
	_, epoch1 := learnedShardedRun(t, cfg, tc, parts, parts, nil)
	if epoch1 == nil {
		t.Fatal("epoch 1 exported no state")
	}
	statsA, epoch2A := learnedShardedRun(t, cfg, tc, parts, 1, epoch1)
	statsB, epoch2B := learnedShardedRun(t, cfg, tc, parts, parts, epoch1)
	if !reflect.DeepEqual(statsA, statsB) || !reflect.DeepEqual(epoch2A, epoch2B) {
		t.Fatal("seeded epoch not deterministic across worker counts")
	}
	samples := func(s spec.LearnedState) int {
		l := s.(*core.SketchLearner)
		total := 0
		for _, bin := range []task.SizeBin{task.Small, task.Medium, task.Large} {
			total += l.Samples(bin, 0) + l.Samples(bin, 1)
		}
		return total
	}
	// The ξ-perturbation draws are seed-driven, so a seeded replay of the
	// same trace records the same NUMBER of sample jobs; exporting more
	// would mean the seeded base leaked into the export.
	if n1, n2 := samples(epoch1), samples(epoch2A); n2 != n1 {
		t.Errorf("epoch 2 exported %d samples, want the delta %d (seeded base must not re-export)", n2, n1)
	}
	// Seeding must not mutate the caller's state: epoch1 still matches a
	// fresh epoch-1 run.
	_, epoch1Again := learnedShardedRun(t, cfg, tc, parts, parts, nil)
	if !reflect.DeepEqual(epoch1, epoch1Again) {
		t.Fatal("seeding mutated the seeded state")
	}
}

// TestShardedLearnedPlainPath: Parts == 1 rides the plain-engine
// reduction and still exports state; non-mergeable learners (the default
// ring store) export nil.
func TestShardedLearnedPlainPath(t *testing.T) {
	cfg := shardTestConfig(3, false)
	tc := shardTestTrace(60, 13, false)
	_, state := learnedShardedRun(t, cfg, tc, 1, 1, nil)
	if state == nil {
		t.Fatal("plain-path sketch run exported no state")
	}
	var ringState spec.LearnedState = state // sentinel, must be overwritten with nil
	_, err := RunSharded(ShardedRun{
		Config:     cfg,
		Parts:      1,
		NewFactory: shardFactory("grass"),
		NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, 1) },
		OnLearned:  func(s spec.LearnedState) { ringState = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ringState != nil {
		t.Fatal("ring-learner run must export nil learned state")
	}
}
