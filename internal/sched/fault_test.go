package sched

import (
	"math"
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/trace"
)

// faultTestConfig is shardTestConfig with a fault schedule attached. The
// scenario presets are stated against the default 200-machine cluster; on
// the harness's 30 machines the same gaps give a proportionally harsher
// cluster, which is exactly what a fault test wants.
func faultTestConfig(t *testing.T, seed int64, scenario string) Config {
	t.Helper()
	cfg := shardTestConfig(seed, false)
	fc, err := fault.Scenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fc
	return cfg
}

// TestFaultScenariosShardedMatchUnsharded extends the sharded differential
// harness to every fault scenario: RunSharded under faults must be
// DeepEqual — FaultStats included — to the composed plain-engine reference
// for any worker count, and Parts=1 IS the unsharded engine. Because the
// reference and the sharded run are fully independent simulations, passing
// also proves each scenario replay is rerun-invariant.
func TestFaultScenariosShardedMatchUnsharded(t *testing.T) {
	for _, scenario := range fault.Scenarios() {
		for _, pol := range []string{"gs", "nospec"} {
			t.Run(scenario+"/"+pol, func(t *testing.T) {
				cfg := faultTestConfig(t, 23, scenario)
				tc := shardTestTrace(60, 23, false)
				mk := shardFactory(pol)
				for _, parts := range []int{1, 3} {
					ref := composedReference(t, cfg, tc, parts, mk)
					if ref.Faults == (FaultStats{}) {
						t.Fatalf("parts=%d: scenario %q applied no faults", parts, scenario)
					}
					for _, workers := range []int{1, 3} {
						got := shardedRun(t, cfg, tc, parts, workers, mk)
						if !reflect.DeepEqual(got, ref) {
							t.Fatalf("parts=%d workers=%d: faulted sharded RunStats diverged from the composed plain engine\nsharded: %+v\nplain:   %+v",
								parts, workers, got, ref)
						}
					}
				}
			})
		}
	}
}

// TestFaultRunMatchesRunSource: the fault timeline must be identical under
// materialized (Run) and streamed (RunSource) admission — the arrivalsQueued
// bookkeeping both modes feed the dormancy predicate must agree at every
// instant, or the idle checks land differently and the timelines fork.
func TestFaultRunMatchesRunSource(t *testing.T) {
	for _, scenario := range []string{"crashy", "overload-mixed"} {
		cfg := faultTestConfig(t, 29, scenario)
		tc := shardTestTrace(60, 29, false)
		jobs, err := trace.Generate(tc)
		if err != nil {
			t.Fatal(err)
		}
		simA, err := New(cfg, policyUnderTest(t, "gs"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := simA.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		simB, err := New(cfg, policyUnderTest(t, "gs"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := simB.RunSource(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streamed fault run differs from materialized\n got: %+v\nwant: %+v", scenario, got, want)
		}
	}
}

// TestCrashAccounting: under the crashy scenario every applied crash pairs
// with exactly one restore, crash-killed copies are attributed to Lost (not
// Preempted or Killed) and sum to the cluster-wide LostCopies, and — since
// paired end events always fire — the run ends with every slot free.
func TestCrashAccounting(t *testing.T) {
	cfg := faultTestConfig(t, 31, "crashy")
	tc := shardTestTrace(80, 31, false)
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, policyUnderTest(t, "gs"))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Faults
	if f.Crashes == 0 {
		t.Fatal("crashy scenario applied no crashes")
	}
	if f.Restores != f.Crashes {
		t.Fatalf("%d crashes but %d restores — a crashed machine never came back", f.Crashes, f.Restores)
	}
	lost := 0
	for _, r := range stats.Results {
		lost += r.Lost
	}
	if uint64(lost) != f.LostCopies {
		t.Fatalf("per-job Lost sums to %d, cluster-wide LostCopies is %d", lost, f.LostCopies)
	}
	if f.LostCopies == 0 {
		t.Fatal("no running copy was ever crash-killed — the scenario is not exercising lost work")
	}
	if len(stats.Results) != tc.Jobs {
		t.Fatalf("finished %d of %d jobs", len(stats.Results), tc.Jobs)
	}
	total := cfg.Cluster.Machines * cfg.Cluster.SlotsPerMachine
	if got := sim.cl.FreeSlots(); got != total {
		t.Fatalf("run ended with %d of %d slots free — revoked capacity leaked", got, total)
	}
	for id := 0; id < cfg.Cluster.Machines; id++ {
		if sim.cl.Down(id) {
			t.Fatalf("machine %d still down after the run", id)
		}
	}
}

// TestStormAccounting: rack storms apply and always revert — after the run
// every machine's dynamic factor is back to 1 — and the stormed timeline
// diverges from the benign one.
func TestStormAccounting(t *testing.T) {
	cfg := faultTestConfig(t, 37, "rack-storm")
	tc := shardTestTrace(80, 37, false)
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, policyUnderTest(t, "gs"))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults.Storms == 0 {
		t.Fatal("rack-storm scenario applied no storms")
	}
	for id := 0; id < cfg.Cluster.Machines; id++ {
		if f := sim.cl.Factor(id); f != 1 {
			t.Fatalf("machine %d still carries storm factor %v after the run", id, f)
		}
	}
	benign := cfg
	benign.Faults = fault.Config{}
	jobs2, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := New(benign, policyUnderTest(t, "gs"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := simB.Run(jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Faults != (FaultStats{}) {
		t.Fatalf("benign run reports fault stats: %+v", ref.Faults)
	}
	if reflect.DeepEqual(stats.Results, ref.Results) {
		t.Fatal("storms changed nothing — the stormed run matches the benign run")
	}
}

// TestInterferenceAccounting: bursts seize only free slots, never kill, and
// every seized slot is returned by the burst end (or parked by a crash), so
// the run ends fully free.
func TestInterferenceAccounting(t *testing.T) {
	cfg := faultTestConfig(t, 41, "contended")
	tc := shardTestTrace(80, 41, false)
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cfg, policyUnderTest(t, "gs"))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Faults
	if f.Bursts == 0 || f.InterferedSlots == 0 {
		t.Fatalf("contended scenario applied nothing: %+v", f)
	}
	if f.LostCopies != 0 {
		t.Fatalf("interference killed %d copies — it must only contend for free slots", f.LostCopies)
	}
	total := cfg.Cluster.Machines * cfg.Cluster.SlotsPerMachine
	if got := sim.cl.FreeSlots(); got != total {
		t.Fatalf("run ended with %d of %d slots free — a burst never released", got, total)
	}
}

// TestBenignRunBuildsNoInjector: the zero fault schedule is zero-cost by
// construction — New builds no injector at all, and the run reports zero
// fault stats. (The byte-identity of benign runs with the feature compiled
// in is pinned by the exp goldens and the perfwall allocs/event gates.)
func TestBenignRunBuildsNoInjector(t *testing.T) {
	cfg := shardTestConfig(43, false)
	sim, err := New(cfg, policyUnderTest(t, "gs"))
	if err != nil {
		t.Fatal(err)
	}
	if sim.flt != nil {
		t.Fatal("zero fault schedule built an injector")
	}
}

// TestShardConfigFaultScaling: ShardConfig scales the fault channels by the
// partition's machine share using the PRE-SPLIT machine total, and a
// disabled schedule passes through untouched.
func TestShardConfigFaultScaling(t *testing.T) {
	cfg := faultTestConfig(t, 47, "overload-mixed")
	var sumInv float64
	for p := 0; p < 4; p++ {
		sub := ShardConfig(cfg, p, 4)
		// Each partition's crash rate is 1/CrashEvery; the partitions must
		// tile the cluster-wide rate exactly.
		sumInv += 1 / sub.Faults.CrashEvery
		if sub.Faults.CrashDowntime != cfg.Faults.CrashDowntime {
			t.Fatalf("partition %d scaled an intensive field: %+v", p, sub.Faults)
		}
		wantEvery := cfg.Faults.CrashEvery * float64(cfg.Cluster.Machines) / float64(sub.Cluster.Machines)
		if math.Abs(sub.Faults.CrashEvery-wantEvery) > 1e-9 {
			t.Fatalf("partition %d: CrashEvery %v, want %v", p, sub.Faults.CrashEvery, wantEvery)
		}
	}
	if math.Abs(sumInv-1/cfg.Faults.CrashEvery) > 1e-9 {
		t.Fatalf("partition crash rates sum to %v, want %v", sumInv, 1/cfg.Faults.CrashEvery)
	}
	plain := shardTestConfig(47, false)
	sub := ShardConfig(plain, 1, 3)
	if sub.Faults != (fault.Config{}) {
		t.Fatalf("disabled schedule changed under ShardConfig: %+v", sub.Faults)
	}
}

// TestPartitionSlowdownDeterminism: a partition's machine slowdown vector is
// a pure function of (Config, part, parts) — rebuild the same partition and
// the heterogeneity draw is identical; different partitions draw different
// vectors (their cluster RNGs are independent substreams).
func TestPartitionSlowdownDeterminism(t *testing.T) {
	cfg := shardTestConfig(53, false)
	slowdowns := func(part, parts int) []float64 {
		sub := ShardConfig(cfg, part, parts)
		sim, err := New(sub, policyUnderTest(t, "nospec"))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, sub.Cluster.Machines)
		for i := range out {
			out[i] = sim.cl.Machine(i).Slowdown
		}
		return out
	}
	a := slowdowns(1, 3)
	b := slowdowns(1, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rebuilding the same partition drew different machine slowdowns")
	}
	c := slowdowns(2, 3)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct partitions drew identical machine slowdowns")
	}
}

// TestConfigValidateNonFinite: every float knob of sched.Config rejects NaN
// (which passes all ordered comparisons) and infinities — the cluster-sigma
// bug class, swept across this package's own fields.
func TestConfigValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"duration beta nan", func(c *Config) { c.DurationBeta = nan }},
		{"duration beta inf", func(c *Config) { c.DurationBeta = inf }},
		{"duration cap nan", func(c *Config) { c.DurationCap = nan }},
		{"tail frac nan", func(c *Config) { c.TailFrac = nan }},
		{"tail start nan", func(c *Config) { c.TailStart = nan }},
		{"tail start inf", func(c *Config) { c.TailStart = inf }},
		{"intermediate beta nan", func(c *Config) { c.IntermediateBeta = nan }},
		{"intermediate beta inf", func(c *Config) { c.IntermediateBeta = inf }},
		{"min spec progress nan", func(c *Config) { c.MinSpecProgress = nan }},
		{"fault crash every nan", func(c *Config) { c.Faults = fault.Config{CrashEvery: nan, CrashDowntime: 1} }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultConfig()
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("non-finite configuration accepted")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
