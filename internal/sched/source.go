package sched

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/task"
)

// Source is a streaming admission source: it yields jobs one at a time in
// non-decreasing arrival order. trace.Stream implements it; so does any
// importer of a real cluster log. The simulator pulls the next job only
// when the previous one's arrival event fires, so a replay holds one
// not-yet-arrived job in memory — never the whole trace.
type Source interface {
	// Next returns the next job, or (nil, false) when the trace ends.
	Next() (*task.Job, bool)
}

// Releaser is implemented by sources that recycle finished jobs (e.g.
// trace.Stream's pool). When the admission source implements it, the
// simulator hands every job back as soon as its result is recorded, which
// keeps a replay's job memory proportional to the jobs in flight.
type Releaser interface {
	Release(*task.Job)
}

// OnResult registers fn to receive each job's result the moment the job
// finishes, instead of accumulating results in RunStats.Results. Aggregates
// (Makespan, MeanUtilization, Events, EstimatorAccuracy) are still filled
// in. This is the other half of bounded-memory replays: with a handler
// installed nothing the simulator retains grows with the trace length.
// Results arrive in completion order, not job-ID order. Must be set before
// Run/RunSource.
func (s *Simulator) OnResult(fn func(JobResult)) { s.onResult = fn }

// RunSource simulates a streamed trace to completion: each job is injected
// as an arrival event, and the next job is pulled from src only when the
// previous arrival fires. If src implements Releaser, finished jobs are
// handed back for reuse. The results are identical to materializing the
// same trace and calling Run.
//
// # Mid-stream error contract
//
// Validation happens lazily, as jobs are pulled. A job that fails
// validation (or arrives out of order) stops admission: jobs already
// admitted DRAIN TO COMPLETION, and only then does RunSource return the
// error — with nil RunStats. Side effects that already happened are not
// undone and callers must expect both:
//
//   - an installed OnResult handler has observed every job admitted before
//     the failure (a strict prefix of the trace's job set, in completion
//     order), and
//   - a Releaser source has had every one of those jobs handed back,
//     exactly once. The offending job itself is also released, exactly
//     once, before the error records — it never entered the simulation,
//     so handing its storage back cannot alias live state.
//
// A job that fails validation at the very first pull short-circuits: there
// is nothing to drain, and the error returns immediately (the offending
// job is still released). Either way the simulator must not be reused
// after an error — build a fresh one; the source's pool remains valid.
func (s *Simulator) RunSource(src Source) (*RunStats, error) {
	if src == nil {
		return nil, fmt.Errorf("sched: nil job source")
	}
	s.src = src
	s.rel, _ = src.(Releaser)
	s.prevArrival = math.Inf(-1)
	// One reusable arrival closure: the pending job rides in a field, so a
	// million-job replay schedules a million arrivals without allocating a
	// million closures.
	s.arrivalFn = func(*simevent.Engine) { s.onArrival() }
	if err := s.scheduleNextArrival(); err != nil {
		return nil, err
	}
	return s.finishRun()
}

// scheduleNextArrival pulls one job and schedules its arrival. Validation
// happens lazily, as jobs are pulled — a mid-stream error stops admission
// and surfaces once running jobs drain. A job rejected here was never
// admitted, so it is handed straight back to a recycling source: without
// that release the pooled storage of every rejected job would leak for the
// rest of the run (and the job would be the only one the source never got
// back).
func (s *Simulator) scheduleNextArrival() error {
	j, ok := s.src.Next()
	if !ok {
		return nil
	}
	if err := j.Validate(); err != nil {
		if s.rel != nil {
			s.rel.Release(j)
		}
		return err
	}
	if j.Arrival < s.prevArrival {
		err := fmt.Errorf("sched: jobs not sorted by arrival (job %d at %v after %v)", j.ID, j.Arrival, s.prevArrival)
		if s.rel != nil {
			s.rel.Release(j)
		}
		return err
	}
	s.prevArrival = j.Arrival
	s.pendingJob = j
	// AtFirst ranks the arrival ahead of same-time simulation events that
	// were enqueued before this job was even pulled — the order the
	// materializing Run (which schedules all arrivals up front) produces.
	s.arrivalsQueued++
	s.eng.AtFirst(j.Arrival, s.arrivalFn)
	return nil
}

// onArrival admits the pending job and pulls the next one. Pulling before
// admission keeps the not-yet-arrived lookahead at exactly one job; the
// tie ordering against simulation events is carried by AtFirst.
func (s *Simulator) onArrival() {
	s.arrivalsQueued--
	j := s.pendingJob
	s.pendingJob = nil
	if err := s.scheduleNextArrival(); err != nil && s.srcErr == nil {
		s.srcErr = err // stop admitting; drain what is already running
	}
	s.admit(j)
}

// releaseJob hands a finished job back to a recycling source.
func (s *Simulator) releaseJob(js *jobState) {
	if s.rel != nil {
		s.rel.Release(js.job)
		js.job = nil
	}
}
