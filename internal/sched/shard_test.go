package sched

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/trace"
)

// This file is the sharded-execution differential harness, in the mold of
// the incremental-views harness (differential_test.go): RunSharded must be
// DeepEqual to a hand-composed sequence of plain-engine runs — one per
// partition, each seeded by ShardSeed and fed its trace.NewShardStream
// residue class, merged by MergeShardStats — for every policy family, and
// its output must be byte-identical for ANY worker count. With one
// partition the reference IS today's unsharded engine on the full trace.

// shardFactory builds a partition-seeded factory for one of the seven
// policy families of diffPolicies (stateless families ignore the seed;
// GRASS derives its perturbation stream from it, like exp.NewFactory).
func shardFactory(name string) func(seed int64) (spec.Factory, error) {
	return func(seed int64) (spec.Factory, error) {
		if name != "grass" {
			for _, p := range diffPolicies {
				if p.name == name {
					return p.factory(nopTB{}), nil
				}
			}
			return nil, fmt.Errorf("unknown test policy %q", name)
		}
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		return core.New(cfg)
	}
}

// nopTB satisfies the testing.TB parameter of diffPolicies factories that
// never fail for the stateless families.
type nopTB struct{ testing.TB }

func (nopTB) Helper()               {}
func (nopTB) Fatal(...any)          { panic("unexpected factory failure") }
func (nopTB) Fatalf(string, ...any) { panic("unexpected factory failure") }

// shardTestConfig is the simulator configuration the harness partitions:
// 30 machines so 3 partitions split it evenly and 8 partitions unevenly.
func shardTestConfig(seed int64, oracleMode bool) Config {
	return Config{
		Cluster:          cluster.Config{Machines: 30, SlotsPerMachine: 2, HeterogeneitySigma: 0.2},
		Estimator:        estimate.Config{TRemNoise: 0.4, TNewNoise: 0.15, Prior: 1},
		DurationBeta:     1.259,
		DurationCap:      30,
		TailFrac:         0.25,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
		Oracle:           oracleMode,
		Seed:             seed,
	}
}

// shardTestTrace is the workload the harness replays: a mixed-bound trace
// sized to the partitioned cluster, with DAG jobs in a second variant.
func shardTestTrace(jobs int, seed int64, dag bool) trace.Config {
	tc := trace.DefaultConfig(trace.Facebook, trace.Hadoop, trace.MixedBound)
	tc.Jobs = jobs
	tc.Seed = seed
	tc.Slots = 60
	tc.Load = 0.7
	if dag {
		tc.DAGLength = 3
	}
	return tc
}

// composedReference runs each partition through the plain engine — no
// RunSharded machinery at all — and merges, producing the ground truth the
// sharded runner must match exactly.
func composedReference(t *testing.T, cfg Config, tc trace.Config, parts int, mk func(seed int64) (spec.Factory, error)) *RunStats {
	t.Helper()
	stats := make([]*RunStats, parts)
	for p := 0; p < parts; p++ {
		factory, err := mk(ShardSeed(cfg.Seed, p, parts))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(ShardConfig(cfg, p, parts), factory)
		if err != nil {
			t.Fatal(err)
		}
		src, err := trace.NewShardStream(tc, p, parts)
		if err != nil {
			t.Fatal(err)
		}
		if stats[p], err = sim.RunSource(src); err != nil {
			t.Fatal(err)
		}
	}
	if parts == 1 {
		return stats[0] // the unsharded engine's RunStats, untouched
	}
	return MergeShardStats(cfg, parts, stats)
}

// shardedRun invokes RunSharded over the same (cfg, trace, parts) cell
// with the given worker count.
func shardedRun(t *testing.T, cfg Config, tc trace.Config, parts, workers int, mk func(seed int64) (spec.Factory, error)) *RunStats {
	t.Helper()
	stats, err := RunSharded(ShardedRun{
		Config:     cfg,
		Parts:      parts,
		Workers:    workers,
		NewFactory: mk,
		NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, parts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestShardConfigReduction: one partition is the plain engine's config and
// seed, untouched; several partitions split the machines exactly and give
// every partition a distinct derived seed.
func TestShardConfigReduction(t *testing.T) {
	cfg := shardTestConfig(7, false)
	if got := ShardConfig(cfg, 0, 1); !reflect.DeepEqual(got, cfg) {
		t.Fatalf("ShardConfig(cfg, 0, 1) changed the config: %+v", got)
	}
	if got := ShardSeed(7, 0, 1); got != 7 {
		t.Fatalf("ShardSeed(7, 0, 1) = %d, want 7", got)
	}
	for _, parts := range []int{2, 3, 7, 8, 30} {
		total := 0
		seeds := map[int64]bool{cfg.Seed: true}
		prev := math.MaxInt
		for p := 0; p < parts; p++ {
			sub := ShardConfig(cfg, p, parts)
			if sub.Cluster.Machines < 1 {
				t.Fatalf("parts=%d: partition %d got %d machines", parts, p, sub.Cluster.Machines)
			}
			if sub.Cluster.Machines > prev {
				t.Fatalf("parts=%d: machine counts not non-increasing (remainder must go to low parts)", parts)
			}
			prev = sub.Cluster.Machines
			total += sub.Cluster.Machines
			if seeds[sub.Seed] {
				t.Fatalf("parts=%d: partition %d's seed %d collides", parts, p, sub.Seed)
			}
			seeds[sub.Seed] = true
		}
		if total != cfg.Cluster.Machines {
			t.Fatalf("parts=%d: partitions hold %d machines, want %d", parts, total, cfg.Cluster.Machines)
		}
	}
}

// TestShardedMatchesUnshardedEngine is the harness's core guarantee, run
// for every one of the seven policy families: RunSharded's RunStats are
// DeepEqual to the unsharded engine — directly on the full trace for
// Parts=1, and composed per-partition for Parts=3 — for worker counts
// 1, 2, 3 and 8. Identical stats across every K is exactly the "byte-
// identical for any shard count" contract: K never touches the model.
func TestShardedMatchesUnshardedEngine(t *testing.T) {
	for _, p := range diffPolicies {
		t.Run(p.name, func(t *testing.T) {
			cfg := shardTestConfig(11, p.oracle)
			tc := shardTestTrace(60, 11, p.name == "gs") // one DAG variant is plenty
			mk := shardFactory(p.name)
			for _, parts := range []int{1, 3} {
				ref := composedReference(t, cfg, tc, parts, mk)
				for _, workers := range []int{1, 2, 3, 8} {
					got := shardedRun(t, cfg, tc, parts, workers, mk)
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("parts=%d workers=%d: sharded RunStats diverged from the composed plain engine\nsharded: %+v\nplain:   %+v",
							parts, workers, got, ref)
					}
				}
			}
		})
	}
}

// TestShardedFoldCanonicalOrder: with OnResult set, results arrive in
// ascending dense JobID order for any partition count — including the
// Parts=1 plain reduction, whose engine naturally completes jobs out of ID
// order — and carry exactly the values of the accumulate-mode Results.
func TestShardedFoldCanonicalOrder(t *testing.T) {
	cfg := shardTestConfig(13, false)
	tc := shardTestTrace(50, 13, false)
	mk := shardFactory("gs")
	for _, parts := range []int{1, 3} {
		want := shardedRun(t, cfg, tc, parts, 2, mk)
		var folded []JobResult
		got, err := RunSharded(ShardedRun{
			Config:     cfg,
			Parts:      parts,
			Workers:    2,
			NewFactory: mk,
			NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, parts) },
			OnResult:   func(r JobResult) { folded = append(folded, r) },
			Jobs:       tc.Jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != 0 {
			t.Fatalf("parts=%d: fold mode still accumulated %d results", parts, len(got.Results))
		}
		if len(folded) != tc.Jobs {
			t.Fatalf("parts=%d: folded %d results, want %d", parts, len(folded), tc.Jobs)
		}
		for i, r := range folded {
			if r.JobID != i {
				t.Fatalf("parts=%d: fold position %d holds job %d — not canonical ID order", parts, i, r.JobID)
			}
			if !reflect.DeepEqual(r, want.Results[i]) {
				t.Fatalf("parts=%d: folded job %d differs from accumulate-mode result", parts, i)
			}
		}
		// The aggregates must match the accumulate-mode run exactly.
		got.Results, want.Results = nil, nil
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parts=%d: fold-mode aggregates diverged: %+v vs %+v", parts, got, want)
		}
	}
}

// TestShardedFoldSequentialWorkers is the regression test for the fold
// merge's no-blocking contract: with ONE worker the partitions run
// strictly sequentially, so partition 0's entire result stream lands in
// the merge buffer before the partition owning job 1 even starts. A merge
// that ever blocks a producer (the original implementation capped
// per-partition channels at 256 results) deadlocks here — the worker
// can't finish partition 0 and the merger waits for a partition that will
// never run. 900 jobs over 3 partitions puts ~300 results per partition,
// comfortably past any such cap.
func TestShardedFoldSequentialWorkers(t *testing.T) {
	cfg := shardTestConfig(19, false)
	tc := shardTestTrace(900, 19, false)
	next := 0
	done := make(chan error, 1)
	go func() {
		_, err := RunSharded(ShardedRun{
			Config:     cfg,
			Parts:      3,
			Workers:    1,
			NewFactory: shardFactory("nospec"),
			NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, 3) },
			OnResult: func(r JobResult) {
				if r.JobID != next {
					t.Errorf("fold got job %d at position %d", r.JobID, next)
				}
				next++
			},
			Jobs: tc.Jobs,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("sequential-worker fold deadlocked")
	}
	if next != tc.Jobs {
		t.Fatalf("folded %d of %d jobs", next, tc.Jobs)
	}
}

// TestShardedWalls: per-partition wall clocks land in the caller's slice;
// their sum over the max bounds the speedup K workers can realize.
func TestShardedWalls(t *testing.T) {
	cfg := shardTestConfig(17, false)
	tc := shardTestTrace(40, 17, false)
	walls := make([]time.Duration, 4)
	_, err := RunSharded(ShardedRun{
		Config:     cfg,
		Parts:      4,
		Workers:    1,
		NewFactory: shardFactory("nospec"),
		NewSource:  func(p int) (Source, error) { return trace.NewShardStream(tc, p, 4) },
		Walls:      walls,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for p, w := range walls {
		if w < 0 {
			t.Fatalf("partition %d wall %v negative", p, w)
		}
		sum += w
	}
	if sum <= 0 {
		t.Fatal("no partition recorded any wall time")
	}
}

// TestRunShardedValidation: the runner rejects malformed partitioned runs
// up front, before any goroutine starts.
func TestRunShardedValidation(t *testing.T) {
	cfg := shardTestConfig(1, false)
	tc := shardTestTrace(10, 1, false)
	mk := shardFactory("gs")
	src := func(p int) (Source, error) { return trace.NewShardStream(tc, p, 1) }
	cases := []struct {
		name string
		run  ShardedRun
	}{
		{"zero parts", ShardedRun{Config: cfg, Parts: 0, NewFactory: mk, NewSource: src}},
		{"nil factory", ShardedRun{Config: cfg, Parts: 1, NewSource: src}},
		{"nil source", ShardedRun{Config: cfg, Parts: 1, NewFactory: mk}},
		{"parts exceed machines", ShardedRun{Config: cfg, Parts: 31, NewFactory: mk, NewSource: src}},
		{"fold without jobs", ShardedRun{Config: cfg, Parts: 1, NewFactory: mk, NewSource: src,
			OnResult: func(JobResult) {}}},
	}
	for _, c := range cases {
		if _, err := RunSharded(c.run); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	bad := cfg
	bad.DurationBeta = 0
	if _, err := RunSharded(ShardedRun{Config: bad, Parts: 2, NewFactory: mk, NewSource: src}); err == nil {
		t.Error("invalid simulator config accepted")
	}
}

// TestRunShardedErrorPropagation: a failing partition surfaces its error —
// deterministically the lowest partition index — without deadlocking the
// merge layer, in both accumulate and fold modes.
func TestRunShardedErrorPropagation(t *testing.T) {
	cfg := shardTestConfig(3, false)
	tc := shardTestTrace(40, 3, false)
	mk := shardFactory("gs")
	failingSource := func(failPart int) func(int) (Source, error) {
		return func(p int) (Source, error) {
			if p == failPart {
				return nil, fmt.Errorf("boom part %d", p)
			}
			return trace.NewShardStream(tc, p, 4)
		}
	}
	for _, fold := range []bool{false, true} {
		run := ShardedRun{
			Config:     cfg,
			Parts:      4,
			Workers:    4,
			NewFactory: mk,
			NewSource:  failingSource(2),
		}
		if fold {
			run.OnResult = func(JobResult) {}
			run.Jobs = tc.Jobs
		}
		_, err := RunSharded(run)
		if err == nil || err.Error() != "boom part 2" {
			t.Fatalf("fold=%v: error %v, want the failing partition's own", fold, err)
		}
	}
}
