package sched

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// saturatedSim admits one big NoSpec job at t=0 that fills every slot, and
// returns the simulator, the job, and the earliest completion time of any
// running copy — probes scheduled before that time see no other events.
func saturatedSim(t *testing.T, seed int64, tasks int) (*Simulator, *jobState, float64) {
	t.Helper()
	s, err := New(smallConfig(seed), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	s.admit(uniformJob(0, tasks, task.Exact(), 0))
	if s.cl.FreeSlots() != 0 {
		t.Fatalf("cluster not saturated: %d free", s.cl.FreeSlots())
	}
	js := s.active[0]
	minEnd := math.Inf(1)
	tb := &js.tasks
	for i := 0; i < js.phase.n; i++ {
		if len(tb.copies[i]) > 0 && tb.bestEnd[i] < minEnd {
			minEnd = tb.bestEnd[i]
		}
	}
	return s, js, minEnd
}

// TestPreemptionProtectsArrivingJob: a small job arriving into a saturated
// cluster must take its fair share immediately via preemption rather than
// waiting for the big job's long copies to finish.
func TestPreemptionProtectsArrivingJob(t *testing.T) {
	cfg := smallConfig(31) // 20 slots
	// Big job: 200 long tasks that will occupy every slot for a while.
	big := uniformJob(0, 200, task.Exact(), 0)
	for i := range big.InputWork {
		big.InputWork[i] = 50
	}
	// Small job arrives shortly after with short tasks and a deadline far
	// shorter than the big job's task length.
	small := uniformJob(1, 10, task.NewDeadline(30), 1)
	stats := runOne(t, cfg, spec.Stateless(spec.GS{}), []*task.Job{big, small})
	var smallRes, bigRes JobResult
	for _, r := range stats.Results {
		if r.JobID == 1 {
			smallRes = r
		} else {
			bigRes = r
		}
	}
	if smallRes.Accuracy < 0.5 {
		t.Fatalf("small job starved: accuracy %v", smallRes.Accuracy)
	}
	if bigRes.Preempted == 0 {
		t.Fatal("big job lost no copies to preemption")
	}
	if bigRes.Accuracy != 1 {
		t.Fatalf("big exact job must still complete (accuracy %v)", bigRes.Accuracy)
	}
}

// TestNoPreemptionWhenSlotsFree: preemption must not fire while the cluster
// has spare capacity.
func TestNoPreemptionWhenSlotsFree(t *testing.T) {
	jobs := []*task.Job{
		uniformJob(0, 5, task.Exact(), 0),
		uniformJob(1, 5, task.Exact(), 0.5),
	}
	stats := runOne(t, smallConfig(32), spec.Stateless(spec.GS{}), jobs)
	for _, r := range stats.Results {
		if r.Preempted != 0 {
			t.Fatalf("job %d preempted %d copies with an idle cluster", r.JobID, r.Preempted)
		}
	}
}

// TestWaterfillShares: small demands are fully served; the leftover splits
// among big jobs.
func TestWaterfillShares(t *testing.T) {
	s, err := New(smallConfig(33), spec.Stateless(spec.GS{})) // 20 slots
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, n int) *jobState {
		j := uniformJob(id, n, task.Exact(), 0)
		js := &jobState{job: j}
		js.phase = s.newInputPhase(js, j)
		return js
	}
	small := mk(0, 4)
	big1 := mk(1, 100)
	big2 := mk(2, 100)
	s.active = []*jobState{small, big1, big2}
	for _, js := range s.active {
		s.insertDemand(js)
	}
	s.refreshShares()
	if small.share != 4 {
		t.Fatalf("small job share %d, want its full demand 4", small.share)
	}
	if big1.share != 8 || big2.share != 8 {
		t.Fatalf("big shares %d/%d, want 8/8 (leftover split)", big1.share, big2.share)
	}
}

// TestWaterfillSharesUnderDemand: with total demand below capacity everyone
// gets their demand.
func TestWaterfillSharesUnderDemand(t *testing.T) {
	s, err := New(smallConfig(34), spec.Stateless(spec.GS{}))
	if err != nil {
		t.Fatal(err)
	}
	j := uniformJob(0, 7, task.Exact(), 0)
	js := &jobState{job: j}
	js.phase = s.newInputPhase(js, j)
	s.active = []*jobState{js}
	s.insertDemand(js)
	s.refreshShares()
	if js.share != 7 {
		t.Fatalf("share %d, want 7", js.share)
	}
}

// TestPreemptionConservesSlots: slot accounting must stay consistent across
// heavy preemption churn.
func TestPreemptionConservesSlots(t *testing.T) {
	cfg := smallConfig(35)
	jobs := make([]*task.Job, 0, 12)
	for i := 0; i < 12; i++ {
		n := 30
		if i%3 == 0 {
			n = 150
		}
		jobs = append(jobs, uniformJob(i, n, task.NewDeadline(20), float64(i)))
	}
	stats := runOne(t, cfg, spec.Stateless(spec.RAS{}), jobs)
	if len(stats.Results) != 12 {
		t.Fatalf("%d results", len(stats.Results))
	}
	// The run completing at all (Release/Acquire panics otherwise) plus a
	// sane utilization proves conservation.
	if stats.MeanUtilization <= 0 || stats.MeanUtilization > 1 {
		t.Fatalf("utilization %v", stats.MeanUtilization)
	}
}

// TestFirstStartResetAfterPreemption: when preemptYoungest removes a task's
// only copy, a later relaunch must reset firstStart to the relaunch time —
// otherwise Elapsed views and the straggler span would count time the task
// spent sitting in the unscheduled pool.
func TestFirstStartResetAfterPreemption(t *testing.T) {
	s, js, minEnd := saturatedSim(t, 51, 40)
	probe := minEnd / 2
	s.eng.At(probe, func(*simevent.Engine) {
		tb := &js.tasks
		hadCopy := make([]bool, js.phase.n)
		for i := 0; i < js.phase.n; i++ {
			hadCopy[i] = len(tb.copies[i]) == 1
		}
		if !s.preemptYoungest(js) {
			t.Fatal("preemptYoungest found nothing to kill")
		}
		victim := -1
		for i := 0; i < js.phase.n; i++ {
			if hadCopy[i] && len(tb.copies[i]) == 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			t.Fatal("no task was emptied by preemption")
		}
		if tb.firstStart[victim] != 0 {
			t.Fatalf("victim firstStart %v before relaunch, want its original 0", tb.firstStart[victim])
		}
		// NoSpec relaunches the lowest-index unscheduled task — the victim,
		// whose index precedes every never-launched task.
		s.dispatch()
		if len(tb.copies[victim]) != 1 {
			t.Fatalf("victim not relaunched: %d copies", len(tb.copies[victim]))
		}
		if tb.firstStart[victim] != probe {
			t.Fatalf("victim firstStart %v after relaunch at %v; stale spans poison Elapsed views", tb.firstStart[victim], probe)
		}
		if tb.best[victim] == nil || tb.best[victim] != tb.copies[victim][0] {
			t.Fatal("best-copy cache not rebuilt on relaunch")
		}
	})
	s.eng.RunUntil(probe)
}

// TestUtilizationIntegralAcrossPreemption pins the utilization integral
// through a preempt + relaunch cycle with hand-computable utilization: full
// until the preemption, 19/20 while the slot sits free, full again after the
// relaunch. A missing noteUtil before any of the occupancy changes shifts
// the integral.
func TestUtilizationIntegralAcrossPreemption(t *testing.T) {
	s, js, minEnd := saturatedSim(t, 52, 40)
	p1, p2, p3 := minEnd/4, minEnd/2, 3*minEnd/4
	slots := float64(s.cl.TotalSlots())
	const eps = 1e-12
	s.eng.At(p1, func(*simevent.Engine) {
		if !s.preemptYoungest(js) {
			t.Fatal("nothing to preempt")
		}
		if got, want := s.utilIntegral, p1; math.Abs(got-want) > eps {
			t.Fatalf("integral %v at preemption, want %v (full cluster since t=0)", got, want)
		}
	})
	s.eng.At(p2, func(*simevent.Engine) {
		s.noteUtil()
		want := p1 + (p2-p1)*(slots-1)/slots
		if got := s.utilIntegral; math.Abs(got-want) > eps {
			t.Fatalf("integral %v with one slot free, want %v", got, want)
		}
		s.dispatch() // refill the slot
		if s.cl.FreeSlots() != 0 {
			t.Fatalf("dispatch left %d slots free", s.cl.FreeSlots())
		}
	})
	s.eng.At(p3, func(*simevent.Engine) {
		s.noteUtil()
		want := p1 + (p2-p1)*(slots-1)/slots + (p3 - p2)
		if got := s.utilIntegral; math.Abs(got-want) > eps {
			t.Fatalf("integral %v after relaunch, want %v", got, want)
		}
	})
	s.eng.RunUntil(p3)
}

// TestPreemptForFairnessTerminates drives preemptForFairness directly
// through its claim/victim loop shapes: a genuine rebalance must converge to
// the assigned shares, an all-claimant (no victim) state and an all-victim
// (no claimant) state must return immediately, and a claimant whose policy
// declines must stop after a single preemption rather than churn the victim.
func TestPreemptForFairnessTerminates(t *testing.T) {
	s, err := New(smallConfig(53), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	s.admit(uniformJob(0, 40, task.Exact(), 0)) // takes all 20 slots
	s.admit(uniformJob(1, 40, task.Exact(), 0)) // preempts its way to 10/10
	a, b := s.active[0], s.active[1]
	if a.running != 10 || b.running != 10 {
		t.Fatalf("admission rebalance gave %d/%d, want 10/10", a.running, b.running)
	}
	if a.res.Preempted != 10 {
		t.Fatalf("job 0 lost %d copies, want 10", a.res.Preempted)
	}
	// Skewed shares: a claims 5 more, b is 5 over. The loop must alternate
	// preempt(b) / launch(a) exactly five times and stop.
	a.declined, b.declined = false, false
	a.share, b.share = 15, 5
	s.preemptForFairness()
	if a.running != 15 || b.running != 5 {
		t.Fatalf("rebalance gave %d/%d, want 15/5", a.running, b.running)
	}
	// Both under-share: no victim exists; must return without preempting.
	before := a.res.Preempted + b.res.Preempted
	a.share, b.share = 20, 20
	s.preemptForFairness()
	if got := a.res.Preempted + b.res.Preempted; got != before {
		t.Fatalf("preempted %d copies with no over-share victim", got-before)
	}
	// Both over-share: no claimant exists; must return without preempting.
	a.share, b.share = 0, 0
	s.preemptForFairness()
	if got := a.res.Preempted + b.res.Preempted; got != before {
		t.Fatalf("preempted %d copies with no claimant", got-before)
	}
}

// TestPreemptForFairnessDecliningClaimant: when the claimant's policy finds
// nothing to launch, the loop must stop after freeing a single slot instead
// of killing more of the victim's work.
func TestPreemptForFairnessDecliningClaimant(t *testing.T) {
	s, err := New(smallConfig(54), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: 10 tasks, all running after admission (its waterfill share).
	s.admit(uniformJob(0, 10, task.Exact(), 0))
	// Job 1: takes the remaining 10 slots.
	s.admit(uniformJob(1, 40, task.Exact(), 0))
	a, b := s.active[0], s.active[1]
	if a.running != 10 || b.running != 10 {
		t.Fatalf("setup gave %d/%d running, want 10/10", a.running, b.running)
	}
	// a "claims" more than its task count can use: every task already runs,
	// so NoSpec declines. b is the victim; exactly one copy may die.
	a.declined, b.declined = false, false
	a.share, b.share = 12, 8
	before := b.res.Preempted
	s.preemptForFairness()
	if got := b.res.Preempted - before; got != 1 {
		t.Fatalf("victim lost %d copies to a declining claimant, want exactly 1", got)
	}
	if !a.declined {
		t.Fatal("claimant not marked declined")
	}
	if s.cl.FreeSlots() != 1 {
		t.Fatalf("%d slots free, want the 1 freed slot left for the next event", s.cl.FreeSlots())
	}
}

// TestPreemptedTaskRestartable: a task whose only copy was preempted must be
// relaunched later and still complete (exact bound forces it).
func TestPreemptedTaskRestartable(t *testing.T) {
	cfg := smallConfig(36)
	big := uniformJob(0, 60, task.Exact(), 0)
	burst := make([]*task.Job, 0, 6)
	burst = append(burst, big)
	for i := 1; i <= 5; i++ {
		burst = append(burst, uniformJob(i, 20, task.Exact(), 0.5))
	}
	stats := runOne(t, cfg, spec.Stateless(spec.GS{}), burst)
	for _, r := range stats.Results {
		if r.Accuracy != 1 {
			t.Fatalf("job %d incomplete after preemption churn: %v", r.JobID, r.Accuracy)
		}
	}
}
