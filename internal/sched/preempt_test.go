package sched

import (
	"testing"

	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// TestPreemptionProtectsArrivingJob: a small job arriving into a saturated
// cluster must take its fair share immediately via preemption rather than
// waiting for the big job's long copies to finish.
func TestPreemptionProtectsArrivingJob(t *testing.T) {
	cfg := smallConfig(31) // 20 slots
	// Big job: 200 long tasks that will occupy every slot for a while.
	big := uniformJob(0, 200, task.Exact(), 0)
	for i := range big.InputWork {
		big.InputWork[i] = 50
	}
	// Small job arrives shortly after with short tasks and a deadline far
	// shorter than the big job's task length.
	small := uniformJob(1, 10, task.NewDeadline(30), 1)
	stats := runOne(t, cfg, spec.Stateless(spec.GS{}), []*task.Job{big, small})
	var smallRes, bigRes JobResult
	for _, r := range stats.Results {
		if r.JobID == 1 {
			smallRes = r
		} else {
			bigRes = r
		}
	}
	if smallRes.Accuracy < 0.5 {
		t.Fatalf("small job starved: accuracy %v", smallRes.Accuracy)
	}
	if bigRes.Preempted == 0 {
		t.Fatal("big job lost no copies to preemption")
	}
	if bigRes.Accuracy != 1 {
		t.Fatalf("big exact job must still complete (accuracy %v)", bigRes.Accuracy)
	}
}

// TestNoPreemptionWhenSlotsFree: preemption must not fire while the cluster
// has spare capacity.
func TestNoPreemptionWhenSlotsFree(t *testing.T) {
	jobs := []*task.Job{
		uniformJob(0, 5, task.Exact(), 0),
		uniformJob(1, 5, task.Exact(), 0.5),
	}
	stats := runOne(t, smallConfig(32), spec.Stateless(spec.GS{}), jobs)
	for _, r := range stats.Results {
		if r.Preempted != 0 {
			t.Fatalf("job %d preempted %d copies with an idle cluster", r.JobID, r.Preempted)
		}
	}
}

// TestWaterfillShares: small demands are fully served; the leftover splits
// among big jobs.
func TestWaterfillShares(t *testing.T) {
	s, err := New(smallConfig(33), spec.Stateless(spec.GS{})) // 20 slots
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, n int) *jobState {
		j := uniformJob(id, n, task.Exact(), 0)
		return &jobState{job: j, phase: s.newInputPhase(j)}
	}
	small := mk(0, 4)
	big1 := mk(1, 100)
	big2 := mk(2, 100)
	s.active = []*jobState{small, big1, big2}
	shares := s.waterfillShares()
	if shares[small] != 4 {
		t.Fatalf("small job share %d, want its full demand 4", shares[small])
	}
	if shares[big1] != 8 || shares[big2] != 8 {
		t.Fatalf("big shares %d/%d, want 8/8 (leftover split)", shares[big1], shares[big2])
	}
}

// TestWaterfillSharesUnderDemand: with total demand below capacity everyone
// gets their demand.
func TestWaterfillSharesUnderDemand(t *testing.T) {
	s, err := New(smallConfig(34), spec.Stateless(spec.GS{}))
	if err != nil {
		t.Fatal(err)
	}
	j := uniformJob(0, 7, task.Exact(), 0)
	js := &jobState{job: j, phase: s.newInputPhase(j)}
	s.active = []*jobState{js}
	if got := s.waterfillShares()[js]; got != 7 {
		t.Fatalf("share %d, want 7", got)
	}
}

// TestPreemptionConservesSlots: slot accounting must stay consistent across
// heavy preemption churn.
func TestPreemptionConservesSlots(t *testing.T) {
	cfg := smallConfig(35)
	jobs := make([]*task.Job, 0, 12)
	for i := 0; i < 12; i++ {
		n := 30
		if i%3 == 0 {
			n = 150
		}
		jobs = append(jobs, uniformJob(i, n, task.NewDeadline(20), float64(i)))
	}
	stats := runOne(t, cfg, spec.Stateless(spec.RAS{}), jobs)
	if len(stats.Results) != 12 {
		t.Fatalf("%d results", len(stats.Results))
	}
	// The run completing at all (Release/Acquire panics otherwise) plus a
	// sane utilization proves conservation.
	if stats.MeanUtilization <= 0 || stats.MeanUtilization > 1 {
		t.Fatalf("utilization %v", stats.MeanUtilization)
	}
}

// TestPreemptedTaskRestartable: a task whose only copy was preempted must be
// relaunched later and still complete (exact bound forces it).
func TestPreemptedTaskRestartable(t *testing.T) {
	cfg := smallConfig(36)
	big := uniformJob(0, 60, task.Exact(), 0)
	burst := make([]*task.Job, 0, 6)
	burst = append(burst, big)
	for i := 1; i <= 5; i++ {
		burst = append(burst, uniformJob(i, 20, task.Exact(), 0.5))
	}
	stats := runOne(t, cfg, spec.Stateless(spec.GS{}), burst)
	for _, r := range stats.Results {
		if r.Accuracy != 1 {
			t.Fatalf("job %d incomplete after preemption churn: %v", r.JobID, r.Accuracy)
		}
	}
}
