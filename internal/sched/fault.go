// Fault injection: the scheduler-side half of internal/fault. The fault
// package owns WHAT happens (the deterministic schedule of crashes, rack
// storms and interference bursts and their pre-seeded random draws); this
// file owns HOW it lands in the simulation — as AtLast simulator events
// that revoke cluster capacity, kill running copies (Lost, distinct from
// Preempted: the scheduler chose neither the victim nor the moment), and
// perturb launch-time slowdowns, all through the same kill/relaunch and
// dispatch paths fair-share preemption already exercises.
//
// Determinism and zero cost:
//
//   - Faults are AtLast events, so a fault at time t observes every arrival
//     and completion of that instant first and the benign event classes the
//     goldens pin are untouched. Each channel is self-paced from its own
//     RNG substream (the draw for occurrence n+1 happens when occurrence n
//     is armed), so channel interleaving never shifts a draw.
//   - A disabled schedule builds no injector: the only additions to the hot
//     path are nil checks, which the perfwall allocs/event gates double-pin.
//   - Recurring channels go DORMANT when the simulation is idle (no active
//     jobs, no queued arrivals): the pending occurrence fires, applies
//     nothing, and does not rearm — otherwise an infinite fault stream
//     would keep the event queue alive forever. admit rearms on the next
//     admission. Paired end events (restore, storm end, burst end) always
//     fire and apply, so revoked capacity is always returned and a trailing
//     restore may legitimately extend the makespan.
package sched

import (
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/simevent"
)

// FaultStats counts applied fault events cluster-wide over one run.
type FaultStats struct {
	// Crashes and Restores count machine departures and returns; a crash
	// drawn against an already-down machine applies nothing and counts
	// nowhere.
	Crashes, Restores uint64
	// Storms counts rack slowdown storms; Bursts background-load bursts.
	Storms, Bursts uint64
	// LostCopies counts running copies killed by crashes (JobResult.Lost,
	// summed); InterferedSlots counts slots seized by bursts.
	LostCopies, InterferedSlots uint64
}

// faultInjector wires one fault.Stream into a running simulator.
type faultInjector struct {
	s      *Simulator
	stream *fault.Stream
	// held counts interference-occupied slots per machine, so burst ends
	// release exactly what their burst still holds (a crash in between
	// parks the held slots and zeroes the count).
	held []int32
	// stormDepth counts active storms per rack: overlapping storms extend
	// the factor's hold, they do not compound it.
	stormDepth []int32
	cfg        fault.Config
	stats      FaultStats
	crashArmed bool
	stormArmed bool
	intfArmed  bool
}

func newFaultInjector(s *Simulator, cfg fault.Config) *faultInjector {
	machines := s.cl.Machines()
	stream := fault.NewStream(cfg, s.cfg.Seed, machines)
	return &faultInjector{
		s:          s,
		stream:     stream,
		cfg:        cfg,
		held:       make([]int32, machines),
		stormDepth: make([]int32, stream.Racks()),
	}
}

// idleForFaults reports whether a recurring channel should go dormant: no
// job is active and no arrival is queued, so nothing can be perturbed and
// rearming would keep the event queue alive forever. Both Run (all
// arrivals scheduled up front) and RunSource (exactly one pending arrival
// until the source drains) keep arrivalsQueued > 0 precisely while
// arrivals remain, so the predicate — and therefore the fault timeline —
// is identical across the two admission modes.
func (s *Simulator) idleForFaults() bool {
	return len(s.active) == 0 && s.arrivalsQueued == 0
}

// wake arms every enabled channel that is not already armed. Called on
// each admission; channels stay armed across busy periods and only rearm
// after going dormant.
func (f *faultInjector) wake() {
	now := f.s.eng.Now()
	if f.cfg.CrashEvery > 0 && !f.crashArmed {
		f.crashArmed = true
		f.armCrash(now)
	}
	if f.cfg.StormEvery > 0 && !f.stormArmed {
		f.stormArmed = true
		f.armStorm(now)
	}
	if f.cfg.InterfereEvery > 0 && !f.intfArmed {
		f.intfArmed = true
		f.armInterfere(now)
	}
}

func (f *faultInjector) armCrash(now float64) {
	t, m := f.stream.NextCrash(now)
	f.s.eng.AtLast(t, func(*simevent.Engine) { f.onCrash(m) })
}

func (f *faultInjector) armStorm(now float64) {
	t, r := f.stream.NextStorm(now)
	f.s.eng.AtLast(t, func(*simevent.Engine) { f.onStorm(r) })
}

func (f *faultInjector) armInterfere(now float64) {
	t, m := f.stream.NextInterfere(now)
	f.s.eng.AtLast(t, func(*simevent.Engine) { f.onInterfere(m) })
}

// onCrash takes machine m out of the cluster: its free slots leave the
// pool, interference holds park, and every running copy on it is killed
// as Lost — the tasks return to the unscheduled pool and respeculate
// through the ordinary dispatch path. The restore is scheduled
// unconditionally, so capacity always comes back.
func (f *faultInjector) onCrash(m int) {
	s := f.s
	if s.idleForFaults() {
		f.crashArmed = false
		return
	}
	f.armCrash(s.eng.Now())
	if s.cl.Down(m) {
		return // crash drawn against an already-down machine: no-op
	}
	s.noteUtil()
	s.cl.Crash(m)
	f.stats.Crashes++
	if f.held[m] > 0 {
		// The burst's slots park with the machine; its end event will find
		// nothing held.
		for i := int32(0); i < f.held[m]; i++ {
			s.cl.Release(m)
		}
		f.held[m] = 0
	}
	s.killCopiesOn(m)
	s.eng.AtLast(s.eng.Now()+f.cfg.CrashDowntime, func(*simevent.Engine) { f.onRestore(m) })
	s.dispatch()
}

// onRestore returns a crashed machine's slots to the pool.
func (f *faultInjector) onRestore(m int) {
	s := f.s
	s.noteUtil()
	if s.cl.Restore(m) {
		f.stats.Restores++
	}
	s.dispatch()
}

// onStorm slows every machine of one rack by the configured factor for the
// storm's duration. Only copies LAUNCHED during the storm are slowed —
// launch-time semantics, the same contract as static heterogeneity — so
// running copies keep their durations and determinism needs no mid-run
// event rescheduling.
func (f *faultInjector) onStorm(rack int) {
	s := f.s
	if s.idleForFaults() {
		f.stormArmed = false
		return
	}
	f.armStorm(s.eng.Now())
	f.stats.Storms++
	if f.stormDepth[rack]++; f.stormDepth[rack] == 1 {
		lo, hi := f.stream.RackRange(rack)
		for id := lo; id < hi; id++ {
			s.cl.SetFactor(id, f.cfg.StormFactor)
		}
	}
	s.eng.AtLast(s.eng.Now()+f.cfg.StormDuration, func(*simevent.Engine) { f.onStormEnd(rack) })
}

func (f *faultInjector) onStormEnd(rack int) {
	if f.stormDepth[rack]--; f.stormDepth[rack] == 0 {
		lo, hi := f.stream.RackRange(rack)
		for id := lo; id < hi; id++ {
			f.s.cl.SetFactor(id, 1)
		}
	}
}

// onInterfere seizes up to InterfereSlots FREE slots on one machine —
// background load the scheduler cannot see, only feel. Running copies are
// never touched (interference contends, it does not kill), so a saturated
// machine shrugs the burst off.
func (f *faultInjector) onInterfere(m int) {
	s := f.s
	if s.idleForFaults() {
		f.intfArmed = false
		return
	}
	f.armInterfere(s.eng.Now())
	f.stats.Bursts++
	n := int32(0)
	for int(n) < f.cfg.InterfereSlots && s.cl.AcquireOn(m) {
		if n == 0 {
			s.noteUtil()
		}
		n++
	}
	if n == 0 {
		return
	}
	f.held[m] += n
	f.stats.InterferedSlots += uint64(n)
	s.eng.AtLast(s.eng.Now()+f.cfg.InterfereDuration, func(*simevent.Engine) { f.onInterfereEnd(m, n) })
}

func (f *faultInjector) onInterfereEnd(m int, n int32) {
	s := f.s
	// A crash in between parked (and zeroed) this machine's holds; release
	// only what the burst still owns.
	if n > f.held[m] {
		n = f.held[m]
	}
	if n == 0 {
		return
	}
	s.noteUtil()
	f.held[m] -= n
	for i := int32(0); i < n; i++ {
		s.cl.Release(m)
	}
	s.dispatch()
}

// killCopiesOn kills every running copy on machine m across all active
// jobs, recording each as Lost. Mirrors preemptYoungest's kill sequence —
// cancel, release (parked: the machine is down), running/speculative
// accounting, estimator scoring, best-copy recompute, incremental-view
// notification — but attributes the loss to the fault schedule, not the
// fair-share policy.
func (s *Simulator) killCopiesOn(m int) {
	now := s.eng.Now()
	for _, js := range s.active {
		if js.phase == nil {
			continue
		}
		tb := &js.tasks
		for i := 0; i < js.phase.n; i++ {
			if len(tb.copies[i]) == 0 {
				continue
			}
			kept := tb.copies[i][:0]
			lostBest, lostAny := false, false
			for _, c := range tb.copies[i] {
				if c.machineID != m {
					kept = append(kept, c)
					continue
				}
				s.eng.Cancel(c.ev)
				s.cl.Release(c.machineID)
				js.running--
				if c.speculative {
					js.specRun--
				}
				js.res.Lost++
				s.flt.stats.LostCopies++
				s.scoreCopy(c, now)
				if tb.best[i] == c {
					lostBest = true
				}
				s.freeCopy(c)
				lostAny = true
			}
			tb.copies[i] = kept
			if lostAny {
				if lostBest {
					tb.recomputeBest(i)
				}
				s.notePreempt(js, i)
			}
		}
	}
}
