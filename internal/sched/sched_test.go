package sched

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// smallConfig is a fast cluster for unit tests.
func smallConfig(seed int64) Config {
	return Config{
		Cluster:          cluster.Config{Machines: 10, SlotsPerMachine: 2},
		Estimator:        estimate.Config{TRemNoise: 0.3, TNewNoise: 0.3, Prior: 1},
		DurationBeta:     1.259,
		DurationCap:      50,
		TailFrac:         0.2,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
		Seed:             seed,
	}
}

func uniformJob(id int, n int, bound task.Bound, arrival float64) *task.Job {
	work := make([]float64, n)
	for i := range work {
		work[i] = 1
	}
	return &task.Job{ID: id, Arrival: arrival, InputWork: work, Bound: bound}
}

func runOne(t *testing.T, cfg Config, f spec.Factory, jobs []*task.Job) *RunStats {
	t.Helper()
	s, err := New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestConfigValidation(t *testing.T) {
	bad := smallConfig(1)
	bad.DurationBeta = 0
	if _, err := New(bad, spec.Stateless(spec.GS{})); err == nil {
		t.Error("zero beta accepted")
	}
	bad = smallConfig(1)
	bad.DurationCap = 1
	if _, err := New(bad, spec.Stateless(spec.GS{})); err == nil {
		t.Error("cap<=1 accepted")
	}
	bad = smallConfig(1)
	bad.IntermediateBeta = -1
	if _, err := New(bad, spec.Stateless(spec.GS{})); err == nil {
		t.Error("negative intermediate beta accepted")
	}
	if _, err := New(smallConfig(1), nil); err == nil {
		t.Error("nil factory accepted")
	}
}

// TestTailConfigValidation pins the intermediate-tail fixes: NaN tail
// parameters must not slip through the range checks (NaN compares false
// against every bound), and TailStart must be validated even when
// TailFrac == 1, because the intermediate-phase distribution always halves
// TailFrac into a body-tail mixture that uses TailStart. The old code
// accepted both configs and either simulated garbage or failed later inside
// dist with a misleading error.
func TestTailConfigValidation(t *testing.T) {
	bad := smallConfig(1)
	bad.TailFrac = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN tail fraction accepted")
	}
	bad = smallConfig(1)
	bad.TailStart = math.NaN()
	if bad.Validate() == nil {
		t.Error("NaN tail start accepted")
	}
	bad = smallConfig(1)
	bad.TailFrac = 1
	bad.TailStart = 1
	if bad.Validate() == nil {
		t.Error("TailFrac=1 with TailStart<=1 accepted; the intermediate distribution needs a valid tail start")
	}
	// A pure-Pareto input tail with a sane TailStart stays valid end to end:
	// the halved intermediate tail (0.5) must build a working mixture.
	ok := smallConfig(1)
	ok.TailFrac = 1
	if _, err := New(ok, spec.Stateless(spec.NewGS())); err != nil {
		t.Errorf("TailFrac=1 with default TailStart rejected: %v", err)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExactJobCompletes(t *testing.T) {
	j := uniformJob(0, 30, task.Exact(), 0)
	stats := runOne(t, smallConfig(2), spec.Stateless(spec.NoSpec{}), []*task.Job{j})
	if len(stats.Results) != 1 {
		t.Fatalf("%d results", len(stats.Results))
	}
	r := stats.Results[0]
	if r.Accuracy != 1 {
		t.Errorf("exact job accuracy %v", r.Accuracy)
	}
	if r.Duration <= 0 || r.InputDuration <= 0 {
		t.Errorf("durations %v / %v", r.Duration, r.InputDuration)
	}
	if r.Launched != 30 || r.Speculative != 0 || r.Killed != 0 {
		t.Errorf("NoSpec launched=%d spec=%d killed=%d", r.Launched, r.Speculative, r.Killed)
	}
	if stats.Makespan <= 0 || stats.Events == 0 {
		t.Error("empty run stats")
	}
}

func TestErrorBoundStopsEarly(t *testing.T) {
	j := uniformJob(0, 20, task.NewError(0.25), 0)
	stats := runOne(t, smallConfig(3), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if got := r.Accuracy; math.Abs(got-0.75) > 1e-9 {
		t.Errorf("accuracy %v, want 0.75", got)
	}
}

func TestDeadlineCutsOff(t *testing.T) {
	// 200 tasks, 20 slots, tiny deadline: accuracy must be < 1 and the job
	// must still produce a result at the deadline.
	j := uniformJob(0, 200, task.NewDeadline(3), 0)
	stats := runOne(t, smallConfig(4), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if r.Accuracy >= 1 {
		t.Errorf("accuracy %v should be < 1 with a tight deadline", r.Accuracy)
	}
	if r.Accuracy <= 0 {
		t.Errorf("accuracy %v should be > 0", r.Accuracy)
	}
	if math.Abs(r.InputDuration-3) > 1e-9 {
		t.Errorf("input duration %v, want the 3-unit deadline", r.InputDuration)
	}
}

func TestDeadlineJobFinishingEarly(t *testing.T) {
	// Plenty of time and slots: all tasks finish before the deadline and
	// the job should not wait for it.
	j := uniformJob(0, 5, task.NewDeadline(10000), 0)
	stats := runOne(t, smallConfig(5), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if r.Accuracy != 1 {
		t.Errorf("accuracy %v", r.Accuracy)
	}
	if r.InputDuration >= 10000 {
		t.Error("job waited for the deadline despite finishing early")
	}
}

func TestSpeculationHappens(t *testing.T) {
	// Heavy tail + GS: speculative copies should be launched and some
	// originals killed.
	j := uniformJob(0, 200, task.Exact(), 0)
	stats := runOne(t, smallConfig(6), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if r.Speculative == 0 {
		t.Error("GS never speculated on a heavy-tailed workload")
	}
	if r.Killed == 0 {
		t.Error("no copy was ever killed")
	}
	if r.Launched < 200 {
		t.Errorf("launched %d < tasks", r.Launched)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []JobResult {
		jobs := []*task.Job{
			uniformJob(0, 50, task.Exact(), 0),
			uniformJob(1, 80, task.NewError(0.1), 1),
			uniformJob(2, 60, task.NewDeadline(20), 2),
		}
		return runOne(t, smallConfig(7), spec.Stateless(spec.GS{}), jobs).Results
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("result counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestFairSharingBothJobsProgress(t *testing.T) {
	// Two big jobs submitted together must both finish, and neither can
	// have monopolized the cluster (their input durations overlap).
	jobs := []*task.Job{
		uniformJob(0, 100, task.Exact(), 0),
		uniformJob(1, 100, task.Exact(), 0),
	}
	stats := runOne(t, smallConfig(8), spec.Stateless(spec.GS{}), jobs)
	if len(stats.Results) != 2 {
		t.Fatalf("%d results", len(stats.Results))
	}
	d0, d1 := stats.Results[0].InputDuration, stats.Results[1].InputDuration
	// Serial execution would give d1 ≈ 2·d0; fair sharing keeps them close.
	ratio := d1 / d0
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("input durations %v vs %v suggest no fair sharing", d0, d1)
	}
}

func TestDAGJobRunsAllPhases(t *testing.T) {
	j := uniformJob(0, 40, task.Exact(), 0)
	j.Phases = []task.Phase{{NumTasks: 8, WorkScale: 1}, {NumTasks: 4, WorkScale: 1}}
	stats := runOne(t, smallConfig(9), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if r.DAGLength != 3 {
		t.Errorf("DAG length %d", r.DAGLength)
	}
	if r.Duration <= r.InputDuration {
		t.Errorf("duration %v should exceed input duration %v (intermediate phases ran)", r.Duration, r.InputDuration)
	}
	if r.Accuracy != 1 {
		t.Errorf("accuracy %v", r.Accuracy)
	}
}

func TestDAGDeadlineDecomposition(t *testing.T) {
	// A deadline DAG job freezes its input phase *before* the full deadline
	// to leave room for intermediate phases (§5.2).
	j := uniformJob(0, 100, task.NewDeadline(10), 0)
	j.Phases = []task.Phase{{NumTasks: 10, WorkScale: 2}}
	stats := runOne(t, smallConfig(10), spec.Stateless(spec.GS{}), []*task.Job{j})
	r := stats.Results[0]
	if r.InputDuration >= 10 {
		t.Errorf("input phase used the whole deadline (%v); no budget left for the DAG", r.InputDuration)
	}
}

func TestOracleMode(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Oracle = true
	j := uniformJob(0, 50, task.Exact(), 0)
	stats := runOne(t, cfg, spec.Stateless(spec.RAS{}), []*task.Job{j})
	if stats.Results[0].Accuracy != 1 {
		t.Error("oracle run did not complete the job")
	}
	if stats.EstimatorAccuracy != 0.5 {
		t.Error("oracle mode should not touch the estimator (cold-start 0.5)")
	}
}

func TestUnsortedJobsRejected(t *testing.T) {
	s, err := New(smallConfig(12), spec.Stateless(spec.GS{}))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*task.Job{
		uniformJob(0, 5, task.Exact(), 10),
		uniformJob(1, 5, task.Exact(), 5),
	}
	if _, err := s.Run(jobs); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestInvalidJobRejected(t *testing.T) {
	s, err := New(smallConfig(13), spec.Stateless(spec.GS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]*task.Job{{ID: 0}}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestEventLimit(t *testing.T) {
	cfg := smallConfig(14)
	cfg.MaxEvents = 10
	s, err := New(cfg, spec.Stateless(spec.GS{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]*task.Job{uniformJob(0, 100, task.Exact(), 0)}); err == nil {
		t.Fatal("event limit not enforced")
	}
}

func TestStragglerRatioRealistic(t *testing.T) {
	// With β=1.259 tails the slowest task should be several times the
	// median (the paper reports 8× in production).
	j := uniformJob(0, 300, task.Exact(), 0)
	stats := runOne(t, smallConfig(15), spec.Stateless(spec.NoSpec{}), []*task.Job{j})
	r := stats.Results[0]
	if r.StragglerRatio < 2 {
		t.Errorf("straggler ratio %v too small for a heavy-tailed workload", r.StragglerRatio)
	}
}

func TestEstimatorAccuracyMeasured(t *testing.T) {
	j := uniformJob(0, 200, task.Exact(), 0)
	stats := runOne(t, smallConfig(16), spec.Stateless(spec.GS{}), []*task.Job{j})
	acc := stats.EstimatorAccuracy
	if acc <= 0.4 || acc >= 1 {
		t.Errorf("measured estimator accuracy %v out of plausible range", acc)
	}
}

func TestMeanUtilizationBounds(t *testing.T) {
	jobs := []*task.Job{
		uniformJob(0, 100, task.Exact(), 0),
		uniformJob(1, 100, task.Exact(), 0),
	}
	stats := runOne(t, smallConfig(17), spec.Stateless(spec.GS{}), jobs)
	if stats.MeanUtilization <= 0 || stats.MeanUtilization > 1 {
		t.Errorf("mean utilization %v", stats.MeanUtilization)
	}
}

func TestSpeculationBeatsNoSpecOnErrorBound(t *testing.T) {
	// Aggregate over several seeds: resource-aware speculation should finish
	// exact multi-wave jobs faster than never speculating — the paper's
	// core premise (GS would over-speculate here; that is Guideline 3).
	var rasTot, noTot float64
	for seed := int64(0); seed < 5; seed++ {
		jobs := func() []*task.Job { return []*task.Job{uniformJob(0, 120, task.Exact(), 0)} }
		ras := runOne(t, smallConfig(100+seed), spec.Stateless(spec.RAS{}), jobs())
		no := runOne(t, smallConfig(100+seed), spec.Stateless(spec.NoSpec{}), jobs())
		rasTot += ras.Results[0].InputDuration
		noTot += no.Results[0].InputDuration
	}
	if rasTot >= noTot {
		t.Errorf("RAS total %v not faster than NoSpec %v", rasTot, noTot)
	}
}

func TestResultsSortedByJobID(t *testing.T) {
	jobs := []*task.Job{
		uniformJob(0, 400, task.Exact(), 0), // big job, finishes last
		uniformJob(1, 5, task.Exact(), 0.5), // tiny job, finishes first
	}
	stats := runOne(t, smallConfig(18), spec.Stateless(spec.GS{}), jobs)
	if stats.Results[0].JobID != 0 || stats.Results[1].JobID != 1 {
		t.Fatal("results not sorted by job ID")
	}
}

func TestLATEAndMantriRunEndToEnd(t *testing.T) {
	for _, f := range []spec.Factory{spec.Stateless(spec.NewLATE()), spec.Stateless(spec.NewMantri())} {
		jobs := []*task.Job{
			uniformJob(0, 100, task.NewDeadline(30), 0),
			uniformJob(1, 100, task.NewError(0.1), 2),
		}
		stats := runOne(t, smallConfig(19), f, jobs)
		if len(stats.Results) != 2 {
			t.Fatalf("%s: %d results", f.Name(), len(stats.Results))
		}
		for _, r := range stats.Results {
			if r.Accuracy <= 0 {
				t.Errorf("%s: job %d accuracy %v", f.Name(), r.JobID, r.Accuracy)
			}
		}
	}
}

func TestDeadlineJobWithNoCapacity(t *testing.T) {
	// A deadline job that never gets a slot must still finish at its
	// deadline with zero accuracy rather than hanging the simulation.
	cfg := smallConfig(40)
	hog := uniformJob(0, 500, task.Exact(), 0)
	for i := range hog.InputWork {
		hog.InputWork[i] = 100 // occupies everything for a long time
	}
	starved := uniformJob(1, 400, task.NewDeadline(0.5), 0.1)
	for i := range starved.InputWork {
		starved.InputWork[i] = 50 // too long to finish within 0.5 anyway
	}
	stats := runOne(t, cfg, spec.Stateless(spec.NoSpec{}), []*task.Job{hog, starved})
	for _, r := range stats.Results {
		if r.JobID == 1 {
			if r.Accuracy != 0 {
				t.Fatalf("starved job accuracy %v, want 0", r.Accuracy)
			}
			if r.InputDuration > 0.5+1e-9 {
				t.Fatalf("starved job ran past its deadline: %v", r.InputDuration)
			}
		}
	}
}

func TestIntermediateEstimateLearning(t *testing.T) {
	// After several DAG jobs complete, the §5.2 intermediate estimate should
	// come from observations; verify the input-phase budget reacts: later
	// jobs of the same shape get consistent input deadlines.
	cfg := smallConfig(41)
	jobs := make([]*task.Job, 0, 6)
	for i := 0; i < 6; i++ {
		j := uniformJob(i, 40, task.NewDeadline(30), float64(i)*50)
		j.Phases = []task.Phase{{NumTasks: 8, WorkScale: 2}}
		jobs = append(jobs, j)
	}
	stats := runOne(t, cfg, spec.Stateless(spec.GS{}), jobs)
	for _, r := range stats.Results {
		if r.InputDuration >= 30 {
			t.Fatalf("job %d input phase consumed the whole deadline", r.JobID)
		}
		if r.Duration < r.InputDuration {
			t.Fatalf("job %d duration %v < input %v", r.JobID, r.Duration, r.InputDuration)
		}
	}
}

func TestGRASSIntegration(t *testing.T) {
	// End-to-end: GRASS over a mixed trace accumulates learner samples and
	// switches adaptively.
	f, err := core.New(core.Config{Xi: 0.3, Factors: core.AllFactors(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*task.Job, 0, 40)
	for i := 0; i < 40; i++ {
		jobs = append(jobs, uniformJob(i, 30+10*(i%5), task.NewError(0.1), float64(i)*3))
	}
	s, err := New(smallConfig(42), f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Sampled == 0 || st.Adaptive == 0 {
		t.Fatalf("no perturbation mix: %+v", st)
	}
	if st.Switched == 0 {
		t.Fatalf("no adaptive job ever switched: %+v", st)
	}
	if f.Learner().Samples(task.Small, 0)+f.Learner().Samples(task.Small, 1) == 0 {
		t.Fatal("learner collected no samples")
	}
}

// TestJobStateRecycling: finished jobs hand their runtime state — the
// jobState, its incremental ViewSet arrays and phase task blocks — back to
// the simulator's free list, and later admissions reuse it. Behavioral
// neutrality is pinned separately (goldens, the differential harnesses);
// this guards the recycling itself so the PR-5 allocation win cannot
// silently regress to per-job allocation.
func TestJobStateRecycling(t *testing.T) {
	s, err := New(smallConfig(21), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*task.Job, 0, 8)
	for i := 0; i < 8; i++ {
		jobs = append(jobs, uniformJob(i, 12, task.Exact(), float64(i)*40))
	}
	// Sequential arrivals far apart: at most one job is ever active, so
	// every admission after the first must find a pooled jobState.
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(s.jsPool) == 0 {
		t.Fatal("no jobState returned to the pool")
	}
	if len(s.jsPool) > 1 {
		t.Fatalf("%d pooled jobStates after non-overlapping jobs — admissions are not reusing them", len(s.jsPool))
	}
	js := s.jsPool[0]
	if js.job != nil || js.policy != nil || js.phase != nil || js.deadlineEv != nil {
		t.Fatalf("pooled jobState retains references: %+v", js)
	}
	if cap(js.tasks.work) == 0 || cap(js.tasks.copies) == 0 {
		t.Fatal("pooled jobState lost its recycled task block")
	}
	if js.deadlineFn == nil {
		t.Fatal("pooled jobState lost its reusable deadline closure")
	}
}
