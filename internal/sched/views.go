// Incremental candidate views: each job's TaskViews live in a
// spec.ViewSet that is kept alive across events instead of being rebuilt
// on every launch attempt. Events dirty only the tasks they touch — a
// copy launch, finish or preemption dirties that task; an estimator
// update dirties every incomplete task, but only when the normalized
// median actually moved (the only input a task's t_new depends on besides
// its immutable work and bias) — and the refresh before the next launch
// attempt re-derives exactly those views plus the time-dependent fields
// of running tasks. A launch attempt on an n-task job therefore touches
// O(running + dirtied) views instead of n.
//
// Equivalence with the from-scratch rebuild (buildViews) is exact, not
// approximate: the refresh replays the rebuild's side effects — estimator
// bias draws, oracle duration-factor draws, and pending-t_rem accuracy
// samples — at the same points in the same order, so a replay produces
// hash-identical results on either path. The differential tests in this
// package (TestDifferential*, FuzzIncrementalViews) hold both paths to
// DeepEqual views and identical decisions at every launch attempt.
package sched

import (
	"sort"

	"github.com/approx-analytics/grass/internal/spec"
)

// defaultIncMinTasks is the phase size where the incremental path starts
// to beat the rebuild walk. Measured on the BenchmarkSimulatorQuick mixed
// workload (jobs of 20–195 tasks, where the rebuild's tight scan wins by
// its constants) against BenchmarkLargeJobReplay (2000-task jobs, where
// the incremental path wins 4.7× wall clock per event); the crossover
// sits between.
const defaultIncMinTasks = 384

// jobViews is the per-job incremental view state.
type jobViews struct {
	vs spec.ViewSet
	// phase identifies which phaseRun vs is built for; a mismatch (new
	// phase, or never built) triggers a full lazy init on the next launch
	// attempt — lazy so the init's RNG draws land at the same stream
	// positions as the rebuild path's first buildViews walk.
	phase *phaseRun
	// estVer/median are the estimator state the TNew values were computed
	// at: a version bump with an unchanged normalized median changes no
	// estimate and therefore dirties nothing.
	estVer uint64
	median float64
	// lastNow is the simulation time the running views were refreshed at;
	// within one dispatch round's timestamp they stay valid.
	lastNow float64
	// dirty lists task slots touched since the last refresh (deduped via
	// the task block's dirty bits).
	dirty []int

	// onTNewRefresh, when set (tests), observes every estimator-driven
	// TNew rewrite — the invalidation-exactness property tests hook it.
	onTNewRefresh func(taskIndex int)
}

// live reports whether the view state tracks the job's current phase.
func (jv *jobViews) live(js *jobState) bool { return jv.phase == js.phase && jv.phase != nil }

// invalidate drops the view state (phase ended).
func (jv *jobViews) invalidate() {
	jv.phase = nil
	jv.dirty = jv.dirty[:0]
}

// dirtyTask marks task slot ti for re-derivation at the next refresh.
func (s *Simulator) dirtyTask(js *jobState, ti int) {
	jv := &js.jv
	if !jv.live(js) || js.tasks.dirty[ti] {
		return
	}
	js.tasks.dirty[ti] = true
	jv.dirty = append(jv.dirty, ti)
}

// noteLaunch updates the view state for a copy launch on task ti: the
// first copy moves the task to the running list, and the task's view
// (copy count, best copy, consumed oracle factor) is stale until refresh.
func (s *Simulator) noteLaunch(js *jobState, ti int) {
	if !js.jv.live(js) {
		return
	}
	if len(js.tasks.copies[ti]) == 1 {
		js.jv.vs.NoteLaunched(ti)
	}
	s.dirtyTask(js, ti)
}

// notePreempt updates the view state after a copy of task ti was preempted.
func (s *Simulator) notePreempt(js *jobState, ti int) {
	if !js.jv.live(js) {
		return
	}
	if len(js.tasks.copies[ti]) == 0 {
		js.jv.vs.NoteIdle(ti)
	}
	s.dirtyTask(js, ti)
}

// noteComplete removes task ti from the view state when it completes.
func (s *Simulator) noteComplete(js *jobState, ti int) {
	if !js.jv.live(js) {
		return
	}
	js.jv.vs.Complete(ti)
	// A stale dirty entry is skipped (and the flag cleared) by the next
	// refresh walk; the membership and order lists no longer know i.
}

// initViews builds the phase's ViewSet from scratch — the one O(n) walk
// per phase. It visits tasks in ascending index order so the estimator
// bias draws (and oracle factor draws) consume the shared RNG streams at
// exactly the positions the rebuild path's first buildViews walk would.
// No pending-t_rem samples are recorded: a phase's first launch attempt
// happens before any of its copies run.
func (s *Simulator) initViews(js *jobState, now float64) {
	jv := &js.jv
	tb := &js.tasks
	jv.vs.Reset(js.phase.n)
	if !s.cfg.Oracle {
		jv.estVer = s.est.Version()
		jv.median = s.est.NormalizedMedian()
	}
	for i := 0; i < js.phase.n; i++ {
		if tb.completed[i] {
			continue
		}
		jv.vs.Init(s.taskView(js, i, now, true))
		tb.dirty[i] = false
		s.viewTouches++
	}
	jv.vs.Seal()
	jv.dirty = jv.dirty[:0]
	jv.lastNow = now
	jv.phase = js.phase
}

// refreshViews brings the job's ViewSet up to date for a launch attempt
// at the current simulation time and replays the rebuild path's
// per-attempt estimator bookkeeping (one pending t_rem sample per
// speculable running task). The walk covers the union of the dirty list
// and the running set in ascending index order — the rebuild walk's order
// restricted to the tasks whose views can have changed.
func (s *Simulator) refreshViews(js *jobState) *spec.ViewSet {
	jv := &js.jv
	now := s.eng.Now()
	if !jv.live(js) {
		s.initViews(js, now)
		return &jv.vs
	}
	// Estimator invalidation: a version bump re-derives TNew for every
	// incomplete task, but only when the normalized median moved — TNew_i
	// = median × work_i × bias_i, so an unchanged median means every
	// estimate is unchanged. The uniform rescale preserves the
	// (TNew, index) order up to float rounding, which ResortByTNew checks
	// and repairs.
	//
	// Why this O(incomplete) patch loop stays, and the sub-O(n) "lazy
	// multiplicative epoch" does not land: an epoch scheme would keep the
	// stored keys and fold the median movement into one multiplier
	// (read TNew as stored × med₂/med₁), making the rescale O(1). That is
	// provably NOT hash-identical to this loop. The loop computes
	// fl(fl(fl(med₂·w)·b)) while the epoch reads back
	// fl(fl(fl(med₁·w)·b)·fl(med₂/med₁)) — different rounding paths, and
	// ~45% of random (med₁, med₂, w, b) quadruples differ in the last ulp
	// (TestLazyTNewRescaleIsInexact pins witnesses). The same holds for
	// re-associating to an immutable per-task base, fl(med·fl(w·b)): ~35%
	// of quadruples differ from the left-to-right product, so even
	// changing the canonical formula would move every golden. And the
	// ordered structure cannot simply skip the resort either: rounding
	// flips the relative order of near-tied keys under a median move
	// (that is exactly why ResortByTNew exists), so a structure that is
	// not revalidated after a rescale eventually violates the (TNew,
	// index) invariant orderPos panics on. The loop is also already off
	// the critical asymptotics: it runs at most once per completion (not
	// per attempt), only when the normalized median actually moved, and
	// its body is a two-multiply array patch — the tnewRescales counter in
	// BENCH_sim.json tracks exactly this cost.
	tb := &js.tasks
	if !s.cfg.Oracle {
		if ver := s.est.Version(); ver != jv.estVer {
			if med := s.est.NormalizedMedian(); med != jv.median {
				for i := 0; i < js.phase.n; i++ {
					if tb.completed[i] {
						continue
					}
					jv.vs.SetTNewBulk(i, med*tb.work[i]*tb.tnewBias[i])
					s.tnewRescales++
					if jv.onTNewRefresh != nil {
						jv.onTNewRefresh(i)
					}
				}
				jv.vs.ResortByTNew()
				jv.median = med
			}
			jv.estVer = ver
		}
	}
	sort.Ints(jv.dirty)
	nowAdvanced := now != jv.lastNow
	run := jv.vs.Running()
	di, ri := 0, 0
	for di < len(jv.dirty) || ri < len(run) {
		var i int
		switch {
		case di >= len(jv.dirty):
			i = run[ri]
			ri++
		case ri >= len(run):
			i = jv.dirty[di]
			di++
		case jv.dirty[di] < run[ri]:
			i = jv.dirty[di]
			di++
		case run[ri] < jv.dirty[di]:
			i = run[ri]
			ri++
		default:
			i = run[ri]
			ri++
			di++
		}
		if tb.completed[i] {
			tb.dirty[i] = false
			continue
		}
		if tb.dirty[i] || (nowAdvanced && len(tb.copies[i]) > 0) {
			jv.vs.Update(s.taskView(js, i, now, true))
			tb.dirty[i] = false
		}
		// The rebuild path records one pending t_rem accuracy sample per
		// speculable running task per attempt; replay that here so the
		// estimator's measured accuracy — and everything downstream of it
		// — is identical. The stored view is current: a best-copy change
		// dirties the task, and a time change refreshed it above.
		if !s.cfg.Oracle && len(tb.copies[i]) > 0 {
			if v := jv.vs.At(i); v.Speculable {
				if bc := tb.best[i]; bc.pendN < len(bc.pendTRem) {
					bc.pendTRem[bc.pendN] = pend{est: v.TRem, at: now}
					bc.pendN++
				}
			}
		}
		s.viewTouches++
	}
	jv.dirty = jv.dirty[:0]
	jv.lastNow = now
	return &jv.vs
}

// taskView derives one task's current TaskView — the single source of
// truth for the view float math, shared by the rebuild walk, the
// incremental init/refresh, and the differential check. With record set
// it may draw RNG exactly where the original buildViews did (a task's
// first t_new bias, an oracle redraw of a consumed duration factor);
// record=false (check mode) derives the view purely from existing state.
func (s *Simulator) taskView(js *jobState, ti int, now float64, record bool) spec.TaskView {
	tb := &js.tasks
	v := spec.TaskView{Index: ti}
	if len(tb.copies[ti]) > 0 {
		v.Running = true
		v.Copies = len(tb.copies[ti])
		// The earliest-finishing copy is cached on launch/completion/
		// preemption, so deriving a view does not rescan the copies.
		bestCopy := tb.best[ti]
		trueRem := tb.bestEnd[ti] - now
		if trueRem < 0 {
			trueRem = 0
		}
		v.Elapsed = now - tb.firstStart[ti]
		if bestCopy.duration > 0 {
			p := (now - bestCopy.start) / bestCopy.duration
			if p > 0.999 {
				p = 0.999
			}
			if p < 0 {
				p = 0
			}
			v.Progress = p
		}
		if s.cfg.Oracle {
			v.Speculable = true
			v.TRem = trueRem
		} else {
			v.Speculable = v.Progress >= s.cfg.MinSpecProgress
			// Extrapolation error shrinks as progress accumulates: a
			// nearly-done copy's remaining time is well known.
			bias := 1 + (bestCopy.tremBias-1)*(1-v.Progress)
			v.TRem = trueRem * bias
		}
	}
	if s.cfg.Oracle {
		if record && tb.nextFactor[ti] <= 0 {
			tb.nextFactor[ti] = s.drawFactor(js)
		}
		v.TNew = tb.work[ti] * tb.nextFactor[ti]
	} else {
		if record && tb.tnewBias[ti] == 0 {
			tb.tnewBias[ti] = s.est.SampleTNewBias()
		}
		v.TNew = s.est.NormalizedMedian() * tb.work[ti] * tb.tnewBias[ti]
	}
	return v
}
