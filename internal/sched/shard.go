// Sharded execution: one simulation partitioned across cores.
//
// The engine's global state — the fair-share dispatch over every active
// job, the shared slot pool, the estimator, the placement/duration RNG
// streams — couples every job to every other, so the exact global
// simulation cannot be computed in parallel without serializing on every
// event. Instead, partitioning is part of the MODEL, not the executor:
// a partitioned simulation splits the cluster's machines into P
// sub-clusters and the trace into P sub-traces (job ID mod P — the
// deterministic partitioner), and runs P fully independent copies of the
// plain engine, each with its own event loop, dispatch state, estimator,
// and RNG streams derived from the run seed by dist.SubSeed. This is the
// per-core state partitioning with a deterministic merge that DimmWitted
// applies to main-memory analytics: shards share no state at all, so they
// scale linearly and need no locks.
//
// The shard count K is pure execution parallelism over those P
// partitions and has NO semantic effect: every partition's output is a
// pure function of (Config, Seed, part, Parts), and the merge folds the
// per-partition results in canonical order, so RunStats are byte-identical
// for any K — one worker or sixteen, any GOMAXPROCS, any interleaving.
// P = 1 IS the plain engine: ShardSeed returns the seed unchanged,
// ShardConfig returns the config unchanged, and RunSharded runs one
// Simulator with no goroutines, so the unsharded goldens hold exactly.
// The differential tests hold RunSharded to DeepEqual against a
// hand-composed sequence of plain-engine runs for every policy.

package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/spec"
)

// ShardSeed derives partition part's simulator seed for a P-way
// partitioned run. Partitions must not share RNG streams (their event
// loops interleave draws differently than one global loop would), so each
// gets an independent splittable child of the run seed. With parts == 1
// the seed is returned unchanged — the single partition is the plain
// engine, byte for byte.
func ShardSeed(seed int64, part, parts int) int64 {
	if parts <= 1 {
		return seed
	}
	return dist.SubSeed(seed, part)
}

// ShardConfig returns partition part's simulator configuration for a
// P-way partitioned run: the cluster's machines are split as evenly as
// integers allow (the first Machines mod P partitions take one extra
// machine) and the seed becomes the partition's ShardSeed. Everything
// else — slots per machine, straggler tails, estimator noise, the
// MaxEvents guard — carries over unchanged; MaxEvents bounds each
// partition's own event loop. With parts == 1 the config is returned
// unchanged.
func ShardConfig(cfg Config, part, parts int) Config {
	if parts <= 1 {
		return cfg
	}
	total := cfg.Cluster.Machines
	m := total / parts
	if part < total%parts {
		m++
	}
	// The fault schedule partitions with the machines: each channel's rate
	// scales by the partition's machine share (mean gaps stretch by
	// total/m), so the cluster-wide fault intensity is invariant in P.
	cfg.Faults = cfg.Faults.Shard(part, parts, m, total)
	cfg.Cluster.Machines = m
	cfg.Seed = ShardSeed(cfg.Seed, part, parts)
	return cfg
}

// ShardedRun describes one partitioned simulation for RunSharded.
type ShardedRun struct {
	// Config is the unpartitioned simulator configuration; each partition
	// runs under ShardConfig(Config, part, Parts).
	Config Config
	// Parts is the number of logical partitions — the model: how the
	// cluster and trace are split. 1 reduces to the plain engine. It must
	// not exceed the cluster's machine count.
	Parts int
	// Workers is the number of goroutines executing partitions — the
	// execution parallelism. It never affects results; 0 means
	// min(Parts, GOMAXPROCS).
	Workers int
	// NewFactory builds the policy factory for one partition. Policy
	// state (GRASS's learner) must not be shared across partitions, so
	// the factory is constructed per partition with the partition's seed.
	NewFactory func(seed int64) (spec.Factory, error)
	// NewSource returns partition part's admission source — the jobs with
	// ID ≡ part (mod Parts), in arrival order (trace.NewShardStream).
	NewSource func(part int) (Source, error)
	// OnResult, when set, receives every job's result in ascending JobID
	// order — the canonical merge of the partitions' completion streams —
	// instead of results accumulating in RunStats.Results. Requires Jobs.
	//
	// The merge never blocks a partition: out-of-order completions buffer
	// until their IDs come up, so the buffer holds the partitions'
	// completion SKEW. With Workers >= Parts every partition runs
	// concurrently and the skew is the in-flight window (small); with
	// fewer workers a partition can run to completion before the
	// partition owning the merge frontier even starts, and the buffer
	// grows to that partition's whole result set — run trace-scale folds
	// with Workers == Parts.
	OnResult func(JobResult)
	// Jobs is the total job count when OnResult is set: the merge layer
	// interleaves the partition streams by the dense ID sequence
	// 0..Jobs-1 (partition p must emit exactly the IDs ≡ p mod Parts).
	Jobs int
	// Learned, when non-nil, seeds every partition's factory with
	// previously merged learned state (spec.SharedLearner.SeedLearned) —
	// the "next epoch" half of partition-invariant learning: each
	// partition starts from the combined cluster history instead of an
	// empty, partition-scoped store. The seeded base is query-only:
	// OnLearned still receives only THIS run's recordings, so an epoch
	// driver accumulates history by merging successive OnLearned values
	// (the shared base is never folded P times). Factories that do not
	// implement spec.SharedLearner ignore it.
	Learned spec.LearnedState
	// OnLearned, when set, receives the canonical ascending-partition
	// merge of the per-partition factories' learned states after the run
	// (MergeLearnedStates) — nil when no partition exported state (a
	// non-learning policy, or a learner that is not mergeable). The
	// merged state is exact: per-partition sketch stores fold bucket-wise,
	// so the result is byte-identical for any worker count and equals the
	// state a single factory fed every partition's samples would hold.
	OnLearned func(spec.LearnedState)
	// Walls, when non-nil with len ≥ Parts, receives each partition's
	// wall-clock execution time (distinct indices, so concurrent workers
	// never contend). Σ walls / max walls is the parallel-scaling bound
	// the shard-scaling benchmarks report.
	Walls []time.Duration
	// Ctx, when non-nil, cancels the run: every partition's event loop
	// checks it periodically (Simulator.SetContext) and workers stop
	// claiming new partitions once it is done. RunSharded then returns
	// ctx.Err(). An installed OnResult fold may have observed a prefix of
	// the canonical result stream before the cancel surfaced.
	Ctx context.Context
}

// RunSharded executes a partitioned simulation and merges the partition
// results deterministically. See the file comment for the semantics: the
// partition count is part of the model, the worker count is not.
func RunSharded(r ShardedRun) (*RunStats, error) {
	if r.Parts < 1 {
		return nil, fmt.Errorf("sched: %d partitions", r.Parts)
	}
	if r.NewFactory == nil || r.NewSource == nil {
		return nil, fmt.Errorf("sched: sharded run needs NewFactory and NewSource")
	}
	if err := r.Config.Validate(); err != nil {
		return nil, err
	}
	if r.Parts > r.Config.Cluster.Machines {
		return nil, fmt.Errorf("sched: %d partitions exceed %d machines (a partition needs at least one)",
			r.Parts, r.Config.Cluster.Machines)
	}
	if r.OnResult != nil && r.Jobs <= 0 {
		return nil, fmt.Errorf("sched: sharded OnResult needs the total job count")
	}
	if r.Parts == 1 {
		return r.runPlain()
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.Parts {
		workers = r.Parts
	}

	stats := make([]*RunStats, r.Parts)
	errs := make([]error, r.Parts)
	var learned []spec.LearnedState
	if r.OnLearned != nil {
		learned = make([]spec.LearnedState, r.Parts)
	}
	var merge *shardMerge
	var mergeErr error
	mergeDone := make(chan struct{})
	if r.OnResult != nil {
		merge = newShardMerge()
		go func() {
			defer close(mergeDone)
			mergeErr = merge.run(r.Parts, r.Jobs, r.OnResult)
		}()
	} else {
		close(mergeDone)
	}

	// Workers claim partitions from a shared counter. Which worker runs a
	// partition — and when — cannot matter: partitions share no state, and
	// every per-partition output lands in its own slot.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= r.Parts {
					return
				}
				if r.Ctx != nil && r.Ctx.Err() != nil {
					// Cancelled: don't start the partition, but still end
					// its result stream — merge.run waits for every
					// partition to finish, and a skipped finish would
					// deadlock the <-mergeDone below.
					errs[p] = r.Ctx.Err()
					if merge != nil {
						merge.finish()
					}
					continue
				}
				t0 := time.Now()
				var partLearned spec.LearnedState
				stats[p], partLearned, errs[p] = r.runPart(p, merge)
				if learned != nil {
					learned[p] = partLearned
				}
				if r.Walls != nil && p < len(r.Walls) {
					r.Walls[p] = time.Since(t0)
				}
				if merge != nil {
					merge.finish()
				}
			}
		}()
	}
	wg.Wait()
	<-mergeDone

	// A deterministic error: the lowest-index partition failure wins, and
	// only then a merge failure (a missing result is always the echo of
	// some partition failing or a source emitting the wrong ID set).
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if mergeErr != nil {
		return nil, mergeErr
	}
	if r.OnLearned != nil {
		r.OnLearned(MergeLearnedStates(learned))
	}
	merged := MergeShardStats(r.Config, r.Parts, stats)
	return merged, nil
}

// runPlain is the Parts == 1 reduction: one plain-engine run, no
// goroutines. OnResult still delivers in ascending JobID order — the
// sharded contract — via an inline reorder bounded by the engine's
// in-flight window (the single engine admits IDs in order, so a result
// waits only for lower-ID jobs still running).
func (r ShardedRun) runPlain() (*RunStats, error) {
	factory, err := r.NewFactory(r.Config.Seed)
	if err != nil {
		return nil, err
	}
	seedLearned(factory, r.Learned)
	sim, err := New(r.Config, factory)
	if err != nil {
		return nil, err
	}
	if r.Ctx != nil {
		sim.SetContext(r.Ctx)
	}
	var pending map[int]JobResult
	nextID := 0
	if r.OnResult != nil {
		pending = make(map[int]JobResult)
		sim.OnResult(func(res JobResult) {
			pending[res.JobID] = res
			for {
				q, ok := pending[nextID]
				if !ok {
					return
				}
				delete(pending, nextID)
				nextID++
				r.OnResult(q)
			}
		})
	}
	src, err := r.NewSource(0)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stats, err := sim.RunSource(src)
	if r.Walls != nil && len(r.Walls) > 0 {
		r.Walls[0] = time.Since(t0)
	}
	if err != nil {
		return nil, err
	}
	if r.OnResult != nil && (nextID != r.Jobs || len(pending) > 0) {
		return nil, fmt.Errorf("sched: sharded fold saw %d of %d jobs with %d stranded (IDs must be dense from 0)",
			nextID, r.Jobs, len(pending))
	}
	if r.OnLearned != nil {
		r.OnLearned(exportLearned(factory))
	}
	return stats, nil
}

// seedLearned pre-loads a factory with merged learned state when both
// sides support it.
func seedLearned(factory spec.Factory, state spec.LearnedState) {
	if state == nil {
		return
	}
	if sl, ok := factory.(spec.SharedLearner); ok {
		sl.SeedLearned(state)
	}
}

// exportLearned snapshots a factory's mergeable learned state, or nil.
func exportLearned(factory spec.Factory) spec.LearnedState {
	if sl, ok := factory.(spec.SharedLearner); ok {
		return sl.ExportLearned()
	}
	return nil
}

// MergeLearnedStates folds per-partition learned states in ascending
// partition order — the canonical merge, exported alongside
// MergeShardStats so the differential harness can compose plain-engine
// runs exactly the way RunSharded does. nil entries (cancelled or
// non-exporting partitions) are skipped; the result is nil when nothing
// was exported. The first non-nil state becomes the accumulator, so
// callers own the returned value only as much as they owned the inputs
// (RunSharded's inputs are per-partition exports owned by the merge).
func MergeLearnedStates(states []spec.LearnedState) spec.LearnedState {
	var acc spec.LearnedState
	for _, s := range states {
		if s == nil {
			continue
		}
		if acc == nil {
			acc = s
			continue
		}
		acc.MergeLearned(s)
	}
	return acc
}

// runPart executes one partition: its own factory, simulator, and source,
// all derived from the partition index — nothing shared with any other
// partition. The partition's exported learned state (nil for
// non-learning factories) rides back alongside the stats for the
// canonical post-run merge.
func (r ShardedRun) runPart(p int, merge *shardMerge) (*RunStats, spec.LearnedState, error) {
	factory, err := r.NewFactory(ShardSeed(r.Config.Seed, p, r.Parts))
	if err != nil {
		return nil, nil, err
	}
	seedLearned(factory, r.Learned)
	sim, err := New(ShardConfig(r.Config, p, r.Parts), factory)
	if err != nil {
		return nil, nil, err
	}
	if r.Ctx != nil {
		sim.SetContext(r.Ctx)
	}
	if merge != nil {
		sim.OnResult(merge.push)
	}
	src, err := r.NewSource(p)
	if err != nil {
		return nil, nil, err
	}
	stats, err := sim.RunSource(src)
	if err != nil {
		return nil, nil, err
	}
	var out spec.LearnedState
	if r.OnLearned != nil { // exporting clones the store; skip unless asked
		out = exportLearned(factory)
	}
	return stats, out, nil
}

// shardMerge interleaves the partitions' completion-ordered result
// streams into the canonical ascending-JobID fold order. push NEVER
// blocks a partition — blocking a producer would deadlock whenever the
// worker pool is smaller than the partition count (the partition owning
// the merge frontier may not have started yet) and would serialize the
// lead partition otherwise — so out-of-order completions buffer until the
// frontier reaches them. The buffer therefore holds the partitions'
// completion skew; see ShardedRun.OnResult for the sizing contract.
type shardMerge struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending map[int]JobResult
	done    int // partitions whose result streams have ended
}

func newShardMerge() *shardMerge {
	m := &shardMerge{pending: make(map[int]JobResult)}
	m.cond.L = &m.mu
	return m
}

// push hands one partition result to the merge (called from partition
// workers, any order).
func (m *shardMerge) push(r JobResult) {
	m.mu.Lock()
	m.pending[r.JobID] = r
	m.mu.Unlock()
	m.cond.Signal()
}

// finish records the end of one partition's stream.
func (m *shardMerge) finish() {
	m.mu.Lock()
	m.done++
	m.mu.Unlock()
	m.cond.Signal()
}

// run folds results in ascending JobID order: the frontier advances to
// each ID as it arrives, and ends early — with a diagnostic — if every
// partition finished without producing the frontier ID. It returns only
// after all partitions ended, so a source emitting IDs outside 0..jobs-1
// is always detected, never silently dropped.
func (m *shardMerge) run(parts, jobs int, fold func(JobResult)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for n := 0; n < jobs; n++ {
		for {
			if r, ok := m.pending[n]; ok {
				delete(m.pending, n)
				m.mu.Unlock()
				fold(r) // without the lock: pushes must not wait on the fold
				m.mu.Lock()
				break
			}
			if m.done == parts {
				return fmt.Errorf("sched: partitions finished without job %d's result (partition %d's source must emit it)",
					n, n%parts)
			}
			m.cond.Wait()
		}
	}
	for m.done < parts {
		m.cond.Wait()
	}
	if len(m.pending) > 0 {
		return fmt.Errorf("sched: %d results beyond the %d expected jobs (sources must emit IDs 0..Jobs-1 exactly)",
			len(m.pending), jobs)
	}
	return nil
}

// MergeShardStats folds per-partition RunStats into the partitioned run's
// aggregate, in ascending partition order — the canonical merge, exported
// so the differential harness can compose plain-engine runs exactly the
// way RunSharded does:
//
//   - Results: concatenated and sorted by JobID (the plain engine's
//     ordering). Empty when the run streamed results through OnResult.
//   - Makespan: the latest partition finish.
//   - Events: summed.
//   - MeanUtilization: busy-slot-time over total-slot-time through the
//     merged makespan — Σ util_p·slots_p·makespan_p over slots·makespan.
//     A partition idling after its own last job counts as idle, exactly
//     as an idle region of one big cluster would.
//   - EstimatorAccuracy: event-weighted mean of the partitions' measured
//     accuracies — a deterministic diagnostic (per-partition sample
//     counts are not retained, so exact pooling is not reconstructable).
func MergeShardStats(cfg Config, parts int, stats []*RunStats) *RunStats {
	merged := &RunStats{}
	var busyIntegral, accWeighted float64
	var totalSlots int
	for p := 0; p < parts; p++ {
		s := stats[p]
		slots := ShardConfig(cfg, p, parts).Cluster.Machines * cfg.Cluster.SlotsPerMachine
		totalSlots += slots
		merged.Results = append(merged.Results, s.Results...)
		if s.Makespan > merged.Makespan {
			merged.Makespan = s.Makespan
		}
		merged.Events += s.Events
		busyIntegral += s.MeanUtilization * float64(slots) * s.Makespan
		accWeighted += s.EstimatorAccuracy * float64(s.Events)
		merged.Faults.Crashes += s.Faults.Crashes
		merged.Faults.Restores += s.Faults.Restores
		merged.Faults.Storms += s.Faults.Storms
		merged.Faults.Bursts += s.Faults.Bursts
		merged.Faults.LostCopies += s.Faults.LostCopies
		merged.Faults.InterferedSlots += s.Faults.InterferedSlots
	}
	if merged.Makespan > 0 && totalSlots > 0 {
		merged.MeanUtilization = busyIntegral / (float64(totalSlots) * merged.Makespan)
	}
	if merged.Events > 0 {
		merged.EstimatorAccuracy = accWeighted / float64(merged.Events)
	}
	sort.Slice(merged.Results, func(i, j int) bool { return merged.Results[i].JobID < merged.Results[j].JobID })
	return merged
}
