package sched

import (
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// FuzzIncrementalViews replays a fuzzed sequence of simulator events —
// copy launches and finishes (engine steps), fair-share preemptions,
// estimator-base bumps, and extra same-timestamp dispatch rounds —
// against both view paths: every launch attempt runs the differential
// check (incremental ViewSet DeepEqual a from-scratch rebuild, and
// PickIncremental's Decision identical to the reference Pick's). The op
// stream steers which dirtying transitions interleave, which is exactly
// the state space the incremental maintenance must cover.
func FuzzIncrementalViews(f *testing.F) {
	f.Add(int64(1), byte(0), []byte{0, 0, 1, 2, 3, 0, 1, 0, 2, 0, 3, 3, 0})
	f.Add(int64(2), byte(3), []byte{0, 1, 1, 1, 0, 0, 2, 2, 0, 3, 0, 1, 2, 3})
	f.Add(int64(3), byte(6), []byte{2, 2, 2, 0, 0, 0, 1, 3, 1, 3, 1, 3, 0, 0})
	f.Add(int64(42), byte(5), []byte{0, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, seed int64, polByte byte, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		p := diffPolicies[int(polByte)%len(diffPolicies)]
		cfg := smallConfig(seed)
		cfg.Oracle = p.oracle
		s, err := New(cfg, p.factory(t))
		if err != nil {
			t.Fatal(err)
		}
		s.incMinTasks = 0 // every phase incremental, whatever its size
		attachDifferentialCheck(t, s)
		// A small mixed active set: all three bound kinds, one DAG job, so
		// phase transitions and deadline freezes are reachable.
		s.admit(uniformJob(0, 40, task.Exact(), 0))
		s.admit(dagJob(1, 25, task.NewError(0.2), 0))
		s.admit(uniformJob(2, 30, task.NewDeadline(15), 0))
		for _, op := range ops {
			switch op % 4 {
			case 0:
				// Fire the next event: copy completions, deadline freezes,
				// and the dispatch rounds they trigger.
				if !s.eng.Step() {
					return
				}
			case 1:
				// Estimator-base bump between events: the next refresh must
				// invalidate exactly the changed fresh-copy estimates.
				if !s.cfg.Oracle {
					s.est.ObserveCompletion(0.25 + float64(op)/64)
				}
				s.dispatch()
			case 2:
				// Preempt a job's youngest copy (the fair-share preemption
				// primitive), then redispatch the freed slot.
				if len(s.active) > 0 {
					js := s.active[int(op/4)%len(s.active)]
					if s.preemptYoungest(js) {
						s.dispatch()
					}
				}
			case 3:
				// Extra dispatch at the same timestamp: refresh with nothing
				// dirty, where pending-t_rem samples must still accrue.
				s.dispatch()
			}
		}
	})
}
