package sched

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/oracle"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// This file is the differential harness locking the incremental candidate
// views to the from-scratch rebuild path: at every launch attempt of a
// fixed-seed run, the maintained ViewSet must DeepEqual a side-effect-free
// buildViews rebuild and the policy's PickIncremental must return the
// identical Decision its reference Pick returns — for all seven policy
// families. A full-run check then asserts the end-to-end RunStats are
// DeepEqual when the same workload replays with the incremental path
// disabled entirely.

// pickOnly strips the IncrementalPolicy implementation from a policy,
// forcing the simulator onto the from-scratch buildViews + Pick path (the
// pre-incremental behavior).
type pickOnly struct{ p spec.Policy }

func (w pickOnly) Name() string { return w.p.Name() }
func (w pickOnly) Pick(ctx spec.Ctx, tasks []spec.TaskView) (spec.Decision, bool) {
	return w.p.Pick(ctx, tasks)
}

// rebuildOnly wraps a factory so every policy it builds is a pickOnly.
type rebuildOnly struct{ f spec.Factory }

func (r rebuildOnly) Name() string { return r.f.Name() }
func (r rebuildOnly) NewPolicy(jobID, numTasks int) spec.Policy {
	return pickOnly{r.f.NewPolicy(jobID, numTasks)}
}

// diffPolicies enumerates the seven policy families the harness covers.
// oracle selects ground-truth views (Config.Oracle).
var diffPolicies = []struct {
	name    string
	oracle  bool
	factory func(t testing.TB) spec.Factory
}{
	{"gs", false, func(testing.TB) spec.Factory { return spec.Stateless(spec.NewGS()) }},
	{"ras", false, func(testing.TB) spec.Factory { return spec.Stateless(spec.NewRAS()) }},
	{"late", false, func(testing.TB) spec.Factory { return spec.Stateless(spec.NewLATE()) }},
	{"mantri", false, func(testing.TB) spec.Factory { return spec.Stateless(spec.NewMantri()) }},
	{"nospec", false, func(testing.TB) spec.Factory { return spec.Stateless(spec.NoSpec{}) }},
	{"grass", false, func(t testing.TB) spec.Factory {
		f, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return f
	}},
	{"oracle", true, func(testing.TB) spec.Factory { return oracle.New() }},
}

// dagJob builds a job whose input tasks have per-index work variation and
// which carries intermediate DAG phases — so the differential run crosses
// phase transitions, not just the input phase.
func dagJob(id int, n int, bound task.Bound, arrival float64) *task.Job {
	work := make([]float64, n)
	for i := range work {
		work[i] = 0.5 + float64(i%7)*0.25
	}
	return &task.Job{
		ID:        id,
		Arrival:   arrival,
		InputWork: work,
		Phases: []task.Phase{
			{NumTasks: 4 + n/10, WorkScale: 0.8},
			{NumTasks: 2, WorkScale: 1.2},
		},
		Bound: bound,
	}
}

// diffWorkload is a fixed mixed workload in the spirit of the exp
// harness's Quick configuration: overlapping jobs of varying size under
// all three bound kinds, multi-phase DAGs, and tight-deadline arrivals
// into a busy cluster to force fair-share preemption.
func diffWorkload() []*task.Job {
	jobs := []*task.Job{}
	id := 0
	add := func(j *task.Job) { jobs = append(jobs, j); id++ }
	for i := 0; i < 12; i++ {
		size := 15 + (i%5)*30
		arrival := float64(i) * 4
		switch i % 3 {
		case 0:
			add(uniformJob(id, size, task.Exact(), arrival))
		case 1:
			add(dagJob(id, size, task.NewError(0.1), arrival))
		default:
			add(dagJob(id, size, task.NewDeadline(20), arrival))
		}
	}
	// Tight deadline jobs arriving into a saturated cluster: the fairness
	// preemption path fires, dirtying victims' tasks mid-round.
	add(uniformJob(id, 120, task.Exact(), 1.5))
	add(uniformJob(id, 60, task.NewDeadline(2), 2.0))
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	return jobs
}

// attachDifferentialCheck arms the simulator's per-attempt hook: the
// incremental ViewSet and decision are compared against a from-scratch,
// side-effect-free rebuild and the reference Pick. Returns a counter of
// checked attempts.
func attachDifferentialCheck(t testing.TB, s *Simulator) *int {
	t.Helper()
	count := 0
	var refBuf, incBuf []spec.TaskView
	s.checkViews = func(js *jobState, ctx spec.Ctx, vs *spec.ViewSet, d spec.Decision, ok bool) {
		count++
		now := s.eng.Now()
		refBuf = refBuf[:0]
		for i := 0; i < js.phase.n; i++ {
			if js.tasks.completed[i] {
				continue
			}
			refBuf = append(refBuf, s.taskView(js, i, now, false))
		}
		incBuf = vs.AppendCompact(incBuf[:0])
		if !reflect.DeepEqual(refBuf, incBuf) {
			t.Fatalf("job %d at t=%v: incremental views diverged from rebuild\nrebuild:     %s\nincremental: %s",
				js.job.ID, now, diffViews(refBuf, incBuf), diffViews(incBuf, refBuf))
		}
		rd, rok := js.policy.Pick(ctx, refBuf)
		if rok != ok || rd != d {
			t.Fatalf("job %d at t=%v: policy %s decisions diverged: rebuild (%+v, %v) vs incremental (%+v, %v)",
				js.job.ID, now, js.policy.Name(), rd, rok, d, ok)
		}
	}
	return &count
}

// diffViews formats the first differing view for a failure message.
func diffViews(a, b []spec.TaskView) string {
	if len(a) != len(b) {
		return fmt.Sprintf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("view %d: %+v != %+v", i, a[i], b[i])
		}
	}
	return "equal"
}

// TestDifferentialViews replays the fixed-seed mixed workload under every
// policy family with the per-attempt check armed: incremental views must
// DeepEqual a from-scratch rebuild and decisions must match the reference
// Pick at every single launch attempt.
func TestDifferentialViews(t *testing.T) {
	for _, p := range diffPolicies {
		t.Run(p.name, func(t *testing.T) {
			cfg := smallConfig(7)
			cfg.Oracle = p.oracle
			s, err := New(cfg, p.factory(t))
			if err != nil {
				t.Fatal(err)
			}
			s.incMinTasks = 0 // every phase incremental, whatever its size
			checked := attachDifferentialCheck(t, s)
			if _, err := s.Run(diffWorkload()); err != nil {
				t.Fatal(err)
			}
			if *checked < 1000 {
				t.Fatalf("only %d launch attempts checked; workload too small to exercise the incremental path", *checked)
			}
		})
	}
}

// TestIncrementalMatchesRebuild runs the same workload twice per policy —
// once on the incremental path, once with IncrementalPolicy stripped so
// the simulator rebuilds views from scratch — and requires the complete
// RunStats (every per-job result, makespan, event count, estimator
// accuracy) to be deeply equal: the incremental path is hash-identical to
// the pre-incremental behavior, not merely close.
func TestIncrementalMatchesRebuild(t *testing.T) {
	for _, p := range diffPolicies {
		t.Run(p.name, func(t *testing.T) {
			cfg := smallConfig(11)
			cfg.Oracle = p.oracle
			run := func(f spec.Factory) *RunStats {
				s, err := New(cfg, f)
				if err != nil {
					t.Fatal(err)
				}
				s.incMinTasks = 0 // incremental for every phase (no-op for pickOnly)
				stats, err := s.Run(diffWorkload())
				if err != nil {
					t.Fatal(err)
				}
				return stats
			}
			inc := run(p.factory(t))
			reb := run(rebuildOnly{p.factory(t)})
			if !reflect.DeepEqual(inc, reb) {
				t.Fatalf("incremental RunStats diverged from rebuild path:\nincremental: %+v\nrebuild:     %+v", inc, reb)
			}
		})
	}
}
