// Package sched is the discrete-event cluster simulator that binds the
// substrates together: it admits jobs from a trace, splits slots max-min
// fairly across running jobs (the source of multi-waved execution, §2.1),
// asks each job's speculation policy what to launch when a slot frees, runs
// copies with i.i.d. heavy-tailed durations on heterogeneous machines, kills
// losing copies when the first finishes, enforces deadline and error bounds,
// sequences DAG phases (§5.2), and reports per-job results.
//
// The paper validates a trace-driven simulator against its 200-node EC2
// deployment; this package is that simulator, built from scratch.
package sched

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/task"
)

// Config parameterizes a simulation run.
type Config struct {
	// Cluster describes machines and slots.
	Cluster cluster.Config
	// Estimator configures t_rem/t_new noise (ignored when Oracle is set).
	Estimator estimate.Config
	// DurationBeta is the Pareto shape of the straggler tail of per-copy
	// duration factors. The paper's Hill estimate for production traces is
	// 1.259.
	DurationBeta float64
	// DurationCap truncates the duration factor at this multiple of the
	// median factor (traces are finite; default 50).
	DurationCap float64
	// TailFrac is the probability a copy draws from the straggler tail
	// instead of the predictable body around the median (Figure 3 shows the
	// production distribution is "not exactly Pareto in its body" — only
	// the tail is). 1 gives a pure Pareto factor (the AblationTail bench).
	TailFrac float64
	// TailStart is where the straggler tail begins, in multiples of the
	// median copy duration (default 1.5).
	TailStart float64
	// IntermediateBeta is the (lighter) tail for intermediate-phase tasks,
	// which the paper notes "have relatively fewer stragglers" (§5.2).
	IntermediateBeta float64
	// MinSpecProgress is the progress fraction a copy must report before the
	// task becomes eligible for speculation (§5: progress reports every 5%
	// of data; schedulers cannot estimate t_rem for a copy that has not
	// reported). Default 0.15.
	MinSpecProgress float64
	// Seed drives all randomness; identical seeds with identical traces
	// replay identical stragglers, so policy comparisons are paired.
	Seed int64
	// MaxEvents guards against runaway simulations (default 50M).
	MaxEvents uint64
	// EventQueue selects the engine's pending-event queue implementation.
	// The zero value is simevent.Calendar, the default; simevent.Heap is
	// the reference implementation kept for differential testing. Both
	// produce byte-identical runs — only throughput differs.
	EventQueue simevent.QueueKind
	// Faults is the deterministic fault schedule (machine crash/restart,
	// rack slowdown storms, background-load interference). The zero value
	// injects nothing and costs nothing: fault randomness lives in its own
	// seed substream, so a fault-free run is byte-identical to a build
	// without the feature.
	Faults fault.Config
	// Oracle gives policies ground-truth TaskViews: exact remaining times
	// and the exact duration the next copy of each task would have. Used for
	// the optimal baseline (§2.3, §6.2.3).
	Oracle bool
}

// DefaultConfig returns the configuration used throughout the evaluation:
// a 200-node cluster (the paper's EC2 testbed size) with 2 slots per node,
// β=1.259 task-duration tails, and estimator noise tuned to the paper's
// measured ~72%/76% accuracies.
func DefaultConfig() Config {
	return Config{
		Cluster: cluster.Config{
			Machines:           200,
			SlotsPerMachine:    2,
			HeterogeneitySigma: 0.2,
		},
		Estimator: estimate.Config{
			// Injected noise models only the estimator's own error
			// (progress extrapolation, input-size normalization). The
			// irreducible unpredictability of straggler luck is already in
			// the realized durations, and scoring against those reproduces
			// the paper's measured ~72%/76% accuracies.
			TRemNoise: 0.4,
			TNewNoise: 0.15,
			Prior:     1,
		},
		DurationBeta:     1.259,
		DurationCap:      30,
		TailFrac:         0.25,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
		Seed:             1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if err := c.Estimator.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	// Every float bound below rejects NaN explicitly: NaN fails all ordered
	// comparisons, so a range check alone waves it straight into the
	// samplers (the bug class cluster.Config.Validate had with a NaN
	// heterogeneity sigma).
	if !finitePositive(c.DurationBeta) {
		return fmt.Errorf("sched: duration beta %v", c.DurationBeta)
	}
	if math.IsNaN(c.DurationCap) || c.DurationCap <= 1 {
		return fmt.Errorf("sched: duration cap %v must exceed 1 (median multiples)", c.DurationCap)
	}
	if math.IsNaN(c.TailFrac) || c.TailFrac <= 0 || c.TailFrac > 1 {
		return fmt.Errorf("sched: tail fraction %v out of (0, 1]", c.TailFrac)
	}
	// The intermediate-phase distribution always halves TailFrac into a
	// body-tail mixture, so TailStart must be sane even when TailFrac == 1
	// selects a pure Pareto for input tasks. A +Inf tail start would pass a
	// "> 1" check but puts the tail beyond every cap.
	if math.IsNaN(c.TailStart) || math.IsInf(c.TailStart, 0) || c.TailStart <= 1 {
		return fmt.Errorf("sched: tail start %v must exceed the median (1) and be finite", c.TailStart)
	}
	if !finitePositive(c.IntermediateBeta) {
		return fmt.Errorf("sched: intermediate beta %v", c.IntermediateBeta)
	}
	if math.IsNaN(c.MinSpecProgress) || c.MinSpecProgress < 0 || c.MinSpecProgress >= 1 {
		return fmt.Errorf("sched: min speculation progress %v out of [0, 1)", c.MinSpecProgress)
	}
	return nil
}

// finitePositive reports v ∈ (0, +Inf) excluding NaN — the shape every
// Pareto-beta parameter must have.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// JobResult is the outcome of one job.
type JobResult struct {
	// JobID echoes the trace job ID.
	JobID int
	// NumTasks is the input task count; Bin its paper bin.
	NumTasks int
	Bin      task.SizeBin
	// Kind, Deadline, Epsilon echo the bound.
	Kind     task.BoundKind
	Deadline float64
	Epsilon  float64
	// DeadlineFactor echoes the trace's deadline calibration factor (§6.1).
	DeadlineFactor float64
	// DAGLength is the total phase count.
	DAGLength int
	// Accuracy is the fraction of input tasks completed when the bound was
	// enforced. Deadline jobs: fraction at the (input) deadline. Error-bound
	// jobs: their target fraction (they run until they reach it).
	Accuracy float64
	// Duration is the job's completion time minus arrival. For deadline
	// jobs whose deadline cut them off this is the full span including
	// intermediate phases.
	Duration float64
	// InputDuration is the input phase's span (arrival to bound
	// enforcement), the quantity Figures 7/11/14 speed up.
	InputDuration float64
	// Launched counts every copy launched; Speculative counts the
	// speculative ones; Killed counts copies killed by a sibling finishing;
	// Preempted counts copies this job lost to fair-share preemption; Lost
	// counts copies killed by machine crashes — unlike Preempted, the
	// scheduler chose neither the victim nor the moment, and the lost
	// task respeculates through the ordinary dispatch path.
	Launched, Speculative, Killed, Preempted, Lost int
	// StragglerRatio is the job's slowest completed input-task duration
	// over the median (the paper reports ~8× in production).
	StragglerRatio float64
}

// RunStats aggregates a simulation run.
type RunStats struct {
	// Results holds one entry per job in arrival order.
	Results []JobResult
	// Makespan is the time the last job finished.
	Makespan float64
	// MeanUtilization is the time-averaged slot utilization.
	MeanUtilization float64
	// Events is the number of simulator events fired.
	Events uint64
	// EstimatorAccuracy is the measured combined estimation accuracy at the
	// end of the run (§5.1 reports ~74%).
	EstimatorAccuracy float64
	// Faults counts the fault events the run's schedule applied (all zero
	// without a fault schedule).
	Faults FaultStats
}

// medianFactorXm returns the Pareto scale xm that makes a pure Pareto
// factor distribution's median exactly 1, so a task's work equals its
// median copy duration: median = xm·2^(1/β)  ⇒  xm = 2^(−1/β).
func medianFactorXm(beta float64) float64 {
	return math.Pow(2, -1/beta)
}

// newFactorDist builds the copy-duration factor distribution: a body-tail
// mixture with median ≈ 1, or a pure truncated Pareto with median 1 when
// tailFrac == 1.
func newFactorDist(beta, cap, tailFrac, tailStart float64) (dist.Sampler, error) {
	if tailFrac >= 1 {
		xm := medianFactorXm(beta)
		tp, err := dist.NewTruncatedPareto(xm, beta, cap)
		if err != nil {
			return nil, err
		}
		return tp, nil
	}
	bt, err := dist.NewBodyTail(0.6, 1.4, tailStart, beta, cap, tailFrac)
	if err != nil {
		return nil, err
	}
	return bt, nil
}
