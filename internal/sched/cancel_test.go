package sched

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// TestSetContextCancelStopsRun: a context cancelled mid-run stops the
// event loop between batches and Run returns ctx.Err(); a pre-cancelled
// context stops it before the first event fires.
func TestSetContextCancelStopsRun(t *testing.T) {
	tc := sourceTestTrace(1)
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetContext(pre)
	if _, err := sim.Run(jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: %v, want context.Canceled", err)
	}

	// Mid-run: cancel from inside an OnResult handler — the handler runs on
	// the simulator goroutine, so the very next periodic check (and the
	// post-drain re-check) must observe it deterministically.
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	sim2, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	sim2.SetContext(ctx)
	finished := 0
	sim2.OnResult(func(JobResult) {
		finished++
		if finished == 3 {
			cancelMid()
		}
	})
	if _, err := sim2.Run(jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: %v, want context.Canceled", err)
	}
	if finished >= tc.Jobs {
		t.Fatalf("cancel did not stop the run: all %d jobs finished", finished)
	}
}

// TestRunUntilHonorsContext: the bounded drain observes cancellation with
// the same cadence as Run — a pre-cancelled context stops RunUntil before
// any event fires, and a cancel from inside an event callback stops it at
// the next periodic check with the queue intact.
func TestRunUntilHonorsContext(t *testing.T) {
	mk := func() (*Simulator, context.Context, context.CancelFunc) {
		sim, err := New(smallConfig(71), spec.Stateless(spec.NoSpec{}))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sim.SetContext(ctx)
		// Enough tasks that well over ctxCheckEvery events remain after the
		// cancellation point, so an unchecked drain would visibly overrun.
		sim.admit(uniformJob(0, 3*ctxCheckEvery, task.Exact(), 0))
		return sim, ctx, cancel
	}

	sim, _, cancel := mk()
	cancel()
	if err := sim.RunUntil(1e9); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunUntil: %v, want context.Canceled", err)
	}
	if sim.eng.Fired() != 0 {
		t.Fatalf("pre-cancelled RunUntil fired %d events, want 0", sim.eng.Fired())
	}

	sim, _, cancel = mk()
	fired := false
	sim.eng.At(1e-9, func(*simevent.Engine) {
		fired = true
		cancel()
	})
	if err := sim.RunUntil(1e9); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-drain cancel: %v, want context.Canceled", err)
	}
	if !fired {
		t.Fatal("cancelling event never fired")
	}
	if sim.eng.Len() == 0 {
		t.Fatal("cancelled RunUntil drained the whole queue — the periodic check never ran")
	}
	// An uncancelled bounded drain still works and leaves post-t events queued.
	sim2, err := New(smallConfig(72), spec.Stateless(spec.NoSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	sim2.admit(uniformJob(0, 30, task.Exact(), 0))
	if err := sim2.RunUntil(1e-6); err != nil {
		t.Fatalf("bounded drain: %v", err)
	}
	if now := sim2.eng.Now(); now != 1e-6 {
		t.Fatalf("clock at %v after RunUntil(1e-6)", now)
	}
	if sim2.eng.Len() == 0 {
		t.Fatal("RunUntil(1e-6) drained events scheduled after t")
	}
}

// TestCancelLeavesFreshRunsIntact: a cancelled run abandons its pooled
// state consistently — a FRESH simulator over the same trace afterwards
// produces exactly the results of a never-cancelled run.
func TestCancelLeavesFreshRunsIntact(t *testing.T) {
	tc := sourceTestTrace(1)
	want := func() *RunStats {
		sim, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
		if err != nil {
			t.Fatal(err)
		}
		stream, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sim.RunSource(stream)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()

	// Cancel a streamed run partway through, reusing the stream type (its
	// pool must stay valid after abandonment).
	ctx, cancel := context.WithCancel(context.Background())
	sim, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetContext(ctx)
	n := 0
	sim.OnResult(func(JobResult) {
		n++
		if n == 5 {
			cancel()
		}
	})
	stream, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSource(stream); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream run: %v, want context.Canceled", err)
	}

	got := func() *RunStats {
		sim, err := New(sourceTestConfig(), spec.Stateless(spec.NewGS()))
		if err != nil {
			t.Fatal(err)
		}
		stream, err := trace.NewStream(tc)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sim.RunSource(stream)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("a run after a cancelled run diverged — pooled state corrupted")
	}
}

// TestRunShardedCancel: a cancelled ShardedRun returns ctx.Err() for both
// the plain reduction and the multi-partition path, with every worker and
// the merge goroutine shut down (no deadlock — the test completing is the
// assertion).
func TestRunShardedCancel(t *testing.T) {
	tc := sourceTestTrace(1)
	for _, parts := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunSharded(ShardedRun{
			Config:  sourceTestConfig(),
			Parts:   parts,
			Workers: 2,
			Ctx:     ctx,
			NewFactory: func(seed int64) (spec.Factory, error) {
				return spec.Stateless(spec.NewGS()), nil
			},
			NewSource: func(p int) (Source, error) { return trace.NewShardStream(tc, p, parts) },
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parts=%d: cancelled sharded run: %v, want context.Canceled", parts, err)
		}
	}

	// Fold mode exercises the merge goroutine's shutdown path too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSharded(ShardedRun{
		Config:  sourceTestConfig(),
		Parts:   3,
		Workers: 3,
		Ctx:     ctx,
		Jobs:    tc.Jobs,
		NewFactory: func(seed int64) (spec.Factory, error) {
			return spec.Stateless(spec.NewGS()), nil
		},
		NewSource: func(p int) (Source, error) { return trace.NewShardStream(tc, p, 3) },
		OnResult:  func(JobResult) {},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fold-mode sharded run: %v, want context.Canceled", err)
	}
}
