// Package metrics aggregates simulation results the way the paper reports
// them: average accuracy for deadline-bound jobs, average (input) duration
// for error-bound jobs, relative improvement percentages, and binning by
// job size, deadline factor, error bound and DAG length.
package metrics

import (
	"fmt"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/task"
)

// MeanAccuracy returns the average accuracy over results (0 for empty).
func MeanAccuracy(rs []sched.JobResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += r.Accuracy
	}
	return s / float64(len(rs))
}

// MeanInputDuration returns the average input-phase duration (the quantity
// error-bound jobs minimize).
func MeanInputDuration(rs []sched.JobResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += r.InputDuration
	}
	return s / float64(len(rs))
}

// AccuracyImprovementPct is the paper's deadline-bound metric: the relative
// gain in average accuracy of treat over base, in percent.
func AccuracyImprovementPct(base, treat []sched.JobResult) float64 {
	b := MeanAccuracy(base)
	if b == 0 {
		return 0
	}
	return (MeanAccuracy(treat) - b) / b * 100
}

// SpeedupPct is the paper's error-bound metric: the relative reduction in
// average job duration of treat versus base, in percent.
func SpeedupPct(base, treat []sched.JobResult) float64 {
	b := MeanInputDuration(base)
	if b == 0 {
		return 0
	}
	return (b - MeanInputDuration(treat)) / b * 100
}

// FilterBin keeps results in one job-size bin.
func FilterBin(rs []sched.JobResult, b task.SizeBin) []sched.JobResult {
	var out []sched.JobResult
	for _, r := range rs {
		if r.Bin == b {
			out = append(out, r)
		}
	}
	return out
}

// ByBin computes a metric per size bin over paired base/treat result sets.
func ByBin(base, treat []sched.JobResult, metric func(b, t []sched.JobResult) float64) map[task.SizeBin]float64 {
	out := make(map[task.SizeBin]float64, len(task.AllBins))
	for _, b := range task.AllBins {
		out[b] = metric(FilterBin(base, b), FilterBin(treat, b))
	}
	return out
}

// DeadlineBin is one of Figure 6a's deadline-factor buckets (percent over
// the ideal duration).
type DeadlineBin struct {
	Lo, Hi float64 // inclusive bounds in percent
}

// DeadlineBins are the paper's buckets: 2–5%, 6–10%, 11–15%, 16–20%.
var DeadlineBins = []DeadlineBin{{2, 5}, {6, 10}, {11, 15}, {16, 20}}

// Label renders the bin as the paper prints it.
func (d DeadlineBin) Label() string { return fmt.Sprintf("%g-%g", d.Lo, d.Hi) }

// FilterDeadlineBin keeps results whose deadline factor falls in the bin.
func FilterDeadlineBin(rs []sched.JobResult, b DeadlineBin) []sched.JobResult {
	var out []sched.JobResult
	for _, r := range rs {
		pct := r.DeadlineFactor * 100
		if pct >= b.Lo-0.5 && pct < b.Hi+0.5 {
			out = append(out, r)
		}
	}
	return out
}

// ErrorBin is one of Figure 6b's error-bound buckets, in percent.
type ErrorBin struct {
	Lo, Hi float64
}

// ErrorBins are the paper's buckets: 5–10%, 11–15%, 16–20%, 21–25%, 26–30%.
var ErrorBins = []ErrorBin{{5, 10}, {11, 15}, {16, 20}, {21, 25}, {26, 30}}

// Label renders the bin as the paper prints it.
func (e ErrorBin) Label() string { return fmt.Sprintf("%g-%g", e.Lo, e.Hi) }

// FilterErrorBin keeps results whose error bound falls in the bin.
func FilterErrorBin(rs []sched.JobResult, b ErrorBin) []sched.JobResult {
	var out []sched.JobResult
	for _, r := range rs {
		pct := r.Epsilon * 100
		if pct >= b.Lo-0.5 && pct < b.Hi+0.5 {
			out = append(out, r)
		}
	}
	return out
}

// PairByJob aligns two result sets by JobID, dropping jobs missing from
// either (paired comparisons must compare the same jobs).
func PairByJob(a, b []sched.JobResult) (pa, pb []sched.JobResult) {
	idx := make(map[int]sched.JobResult, len(b))
	for _, r := range b {
		idx[r.JobID] = r
	}
	for _, r := range a {
		if m, ok := idx[r.JobID]; ok {
			pa = append(pa, r)
			pb = append(pb, m)
		}
	}
	return pa, pb
}

// MedianOfRuns reduces repeated experiment measurements to their median,
// matching §6.1 ("each experiment is repeated five times and we pick the
// median").
func MedianOfRuns(vals []float64) float64 {
	return dist.Median(vals)
}
