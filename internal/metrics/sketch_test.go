package metrics

import (
	"math"
	"sort"
	"testing"

	"github.com/approx-analytics/grass/internal/dist"
)

// sketchTestValues draws a heavy-tailed latency-shaped sample — the
// distribution the sketch is built to summarize.
func sketchTestValues(n int, seed int64) []float64 {
	rng := dist.NewRNG(seed)
	ln := dist.Lognormal{Mu: 3, Sigma: 1.2}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = ln.Sample(rng)
	}
	return vals
}

// exactQuantile computes the ⌈q·n⌉-th smallest value — the definition the
// sketch approximates.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestSketchRelativeError: every reported quantile is within the promised
// relative error of the exact quantile, across the SLO quantile set.
func TestSketchRelativeError(t *testing.T) {
	vals := sketchTestValues(50_000, 7)
	s := NewSketch(0.01)
	for _, v := range vals {
		s.Observe(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		want := exactQuantile(sorted, q)
		if rel := math.Abs(got-want) / want; rel > 0.011 {
			t.Errorf("q=%g: sketch %v vs exact %v (relative error %.4f > alpha)", q, got, want, rel)
		}
	}
	if s.Min() != sorted[0] || s.Max() != sorted[len(sorted)-1] {
		t.Errorf("extremes inexact: min %v/%v max %v/%v", s.Min(), sorted[0], s.Max(), sorted[len(sorted)-1])
	}
	if s.Count() != uint64(len(vals)) {
		t.Errorf("count %d, want %d", s.Count(), len(vals))
	}
}

// TestSketchMergeExact is the partition-determinism guarantee: a sketch
// merged from P per-partition sketches reports EXACTLY the quantiles of one
// sketch fed every observation, for any partitioning and any merge
// grouping — bucket counts are integers, so merging is loss-free addition.
func TestSketchMergeExact(t *testing.T) {
	vals := sketchTestValues(20_000, 3)
	whole := NewSketch(0.01)
	for _, v := range vals {
		whole.Observe(v)
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, parts := range []int{1, 2, 3, 8} {
		shards := make([]*Sketch, parts)
		for p := range shards {
			shards[p] = NewSketch(0.01)
		}
		// Round-robin partitioning, the serving layer's ID mod P shape.
		for i, v := range vals {
			shards[i%parts].Observe(v)
		}
		merged := NewSketch(0.01)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		for _, q := range qs {
			if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
				t.Errorf("parts=%d q=%g: merged %v != whole %v", parts, q, got, want)
			}
		}
		if merged.Count() != whole.Count() {
			t.Errorf("parts=%d: count drifted: %d vs %d", parts, merged.Count(), whole.Count())
		}
		// Sum is Neumaier-compensated, so regrouping the observations
		// across partitions reproduces it exactly — no ulp tolerance.
		if merged.Sum() != whole.Sum() {
			t.Errorf("parts=%d: sum not regroup-deterministic: %v vs %v", parts, merged.Sum(), whole.Sum())
		}
	}
}

// TestSketchMergeOrderInvariant: merging the same shards in reversed order
// yields identical quantiles (addition commutes) — canonical order at the
// serving layer is a convention, not a correctness requirement.
func TestSketchMergeOrderInvariant(t *testing.T) {
	vals := sketchTestValues(5_000, 5)
	a0, a1, a2 := NewSketch(0.02), NewSketch(0.02), NewSketch(0.02)
	for i, v := range vals {
		[]*Sketch{a0, a1, a2}[i%3].Observe(v)
	}
	fwd, rev := NewSketch(0.02), NewSketch(0.02)
	for _, sh := range []*Sketch{a0, a1, a2} {
		fwd.Merge(sh)
	}
	for _, sh := range []*Sketch{a2, a1, a0} {
		rev.Merge(sh)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Errorf("q=%g: merge order changed the quantile: %v vs %v", q, fwd.Quantile(q), rev.Quantile(q))
		}
	}
}

// TestSketchSumRegroupDeterminism pins the Neumaier-compensated Sum
// across partitionings AND merge groupings: P per-partition sketches
// merged pairwise, in a chain, or in reverse all report the same Sum as
// one sketch fed every observation — the property `-partitions P` mean
// latency reporting relies on.
func TestSketchSumRegroupDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 11, 42} {
		vals := sketchTestValues(10_000, seed)
		whole := NewSketch(0.01)
		for _, v := range vals {
			whole.Observe(v)
		}
		for _, parts := range []int{2, 3, 8} {
			shards := make([]*Sketch, parts)
			for p := range shards {
				shards[p] = NewSketch(0.01)
			}
			for i, v := range vals {
				shards[i%parts].Observe(v)
			}
			chain := NewSketch(0.01)
			for _, sh := range shards {
				chain.Merge(sh)
			}
			rev := NewSketch(0.01)
			for p := parts - 1; p >= 0; p-- {
				rev.Merge(shards[p])
			}
			// Pairwise tree: merge shard pairs first, then fold the pairs.
			tree := NewSketch(0.01)
			for i := 0; i < parts; i += 2 {
				pair := shards[i].Clone()
				if i+1 < parts {
					pair.Merge(shards[i+1])
				}
				tree.Merge(pair)
			}
			for name, got := range map[string]float64{
				"chain": chain.Sum(), "reverse": rev.Sum(), "tree": tree.Sum(),
			} {
				if got != whole.Sum() {
					t.Errorf("seed=%d parts=%d %s: sum %v != whole %v", seed, parts, name, got, whole.Sum())
				}
			}
		}
	}
}

// TestSketchEdgeCases: empty sketches, zero/negative observations, clamped
// quantiles, clone independence and the alpha-mismatch panic.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0)
	if s.Alpha() != DefaultSketchAlpha {
		t.Errorf("alpha %v, want default %v", s.Alpha(), DefaultSketchAlpha)
	}
	if s.Quantile(0.99) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sketch must report zeros")
	}
	s.Observe(0)
	s.Observe(-3)
	s.Observe(10)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of {-3, 0, 10} reported %v, want the zero bucket", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Errorf("q>1 must clamp to max, got %v", got)
	}
	if got := s.Quantile(-1); got != -3 {
		t.Errorf("q<0 must clamp to min, got %v", got)
	}

	c := s.Clone()
	c.Observe(1000)
	if s.Count() != 3 || c.Count() != 4 {
		t.Errorf("clone not independent: %d / %d", s.Count(), c.Count())
	}

	defer func() {
		if recover() == nil {
			t.Error("merging sketches with different alpha must panic")
		}
	}()
	s.Merge(NewSketch(0.1))
}

// TestSketchMergeEmptyAndNil: merging nil or empty sketches never perturbs
// state — the serving layer merges partitions that may not have finished a
// single job yet.
func TestSketchMergeEmptyAndNil(t *testing.T) {
	s := NewSketch(0.01)
	s.Observe(5)
	s.Merge(nil)
	s.Merge(NewSketch(0.01))
	if s.Count() != 1 || s.Quantile(0.5) == 0 {
		t.Errorf("no-op merges perturbed the sketch: count %d", s.Count())
	}
	// An empty target adopts the source's extremes wholesale.
	e := NewSketch(0.01)
	e.Merge(s)
	if e.Min() != 5 || e.Max() != 5 || e.Count() != 1 {
		t.Errorf("empty-target merge: min %v max %v count %d", e.Min(), e.Max(), e.Count())
	}
}
