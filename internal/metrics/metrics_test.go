package metrics

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/task"
)

func res(id int, bin task.SizeBin, acc, dur float64) sched.JobResult {
	return sched.JobResult{JobID: id, Bin: bin, Accuracy: acc, InputDuration: dur}
}

func TestMeans(t *testing.T) {
	rs := []sched.JobResult{
		res(0, task.Small, 0.5, 10),
		res(1, task.Small, 0.7, 30),
	}
	if got := MeanAccuracy(rs); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("mean accuracy %v", got)
	}
	if got := MeanInputDuration(rs); got != 20 {
		t.Fatalf("mean duration %v", got)
	}
	if MeanAccuracy(nil) != 0 || MeanInputDuration(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
}

func TestImprovements(t *testing.T) {
	base := []sched.JobResult{res(0, task.Small, 0.5, 100)}
	treat := []sched.JobResult{res(0, task.Small, 0.75, 60)}
	if got := AccuracyImprovementPct(base, treat); math.Abs(got-50) > 1e-9 {
		t.Fatalf("accuracy improvement %v%%, want 50", got)
	}
	if got := SpeedupPct(base, treat); math.Abs(got-40) > 1e-9 {
		t.Fatalf("speedup %v%%, want 40", got)
	}
	if AccuracyImprovementPct(nil, treat) != 0 || SpeedupPct(nil, treat) != 0 {
		t.Fatal("empty base should give 0")
	}
}

func TestFilterAndByBin(t *testing.T) {
	base := []sched.JobResult{
		res(0, task.Small, 0.5, 10),
		res(1, task.Large, 0.4, 100),
	}
	treat := []sched.JobResult{
		res(0, task.Small, 0.6, 10),
		res(1, task.Large, 0.6, 100),
	}
	if got := len(FilterBin(base, task.Small)); got != 1 {
		t.Fatalf("filtered %d", got)
	}
	m := ByBin(base, treat, AccuracyImprovementPct)
	if math.Abs(m[task.Small]-20) > 1e-9 {
		t.Fatalf("small bin %v, want 20", m[task.Small])
	}
	if math.Abs(m[task.Large]-50) > 1e-9 {
		t.Fatalf("large bin %v, want 50", m[task.Large])
	}
	if m[task.Medium] != 0 {
		t.Fatalf("empty medium bin %v, want 0", m[task.Medium])
	}
}

func TestDeadlineBins(t *testing.T) {
	rs := []sched.JobResult{
		{JobID: 0, DeadlineFactor: 0.03},
		{JobID: 1, DeadlineFactor: 0.12},
		{JobID: 2, DeadlineFactor: 0.19},
	}
	if got := len(FilterDeadlineBin(rs, DeadlineBins[0])); got != 1 {
		t.Fatalf("2-5%% bin has %d", got)
	}
	if got := len(FilterDeadlineBin(rs, DeadlineBins[2])); got != 1 {
		t.Fatalf("11-15%% bin has %d", got)
	}
	if got := len(FilterDeadlineBin(rs, DeadlineBins[3])); got != 1 {
		t.Fatalf("16-20%% bin has %d", got)
	}
	if DeadlineBins[0].Label() != "2-5" {
		t.Fatalf("label %q", DeadlineBins[0].Label())
	}
}

func TestErrorBins(t *testing.T) {
	rs := []sched.JobResult{
		{JobID: 0, Epsilon: 0.07},
		{JobID: 1, Epsilon: 0.22},
		{JobID: 2, Epsilon: 0.29},
	}
	if got := len(FilterErrorBin(rs, ErrorBins[0])); got != 1 {
		t.Fatalf("5-10%% bin has %d", got)
	}
	if got := len(FilterErrorBin(rs, ErrorBins[3])); got != 1 {
		t.Fatalf("21-25%% bin has %d", got)
	}
	if got := len(FilterErrorBin(rs, ErrorBins[4])); got != 1 {
		t.Fatalf("26-30%% bin has %d", got)
	}
	if ErrorBins[4].Label() != "26-30" {
		t.Fatalf("label %q", ErrorBins[4].Label())
	}
}

func TestPairByJob(t *testing.T) {
	a := []sched.JobResult{res(0, task.Small, 1, 1), res(1, task.Small, 1, 1), res(2, task.Small, 1, 1)}
	b := []sched.JobResult{res(1, task.Small, 2, 2), res(2, task.Small, 2, 2), res(3, task.Small, 2, 2)}
	pa, pb := PairByJob(a, b)
	if len(pa) != 2 || len(pb) != 2 {
		t.Fatalf("paired %d/%d, want 2/2", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].JobID != pb[i].JobID {
			t.Fatal("misaligned pairing")
		}
	}
}

func TestMedianOfRuns(t *testing.T) {
	if got := MedianOfRuns([]float64{3, 1, 2, 5, 4}); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := MedianOfRuns([]float64{1, 2}); got != 1.5 {
		t.Fatalf("median %v", got)
	}
	if MedianOfRuns(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}
