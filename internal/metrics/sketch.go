package metrics

import (
	"math"
	"sort"
)

// Sketch is a mergeable streaming quantile sketch for job latencies — the
// telemetry substrate of the live serving mode (internal/serve). It is a
// DDSketch-style log-bucketed histogram: a value v > 0 lands in bucket
// ⌈log_γ v⌉ with γ = (1+α)/(1−α), which guarantees every reported quantile
// is within relative error α of an exact quantile of the observed multiset.
//
// Two properties matter more here than raw accuracy:
//
//   - Merging is EXACT and deterministic: buckets are integer counts, so
//     Merge is bucket-wise addition — commutative, associative, and
//     loss-free. A sketch built from P per-partition sketches (merged in
//     any order, though the serving layer merges in canonical ascending
//     partition order) is bit-identical to one sketch fed the union of the
//     observations, so `-partitions P` latency reporting is deterministic
//     ("Sketch Disaggregation Across Time and Space" is the reference for
//     splitting sketch state this way).
//   - Observation is O(1) with no allocation on the steady state (one map
//     insert per previously unseen bucket), cheap enough to sit on the
//     per-job-completion path without touching the per-event hot path.
//
// The zero Sketch is not ready for use; call NewSketch. A Sketch is not
// safe for concurrent use — the serving layer guards each partition's
// sketch with its own mutex and merges copies.
type Sketch struct {
	gamma     float64
	invLogG   float64 // 1 / ln(gamma), cached for the index computation
	counts    map[int]uint64
	zero      uint64 // observations ≤ 0 (latency 0 is legal: instant jobs)
	n         uint64
	sum       float64
	min, max  float64
	relAlpha  float64
	sortedBuf []int // reusable key buffer for Quantile
}

// DefaultSketchAlpha is the relative-error guarantee the serving layer
// requests: reported quantiles are within 1% of an exact quantile.
const DefaultSketchAlpha = 0.01

// NewSketch returns an empty sketch with relative-error guarantee alpha in
// (0, 1); alpha <= 0 selects DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultSketchAlpha
	}
	if alpha >= 1 {
		alpha = 0.5
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		gamma:    gamma,
		invLogG:  1 / math.Log(gamma),
		counts:   make(map[int]uint64),
		relAlpha: alpha,
	}
}

// Alpha returns the sketch's relative-error guarantee.
func (s *Sketch) Alpha() float64 { return s.relAlpha }

// Observe records one value. Values ≤ 0 (or NaN, which compares false
// everywhere) collapse into the zero bucket and report as 0 from Quantile.
func (s *Sketch) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	if v > 0 {
		s.counts[s.bucket(v)]++
	} else {
		s.zero++
	}
}

// bucket maps a positive value to its log-γ bucket index.
func (s *Sketch) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) * s.invLogG))
}

// value maps a bucket index back to a representative value: the bucket's
// geometric midpoint 2γ^i/(γ+1), the point minimizing worst-case relative
// error within the bucket.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Count returns how many values have been observed.
func (s *Sketch) Count() uint64 { return s.n }

// Sum returns the running sum of observed values (mean = Sum/Count).
func (s *Sketch) Sum() float64 { return s.sum }

// Min and Max return exact extremes (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum observed value (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds o into s: bucket-wise addition, so the result is exactly the
// sketch of the union of both observation multisets — quantiles, counts
// and extremes are identical to a single sketch fed every observation.
// Sum alone is float addition: deterministic for a fixed merge order, but
// regrouping observations across partitions may move its last ulps (the
// same caveat the lazy-TNew analysis pinned in PR 5). Both sketches must
// have been built with the same alpha — bucket boundaries differ otherwise
// and the merged histogram would be meaningless; Merge panics on mismatch
// (a programming error, not a data condition). Merging an empty or nil
// sketch is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	if o.gamma != s.gamma {
		panic("metrics: merging sketches with different alpha")
	}
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.zero += o.zero
	for i, c := range o.counts {
		s.counts[i] += c
	}
}

// Clone returns an independent copy — the serving layer snapshots each
// partition's sketch under its lock and merges the copies outside it.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.counts = make(map[int]uint64, len(s.counts))
	for i, n := range s.counts {
		c.counts[i] = n
	}
	c.sortedBuf = nil
	return &c
}

// Quantile returns the value at quantile q in [0, 1], within relative
// error alpha of an exact quantile of the observed multiset. Extremes are
// exact: q = 0 reports Min and q = 1 reports Max. An empty sketch reports
// 0; q outside [0, 1] is clamped.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	// rank is 1-based: the ⌈q·n⌉-th smallest observation.
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zero {
		return 0
	}
	seen := s.zero
	keys := s.sortedBuf[:0]
	for i := range s.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	s.sortedBuf = keys
	for _, i := range keys {
		seen += s.counts[i]
		if seen >= rank {
			return s.value(i)
		}
	}
	return s.Max() // unreachable unless counts were mutated mid-query
}

// Quantiles fills out[i] = Quantile(qs[i]) with one key sort for the whole
// batch — the periodic stats line asks for four quantiles at a time.
func (s *Sketch) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}
