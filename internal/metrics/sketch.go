package metrics

import (
	"math"

	"github.com/approx-analytics/grass/internal/dist"
)

// Sketch is a mergeable streaming quantile sketch for job latencies — the
// telemetry substrate of the live serving mode (internal/serve). It is a
// DDSketch-style log-bucketed histogram (see Hist, the counts-only core it
// is built on): a value v > 0 lands in bucket ⌈log_γ v⌉ with
// γ = (1+α)/(1−α), which guarantees every reported quantile is within
// relative error α of an exact quantile of the observed multiset. On top
// of the histogram it keeps a running Sum, so mean latency is reportable
// alongside the quantiles.
//
// Two properties matter more here than raw accuracy:
//
//   - Merging is EXACT and deterministic: buckets are integer counts, so
//     Merge is bucket-wise addition — commutative, associative, and
//     loss-free. A sketch built from P per-partition sketches (merged in
//     any order, though the serving layer merges in canonical ascending
//     partition order) is bit-identical to one sketch fed the union of the
//     observations, so `-partitions P` latency reporting is deterministic
//     ("Sketch Disaggregation Across Time and Space" is the reference for
//     splitting sketch state this way).
//   - Observation is O(1) with no allocation on the steady state (one map
//     insert per previously unseen bucket), cheap enough to sit on the
//     per-job-completion path without touching the per-event hot path.
//
// The zero Sketch is not ready for use; call NewSketch. A Sketch is not
// safe for concurrent use — the serving layer guards each partition's
// sketch with its own mutex and merges copies.
type Sketch struct {
	hist dist.Hist
	// sum/sumComp are a Neumaier-compensated accumulator: sum holds the
	// running floating-point sum, sumComp the accumulated low-order bits
	// each addition rounded away. See Sum for why.
	sum, sumComp float64
}

// DefaultSketchAlpha is the relative-error guarantee the serving layer
// requests: reported quantiles are within 1% of an exact quantile.
const DefaultSketchAlpha = dist.DefaultHistAlpha

// NewSketch returns an empty sketch with relative-error guarantee alpha in
// (0, 1); alpha <= 0 selects DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	return &Sketch{hist: *dist.NewHist(alpha)}
}

// Alpha returns the sketch's relative-error guarantee.
func (s *Sketch) Alpha() float64 { return s.hist.Alpha() }

// Observe records one value. Values ≤ 0 (or NaN, which compares false
// everywhere) collapse into the zero bucket and report as 0 from Quantile.
func (s *Sketch) Observe(v float64) {
	s.hist.Observe(v)
	s.add(v)
}

// add folds v into the compensated sum accumulator (Neumaier's variant of
// Kahan summation: the branch keeps the compensation exact whichever of
// the addends is larger in magnitude).
func (s *Sketch) add(v float64) {
	t := s.sum + v
	if math.Abs(s.sum) >= math.Abs(v) {
		s.sumComp += (s.sum - t) + v
	} else {
		s.sumComp += (v - t) + s.sum
	}
	s.sum = t
}

// Count returns how many values have been observed.
func (s *Sketch) Count() uint64 { return s.hist.Count() }

// Sum returns the running sum of observed values (mean = Sum/Count). The
// accumulator is Neumaier-compensated — each addition's rounding error is
// retained and folded back here — so the reported sum is the correctly
// rounded true sum for any realistic observation stream, and regrouping
// the observations across partitions (P per-partition sketches merged in
// any order versus one sketch fed everything) reproduces it exactly; the
// cross-partition regroup determinism test pins that.
func (s *Sketch) Sum() float64 { return s.sum + s.sumComp }

// Min returns the exact minimum observed value (0 when empty).
func (s *Sketch) Min() float64 { return s.hist.Min() }

// Max returns the exact maximum observed value (0 when empty).
func (s *Sketch) Max() float64 { return s.hist.Max() }

// Merge folds o into s: bucket-wise addition, so the result is exactly the
// sketch of the union of both observation multisets — quantiles, counts
// and extremes are identical to a single sketch fed every observation, and
// the compensated sum accumulators fold without losing either side's
// retained rounding error. Both sketches must have been built with the
// same alpha — bucket boundaries differ otherwise and the merged histogram
// would be meaningless; Merge panics on mismatch (a programming error, not
// a data condition). Merging an empty or nil sketch is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	if o.hist.Alpha() != s.hist.Alpha() {
		panic("metrics: merging sketches with different alpha")
	}
	if o.hist.Count() == 0 {
		return
	}
	s.hist.Merge(&o.hist)
	s.add(o.sum)
	s.add(o.sumComp)
}

// Clone returns an independent copy — the serving layer snapshots each
// partition's sketch under its lock and merges the copies outside it.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{hist: *s.hist.Clone(), sum: s.sum, sumComp: s.sumComp}
}

// Quantile returns the value at quantile q in [0, 1], within relative
// error alpha of an exact quantile of the observed multiset. Extremes are
// exact: q = 0 reports Min and q = 1 reports Max. An empty sketch reports
// 0; q outside [0, 1] is clamped.
func (s *Sketch) Quantile(q float64) float64 { return s.hist.Quantile(q) }

// Quantiles fills out[i] = Quantile(qs[i]) with one key sort for the whole
// batch — the periodic stats line asks for four quantiles at a time.
func (s *Sketch) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = s.Quantile(q)
	}
	return out
}
