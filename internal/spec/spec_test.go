package spec

import (
	"testing"
	"testing/quick"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
)

func deadlineCtx(remaining float64, total int) Ctx {
	return Ctx{
		Kind:          task.DeadlineBound,
		RemainingTime: remaining,
		TargetTasks:   total,
		TotalTasks:    total,
		WaveWidth:     10,
	}
}

func errorCtx(target, completed, total int) Ctx {
	return Ctx{
		Kind:           task.ErrorBound,
		TargetTasks:    target,
		CompletedTasks: completed,
		TotalTasks:     total,
		WaveWidth:      10,
	}
}

func TestSaving(t *testing.T) {
	v := TaskView{Copies: 1, TRem: 5, TNew: 2}
	if got := v.Saving(); got != 1 { // 1×5 − 2×2, the Figure 1 example
		t.Fatalf("saving = %v, want 1", got)
	}
	v2 := TaskView{Copies: 2, TRem: 5, TNew: 2}
	if got := v2.Saving(); got != 4 { // 2×5 − 3×2
		t.Fatalf("saving = %v, want 4", got)
	}
}

func TestCtxRemaining(t *testing.T) {
	c := errorCtx(8, 3, 10)
	if c.Remaining() != 5 {
		t.Fatalf("remaining = %d", c.Remaining())
	}
	c.CompletedTasks = 9
	if c.Remaining() != 0 {
		t.Fatal("remaining should clamp at 0")
	}
}

// --- GS deadline ---

func TestGSDeadlineSJF(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, TNew: 5},
		{Index: 1, TNew: 2},
		{Index: 2, TNew: 3},
	}
	d, ok := GS{}.Pick(deadlineCtx(10, 3), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v ok=%v, want fresh task 1", d, ok)
	}
}

func TestGSDeadlinePrunesBeyondDeadline(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, TNew: 50},
		{Index: 1, TNew: 20},
	}
	if _, ok := (GS{}).Pick(deadlineCtx(10, 2), tasks); ok {
		t.Fatal("GS scheduled a task that cannot make the deadline")
	}
}

func TestGSDeadlineSpeculatesStraggler(t *testing.T) {
	// The running straggler's fresh copy (2) is quicker than every
	// unscheduled task (3): greedy picks the speculative copy.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 9, TNew: 2},
		{Index: 1, TNew: 3},
	}
	d, ok := GS{}.Pick(deadlineCtx(10, 2), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v, want speculative copy of task 0", d)
	}
}

func TestGSDeadlineSkipsUselessSpeculation(t *testing.T) {
	// tnew >= trem: a copy cannot beat the original.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 2, TNew: 2},
		{Index: 1, TNew: 3},
	}
	d, ok := GS{}.Pick(deadlineCtx(10, 2), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1", d)
	}
}

func TestGSDeadlineCopyCap(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: MaxCopies, TRem: 100, TNew: 1},
	}
	if _, ok := (GS{}).Pick(deadlineCtx(10, 1), tasks); ok {
		t.Fatal("GS exceeded copy cap")
	}
}

// --- RAS deadline ---

func TestRASDeadlinePrefersSaving(t *testing.T) {
	// Figure 1 (right): speculating T1 (trem 5, tnew 2) saves one resource
	// unit, so RAS prefers it over launching T3.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 5, TNew: 2},
		{Index: 1, TNew: 2},
	}
	d, ok := RAS{}.Pick(deadlineCtx(6, 2), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v, want speculative copy of task 0", d)
	}
}

func TestRASDeadlineFallsBackToSJF(t *testing.T) {
	// No positive saving: 1×4 − 2×2 = 0 is not > 0.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 4, TNew: 2},
		{Index: 1, TNew: 7},
		{Index: 2, TNew: 3},
	}
	d, ok := RAS{}.Pick(deadlineCtx(10, 3), tasks)
	if !ok || d.TaskIndex != 2 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 2 (SJF)", d)
	}
}

func TestRASDeadlinePicksMaxSaving(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 5, TNew: 2},  // saving 1
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 10, TNew: 2}, // saving 6
	}
	d, ok := RAS{}.Pick(deadlineCtx(20, 2), tasks)
	if !ok || d.TaskIndex != 1 {
		t.Fatalf("got %+v, want task 1 (max saving)", d)
	}
}

func TestRASDeadlinePrunesBeyondDeadline(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 50, TNew: 20}, // saving 10 but > δ'
		{Index: 1, TNew: 30},
	}
	if _, ok := (RAS{}).Pick(deadlineCtx(10, 2), tasks); ok {
		t.Fatal("RAS scheduled past the deadline")
	}
}

// --- GS / RAS error-bound ---

func TestGSErrorLJF(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, TNew: 2},
		{Index: 1, TNew: 8},
		{Index: 2, TNew: 5},
	}
	d, ok := GS{}.Pick(errorCtx(3, 0, 3), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1 (LJF)", d)
	}
}

func TestGSErrorPruningExcludesSlowest(t *testing.T) {
	// Only 2 of 3 tasks are needed; the slowest (index 1, eff 8) is pruned,
	// so LJF picks index 2 (eff 5).
	tasks := []TaskView{
		{Index: 0, TNew: 2},
		{Index: 1, TNew: 8},
		{Index: 2, TNew: 5},
	}
	d, ok := GS{}.Pick(errorCtx(2, 0, 3), tasks)
	if !ok || d.TaskIndex != 2 {
		t.Fatalf("got %+v, want task 2", d)
	}
}

func TestGSErrorSpeculatesHighestTRem(t *testing.T) {
	// Figure 2: GS launches a copy of the task with the highest t_rem.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 4, TNew: 2},
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 9, TNew: 2},
		{Index: 2, Running: true, Speculable: true, Copies: 1, TRem: 6, TNew: 2},
	}
	d, ok := GS{}.Pick(errorCtx(3, 0, 3), tasks)
	if !ok || d.TaskIndex != 1 || !d.Speculative {
		t.Fatalf("got %+v, want speculative copy of task 1", d)
	}
}

func TestRASErrorConservative(t *testing.T) {
	// Figure 2: RAS avoids the copy GS launches because it saves no
	// resources (1×4 − 2×2 = 0).
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 4, TNew: 2},
		{Index: 1, TNew: 3},
	}
	d, ok := RAS{}.Pick(errorCtx(2, 0, 2), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1", d)
	}
}

func TestRASErrorSpeculatesOnSaving(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 10, TNew: 2},
		{Index: 1, TNew: 3},
	}
	d, ok := RAS{}.Pick(errorCtx(2, 0, 2), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v, want speculative copy of task 0", d)
	}
}

func TestErrorBoundNeedZero(t *testing.T) {
	tasks := []TaskView{{Index: 0, TNew: 1}}
	if _, ok := (GS{}).Pick(errorCtx(5, 5, 10), tasks); ok {
		t.Fatal("GS scheduled with bound already met")
	}
	if _, ok := (RAS{}).Pick(errorCtx(5, 5, 10), tasks); ok {
		t.Fatal("RAS scheduled with bound already met")
	}
}

// --- Baselines ---

func TestNoSpecFIFO(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 100, TNew: 1},
		{Index: 1, TNew: 50},
		{Index: 2, TNew: 1},
	}
	d, ok := NoSpec{}.Pick(deadlineCtx(10, 3), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1 (FIFO)", d)
	}
	// Only running tasks left: idle.
	if _, ok := (NoSpec{}).Pick(deadlineCtx(10, 1), tasks[:1]); ok {
		t.Fatal("NoSpec speculated")
	}
}

func TestLATENewTasksFirst(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 100, TNew: 1, Elapsed: 10, Progress: 0.01},
		{Index: 1, TNew: 50},
	}
	d, ok := NewLATE().Pick(deadlineCtx(1000, 2), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1", d)
	}
}

func TestLATESpeculatesSlowest(t *testing.T) {
	// All scheduled; task 0 progresses at rate 0.005/unit, task 1 at 0.09 —
	// only task 0 is below the 25th percentile; it also has the longest
	// time left.
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 100, TNew: 10, Elapsed: 10, Progress: 0.05},
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 5, TNew: 10, Elapsed: 10, Progress: 0.9},
		{Index: 2, Running: true, Speculable: true, Copies: 1, TRem: 6, TNew: 10, Elapsed: 10, Progress: 0.8},
		{Index: 3, Running: true, Speculable: true, Copies: 1, TRem: 7, TNew: 10, Elapsed: 10, Progress: 0.85},
	}
	d, ok := NewLATE().Pick(deadlineCtx(1000, 4), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v ok=%v, want speculative copy of task 0", d, ok)
	}
}

// TestLATETiedRatesNoSpeculation pins the percentile-boundary fix: when a
// wave launches together and every running task reports the same progress
// rate, the threshold equals that rate and *no* task is below it — nothing
// is a straggler. The old `rate > thr → skip` test classified every
// candidate as slow and speculated a healthy task.
func TestLATETiedRatesNoSpeculation(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 10, TNew: 10, Elapsed: 10, Progress: 0.5},
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 10, TNew: 10, Elapsed: 10, Progress: 0.5},
		{Index: 2, Running: true, Speculable: true, Copies: 1, TRem: 10, TNew: 10, Elapsed: 10, Progress: 0.5},
	}
	if d, ok := NewLATE().Pick(deadlineCtx(1000, 3), tasks); ok {
		t.Fatalf("LATE speculated %+v among identically progressing tasks", d)
	}
}

// TestLATESingleCandidateNotSlow: a lone running task cannot be below the
// percentile of its own rate; LATE must leave the slot idle rather than
// speculate a task with no evidence it is slow (the old boundary test
// speculated it).
func TestLATESingleCandidateNotSlow(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 50, TNew: 10, Elapsed: 10, Progress: 0.2},
	}
	if d, ok := NewLATE().Pick(deadlineCtx(1000, 1), tasks); ok {
		t.Fatalf("LATE speculated %+v with a single candidate", d)
	}
}

// TestLATEStalledTaskOutranksStraggler pins the stalled-task sentinel: a
// task with zero progress rate has unbounded time-to-end and must win the
// longest-approximate-time-to-end selection over any moving straggler. The
// old `t_new × 100` sentinel lost when a mover's (1 − progress)/rate
// exceeded it.
func TestLATEStalledTaskOutranksStraggler(t *testing.T) {
	tasks := []TaskView{
		// Stalled: no progress after 100 units; old sentinel = 5 × 100 = 500.
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 1000, TNew: 5, Elapsed: 100, Progress: 0},
		// Moving straggler: rate 0.001, time-to-end (1−0.2)/0.001 = 800 > 500.
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 800, TNew: 5, Elapsed: 200, Progress: 0.2},
		// Healthy tasks lifting the interpolated threshold above both, so the
		// stalled task and the mover are each classified slow.
		{Index: 2, Running: true, Speculable: true, Copies: 1, TRem: 1, TNew: 5, Elapsed: 1, Progress: 0.9},
		{Index: 3, Running: true, Speculable: true, Copies: 1, TRem: 1, TNew: 5, Elapsed: 1, Progress: 0.92},
		{Index: 4, Running: true, Speculable: true, Copies: 1, TRem: 1, TNew: 5, Elapsed: 1, Progress: 0.94},
		{Index: 5, Running: true, Speculable: true, Copies: 1, TRem: 1, TNew: 5, Elapsed: 1, Progress: 0.96},
	}
	d, ok := NewLATE().Pick(deadlineCtx(10000, 6), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v ok=%v, want speculative copy of stalled task 0", d, ok)
	}
}

func TestLATESpecCap(t *testing.T) {
	l := NewLATE()
	ctx := deadlineCtx(1000, 4)
	ctx.WaveWidth = 10
	ctx.SpeculativeCopies = 1 // cap = max(1, 0.1×10) = 1, already reached
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 100, TNew: 10, Elapsed: 10, Progress: 0.05},
	}
	if _, ok := l.Pick(ctx, tasks); ok {
		t.Fatal("LATE exceeded speculative cap")
	}
}

func TestLATENoSecondSpeculation(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 2, TRem: 100, TNew: 10, Elapsed: 10, Progress: 0.05},
	}
	if _, ok := NewLATE().Pick(deadlineCtx(1000, 1), tasks); ok {
		t.Fatal("LATE launched a third copy")
	}
}

func TestMantriDuplicatesOutlierEvenWithPendingTasks(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 25, TNew: 10}, // ratio 2.5 > 2
		{Index: 1, TNew: 10},
	}
	d, ok := NewMantri().Pick(deadlineCtx(1000, 2), tasks)
	if !ok || d.TaskIndex != 0 || !d.Speculative {
		t.Fatalf("got %+v, want duplicate of task 0", d)
	}
}

func TestMantriThreshold(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 15, TNew: 10}, // ratio 1.5 < 2
		{Index: 1, TNew: 10},
	}
	d, ok := NewMantri().Pick(deadlineCtx(1000, 2), tasks)
	if !ok || d.TaskIndex != 1 || d.Speculative {
		t.Fatalf("got %+v, want fresh task 1", d)
	}
}

func TestMantriWorstRatioFirst(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 25, TNew: 10},
		{Index: 1, Running: true, Speculable: true, Copies: 1, TRem: 90, TNew: 10},
	}
	d, ok := NewMantri().Pick(deadlineCtx(1000, 2), tasks)
	if !ok || d.TaskIndex != 1 {
		t.Fatalf("got %+v, want task 1 (worst outlier)", d)
	}
}

func TestStatelessFactory(t *testing.T) {
	f := Stateless(GS{})
	if f.Name() != "GS" {
		t.Fatal("factory name wrong")
	}
	p1 := f.NewPolicy(1, 10)
	p2 := f.NewPolicy(2, 20)
	if p1 != p2 {
		t.Fatal("stateless factory should reuse the instance")
	}
}

// Property: every decision must reference a task in the view, speculative
// decisions must target running tasks, fresh launches must target idle ones,
// and the copy cap must be respected.
func TestDecisionValidityProperty(t *testing.T) {
	policies := []Policy{GS{}, RAS{}, NewLATE(), NewMantri(), NoSpec{}}
	check := func(seed int64, deadline bool) bool {
		rng := dist.NewRNG(seed)
		n := 1 + rng.Intn(20)
		tasks := make([]TaskView, n)
		for i := range tasks {
			running := rng.Float64() < 0.5
			copies := 0
			if running {
				copies = 1 + rng.Intn(3)
			}
			tasks[i] = TaskView{
				Index:      i,
				Running:    running,
				Speculable: running && rng.Float64() < 0.8,
				Copies:     copies,
				TRem:       rng.Float64() * 20,
				TNew:       0.1 + rng.Float64()*10,
				Elapsed:    rng.Float64() * 10,
				Progress:   rng.Float64(),
			}
		}
		var ctx Ctx
		if deadline {
			ctx = deadlineCtx(rng.Float64()*30, n)
		} else {
			ctx = errorCtx(1+rng.Intn(n), 0, n)
		}
		ctx.WaveWidth = 1 + rng.Intn(20)
		ctx.SpeculativeCopies = rng.Intn(3)
		for _, p := range policies {
			d, ok := p.Pick(ctx, tasks)
			if !ok {
				continue
			}
			if d.TaskIndex < 0 || d.TaskIndex >= n {
				return false
			}
			tv := tasks[d.TaskIndex]
			if d.Speculative != tv.Running {
				return false
			}
			if d.Speculative && tv.Copies >= MaxCopies {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileHelper(t *testing.T) {
	if got := percentile([]float64{4, 1, 3, 2}, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile([]float64{4, 1, 3, 2}, 1); got != 4 {
		t.Fatalf("p1 = %v", got)
	}
	if got := percentile([]float64{4, 1, 3, 2}, 0.5); got != 2.5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// The helper sorts its scratch argument in place (hot-path contract).
	xs := []float64{4, 1, 3, 2}
	percentile(xs, 0.5)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("scratch not sorted in place: %v", xs)
		}
	}
}
