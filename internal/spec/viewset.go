package spec

import (
	"fmt"
	"slices"
	"sort"
)

// ViewSet is the incrementally maintained candidate state of one job's
// current phase — the structure that lets a launch attempt cost
// O(running + log tasks) instead of rebuilding and rescanning every
// incomplete task (the pre-incremental hot path's O(tasks) per attempt).
//
// It holds one TaskView per task of the phase (dense, indexed by task
// index) plus three orderings the policies select from:
//
//   - running: indices of tasks with at least one executing copy,
//     ascending by index — the scan order the reference Pick sees, so
//     first-wins tie-breaks match exactly;
//   - unsched: indices of incomplete tasks with no copy, ascending by
//     index — FIFO launch order for the approximation-oblivious baselines;
//   - order: every incomplete task sorted by (TNew, index) — SJF and LJF
//     extremes, the median t_new, and the error-bound earliest set all
//     read from it without scanning.
//
// The (TNew, index) ordering is cheap to keep alive because a job's TNew
// values only move together: in estimator mode TNew_i = median × work_i ×
// bias_i, so an estimator update rescales every key by the same positive
// factor and the order is (modulo float rounding, which ResortByTNew
// repairs) invariant; in oracle mode a task's key changes only when its
// predrawn duration factor is consumed by a launch, which already dirties
// the task.
//
// The scheduler owns maintenance: structural transitions (NoteLaunched /
// NoteIdle / Complete) are applied eagerly when the event happens, and
// view values are refreshed lazily — Update rewrites a dirtied task's view
// just before the next launch attempt. Query methods are only valid after
// that refresh, when every stored view is current; PickIncremental
// implementations must not mutate the set.
type ViewSet struct {
	views   []TaskView
	running []int
	unsched []int
	order   []int
	sealed  bool

	// Reusable scratch for EarliestCandidates; the returned slices alias
	// these buffers and are valid until the next call.
	runEff []effIdx
	runIn  []int
	runPos []int
}

// Reset clears the set for a fresh phase of n tasks, keeping capacity.
func (vs *ViewSet) Reset(n int) {
	if cap(vs.views) < n {
		vs.views = make([]TaskView, n)
	}
	vs.views = vs.views[:n]
	for i := range vs.views {
		vs.views[i] = TaskView{}
	}
	vs.running = vs.running[:0]
	vs.unsched = vs.unsched[:0]
	vs.order = vs.order[:0]
	vs.sealed = false
}

// Init records one task's initial view during the build phase. Views must
// be supplied in ascending task-index order (the membership lists inherit
// it); call Seal once every incomplete task is in.
func (vs *ViewSet) Init(v TaskView) {
	if vs.sealed {
		panic("spec: ViewSet.Init after Seal")
	}
	vs.views[v.Index] = v
	vs.order = append(vs.order, v.Index)
	if v.Running {
		vs.running = append(vs.running, v.Index)
	} else {
		vs.unsched = append(vs.unsched, v.Index)
	}
}

// Seal finishes the build: the (TNew, index) order is sorted once, after
// which all maintenance is incremental.
func (vs *ViewSet) Seal() {
	vs.sortOrder()
	vs.sealed = true
}

// Len returns the number of incomplete tasks in the set.
func (vs *ViewSet) Len() int { return len(vs.order) }

// At returns the current view of task i. Only meaningful for incomplete
// tasks of the phase.
func (vs *ViewSet) At(i int) TaskView { return vs.views[i] }

// Running returns the indices of tasks with at least one executing copy,
// ascending. Callers must not mutate or retain the slice across updates.
func (vs *ViewSet) Running() []int { return vs.running }

// FirstUnsched returns the lowest-index unscheduled task — the FIFO
// launch the approximation-oblivious baselines start from.
func (vs *ViewSet) FirstUnsched() (int, bool) {
	if len(vs.unsched) == 0 {
		return 0, false
	}
	return vs.unsched[0], true
}

// MinTNewUnsched returns the unscheduled task with the smallest
// (TNew, index) — SJF's pick. It walks the order head past running
// entries, so the cost is O(running) worst case, O(1) typically.
func (vs *ViewSet) MinTNewUnsched() (int, bool) {
	for _, i := range vs.order {
		if !vs.views[i].Running {
			return i, true
		}
	}
	return 0, false
}

// MedianTNew returns the median TNew across every incomplete task, with
// the reference implementation's exact averaging for even counts — the
// quantity GRASS's static switching rule and the oracle's exact two-wave
// test need. Zero when the set is empty.
func (vs *ViewSet) MedianTNew() float64 {
	n := len(vs.order)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vs.views[vs.order[n/2]].TNew
	}
	return (vs.views[vs.order[n/2-1]].TNew + vs.views[vs.order[n/2]].TNew) / 2
}

// Update rewrites task i's view after the scheduler refreshed it. If the
// TNew key moved (an oracle redraw), the (TNew, index) order is repaired.
// Structural membership is NOT touched here — NoteLaunched/NoteIdle/
// Complete handle transitions when they happen.
func (vs *ViewSet) Update(v TaskView) {
	old := vs.views[v.Index]
	if old.TNew == v.TNew {
		vs.views[v.Index] = v
		return
	}
	// Remove under the old key before storing the new view: the order's
	// binary searches compare through the stored views, so the entry must
	// still carry the key it is filed under while it is being located.
	p := vs.orderPos(old.TNew, v.Index)
	vs.order = append(vs.order[:p], vs.order[p+1:]...)
	vs.views[v.Index] = v
	q := vs.orderInsertPos(v.TNew, v.Index)
	vs.order = append(vs.order, 0)
	copy(vs.order[q+1:], vs.order[q:])
	vs.order[q] = v.Index
}

// NoteLaunched moves task i from the unscheduled to the running list —
// call when its first copy launches. The stored view stays stale until
// the next Update.
func (vs *ViewSet) NoteLaunched(i int) {
	vs.unsched = removeSortedInt(vs.unsched, i, "unsched")
	vs.running = insertSortedInt(vs.running, i)
}

// NoteIdle moves task i back to the unscheduled list — call when
// preemption kills its last copy.
func (vs *ViewSet) NoteIdle(i int) {
	vs.running = removeSortedInt(vs.running, i, "running")
	vs.unsched = insertSortedInt(vs.unsched, i)
}

// Complete removes task i from the set entirely.
func (vs *ViewSet) Complete(i int) {
	if p := sort.SearchInts(vs.running, i); p < len(vs.running) && vs.running[p] == i {
		vs.running = append(vs.running[:p], vs.running[p+1:]...)
	} else {
		vs.unsched = removeSortedInt(vs.unsched, i, "unsched")
	}
	p := vs.orderPos(vs.views[i].TNew, i)
	vs.order = append(vs.order[:p], vs.order[p+1:]...)
}

// SetTNewBulk rewrites task i's TNew without repairing the order — the
// estimator-update path, where every key rescales by the same factor and
// the caller finishes with one ResortByTNew instead of n relocations.
func (vs *ViewSet) SetTNewBulk(i int, tnew float64) {
	vs.views[i].TNew = tnew
}

// ResortByTNew revalidates the (TNew, index) order after a bulk TNew
// rewrite. Uniform rescaling preserves the order except for float-rounding
// flips, so this is an O(n) sortedness check with an O(n log n) repair
// that in practice never runs.
func (vs *ViewSet) ResortByTNew() {
	for k := 1; k < len(vs.order); k++ {
		if vs.orderKeyLess(vs.order[k], vs.order[k-1]) {
			slices.SortFunc(vs.order, func(a, b int) int {
				if vs.orderKeyLess(a, b) {
					return -1
				}
				return 1
			})
			return
		}
	}
}

// AppendCompact appends the views of every incomplete task in ascending
// index order — the exact slice a from-scratch rebuild would produce,
// which the differential tests compare against.
func (vs *ViewSet) AppendCompact(dst []TaskView) []TaskView {
	ri, ui := 0, 0
	for ri < len(vs.running) || ui < len(vs.unsched) {
		switch {
		case ri >= len(vs.running):
			dst = append(dst, vs.views[vs.unsched[ui]])
			ui++
		case ui >= len(vs.unsched):
			dst = append(dst, vs.views[vs.running[ri]])
			ri++
		case vs.running[ri] < vs.unsched[ui]:
			dst = append(dst, vs.views[vs.running[ri]])
			ri++
		default:
			dst = append(dst, vs.views[vs.unsched[ui]])
			ui++
		}
	}
	return dst
}

// EarliestCandidates identifies, among the `need` incomplete tasks with
// the smallest (effDuration, index) — exactly the reference earliestSet's
// quickselect order — the running members and the unscheduled fresh-launch
// candidate:
//
//   - runIn holds the running tasks inside the set, ascending by index
//     (the reference selection's scan order);
//   - fresh is the unscheduled member with the largest TNew, ties broken
//     to the smallest index (LJF's pick inside the set), or -1 when the
//     set contains no unscheduled task.
//
// need >= Len() degenerates to the whole incomplete set. The returned
// slice aliases ViewSet scratch and is valid until the next call. Cost is
// O(r·(log r + log n)) for r running tasks — r is bounded by the job's
// slot share, so this replaces the reference's O(n) quickselect over
// every incomplete task.
func (vs *ViewSet) EarliestCandidates(need int) ([]int, int) {
	if need <= 0 {
		return vs.runIn[:0], -1
	}
	n := len(vs.order)
	if need >= n {
		return vs.running, vs.maxTNewUnschedBefore(n)
	}
	// Running tasks sorted by (effDuration, index) — the merge order
	// against the unscheduled tasks, whose effDuration is their TNew.
	re := vs.runEff[:0]
	for _, i := range vs.running {
		re = append(re, effIdx{eff: effDuration(vs.views[i]), idx: i})
	}
	vs.runEff = re
	insertionSortEff(re)
	// A running entry joins the earliest set when the unscheduled entries
	// below it plus the running entries below it still leave room: the
	// m-th running entry (0-based) is in iff unschedBelow + m < need.
	// The left side grows strictly with m, so membership is a prefix of
	// re and the boundary binary-searches.
	j := sort.Search(len(re), func(m int) bool {
		return m >= need || vs.countUnschedLess(re[m].eff, re[m].idx)+m >= need
	})
	runIn := vs.runIn[:0]
	for _, e := range re[:j] {
		runIn = insertSortedInt(runIn, e.idx)
	}
	vs.runIn = runIn
	kU := need - j
	if kU == 0 {
		return runIn, -1
	}
	// The set's unscheduled members are the first kU entries of the
	// unscheduled subsequence of order; locate the kU-th by offsetting
	// past the running entries interleaved before it.
	rp := vs.runPos[:0]
	for _, i := range vs.running {
		rp = append(rp, vs.orderPos(vs.views[i].TNew, i))
	}
	vs.runPos = rp
	sort.Ints(rp)
	pos := kU - 1
	for _, p := range rp {
		if p <= pos {
			pos++
		} else {
			break
		}
	}
	return runIn, vs.maxTNewUnschedBefore(pos + 1)
}

// maxTNewUnschedBefore returns the unscheduled task with the largest TNew
// among the first lim entries of order, ties to the smallest index, or -1.
// The last unscheduled entry in the window has the maximum TNew; the
// backward walk over its equal-TNew block recovers the smallest index —
// the first-wins tie-break of the reference's ascending-index scan.
func (vs *ViewSet) maxTNewUnschedBefore(lim int) int {
	p := lim - 1
	for p >= 0 && vs.views[vs.order[p]].Running {
		p--
	}
	if p < 0 {
		return -1
	}
	fresh := vs.order[p]
	maxT := vs.views[fresh].TNew
	for q := p - 1; q >= 0; q-- {
		i := vs.order[q]
		if vs.views[i].TNew != maxT {
			break
		}
		if !vs.views[i].Running {
			fresh = i
		}
	}
	return fresh
}

// countUnschedLess counts unscheduled tasks whose (TNew, index) key is
// strictly below (eff, idx): total incomplete tasks below the key (one
// binary search on order) minus the running tasks below it (an O(r) scan).
func (vs *ViewSet) countUnschedLess(eff float64, idx int) int {
	total := vs.orderInsertPos(eff, idx)
	for _, i := range vs.running {
		v := vs.views[i]
		if v.TNew < eff || (v.TNew == eff && i < idx) {
			total--
		}
	}
	return total
}

// orderKeyLess orders incomplete tasks by (TNew, index) — a total order,
// since indices are unique.
func (vs *ViewSet) orderKeyLess(a, b int) bool {
	va, vb := vs.views[a].TNew, vs.views[b].TNew
	if va != vb {
		return va < vb
	}
	return a < b
}

// orderInsertPos returns the position the key (tnew, idx) sorts to.
func (vs *ViewSet) orderInsertPos(tnew float64, idx int) int {
	return sort.Search(len(vs.order), func(p int) bool {
		i := vs.order[p]
		v := vs.views[i].TNew
		if v != tnew {
			return v >= tnew
		}
		return i >= idx
	})
}

// orderPos returns the position of task idx, whose stored TNew is tnew.
// A miss means the order diverged from the views — every later selection
// would be silently wrong — so it panics like the estimator's mirror.
func (vs *ViewSet) orderPos(tnew float64, idx int) int {
	p := vs.orderInsertPos(tnew, idx)
	if p >= len(vs.order) || vs.order[p] != idx {
		panic(fmt.Sprintf("spec: ViewSet order diverged: task %d (tnew %v) not at its key", idx, tnew))
	}
	return p
}

func (vs *ViewSet) sortOrder() {
	slices.SortFunc(vs.order, func(a, b int) int {
		if vs.orderKeyLess(a, b) {
			return -1
		}
		return 1
	})
}

// insertionSortEff sorts an (eff, idx) slice ascending: insertion sort
// with no allocation for the typical small running set, the library sort
// once a job holds enough slots for O(r²) swaps to bite.
func insertionSortEff(xs []effIdx) {
	if len(xs) > 24 {
		slices.SortFunc(xs, func(a, b effIdx) int {
			if a.eff != b.eff {
				if a.eff < b.eff {
					return -1
				}
				return 1
			}
			return a.idx - b.idx
		})
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0; j-- {
			a, b := xs[j], xs[j-1]
			if a.eff > b.eff || (a.eff == b.eff && a.idx > b.idx) {
				break
			}
			xs[j], xs[j-1] = b, a
		}
	}
}

func insertSortedInt(xs []int, v int) []int {
	p := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[p+1:], xs[p:])
	xs[p] = v
	return xs
}

func removeSortedInt(xs []int, v int, what string) []int {
	p := sort.SearchInts(xs, v)
	if p >= len(xs) || xs[p] != v {
		panic(fmt.Sprintf("spec: ViewSet %s list diverged: task %d not present", what, v))
	}
	return append(xs[:p], xs[p+1:]...)
}
