package spec

import (
	"math/rand"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// These property tests hold PickIncremental to Pick over adversarial
// synthetic candidate states: TNew/TRem values drawn from a tiny discrete
// set so key ties — which a real simulation produces with probability
// zero, but which the first-wins tie-break contract must still resolve
// identically — occur constantly, and every running/unscheduled mix,
// pruning depth and deadline slack gets sampled.

// randViews builds a random consistent view slice (ascending indices,
// possibly with completed gaps) and the equivalent sealed ViewSet. Most
// sets are small and tie-dense; one in eight is large with a small
// running set, the shape where EarliestCandidates' binary-search path
// (rather than a full scan) does the pruning.
func randViews(rng *rand.Rand) ([]TaskView, *ViewSet) {
	n := 1 + rng.Intn(12)
	runDenom := 2 // half the tasks running
	if rng.Intn(8) == 0 {
		n = 50 + rng.Intn(350)
		runDenom = 10 // a large job's running set is its small slot share
	}
	total := n + rng.Intn(4) // dense size incl. "completed" gaps
	vs := &ViewSet{}
	vs.Reset(total)
	var views []TaskView
	perm := rng.Perm(total)[:n]
	keep := map[int]bool{}
	for _, i := range perm {
		keep[i] = true
	}
	tie := []float64{1, 2, 3} // tiny key alphabet: ties everywhere
	for i := 0; i < total; i++ {
		if !keep[i] {
			continue
		}
		v := TaskView{Index: i, TNew: tie[rng.Intn(len(tie))]}
		if rng.Intn(runDenom) == 0 {
			v.Running = true
			v.Copies = 1 + rng.Intn(4)
			v.Speculable = rng.Intn(3) > 0
			v.TRem = tie[rng.Intn(len(tie))]
			if rng.Intn(8) == 0 {
				v.TRem = 0 // a copy at its exact finish time
			}
			v.Elapsed = float64(rng.Intn(4)) // 0 disables LATE candidacy
			v.Progress = float64(rng.Intn(3)) * 0.25
		}
		views = append(views, v)
		vs.Init(v)
	}
	vs.Seal()
	return views, vs
}

func randCtx(rng *rand.Rand, n int) Ctx {
	ctx := Ctx{
		TotalTasks:        n,
		TargetTasks:       1 + rng.Intn(n+1),
		CompletedTasks:    rng.Intn(n),
		WaveWidth:         1 + rng.Intn(20),
		SpeculativeCopies: rng.Intn(3),
	}
	if rng.Intn(2) == 1 {
		ctx.Kind = task.DeadlineBound
		ctx.RemainingTime = []float64{0.5, 1, 1.5, 2, 3, 100}[rng.Intn(6)]
	} else {
		ctx.Kind = task.ErrorBound
	}
	return ctx
}

// TestPickIncrementalMatchesPick cross-checks every incremental policy
// against its reference Pick on thousands of tie-riddled random states.
func TestPickIncrementalMatchesPick(t *testing.T) {
	policies := []IncrementalPolicy{
		NewGS(), NewRAS(), NewLATE(), NewMantri(), NoSpec{},
	}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 5000; iter++ {
		views, vs := randViews(rng)
		ctx := randCtx(rng, len(views))
		for _, p := range policies {
			want, wantOK := p.Pick(ctx, views)
			got, gotOK := p.PickIncremental(ctx, vs)
			if wantOK != gotOK || (wantOK && want != got) {
				t.Fatalf("iter %d policy %s ctx %+v:\nviews %+v\nPick            = (%+v, %v)\nPickIncremental = (%+v, %v)",
					iter, p.Name(), ctx, views, want, wantOK, got, gotOK)
			}
		}
	}
}

// TestViewSetMaintenance drives a random sequence of launches, idles,
// TNew changes and completions through a ViewSet and checks, after every
// operation, that its compacted views and every policy decision match a
// freshly built set — the incremental structures never drift from what a
// rebuild would produce.
func TestViewSetMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	policies := []IncrementalPolicy{
		NewGS(), NewRAS(), NewLATE(), NewMantri(), NoSpec{},
	}
	for iter := 0; iter < 300; iter++ {
		views, vs := randViews(rng)
		byIndex := map[int]*TaskView{}
		for i := range views {
			byIndex[views[i].Index] = &views[i]
		}
		tie := []float64{1, 2, 3}
		for op := 0; op < 30 && len(views) > 0; op++ {
			pick := views[rng.Intn(len(views))].Index
			v := byIndex[pick]
			switch rng.Intn(4) {
			case 0: // launch or add a copy
				if !v.Running {
					vs.NoteLaunched(pick)
					v.Running, v.Copies, v.TRem = true, 1, tie[rng.Intn(len(tie))]
					v.Speculable = rng.Intn(2) == 1
					v.Elapsed = float64(rng.Intn(3))
				} else {
					v.Copies++
				}
				vs.Update(*v)
			case 1: // preempt to idle
				if v.Running {
					vs.NoteIdle(pick)
					*v = TaskView{Index: pick, TNew: v.TNew}
					vs.Update(*v)
				}
			case 2: // oracle-style TNew redraw
				v.TNew = tie[rng.Intn(len(tie))]
				vs.Update(*v)
			case 3: // completion
				vs.Complete(pick)
				delete(byIndex, pick)
				for i := range views {
					if views[i].Index == pick {
						views = append(views[:i], views[i+1:]...)
						break
					}
				}
				for i := range views {
					byIndex[views[i].Index] = &views[i]
				}
			}
			compact := vs.AppendCompact(nil)
			if len(compact) != len(views) {
				t.Fatalf("iter %d op %d: compact len %d want %d", iter, op, len(compact), len(views))
			}
			for i := range compact {
				if compact[i] != views[i] {
					t.Fatalf("iter %d op %d: view %d diverged: %+v != %+v", iter, op, i, compact[i], views[i])
				}
			}
			if len(views) == 0 {
				break
			}
			ctx := randCtx(rng, len(views))
			for _, p := range policies {
				want, wantOK := p.Pick(ctx, views)
				got, gotOK := p.PickIncremental(ctx, vs)
				if wantOK != gotOK || (wantOK && want != got) {
					t.Fatalf("iter %d op %d policy %s: Pick (%+v,%v) != PickIncremental (%+v,%v)\nviews %+v",
						iter, op, p.Name(), want, wantOK, got, gotOK, views)
				}
			}
		}
	}
}

// TestViewSetBulkRescale exercises the estimator-bump path: a uniform
// rescale via SetTNewBulk + ResortByTNew must leave the set answering
// queries identically to a from-scratch build with the new values.
func TestViewSetBulkRescale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		views, vs := randViews(rng)
		f := []float64{0.5, 1.0, 1.75}[rng.Intn(3)]
		for i := range views {
			views[i].TNew *= f
			vs.SetTNewBulk(views[i].Index, views[i].TNew)
		}
		vs.ResortByTNew()
		fresh := &ViewSet{}
		fresh.Reset(len(vs.views))
		for _, v := range views {
			fresh.Init(v)
		}
		fresh.Seal()
		ctx := randCtx(rng, len(views))
		for _, p := range []IncrementalPolicy{NewGS(), NewRAS()} {
			a, aok := p.PickIncremental(ctx, vs)
			b, bok := p.PickIncremental(ctx, fresh)
			if aok != bok || (aok && a != b) {
				t.Fatalf("iter %d: rescaled set (%+v,%v) != fresh set (%+v,%v)", iter, a, aok, b, bok)
			}
		}
		if vs.MedianTNew() != fresh.MedianTNew() {
			t.Fatalf("iter %d: median %v != %v after rescale", iter, vs.MedianTNew(), fresh.MedianTNew())
		}
	}
}
