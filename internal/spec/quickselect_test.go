package spec

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
)

func TestEffDuration(t *testing.T) {
	cases := []struct {
		v    TaskView
		want float64
	}{
		{TaskView{TNew: 5}, 5}, // fresh
		{TaskView{Running: true, Speculable: true, Copies: 1, TRem: 3, TNew: 5}, 3},         // wait is faster
		{TaskView{Running: true, Speculable: true, Copies: 1, TRem: 9, TNew: 5}, 5},         // rescue
		{TaskView{Running: true, Speculable: false, Copies: 1, TRem: 9, TNew: 5}, 9},        // can't rescue yet
		{TaskView{Running: true, Speculable: true, Copies: MaxCopies, TRem: 9, TNew: 5}, 9}, // copy budget gone
	}
	for i, c := range cases {
		if got := effDuration(c.v); got != c.want {
			t.Errorf("case %d: effDuration = %v, want %v", i, got, c.want)
		}
	}
}

func TestEarliestSetSelectsSmallest(t *testing.T) {
	tasks := []TaskView{
		{Index: 0, TNew: 9},
		{Index: 1, TNew: 1},
		{Index: 2, TNew: 5},
		{Index: 3, TNew: 3},
		{Index: 4, TNew: 7},
	}
	ctx := Ctx{Kind: task.ErrorBound, TargetTasks: 3, TotalTasks: 5}
	got := earliestSet(ctx, tasks, nil)
	if len(got) != 3 {
		t.Fatalf("set size %d", len(got))
	}
	want := map[int]bool{1: true, 3: true, 2: true}
	for _, i := range got {
		if !want[tasks[i].Index] {
			t.Fatalf("unexpected member %d", tasks[i].Index)
		}
	}
}

func TestEarliestSetAllWhenNeedCoversEverything(t *testing.T) {
	tasks := []TaskView{{Index: 0, TNew: 1}, {Index: 1, TNew: 2}}
	ctx := Ctx{Kind: task.ErrorBound, TargetTasks: 5, TotalTasks: 5}
	if got := earliestSet(ctx, tasks, nil); len(got) != 2 {
		t.Fatalf("set size %d, want all", len(got))
	}
}

func TestEarliestSetProperty(t *testing.T) {
	// The selected set must have size need and every member's effective
	// duration must be <= every non-member's (modulo index tie-breaks).
	check := func(seed int64) bool {
		rng := dist.NewRNG(seed)
		n := 2 + rng.Intn(60)
		tasks := make([]TaskView, n)
		for i := range tasks {
			running := rng.Float64() < 0.5
			copies := 0
			if running {
				copies = 1 + rng.Intn(3)
			}
			tasks[i] = TaskView{
				Index:      i,
				Running:    running,
				Speculable: running && rng.Float64() < 0.7,
				Copies:     copies,
				TRem:       rng.Float64() * 10,
				TNew:       0.1 + rng.Float64()*10,
			}
		}
		need := 1 + rng.Intn(n)
		ctx := Ctx{Kind: task.ErrorBound, TargetTasks: need, TotalTasks: n}
		got := earliestSet(ctx, tasks, nil)
		if len(got) != need {
			return false
		}
		in := make(map[int]bool, len(got))
		maxIn := -1.0
		for _, i := range got {
			in[i] = true
			if e := effDuration(tasks[i]); e > maxIn {
				maxIn = e
			}
		}
		for i := range tasks {
			if !in[i] && effDuration(tasks[i]) < maxIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickselectPairsMatchesSort(t *testing.T) {
	check := func(seed int64) bool {
		rng := dist.NewRNG(seed)
		n := 1 + rng.Intn(100)
		pairs := make([]effIdx, n)
		vals := make([]float64, n)
		for i := range pairs {
			v := float64(rng.Intn(20)) // many ties
			pairs[i] = effIdx{eff: v, idx: i}
			vals[i] = v
		}
		k := rng.Intn(n)
		quickselectPairs(pairs, k)
		sort.Float64s(vals)
		// Every element at or before k must be <= the true k-th smallest.
		for i := 0; i <= k; i++ {
			if pairs[i].eff > vals[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestSetDeterministicWithTies(t *testing.T) {
	tasks := make([]TaskView, 10)
	for i := range tasks {
		tasks[i] = TaskView{Index: i, TNew: 2} // all tied
	}
	ctx := Ctx{Kind: task.ErrorBound, TargetTasks: 4, TotalTasks: 10}
	a := earliestSet(ctx, tasks, nil)
	b := earliestSet(ctx, tasks, nil)
	if len(a) != 4 || len(b) != 4 {
		t.Fatal("wrong size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic under ties")
		}
	}
}
