package spec

import "math"

// This file implements the production baselines the paper compares against:
// LATE (Zaharia et al., OSDI '08) and Mantri (Ananthanarayanan et al.,
// OSDI '10), plus a no-speculation control. Both baselines are
// approximation-oblivious: they launch unscheduled tasks in submission
// order and only differ in when they speculate — which is exactly the
// deficiency GRASS addresses (§1: "by not considering the approximation
// bounds, state-of-the-art straggler mitigation techniques ... fall
// significantly short").

// NoSpec never speculates: unscheduled tasks run in index (FIFO) order.
// It isolates the value of speculation itself in ablations.
type NoSpec struct{}

// Name returns "NoSpec".
func (NoSpec) Name() string { return "NoSpec" }

// Pick launches the lowest-index unscheduled task.
func (NoSpec) Pick(_ Ctx, tasks []TaskView) (Decision, bool) {
	for _, t := range tasks {
		if !t.Running {
			return Decision{TaskIndex: t.Index}, true
		}
	}
	return Decision{}, false
}

// PickIncremental implements IncrementalPolicy: the FIFO head in O(1).
func (NoSpec) PickIncremental(_ Ctx, vs *ViewSet) (Decision, bool) {
	if u, ok := vs.FirstUnsched(); ok {
		return Decision{TaskIndex: u}, true
	}
	return Decision{}, false
}

// LATE implements the LATE scheduler's speculation rules:
//
//   - new (unscheduled) tasks always take priority, in FIFO order;
//   - when none remain, speculate the running task with the Longest
//     Approximate Time to End, but only among tasks whose progress rate is
//     below the SlowTaskThreshold percentile of running tasks;
//   - never run more than two copies of a task;
//   - cap concurrently running speculative copies at SpeculativeCap × the
//     job's slot share.
type LATE struct {
	// SlowTaskThreshold is the progress-rate percentile below which a task
	// is considered slow (LATE's default: 25th percentile).
	SlowTaskThreshold float64
	// SpeculativeCap bounds speculative copies as a fraction of the job's
	// current wave width (LATE's default: 10%).
	SpeculativeCap float64
	// MinElapsed avoids speculating tasks that just started (progress rates
	// are meaningless at first); LATE uses a 1-minute floor on big clusters,
	// scaled here in simulation time units.
	MinElapsed float64

	// buf holds reusable candidate buffers; nil (zero-value LATE) falls back
	// to per-call allocation. One scheduler goroutine owns a LATE instance,
	// so the shared buffers are safe.
	buf *lateScratch
}

type lateScratch struct {
	cands []lateCand
	rates []float64
}

type lateCand struct {
	i    int
	rate float64
}

// NewLATE returns LATE with its published default parameters.
func NewLATE() LATE {
	return LATE{SlowTaskThreshold: 0.25, SpeculativeCap: 0.10, MinElapsed: 0, buf: &lateScratch{}}
}

// Name returns "LATE".
func (LATE) Name() string { return "LATE" }

// Pick implements Policy.
func (l LATE) Pick(ctx Ctx, tasks []TaskView) (Decision, bool) {
	// New tasks first, FIFO — LATE does not reorder work by any bound.
	for _, t := range tasks {
		if !t.Running {
			return Decision{TaskIndex: t.Index}, true
		}
	}
	// Speculation cap: at most SpeculativeCap × wave-width speculative
	// copies at once (minimum 1 so small jobs can still speculate).
	cap := int(l.SpeculativeCap * float64(ctx.WaveWidth))
	if cap < 1 {
		cap = 1
	}
	if ctx.SpeculativeCopies >= cap {
		return Decision{}, false
	}
	// Collect progress rates of running singleton tasks.
	var cands []lateCand
	var rates []float64
	if l.buf != nil {
		cands, rates = l.buf.cands[:0], l.buf.rates[:0]
	}
	for i, t := range tasks {
		if !t.Running || !t.Speculable || t.Copies >= 2 || t.Elapsed < l.MinElapsed || t.Elapsed <= 0 {
			continue
		}
		r := t.Progress / t.Elapsed
		cands = append(cands, lateCand{i, r})
		rates = append(rates, r)
	}
	if l.buf != nil {
		l.buf.cands, l.buf.rates = cands, rates
	}
	if len(cands) == 0 {
		return Decision{}, false
	}
	thr := percentile(rates, l.SlowTaskThreshold)
	// A task is slow when its progress rate falls *strictly below* the
	// threshold percentile; a stalled task (zero rate) is always slow. The
	// strictness matters: when a wave launches together and every candidate
	// reports the same rate, the percentile equals that rate, and a `rate >
	// thr → skip` test (the old code) classified every candidate as slow and
	// speculated a healthy task. Among slow tasks, pick the longest
	// approximate time to end, (1 − progress) / progress-rate; a stalled
	// task's time-to-end is +Inf, which must outrank every moving straggler
	// (the old `t_new × 100` sentinel could lose to a genuine straggler with
	// a worse estimate).
	best := -1
	var bestLeft float64
	for _, c := range cands {
		if c.rate >= thr && c.rate > 0 {
			continue // not slow
		}
		left := math.Inf(1) // stalled
		if c.rate > 0 {
			left = (1 - tasks[c.i].Progress) / c.rate
		}
		if best == -1 || left > bestLeft {
			best, bestLeft = c.i, left
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: tasks[best].Index, Speculative: true}, true
}

// PickIncremental implements IncrementalPolicy: the FIFO head is O(1) and
// the percentile machinery runs over just the running set — LATE's scan
// was O(tasks) only because it walked every view to find both.
func (l LATE) PickIncremental(ctx Ctx, vs *ViewSet) (Decision, bool) {
	if u, ok := vs.FirstUnsched(); ok {
		return Decision{TaskIndex: u}, true
	}
	cap := int(l.SpeculativeCap * float64(ctx.WaveWidth))
	if cap < 1 {
		cap = 1
	}
	if ctx.SpeculativeCopies >= cap {
		return Decision{}, false
	}
	var cands []lateCand
	var rates []float64
	if l.buf != nil {
		cands, rates = l.buf.cands[:0], l.buf.rates[:0]
	}
	// vs.Running() ascends by task index — the same relative order the
	// reference scan visits running views in, so the percentile inputs
	// and every first-wins tie-break below match it exactly.
	for _, i := range vs.Running() {
		t := vs.At(i)
		if !t.Speculable || t.Copies >= 2 || t.Elapsed < l.MinElapsed || t.Elapsed <= 0 {
			continue
		}
		r := t.Progress / t.Elapsed
		cands = append(cands, lateCand{i, r})
		rates = append(rates, r)
	}
	if l.buf != nil {
		l.buf.cands, l.buf.rates = cands, rates
	}
	if len(cands) == 0 {
		return Decision{}, false
	}
	thr := percentile(rates, l.SlowTaskThreshold)
	best := -1
	var bestLeft float64
	for _, c := range cands {
		if c.rate >= thr && c.rate > 0 {
			continue
		}
		left := math.Inf(1)
		if c.rate > 0 {
			left = (1 - vs.At(c.i).Progress) / c.rate
		}
		if best == -1 || left > bestLeft {
			best, bestLeft = c.i, left
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: best, Speculative: true}, true
}

// Mantri implements Mantri's duplicate rule: schedule a restart/duplicate
// for an outlier only when doing so is likely to reduce total resource
// usage, i.e. when the remaining time is at least twice a fresh copy
// (t_rem > 2×t_new). Unscheduled tasks still run FIFO — like LATE, Mantri
// has no notion of an approximation bound — but unlike LATE, Mantri acts on
// outliers even while unscheduled tasks remain, because its criterion
// guarantees a net resource saving.
type Mantri struct {
	// Threshold is the t_rem/t_new ratio required to duplicate (paper: 2).
	Threshold float64
}

// NewMantri returns Mantri with its published threshold.
func NewMantri() Mantri { return Mantri{Threshold: 2} }

// Name returns "Mantri".
func (Mantri) Name() string { return "Mantri" }

// Pick implements Policy.
func (m Mantri) Pick(ctx Ctx, tasks []TaskView) (Decision, bool) {
	// Outlier duplication first: worst ratio wins.
	best := -1
	var bestRatio float64
	for i, t := range tasks {
		if !t.Running || !t.Speculable || t.Copies >= 2 || t.TNew <= 0 {
			continue
		}
		if r := t.TRem / t.TNew; r > m.Threshold && (best == -1 || r > bestRatio) {
			best, bestRatio = i, r
		}
	}
	if best != -1 {
		return Decision{TaskIndex: tasks[best].Index, Speculative: true}, true
	}
	for _, t := range tasks {
		if !t.Running {
			return Decision{TaskIndex: t.Index}, true
		}
	}
	return Decision{}, false
}

// PickIncremental implements IncrementalPolicy: the outlier scan covers
// only the running set; the FIFO fallback is O(1).
func (m Mantri) PickIncremental(_ Ctx, vs *ViewSet) (Decision, bool) {
	best := -1
	var bestRatio float64
	for _, i := range vs.Running() {
		t := vs.At(i)
		if !t.Speculable || t.Copies >= 2 || t.TNew <= 0 {
			continue
		}
		if r := t.TRem / t.TNew; r > m.Threshold && (best == -1 || r > bestRatio) {
			best, bestRatio = i, r
		}
	}
	if best != -1 {
		return Decision{TaskIndex: best, Speculative: true}, true
	}
	if u, ok := vs.FirstUnsched(); ok {
		return Decision{TaskIndex: u}, true
	}
	return Decision{}, false
}

// percentile returns the p-quantile of xs by linear interpolation, sorting
// xs in place (the caller passes a scratch slice it no longer needs).
// Duplicated from internal/dist to keep spec dependency-light for policies
// that run in the scheduler's hot loop.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := xs
	// insertion sort: candidate sets are small (running tasks of one job)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
