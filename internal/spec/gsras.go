package spec

import "github.com/approx-analytics/grass/internal/task"

// GS is Greedy Speculative scheduling (Pseudocode 1 & 2 with OC = 0): pick
// the launch that most improves the approximation goal right now. For
// deadline-bound jobs that is Shortest Job First over fresh copies and
// beneficial speculative copies; for error-bound jobs it is Longest Job
// First over the tasks needed to reach the bound.
//
// The zero value works but allocates selection buffers on every Pick; use
// NewGS for the allocation-free hot path.
type GS struct{ buf *scratch }

// NewGS returns a GS policy with reusable selection buffers. One scheduler
// goroutine owns the instance (copies share the buffers).
func NewGS() GS { return GS{buf: &scratch{}} }

// Name returns "GS".
func (GS) Name() string { return "GS" }

// Pick implements Policy.
func (g GS) Pick(ctx Ctx, tasks []TaskView) (Decision, bool) {
	if ctx.Kind == task.DeadlineBound {
		return gsDeadline(ctx, tasks)
	}
	return gsError(ctx, tasks, g.buf)
}

// PickIncremental implements IncrementalPolicy: the same selections as
// Pick, answered from the maintained orderings in O(running + log tasks).
func (g GS) PickIncremental(ctx Ctx, vs *ViewSet) (Decision, bool) {
	if ctx.Kind == task.DeadlineBound {
		return gsDeadlineInc(ctx, vs)
	}
	return gsErrorInc(ctx, vs)
}

// gsDeadlineInc mirrors gsDeadline: minimum (TNew, index) over eligible
// candidates. Eligible running tasks are scanned directly (the set is
// bounded by the job's slot share); the unscheduled minimum is the order
// head — if even it exceeds the deadline, no unscheduled task qualifies.
func gsDeadlineInc(ctx Ctx, vs *ViewSet) (Decision, bool) {
	best := -1
	var bestNew float64
	for _, i := range vs.Running() {
		t := vs.At(i)
		if t.TNew > ctx.RemainingTime {
			continue
		}
		if !t.Speculable || t.Copies >= MaxCopies || t.TNew >= t.TRem {
			continue
		}
		if best == -1 || t.TNew < bestNew {
			best, bestNew = i, t.TNew
		}
	}
	if u, ok := vs.MinTNewUnsched(); ok {
		if tn := vs.At(u).TNew; tn <= ctx.RemainingTime {
			if best == -1 || tn < bestNew || (tn == bestNew && u < best) {
				best = u
			}
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: best, Speculative: vs.At(best).Running}, true
}

// gsErrorInc mirrors gsError: LJF over the earliest set, with running
// candidates keyed by TRem and the unscheduled fresh candidate coming
// from the maintained order.
func gsErrorInc(ctx Ctx, vs *ViewSet) (Decision, bool) {
	runIn, fresh := vs.EarliestCandidates(ctx.Remaining())
	best := -1
	var bestKey float64
	for _, i := range runIn {
		t := vs.At(i)
		if !t.Speculable || t.Copies >= MaxCopies || t.TNew >= t.TRem {
			continue
		}
		if best == -1 || t.TRem > bestKey {
			best, bestKey = i, t.TRem
		}
	}
	if fresh >= 0 {
		if tn := vs.At(fresh).TNew; best == -1 || tn > bestKey || (tn == bestKey && fresh < best) {
			best = fresh
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: best, Speculative: vs.At(best).Running}, true
}

// gsDeadline: prune tasks that cannot finish by the deadline and speculative
// copies that would not beat the running copy; select the lowest t_new.
func gsDeadline(ctx Ctx, tasks []TaskView) (Decision, bool) {
	best := -1
	var bestNew float64
	for i, t := range tasks {
		if t.TNew > ctx.RemainingTime { // exceeds deadline: prune
			continue
		}
		if t.Running {
			// Pseudocode 1's only speculation checks: a copy must be
			// possible (progress reported, copy budget left) and must beat
			// the running copy. GS deliberately does NOT weigh whether the
			// original would make the deadline anyway — that naive greed is
			// exactly the opportunity cost RAS avoids (§3.1.1).
			if !t.Speculable || t.Copies >= MaxCopies || t.TNew >= t.TRem {
				continue
			}
		}
		if best == -1 || t.TNew < bestNew {
			best, bestNew = i, t.TNew
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: tasks[best].Index, Speculative: tasks[best].Running}, true
}

// gsError: restrict to the tasks that contribute earliest to the error
// bound (the `need` unfinished tasks with smallest effective duration
// min(t_rem, t_new)), then select the one with the largest remaining work —
// LJF, speculating the worst straggler first.
func gsError(ctx Ctx, tasks []TaskView, buf *scratch) (Decision, bool) {
	cand := earliestSet(ctx, tasks, buf)
	best := -1
	var bestKey float64
	for _, i := range cand {
		t := tasks[i]
		if t.Running && (!t.Speculable || t.Copies >= MaxCopies || t.TNew >= t.TRem) {
			continue
		}
		key := t.TNew
		if t.Running {
			key = t.TRem
		}
		// Explicit (key, lowest-index) tie-break: cand's order is the
		// quickselect's arbitrary partition order, so a first-wins
		// comparison alone would not be deterministic — and the
		// incremental path reproduces exactly this rule.
		if best == -1 || key > bestKey || (key == bestKey && i < best) {
			best, bestKey = i, key
		}
	}
	if best == -1 {
		return Decision{}, false
	}
	return Decision{TaskIndex: tasks[best].Index, Speculative: tasks[best].Running}, true
}

// RAS is Resource Aware Speculative scheduling (Pseudocode 1 & 2 with
// OC = 1): a speculative copy is launched only when it saves both time and
// resources — c×t_rem − (c+1)×t_new > 0 — and among positive-saving
// candidates the largest saving wins. When no speculation saves resources,
// RAS falls back to the bound's natural ordering of unscheduled tasks (SJF
// for deadlines, LJF for error bounds).
// The zero value works but allocates selection buffers on every Pick; use
// NewRAS for the allocation-free hot path.
type RAS struct{ buf *scratch }

// NewRAS returns a RAS policy with reusable selection buffers. One scheduler
// goroutine owns the instance (copies share the buffers).
func NewRAS() RAS { return RAS{buf: &scratch{}} }

// Name returns "RAS".
func (RAS) Name() string { return "RAS" }

// Pick implements Policy.
func (r RAS) Pick(ctx Ctx, tasks []TaskView) (Decision, bool) {
	if ctx.Kind == task.DeadlineBound {
		return rasDeadline(ctx, tasks)
	}
	return rasError(ctx, tasks, r.buf)
}

// PickIncremental implements IncrementalPolicy: Pick's selections from the
// maintained orderings in O(running + log tasks).
func (r RAS) PickIncremental(ctx Ctx, vs *ViewSet) (Decision, bool) {
	if ctx.Kind == task.DeadlineBound {
		return rasDeadlineInc(ctx, vs)
	}
	return rasErrorInc(ctx, vs)
}

// rasDeadlineInc mirrors rasDeadline: best positive saving among running
// tasks within the deadline, else SJF over unscheduled tasks.
func rasDeadlineInc(ctx Ctx, vs *ViewSet) (Decision, bool) {
	spec := -1
	var specSaving float64
	for _, i := range vs.Running() {
		t := vs.At(i)
		if t.TNew > ctx.RemainingTime || !t.Speculable || t.Copies >= MaxCopies {
			continue
		}
		if s := t.Saving(); s > 0 && (spec == -1 || s > specSaving) {
			spec, specSaving = i, s
		}
	}
	if spec >= 0 {
		return Decision{TaskIndex: spec, Speculative: true}, true
	}
	if u, ok := vs.MinTNewUnsched(); ok && vs.At(u).TNew <= ctx.RemainingTime {
		return Decision{TaskIndex: u}, true
	}
	return Decision{}, false
}

// rasErrorInc mirrors rasError: best positive saving inside the earliest
// set, else LJF over the set's unscheduled tasks.
func rasErrorInc(ctx Ctx, vs *ViewSet) (Decision, bool) {
	runIn, fresh := vs.EarliestCandidates(ctx.Remaining())
	spec := -1
	var specSaving float64
	for _, i := range runIn {
		t := vs.At(i)
		if !t.Speculable || t.Copies >= MaxCopies {
			continue
		}
		if s := t.Saving(); s > 0 && (spec == -1 || s > specSaving) {
			spec, specSaving = i, s
		}
	}
	if spec >= 0 {
		return Decision{TaskIndex: spec, Speculative: true}, true
	}
	if fresh >= 0 {
		return Decision{TaskIndex: fresh}, true
	}
	return Decision{}, false
}

func rasDeadline(ctx Ctx, tasks []TaskView) (Decision, bool) {
	// Speculation candidates: positive saving, within the deadline.
	spec := -1
	var specSaving float64
	// Fallback: unscheduled tasks by SJF.
	fresh := -1
	var freshNew float64
	for i, t := range tasks {
		if t.TNew > ctx.RemainingTime {
			continue
		}
		if t.Running {
			if !t.Speculable || t.Copies >= MaxCopies {
				continue
			}
			if s := t.Saving(); s > 0 && (spec == -1 || s > specSaving) {
				spec, specSaving = i, s
			}
		} else if fresh == -1 || t.TNew < freshNew {
			fresh, freshNew = i, t.TNew
		}
	}
	if spec >= 0 {
		return Decision{TaskIndex: tasks[spec].Index, Speculative: true}, true
	}
	if fresh >= 0 {
		return Decision{TaskIndex: tasks[fresh].Index}, true
	}
	return Decision{}, false
}

func rasError(ctx Ctx, tasks []TaskView, buf *scratch) (Decision, bool) {
	cand := earliestSet(ctx, tasks, buf)
	spec := -1
	var specSaving float64
	fresh := -1
	var freshKey float64
	for _, i := range cand {
		t := tasks[i]
		if t.Running {
			if !t.Speculable || t.Copies >= MaxCopies {
				continue
			}
			// (saving, lowest-index) tie-break — see gsError.
			if s := t.Saving(); s > 0 && (spec == -1 || s > specSaving || (s == specSaving && i < spec)) {
				spec, specSaving = i, s
			}
		} else if fresh == -1 || t.TNew > freshKey || (t.TNew == freshKey && i < fresh) { // LJF over unscheduled
			fresh, freshKey = i, t.TNew
		}
	}
	if spec >= 0 {
		return Decision{TaskIndex: tasks[spec].Index, Speculative: true}, true
	}
	if fresh >= 0 {
		return Decision{TaskIndex: tasks[fresh].Index}, true
	}
	return Decision{}, false
}

// effDuration is a task's realistic effective completion time for the
// error-bound pruning: fresh tasks cost t_new; running tasks finish at the
// earlier of waiting and re-running when a copy could still rescue them,
// and at t_rem otherwise. A deep straggler that cannot be speculated right
// now therefore falls out of the earliest set and a spare unscheduled task
// takes its place — the hedge that makes error bounds cheap.
func effDuration(t TaskView) float64 {
	if !t.Running {
		return t.TNew
	}
	if t.Speculable && t.Copies < MaxCopies {
		if t.TRem < t.TNew {
			return t.TRem
		}
		return t.TNew
	}
	return t.TRem
}

// scratch holds the reusable earliestSet buffers of one policy instance. The
// returned index slice aliases scratch memory: it is valid until the next
// Pick on the same instance, which is exactly the lifetime the policy
// implementations need.
type scratch struct {
	pairs []effIdx
	idx   []int
}

// earliestSet returns the indices (into tasks) of the `need` unfinished
// tasks with the smallest effective duration — the tasks that contribute
// earliest to the error bound (Pseudocode 2's pruning stage). need =
// TargetTasks − CompletedTasks; if more tasks remain than needed, the
// slowest ones are pruned from consideration entirely. Selection uses an
// O(n) quickselect (this runs once per launch decision); ties at the
// threshold are broken by task index for determinism. The returned
// indices are in the quickselect's arbitrary partition order — consumers
// must use order-independent (key, lowest-index) tie-breaks, the contract
// the incremental path (EarliestCandidates) reproduces without a scan.
// buf, when non-nil, supplies reusable buffers so the hot path allocates
// nothing.
func earliestSet(ctx Ctx, tasks []TaskView, buf *scratch) []int {
	need := ctx.Remaining()
	if need <= 0 {
		return nil
	}
	if buf == nil {
		buf = &scratch{}
	}
	idx := buf.idx[:0]
	if need >= len(tasks) {
		for i := range tasks {
			idx = append(idx, i)
		}
		buf.idx = idx
		return idx
	}
	pairs := buf.pairs[:0]
	for i, t := range tasks {
		pairs = append(pairs, effIdx{eff: effDuration(t), idx: i})
	}
	buf.pairs = pairs
	quickselectPairs(pairs, need-1)
	for i := 0; i < need; i++ {
		idx = append(idx, pairs[i].idx)
	}
	buf.idx = idx
	return idx
}

type effIdx struct {
	eff float64
	idx int
}

// quickselectPairs partially orders pairs so the k smallest (by eff, ties
// by idx — deterministic) occupy the first k+1 positions.
func quickselectPairs(xs []effIdx, k int) {
	less := func(a, b effIdx) bool {
		if a.eff != b.eff {
			return a.eff < b.eff
		}
		return a.idx < b.idx
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted inputs.
		mid := lo + (hi-lo)/2
		if less(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if less(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if less(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for less(xs[i], pivot) {
				i++
			}
			for less(pivot, xs[j]) {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}
