// Package spec defines the speculation policy interface and implements the
// paper's two building blocks — Greedy Speculative (GS) and Resource Aware
// Speculative (RAS) scheduling, Pseudocode 1 and 2 — together with the
// production baselines LATE and Mantri and a no-speculation control.
//
// A Policy answers one question: given a vacant slot and the job's unfinished
// tasks (with estimated remaining times t_rem and fresh-copy times t_new),
// which task should the slot run next — an unscheduled task or a speculative
// copy of a running one?
package spec

import (
	"github.com/approx-analytics/grass/internal/task"
)

// TaskView is a policy's view of one unfinished task. All durations are
// estimates supplied by the scheduler's estimator (the oracle scheduler
// supplies ground truth instead).
type TaskView struct {
	// Index is the task's index within its job.
	Index int
	// Running reports whether at least one copy is currently executing.
	Running bool
	// Copies is the number of currently running copies (c in the paper's
	// saving formula).
	Copies int
	// Speculable reports whether the task is eligible for a speculative
	// copy: its best copy has reported enough progress for a remaining-time
	// estimate to exist (§5's progress reports arrive every 5% of data; a
	// copy that just started has no t_rem). Always true in oracle mode.
	Speculable bool
	// TRem is the estimated remaining duration of the earliest-finishing
	// running copy. Meaningless when !Running.
	TRem float64
	// TNew is the estimated duration of a fresh copy.
	TNew float64
	// Elapsed is how long the oldest running copy has been executing.
	Elapsed float64
	// Progress is the fraction of work the best copy has completed, from
	// task progress reports (§5). In [0, 1).
	Progress float64
}

// Saving is the paper's resource-savings criterion for speculating a running
// task with c copies: c×t_rem − (c+1)×t_new. Positive means a speculative
// copy is expected to save both time and resources.
func (v TaskView) Saving() float64 {
	return float64(v.Copies)*v.TRem - float64(v.Copies+1)*v.TNew
}

// Ctx carries job- and cluster-level state into a scheduling decision.
type Ctx struct {
	// Kind is the job's approximation bound type.
	Kind task.BoundKind
	// RemainingTime is the time left to the deadline (δ' in Pseudocode 1).
	// Only meaningful for deadline-bound jobs.
	RemainingTime float64
	// TargetTasks is the number of input tasks the job must complete to meet
	// its bound (for deadline jobs this is the total task count).
	TargetTasks int
	// CompletedTasks counts finished input tasks.
	CompletedTasks int
	// TotalTasks is the job's input task count.
	TotalTasks int
	// WaveWidth is the number of slots currently allotted to the job — the
	// wave width the theory section's W = T/S refers to.
	WaveWidth int
	// RunningCopies is the number of copies (original + speculative) the job
	// has executing right now.
	RunningCopies int
	// SpeculativeCopies is how many of those are speculative (copy ≥ 2 of a
	// task).
	SpeculativeCopies int
	// Utilization is the cluster-wide slot utilization in [0, 1].
	Utilization float64
	// EstimationAccuracy is the measured accuracy of the estimator feeding
	// TRem/TNew (§5.1), in [0, 1].
	EstimationAccuracy float64
	// Now is the current simulation time.
	Now float64
}

// Remaining returns how many more tasks the job needs to meet its bound.
func (c Ctx) Remaining() int {
	r := c.TargetTasks - c.CompletedTasks
	if r < 0 {
		return 0
	}
	return r
}

// Decision names the task to launch and whether the launch is a speculative
// copy of an already-running task.
type Decision struct {
	TaskIndex   int
	Speculative bool
}

// Policy picks the next copy to launch for one job. Implementations must be
// deterministic given the same inputs. A Policy instance may be stateful and
// is owned by a single job.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the next launch, or ok=false to leave the slot idle (for
	// this job) — e.g. when no candidate can finish before the deadline.
	// tasks contains only unfinished tasks and is never reordered by the
	// caller between calls; implementations must not mutate it.
	Pick(ctx Ctx, tasks []TaskView) (Decision, bool)
}

// IncrementalPolicy is the optional delta-aware fast path of a Policy: the
// scheduler keeps a ViewSet alive across events — dirtying only the tasks
// an event touched (copy launch/finish/preemption, an estimator update
// whose normalized median actually moved) and re-deriving only those views
// before the next launch attempt — and the policy selects from the
// maintained orderings instead of rescanning every task.
//
// The contract mirrors Pick exactly: given the same job state,
// PickIncremental must return the identical Decision (including
// first-wins index tie-breaks) that Pick would return for the equivalent
// freshly built view slice — Pick stays the executable reference, and the
// scheduler's differential tests hold implementations to it. The ViewSet
// is refreshed by the scheduler before each call; implementations must
// not mutate it and may not retain it across calls.
type IncrementalPolicy interface {
	Policy
	// PickIncremental returns the next launch, or ok=false to leave the
	// slot idle, selecting from the incrementally maintained candidate
	// state instead of a rebuilt view slice.
	PickIncremental(ctx Ctx, vs *ViewSet) (Decision, bool)
}

// Observer is an optional interface for policies that learn from job
// outcomes (GRASS's sample collection). The scheduler calls OnJobEnd exactly
// once per job.
type Observer interface {
	// OnJobEnd reports the job's final performance: for deadline jobs, acc
	// is the achieved accuracy and dur the deadline; for error-bound jobs,
	// acc is 1 and dur the completion time.
	OnJobEnd(ctx Ctx, acc, dur float64)
}

// ProgressObserver is an optional interface for policies that track the
// completion curve of a job while it runs (GRASS's learner records
// tasks-completed-versus-time samples this way).
type ProgressObserver interface {
	// OnTaskComplete fires when an input task finishes; completed is the new
	// completion count and t the simulation time since the job started.
	OnTaskComplete(completed int, t float64)
}

// LearnedState is an opaque snapshot of a factory's cross-job learned
// state (GRASS's sample store). Implementations must merge exactly and
// commutatively — integer-count sketch state, not floating-point
// accumulations — so per-partition states fold deterministically in the
// sharded runner's canonical ascending-partition order and the folded
// state is indistinguishable from a single factory having seen every
// sample.
type LearnedState interface {
	// MergeLearned folds o — a state exported by an identically
	// configured factory — into the receiver. Implementations panic on a
	// configuration mismatch (a programming error: partitions of one run
	// always share the factory configuration).
	MergeLearned(o LearnedState)
}

// SharedLearner is an optional Factory interface for policies whose
// learned state is mergeable across partitions. The sharded runner uses
// it to fix the P>1 learning scope: each partition's factory exports its
// state after the run, the exports fold canonically, and a later epoch's
// factories are seeded with the combined cluster history instead of each
// partition re-learning from only its own jobs.
type SharedLearner interface {
	// ExportLearned snapshots what the factory learned ITSELF — an
	// independent copy, safe to merge and retain after the factory is
	// gone — or nil when the configured learner is not mergeable.
	// Seeded history (SeedLearned) is never re-exported: every partition
	// of a sharded run holds the same seeded base, and exporting deltas
	// is what keeps the canonical merge from folding it P times over.
	ExportLearned() LearnedState
	// SeedLearned pre-loads learned state (accumulated from previous
	// epochs' exports) before any job runs, as an immutable query-only
	// layer under whatever the factory records itself. The factory must
	// copy what it needs: the same state value seeds every partition's
	// factory. nil is a no-op.
	SeedLearned(LearnedState)
}

// Factory builds per-job policy instances. Stateless policies can be shared;
// stateful ones (GRASS) allocate per job.
type Factory interface {
	// Name identifies the policy family.
	Name() string
	// NewPolicy returns the policy instance for one job.
	NewPolicy(jobID, numTasks int) Policy
}

// statelessFactory reuses one Policy for every job.
type statelessFactory struct{ p Policy }

// Stateless wraps a stateless Policy as a Factory.
func Stateless(p Policy) Factory { return statelessFactory{p} }

func (f statelessFactory) Name() string              { return f.p.Name() }
func (f statelessFactory) NewPolicy(int, int) Policy { return f.p }

// MaxCopies caps the number of simultaneous copies of one task any policy
// will request. Guideline 1 says ≤2 copies are optimal during early waves;
// the final wave speculates aggressively, but beyond a few copies the
// marginal gain of another i.i.d. draw is negligible.
const MaxCopies = 4
