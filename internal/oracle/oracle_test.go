package oracle

import (
	"testing"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/estimate"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

func TestFactoryBasics(t *testing.T) {
	f := New()
	if f.Name() != "Oracle" {
		t.Fatal("name wrong")
	}
	p1, p2 := f.NewPolicy(0, 10), f.NewPolicy(1, 10)
	if p1 == p2 {
		t.Fatal("oracle policies must be per-job (they hold switch state)")
	}
	if p1.Name() != "Oracle" {
		t.Fatal("policy name wrong")
	}
}

func TestSwitchesForFinalWaves(t *testing.T) {
	p := New().NewPolicy(0, 100).(*policy)
	ctx := spec.Ctx{Kind: task.ErrorBound, TargetTasks: 100, TotalTasks: 100, WaveWidth: 10}
	views := []spec.TaskView{{Index: 0, TNew: 1}}
	// 100 remaining, width 10 → 10 waves: stay RAS.
	p.Pick(ctx, views)
	if p.switched {
		t.Fatal("switched too early")
	}
	ctx.CompletedTasks = 85 // 15 left ≤ 2×10
	p.Pick(ctx, views)
	if !p.switched {
		t.Fatal("did not switch in the final two waves")
	}
}

func TestDeadlineSwitch(t *testing.T) {
	p := New().NewPolicy(0, 100).(*policy)
	views := []spec.TaskView{{Index: 0, TNew: 4}, {Index: 1, TNew: 6}}
	ctx := spec.Ctx{Kind: task.DeadlineBound, RemainingTime: 100, TargetTasks: 2, TotalTasks: 2}
	p.Pick(ctx, views)
	if p.switched {
		t.Fatal("switched with a loose deadline")
	}
	ctx.RemainingTime = 9 // ≤ 2×median(5)
	p.Pick(ctx, views)
	if !p.switched {
		t.Fatal("did not switch near the deadline")
	}
}

// End-to-end: with ground-truth views the oracle should complete an exact
// job at least as fast as blind LATE on the same seed, on average.
func TestOracleBeatsLATE(t *testing.T) {
	cfg := sched.Config{
		Cluster:          cluster.Config{Machines: 10, SlotsPerMachine: 2},
		Estimator:        estimate.Config{TRemNoise: 0.45, TNewNoise: 0.35, Prior: 1},
		DurationBeta:     1.259,
		DurationCap:      50,
		TailFrac:         0.2,
		TailStart:        1.5,
		IntermediateBeta: 2.5,
		MinSpecProgress:  0.15,
	}
	job := func() []*task.Job {
		work := make([]float64, 150)
		for i := range work {
			work[i] = 1
		}
		return []*task.Job{{ID: 0, InputWork: work, Bound: task.Exact()}}
	}
	var oracleTot, lateTot float64
	for seed := int64(0); seed < 5; seed++ {
		ocfg := cfg
		ocfg.Seed = seed
		ocfg.Oracle = true
		s, err := sched.New(ocfg, New())
		if err != nil {
			t.Fatal(err)
		}
		or, err := s.Run(job())
		if err != nil {
			t.Fatal(err)
		}
		lcfg := cfg
		lcfg.Seed = seed
		s2, err := sched.New(lcfg, spec.Stateless(spec.NewLATE()))
		if err != nil {
			t.Fatal(err)
		}
		lr, err := s2.Run(job())
		if err != nil {
			t.Fatal(err)
		}
		oracleTot += or.Results[0].InputDuration
		lateTot += lr.Results[0].InputDuration
	}
	if oracleTot >= lateTot {
		t.Errorf("oracle total %v not faster than LATE %v", oracleTot, lateTot)
	}
}
