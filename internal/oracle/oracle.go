// Package oracle provides the "optimal" baseline of §2.3 and §6.2.3: a
// scheduler that "knows task durations and slot availabilities in advance".
//
// It is meant to be paired with sched.Config.Oracle = true, which feeds
// policies ground-truth TaskViews: the exact remaining time of every running
// copy and the exact duration the next copy of each task would have. On top
// of that perfect information the oracle applies the theory's optimal
// structure (Guidelines 1–3): bound-aware ordering with resource-aware
// speculation (RAS) through the early waves, switching to aggressive greedy
// speculation (GS) for the final two waves — the switch point computed
// exactly, since nothing is estimated.
package oracle

import (
	"sort"

	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// Factory builds per-job oracle policies.
type Factory struct{}

// New returns the oracle policy factory.
func New() Factory { return Factory{} }

// Name returns "Oracle".
func (Factory) Name() string { return "Oracle" }

// NewPolicy returns a fresh per-job oracle controller.
func (Factory) NewPolicy(jobID, numTasks int) spec.Policy {
	return &policy{}
}

// policy switches RAS→GS at the exact final-two-waves point.
type policy struct {
	switched bool
	gs       spec.GS
	ras      spec.RAS
}

// Name implements spec.Policy.
func (*policy) Name() string { return "Oracle" }

// Pick implements spec.Policy.
func (p *policy) Pick(ctx spec.Ctx, tasks []spec.TaskView) (spec.Decision, bool) {
	if !p.switched {
		var med float64
		if ctx.Kind == task.DeadlineBound {
			med = trueMedianTNew(tasks)
		}
		if lastTwoWaves(ctx, med) {
			p.switched = true
		}
	}
	if p.switched {
		return p.gs.Pick(ctx, tasks)
	}
	return p.ras.Pick(ctx, tasks)
}

// PickIncremental implements spec.IncrementalPolicy: the exact two-wave
// switch test reads the ground-truth median t_new straight off the
// maintained (TNew, index) order, and the GS/RAS selections run over the
// incremental candidate state. The switch flag is shared with Pick.
func (p *policy) PickIncremental(ctx spec.Ctx, vs *spec.ViewSet) (spec.Decision, bool) {
	if !p.switched && lastTwoWaves(ctx, vs.MedianTNew()) {
		p.switched = true
	}
	if p.switched {
		return p.gs.PickIncremental(ctx, vs)
	}
	return p.ras.PickIncremental(ctx, vs)
}

// lastTwoWaves reports whether the remaining work fits within two waves —
// with ground-truth durations this is exact, unlike the strawman's
// estimate. med is the median ground-truth fresh-copy duration (only read
// for deadline bounds).
func lastTwoWaves(ctx spec.Ctx, med float64) bool {
	if ctx.Kind == task.DeadlineBound {
		if med <= 0 {
			return false
		}
		return ctx.RemainingTime <= 2*med
	}
	w := ctx.WaveWidth
	if w < 1 {
		w = 1
	}
	return ctx.Remaining() <= 2*w
}

func trueMedianTNew(tasks []spec.TaskView) float64 {
	if len(tasks) == 0 {
		return 0
	}
	vals := make([]float64, len(tasks))
	for i, t := range tasks {
		vals[i] = t.TNew
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
