package traceio

import (
	"bufio"
	"encoding/json"
	"io"

	"github.com/approx-analytics/grass/internal/trace"
)

// WriteJobsJSON streams src to w as a JSON array of simulator jobs — the
// same shape `grass-trace -json` emits for synthetic traces, so external
// tooling consumes converted real traces and generated ones identically.
// The array is written one job at a time (released back to a recycling
// source as it goes), so converting a multi-GB trace holds one job in
// memory. Returns the number of jobs written.
func WriteJobsJSON(w io.Writer, src trace.Source) (int, error) {
	bw := bufio.NewWriter(w)
	rel, _ := src.(trace.Releaser)
	n := 0
	if _, err := bw.WriteString("[\n"); err != nil {
		return n, err
	}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if n > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return n, err
			}
		}
		b, err := json.Marshal(j)
		if rel != nil {
			rel.Release(j)
		}
		if err != nil {
			return n, err
		}
		if _, err := bw.Write(b); err != nil {
			return n, err
		}
		n++
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return n, err
	}
	return n, bw.Flush()
}
