// Package traceio imports real cluster traces into the simulator's job
// model. The paper's evaluation replays 575K Facebook Hadoop jobs and 500K
// Bing Dryad jobs; those traces are proprietary, but public releases of the
// same lineage exist — SWIM's Facebook workload samples and Google's
// cluster-data — and this package turns them into trace.Source-compatible
// streams so policy claims can be replayed against real cluster logs
// instead of synthetic lookalikes.
//
// The design is schema-first, following the streaming-ingestion shape of
// large-trace systems work:
//
//   - each format gets a typed record struct (SWIMRecord, GoogleTaskEvent)
//     decoded field by field with validation, never a stringly map;
//   - every validation error carries the file, line and column it was found
//     at (DecodeError), so a malformed multi-GB log points at the offending
//     record, not at "parse failed";
//   - decode is streaming end to end: records are read line by line through
//     an io/fs.FS opener (plain or gzip), jobs are emitted one at a time in
//     arrival order, and finished jobs recycle through a pool — a multi-GB
//     log replays in the same bounded memory as the synthetic streams
//     (trace.Stream) the simulator was built around;
//   - the record→job mapping rules (task count, per-task work, bound
//     assignment) are explicit Options with documented defaults, unit-tested
//     per format.
//
// Sources implement sched.Source + sched.Releaser, so every existing replay
// entry point — Simulator.RunSource, sched.RunSharded, exp.Replay,
// grass-bench — accepts an imported trace wherever it accepts a synthetic
// stream. Jobs are renumbered densely 0..N-1 in arrival order (original
// trace identifiers are format-specific strings); that makes the sharded
// partitioner (ID mod P) apply to imported traces unchanged.
package traceio

import (
	"fmt"
	"strings"

	"github.com/approx-analytics/grass/internal/trace"
)

// Format identifies a supported trace file format.
type Format int

const (
	// SWIM is the SWIM/Facebook workload format (Chen et al.'s Statistical
	// Workload Injector for MapReduce): tab-separated records, one job per
	// line, six fields —
	//
	//	job_id \t submit_time_s \t inter_arrival_gap_s \t
	//	map_input_bytes \t shuffle_bytes \t reduce_output_bytes
	//
	// as in the published FB-2009/FB-2010 sample traces.
	SWIM Format = iota
	// GoogleTaskEvents is the Google cluster-data v2 task_events table:
	// comma-separated records, one task event per line, thirteen fields
	// (timestamp_us, missing_info, job_id, task_index, machine_id,
	// event_type, user, scheduling_class, priority, cpu_request,
	// memory_request, disk_request, different_machine_constraint). SUBMIT
	// events (type 0) define a job's tasks; other event types are skipped.
	GoogleTaskEvents
)

// String returns the format name ParseFormat accepts.
func (f Format) String() string {
	switch f {
	case SWIM:
		return "swim"
	case GoogleTaskEvents:
		return "google"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves a format name ("swim", "google").
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "swim", "fb", "facebook":
		return SWIM, nil
	case "google", "google-task-events":
		return GoogleTaskEvents, nil
	default:
		return 0, fmt.Errorf("traceio: unknown trace format %q (want swim | google)", s)
	}
}

// Position locates a record (or a field of one) in its source file. Lines
// and columns are 1-based; Column 0 means the error concerns the whole
// record rather than one field.
type Position struct {
	File   string
	Line   int
	Column int
}

// String renders file:line or file:line:column.
func (p Position) String() string {
	if p.Column > 0 {
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// DecodeError is a positioned validation failure: every malformed record a
// reader rejects is reported as one of these, so errors in a multi-GB log
// point at the exact file, line and field.
type DecodeError struct {
	Pos Position
	Msg string
	Err error // wrapped cause (e.g. a strconv error), may be nil
}

// Error renders "file:line:column: message".
func (e *DecodeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s: %s: %v", e.Pos, e.Msg, e.Err)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeErrf builds a positioned error. col 0 means whole-record.
func decodeErrf(file string, line, col int, cause error, format string, args ...any) *DecodeError {
	return &DecodeError{
		Pos: Position{File: file, Line: line, Column: col},
		Msg: fmt.Sprintf(format, args...),
		Err: cause,
	}
}

// Options are the explicit record→job mapping rules. The zero value is NOT
// usable — call DefaultOptions and override fields. Every rule is
// deterministic given (Options, file contents): two readers over the same
// file produce byte-identical jobs, which is what makes sharded imported
// replays (one reader per partition) exact.
type Options struct {
	// BytesPerTask maps input bytes to input-task count: a job gets
	// ceil(bytes/BytesPerTask) tasks (at least 1). The default is 128 MiB —
	// the classic HDFS split size the SWIM Facebook traces were collected
	// under. Google task events carry explicit per-task rows, so this only
	// applies to SWIM.
	BytesPerTask float64
	// WorkScale is the intrinsic work (simulation units) of one full task —
	// a task holding BytesPerTask input bytes (SWIM) or a task with a full
	// 1.0 CPU request (Google). The default 10 matches the synthetic Hadoop
	// regime, so imported and synthetic replays run on one time scale.
	WorkScale float64
	// MinWorkFrac floors a task's work at this fraction of WorkScale, so
	// empty-input jobs (common in the FB traces: metadata-only jobs) still
	// carry simulatable tasks. Default 0.01.
	MinWorkFrac float64
	// TimeScale converts trace time units to simulation time units:
	// arrival = trace_time × TimeScale. Defaults: SWIM records carry
	// seconds, scale 1; Google timestamps are microseconds, scale 1e-6.
	// 0 means the format default.
	TimeScale float64
	// MaxTasks rejects records mapping to more than this many tasks — a
	// guard against corrupt byte counts decoding into gigabyte task arrays.
	// Default 100_000.
	MaxTasks int
	// CloseGapUS (GoogleTaskEvents only) is the grouping window in raw
	// trace microseconds: a job whose last task-submit event is older than
	// this is considered fully described and becomes emittable. Memory is
	// bounded by the jobs open within one window. Default 300e6 (5 min).
	CloseGapUS float64
	// Bound, DeadlineFactorRange, ErrorRange and Slots assign approximation
	// bounds exactly as synthetic generation does (trace.AssignBound):
	// public traces carry no deadline/error bounds, so they are drawn — per
	// job, from a SubSeed(Seed, jobID) stream, making the assignment a pure
	// function of (Options, job) regardless of sharding. Defaults: mixed
	// bounds, §6.1 ranges, 400 slots.
	Bound               trace.BoundMode
	DeadlineFactorRange [2]float64
	ErrorRange          [2]float64
	Slots               int
	// Seed drives bound assignment.
	Seed int64
}

// DefaultOptions returns the documented default mapping rules.
func DefaultOptions() Options {
	return Options{
		BytesPerTask:        128 << 20,
		WorkScale:           10,
		MinWorkFrac:         0.01,
		TimeScale:           0, // format default
		MaxTasks:            100_000,
		CloseGapUS:          300e6,
		Bound:               trace.MixedBound,
		DeadlineFactorRange: [2]float64{0.02, 0.20},
		ErrorRange:          [2]float64{0.05, 0.30},
		Slots:               400,
		Seed:                1,
	}
}

// Validate checks the mapping rules.
func (o Options) Validate() error {
	if o.BytesPerTask <= 0 {
		return fmt.Errorf("traceio: BytesPerTask %v must be positive", o.BytesPerTask)
	}
	if o.WorkScale <= 0 {
		return fmt.Errorf("traceio: WorkScale %v must be positive", o.WorkScale)
	}
	if o.MinWorkFrac <= 0 || o.MinWorkFrac > 1 {
		return fmt.Errorf("traceio: MinWorkFrac %v out of (0, 1]", o.MinWorkFrac)
	}
	if o.TimeScale < 0 {
		return fmt.Errorf("traceio: TimeScale %v must be >= 0 (0 = format default)", o.TimeScale)
	}
	if o.MaxTasks < 1 {
		return fmt.Errorf("traceio: MaxTasks %d must be >= 1", o.MaxTasks)
	}
	if o.CloseGapUS <= 0 {
		return fmt.Errorf("traceio: CloseGapUS %v must be positive", o.CloseGapUS)
	}
	if o.Bound < trace.DeadlineBound || o.Bound > trace.MixedBound {
		return fmt.Errorf("traceio: unknown bound mode %d", int(o.Bound))
	}
	if o.DeadlineFactorRange[0] < 0 || o.DeadlineFactorRange[1] < o.DeadlineFactorRange[0] {
		return fmt.Errorf("traceio: bad deadline factor range %v", o.DeadlineFactorRange)
	}
	if o.ErrorRange[0] < 0 || o.ErrorRange[1] >= 1 || o.ErrorRange[1] < o.ErrorRange[0] {
		return fmt.Errorf("traceio: bad error range %v", o.ErrorRange)
	}
	if o.Slots <= 0 {
		return fmt.Errorf("traceio: Slots %d must be positive", o.Slots)
	}
	return nil
}

// timeScale resolves the effective time scale for a format.
func (o Options) timeScale(f Format) float64 {
	if o.TimeScale > 0 {
		return o.TimeScale
	}
	if f == GoogleTaskEvents {
		return 1e-6
	}
	return 1
}

// boundConfig builds the trace.Config slice AssignBound consults.
func (o Options) boundConfig() trace.Config {
	return trace.Config{
		Bound:               o.Bound,
		DeadlineFactorRange: o.DeadlineFactorRange,
		ErrorRange:          o.ErrorRange,
		Slots:               o.Slots,
	}
}
