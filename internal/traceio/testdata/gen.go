//go:build ignore

// gen regenerates the vendored sample traces CI replays end to end:
//
//	go run internal/traceio/testdata/gen.go internal/traceio/testdata/samples
//
// The samples are deterministic (fixed seeds) stand-ins for the public
// SWIM Facebook workload samples and the Google cluster-data v2
// task_events table: same schema, same sortedness, similar size/shape
// mixes, small enough to vendor (~2K SWIM records, ~5K Google records).
// Regenerating with an unchanged seed reproduces the files byte for byte.
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/approx-analytics/grass/internal/dist"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "swim_fb_sample.tsv"), swim(), 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "google_task_events_sample.csv.gz"), gzipped(google()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", filepath.Join(dir, "swim_fb_sample.tsv"), "and", filepath.Join(dir, "google_task_events_sample.csv.gz"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}

// swim writes ~2000 SWIM records: job_id, submit_s, gap_s, map_bytes,
// shuffle_bytes, output_bytes — sorted by submission time, sizes
// log-uniform from 1 MiB to 32 GiB (so task counts span the paper's three
// bins under the 128 MiB split rule), arrivals spaced for ~0.6 offered
// load on the default 400-slot replay cluster.
func swim() []byte {
	const jobs = 2000
	rng := dist.NewRNG(42)
	var buf bytes.Buffer
	buf.WriteString("# SWIM/Facebook-style sample workload (synthetic, deterministic; see gen.go)\n")
	buf.WriteString("# job_id\tsubmit_s\tgap_s\tmap_input_bytes\tshuffle_bytes\toutput_bytes\n")
	now := 0.0
	for i := 0; i < jobs; i++ {
		lgLo, lgHi := math.Log(1<<20), math.Log(32<<30)
		mapBytes := math.Exp(lgLo + rng.Float64()*(lgHi-lgLo))
		shuffle := 0.0
		if rng.Float64() < 0.6 {
			shuffle = mapBytes * (0.1 + 0.4*rng.Float64())
		}
		output := shuffle * (0.2 + 0.8*rng.Float64())
		tasks := math.Max(1, math.Ceil(mapBytes/float64(128<<20)))
		work := tasks * 10 // WorkScale default
		spacing := work * 1.75 / (400 * 0.6)
		gap := dist.Exponential{Mu: spacing}.Sample(rng)
		// Fixed-point rendering keeps the file byte-stable across platforms.
		fmt.Fprintf(&buf, "job%04d\t%.3f\t%.3f\t%.0f\t%.0f\t%.0f\n",
			i, now, gap, mapBytes, shuffle, output)
		now += gap
	}
	return buf.Bytes()
}

// google writes ~5000 Google cluster-data v2 task_events rows across ~400
// jobs: per-task SUBMIT rows (plus interleaved SCHEDULE rows and duplicate
// resubmits, both of which the importer must handle), globally sorted by
// microsecond timestamp, CPU requests in [0.05, 0.8] with ~10% absent.
func google() []byte {
	const jobs = 400
	rng := dist.NewRNG(43)
	type row struct {
		ts   float64
		text string
	}
	var rows []row
	emit := func(ts float64, s string) { rows = append(rows, row{ts, s}) }
	now := 0.0
	for jb := 0; jb < jobs; jb++ {
		now += dist.Exponential{Mu: 9e6}.Sample(rng) // ~9s mean spacing
		jobID := fmt.Sprintf("%d", 6250000000+jb*7)
		nTasks := int(math.Exp(rng.Float64() * math.Log(100)))
		if nTasks < 1 {
			nTasks = 1
		}
		user := fmt.Sprintf("u%03d", rng.Intn(50))
		class := rng.Intn(4)
		prio := rng.Intn(12)
		for t := 0; t < nTasks; t++ {
			ts := now + rng.Float64()*2e6 // submits burst within ~2s
			cpu := ""
			if rng.Float64() >= 0.1 {
				cpu = fmt.Sprintf("%.4f", 0.05+0.75*rng.Float64())
			}
			mem := fmt.Sprintf("%.4f", 0.01+0.2*rng.Float64())
			emit(ts, fmt.Sprintf("%.0f,,%s,%d,,0,%s,%d,%d,%s,%s,0.0001,0",
				ts, jobID, t, user, class, prio, cpu, mem))
			if rng.Float64() < 0.05 { // resubmit of the same index
				emit(ts+1e5, fmt.Sprintf("%.0f,,%s,%d,,0,%s,%d,%d,%s,%s,0.0001,0",
					ts+1e5, jobID, t, user, class, prio, cpu, mem))
			}
			if rng.Float64() < 0.3 { // a later SCHEDULE row (skipped)
				sts := ts + 3e6 + rng.Float64()*1e6
				emit(sts, fmt.Sprintf("%.0f,,%s,%d,4155527081,1,%s,%d,%d,%s,%s,0.0001,0",
					sts, jobID, t, user, class, prio, cpu, mem))
			}
		}
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].ts < rows[b].ts })
	var buf bytes.Buffer
	for _, r := range rows {
		buf.WriteString(r.text)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// gzipped compresses b with fixed gzip settings (no mod time, no name), so
// regeneration is byte-stable.
func gzipped(b []byte) []byte {
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if _, err := zw.Write(b); err != nil {
		fatal(err)
	}
	if err := zw.Close(); err != nil {
		fatal(err)
	}
	return buf.Bytes()
}
