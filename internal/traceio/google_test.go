package traceio

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func googleSource(text string, o Options) *Source {
	return NewReaderSource(strings.NewReader(text), "events.csv", GoogleTaskEvents, o)
}

// row builds one task_events CSV line (13 columns, v2 schema).
func row(ts float64, job string, idx, evt int, cpu string) string {
	return fmt.Sprintf("%.0f,,%s,%d,,%d,user,1,5,%s,0.01,0.0001,0", ts, job, idx, evt, cpu)
}

func TestGoogleGroupingAndMapping(t *testing.T) {
	o := DefaultOptions()
	o.CloseGapUS = 10e6 // 10 s window
	text := strings.Join([]string{
		row(1e6, "jobA", 0, 0, "0.5"),
		row(1e6, "jobA", 1, 0, "0.25"),
		row(2e6, "jobB", 0, 0, ""),    // absent CPU -> floor work
		row(3e6, "jobA", 1, 0, "0.9"), // resubmit: first submit wins
		row(4e6, "jobA", 2, 0, "1.0"),
		row(5e6, "jobA", 0, 1, "0.5"),    // SCHEDULE: ignored for task set
		row(30e6, "jobC", 0, 0, "0.125"), // 30s: closes A and B
		row(50e6, "jobC", 1, 0, "0.125"),
	}, "\n") + "\n"

	jobs := drain(t, googleSource(text, o))
	if len(jobs) != 3 {
		t.Fatalf("grouped %d jobs, want 3", len(jobs))
	}

	a, b, c := jobs[0], jobs[1], jobs[2]
	if a.ID != 0 || b.ID != 1 || c.ID != 2 {
		t.Errorf("dense IDs = %d,%d,%d, want 0,1,2 in arrival order", a.ID, b.ID, c.ID)
	}
	if a.Arrival != 1.0 || b.Arrival != 2.0 || c.Arrival != 30.0 {
		t.Errorf("arrivals = %v,%v,%v, want 1,2,30 (microseconds × 1e-6)", a.Arrival, b.Arrival, c.Arrival)
	}
	// jobA: indexes 0,1,2 -> work 10×{0.5, 0.25 (first submit), 1.0}.
	wantA := []float64{5, 2.5, 10}
	if len(a.InputWork) != 3 {
		t.Fatalf("jobA has %d tasks, want 3 distinct submitted indexes", len(a.InputWork))
	}
	for i, w := range wantA {
		if math.Abs(a.InputWork[i]-w) > 1e-9 {
			t.Errorf("jobA task %d work = %v, want %v (index-ordered, first submit wins)", i, a.InputWork[i], w)
		}
	}
	floor := o.WorkScale * o.MinWorkFrac
	if len(b.InputWork) != 1 || b.InputWork[0] != floor {
		t.Errorf("jobB (absent CPU) work = %v, want one task at the %v floor", b.InputWork, floor)
	}
	if len(c.InputWork) != 2 {
		t.Errorf("jobC has %d tasks, want 2", len(c.InputWork))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("job %d invalid after mapping: %v", j.ID, err)
		}
	}
}

// TestGoogleArrivalOrder pins the emission contract: jobs come out sorted
// by (first-submit time, first-seen order) even when close order differs.
func TestGoogleArrivalOrder(t *testing.T) {
	o := DefaultOptions()
	o.CloseGapUS = 100e6
	// jobEarly opens first but keeps gaining submits; jobLate opens later
	// and closes first. Emission must still be jobEarly, jobLate.
	text := strings.Join([]string{
		row(1e6, "jobEarly", 0, 0, "0.1"),
		row(2e6, "jobLate", 0, 0, "0.1"),
		row(90e6, "jobEarly", 1, 0, "0.1"),
		row(150e6, "jobEarly", 2, 0, "0.1"), // jobLate now closed, jobEarly open
		row(400e6, "tail", 0, 0, "0.1"),     // closes everything
	}, "\n") + "\n"
	jobs := drain(t, googleSource(text, o))
	if len(jobs) != 3 {
		t.Fatalf("grouped %d jobs, want 3", len(jobs))
	}
	prev := math.Inf(-1)
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Fatalf("arrival order violated: job %d at %v after %v", j.ID, j.Arrival, prev)
		}
		prev = j.Arrival
	}
	if len(jobs[0].InputWork) != 3 {
		t.Errorf("first job has %d tasks, want jobEarly's 3", len(jobs[0].InputWork))
	}
}

func TestGoogleDecodeErrors(t *testing.T) {
	ok := row(1e6, "okjob", 0, 0, "0.5")
	cases := []struct {
		name     string
		text     string
		wantLine int
		wantSub  string
	}{
		{
			name:     "wrong field count",
			text:     ok + "\n1000,only,three\n",
			wantLine: 2,
			wantSub:  "has 3 fields, want 13",
		},
		{
			name:     "bad timestamp",
			text:     strings.Replace(ok, "1000000", "soon", 1) + "\n",
			wantLine: 1,
			wantSub:  `bad timestamp "soon"`,
		},
		{
			name:     "negative timestamp",
			text:     row(1e6, "a", 0, 0, "0.5") + "\n" + strings.Replace(row(1e6, "b", 0, 0, "0.5"), "1000000", "-5", 1) + "\n",
			wantLine: 2,
			wantSub:  "out of range",
		},
		{
			name:     "non-monotone timestamps",
			text:     row(9e6, "a", 0, 0, "0.5") + "\n" + row(8e6, "b", 0, 0, "0.5") + "\n",
			wantLine: 2,
			wantSub:  "must be sorted by timestamp",
		},
		{
			name:     "empty job id",
			text:     row(1e6, "", 0, 0, "0.5") + "\n",
			wantLine: 1,
			wantSub:  "empty job id",
		},
		{
			name:     "negative task index",
			text:     row(1e6, "a", -3, 0, "0.5") + "\n",
			wantLine: 1,
			wantSub:  "negative task index",
		},
		{
			name:     "event type out of range",
			text:     row(1e6, "a", 0, 11, "0.5") + "\n",
			wantLine: 1,
			wantSub:  "event type 11 out of",
		},
		{
			name:     "CPU request over 1",
			text:     row(1e6, "a", 0, 0, "1.5") + "\n",
			wantLine: 1,
			wantSub:  "CPU request 1.5 out of [0, 1]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := googleSource(tc.text, DefaultOptions())
			for {
				j, live := src.Next()
				if !live {
					break
				}
				src.Release(j)
			}
			err := src.Err()
			if err == nil {
				t.Fatal("decode succeeded, want a positioned error")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %T is not a *DecodeError: %v", err, err)
			}
			if de.Pos.File != "events.csv" || de.Pos.Line != tc.wantLine {
				t.Errorf("error at %s, want events.csv:%d", de.Pos, tc.wantLine)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("events.csv:%d", tc.wantLine)) {
				t.Errorf("error text %q does not render the file:line position", err)
			}
		})
	}
}

// TestGoogleHugeTaskCount pins the MaxTasks guard on the grouped task set.
func TestGoogleHugeTaskCount(t *testing.T) {
	o := DefaultOptions()
	o.MaxTasks = 3
	var b strings.Builder
	for i := 0; i < 5; i++ {
		b.WriteString(row(1e6, "big", i, 0, "0.5"))
		b.WriteByte('\n')
	}
	src := googleSource(b.String(), o)
	for {
		j, live := src.Next()
		if !live {
			break
		}
		src.Release(j)
	}
	err := src.Err()
	var de *DecodeError
	if err == nil || !errors.As(err, &de) {
		t.Fatalf("want a positioned DecodeError for >MaxTasks submits, got %v", err)
	}
	if de.Pos.Line != 4 {
		t.Errorf("error at line %d, want 4 (the submit that crossed the limit)", de.Pos.Line)
	}
	if !strings.Contains(err.Error(), "over 3 submitted tasks") {
		t.Errorf("error %q does not name the limit", err)
	}
}
