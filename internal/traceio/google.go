package traceio

import (
	"container/heap"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// GoogleTaskEvent is one typed record of the Google cluster-data v2
// task_events table (13 comma-separated columns). Only the fields this
// importer consumes are decoded into typed form; the rest are validated for
// arity but carried as raw text is never needed.
type GoogleTaskEvent struct {
	Pos       Position
	Timestamp float64 // column 1: event time, microseconds from trace start
	JobID     string  // column 3: job identifier
	TaskIndex int64   // column 4: task index within the job
	EventType int     // column 6: 0=SUBMIT .. 8=UPDATE_RUNNING
	CPU       float64 // column 10: normalized CPU request in [0, 1]; -1 if absent
}

// googleFields is the task_events arity.
const googleFields = 13

// Google task_events event types (v2 schema §task events).
const (
	googleSubmit = 0
	googleMaxEvt = 8
)

// parseGoogleEvent decodes one task_events line. Every failure is a
// positioned DecodeError naming the column.
func parseGoogleEvent(file string, line int, text string) (GoogleTaskEvent, error) {
	ev := GoogleTaskEvent{Pos: Position{File: file, Line: line}}
	fields, cols := splitFields(text, ",")
	if len(fields) != googleFields {
		return ev, decodeErrf(file, line, 0, nil,
			"task_events record has %d fields, want %d (Google cluster-data v2 schema)", len(fields), googleFields)
	}
	ts, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
	if err != nil {
		return ev, decodeErrf(file, line, cols[0], err, "bad timestamp %q", fields[0])
	}
	if math.IsNaN(ts) || math.IsInf(ts, 0) || ts < 0 {
		return ev, decodeErrf(file, line, cols[0], nil, "timestamp %v out of range (want finite, >= 0)", ts)
	}
	ev.Timestamp = ts
	ev.JobID = strings.TrimSpace(fields[2])
	if ev.JobID == "" {
		return ev, decodeErrf(file, line, cols[2], nil, "empty job id")
	}
	idx, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
	if err != nil {
		return ev, decodeErrf(file, line, cols[3], err, "bad task index %q", fields[3])
	}
	if idx < 0 {
		return ev, decodeErrf(file, line, cols[3], nil, "negative task index %d", idx)
	}
	ev.TaskIndex = idx
	et, err := strconv.Atoi(strings.TrimSpace(fields[5]))
	if err != nil {
		return ev, decodeErrf(file, line, cols[5], err, "bad event type %q", fields[5])
	}
	if et < 0 || et > googleMaxEvt {
		return ev, decodeErrf(file, line, cols[5], nil, "event type %d out of [0, %d]", et, googleMaxEvt)
	}
	ev.EventType = et
	ev.CPU = -1
	if c := strings.TrimSpace(fields[9]); c != "" {
		cpu, err := strconv.ParseFloat(c, 64)
		if err != nil {
			return ev, decodeErrf(file, line, cols[9], err, "bad CPU request %q", fields[9])
		}
		if math.IsNaN(cpu) || cpu < 0 || cpu > 1 {
			return ev, decodeErrf(file, line, cols[9], nil, "CPU request %v out of [0, 1] (v2 requests are normalized)", cpu)
		}
		ev.CPU = cpu
	}
	return ev, nil
}

// googleDecoder groups a task_events stream into jobs with bounded memory.
//
// The table is sorted by timestamp (validated), but one job's SUBMIT events
// interleave with other jobs'. The grouper keeps jobs "open" while their
// submits may still arrive and closes a job once the stream has moved
// CloseGapUS microseconds past its last event — so memory holds only the
// jobs open within one window, never the trace.
//
// Emission preserves the simulator's arrival-order contract: a closed job
// is held until no open job has an earlier first-submit time. Future
// records cannot introduce an earlier job (timestamps are non-decreasing),
// so the emitted sequence is sorted by (arrival, first-seen order) — a
// deterministic pure function of the file and Options.
type googleDecoder struct {
	sc     *lineScanner
	o      Options
	tscale float64
	prevTS float64

	open  map[string]*googleJob // jobs that may still gain tasks
	ready googleHeap            // closed jobs awaiting safe emission
	seq   int                   // first-seen counter (deterministic tie-break)
	n     int                   // jobs emitted so far = next dense job ID
	eof   bool
	e     error
}

// googleJob accumulates one job's submitted tasks.
type googleJob struct {
	id        string
	firstTS   float64 // first submit: the job's arrival (raw trace time)
	lastTS    float64
	seq       int
	firstLine int
	tasks     map[int64]float64 // task index -> CPU request (first submit wins)
}

func newGoogleDecoder(sc *lineScanner, o Options) *googleDecoder {
	return &googleDecoder{
		sc:     sc,
		o:      o,
		tscale: o.timeScale(GoogleTaskEvents),
		prevTS: math.Inf(-1),
		open:   make(map[string]*googleJob),
	}
}

// next decodes the next job into j. It consumes records until one becomes
// safely emittable (or the file ends), returning false at end of stream or
// on error.
func (d *googleDecoder) next(j *task.Job) bool {
	for d.e == nil {
		if g := d.pop(); g != nil {
			if err := d.fill(g, j); err != nil {
				d.e = err
				return false
			}
			return true
		}
		if d.eof {
			return false
		}
		if !d.advance() {
			continue // EOF or error recorded; loop re-checks ready/eof
		}
	}
	return false
}

func (d *googleDecoder) err() error { return d.e }

// advance consumes one record, updating the open set and closing jobs that
// fell out of the window. Returns false at EOF or on a decode error.
func (d *googleDecoder) advance() bool {
	if !d.sc.next() {
		d.e = d.sc.err
		d.eof = true
		// End of file: every open job is fully described now.
		for _, g := range d.open {
			heap.Push(&d.ready, g)
		}
		d.open = map[string]*googleJob{}
		return false
	}
	ev, err := parseGoogleEvent(d.sc.file, d.sc.line, d.sc.text())
	if err != nil {
		d.e = err
		d.eof = true
		return false
	}
	if ev.Timestamp < d.prevTS {
		d.e = decodeErrf(d.sc.file, d.sc.line, 0, nil,
			"timestamp %.0f before previous record's %.0f (task_events must be sorted by timestamp)", ev.Timestamp, d.prevTS)
		d.eof = true
		return false
	}
	d.prevTS = ev.Timestamp
	if ev.EventType == googleSubmit {
		g := d.open[ev.JobID]
		if g == nil {
			g = &googleJob{
				id:        ev.JobID,
				firstTS:   ev.Timestamp,
				seq:       d.seq,
				firstLine: ev.Pos.Line,
				tasks:     make(map[int64]float64),
			}
			d.seq++
			d.open[ev.JobID] = g
		}
		g.lastTS = ev.Timestamp
		if _, dup := g.tasks[ev.TaskIndex]; !dup {
			// Resubmissions of a task index (retries after failure or
			// eviction) describe the same task; the first submit wins.
			g.tasks[ev.TaskIndex] = ev.CPU
		}
		if len(g.tasks) > d.o.MaxTasks {
			d.e = decodeErrf(d.sc.file, d.sc.line, 0, nil,
				"job %q has over %d submitted tasks (first seen at line %d)", g.id, d.o.MaxTasks, g.firstLine)
			d.eof = true
			return false
		}
	}
	// Close jobs the stream has moved a full window past.
	for id, g := range d.open {
		if ev.Timestamp-g.lastTS > d.o.CloseGapUS {
			heap.Push(&d.ready, g)
			delete(d.open, id)
		}
	}
	return true
}

// pop returns the next safely emittable closed job: the ready minimum, as
// long as no still-open job has an earlier (firstTS, seq). Open jobs will
// close later but their arrivals are already fixed, so emitting past one
// would violate arrival order.
func (d *googleDecoder) pop() *googleJob {
	if d.ready.Len() == 0 {
		return nil
	}
	g := d.ready.jobs[0]
	for _, o := range d.open {
		if o.firstTS < g.firstTS || (o.firstTS == g.firstTS && o.seq < g.seq) {
			return nil
		}
	}
	return heap.Pop(&d.ready).(*googleJob)
}

// fill maps one grouped job into the simulator model, filling j in place:
//
//   - tasks: one per distinct submitted task index, ordered by index;
//   - per-task work: WorkScale × CPU request, floored at MinWorkFrac
//     (absent requests get the floor) — request-weighted task cost;
//   - arrival: first submit timestamp × TimeScale;
//   - bound: trace.AssignBound from a SubSeed(Seed, jobID) stream.
func (d *googleDecoder) fill(g *googleJob, j *task.Job) error {
	o := d.o
	n := len(g.tasks)
	j.ID = d.n
	j.Arrival = g.firstTS * d.tscale
	if cap(j.InputWork) >= n {
		j.InputWork = j.InputWork[:n]
	} else {
		j.InputWork = make([]float64, n)
	}
	idxs := make([]int64, 0, n)
	for idx := range g.tasks {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	floor := o.WorkScale * o.MinWorkFrac
	for i, idx := range idxs {
		w := o.WorkScale * g.tasks[idx]
		if w < floor {
			w = floor
		}
		j.InputWork[i] = w
	}
	j.Phases = nil
	j.Bound = task.Bound{}
	j.DeadlineFactor = 0
	j.IdealDuration = 0
	trace.AssignBound(o.boundConfig(), j, dist.NewRNG(dist.SubSeed(o.Seed, d.n)))
	d.n++
	return nil
}

// googleHeap is a min-heap of closed jobs by (firstTS, seq).
type googleHeap struct{ jobs []*googleJob }

func (h *googleHeap) Len() int { return len(h.jobs) }
func (h *googleHeap) Less(a, b int) bool {
	ja, jb := h.jobs[a], h.jobs[b]
	if ja.firstTS != jb.firstTS {
		return ja.firstTS < jb.firstTS
	}
	return ja.seq < jb.seq
}
func (h *googleHeap) Swap(a, b int) { h.jobs[a], h.jobs[b] = h.jobs[b], h.jobs[a] }
func (h *googleHeap) Push(x any)    { h.jobs = append(h.jobs, x.(*googleJob)) }
func (h *googleHeap) Pop() any {
	n := len(h.jobs) - 1
	g := h.jobs[n]
	h.jobs[n] = nil
	h.jobs = h.jobs[:n]
	return g
}
