package traceio

import (
	"math"
	"strconv"
	"strings"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// SWIMRecord is one typed record of a SWIM workload file: one job per line,
// six tab-separated fields. Pos locates the record for error reporting.
type SWIMRecord struct {
	Pos         Position
	JobID       string  // field 1: opaque job identifier
	SubmitTime  float64 // field 2: submission time, seconds from trace start
	InterArrive float64 // field 3: gap to the next submission, seconds
	MapInput    float64 // field 4: map input bytes
	Shuffle     float64 // field 5: shuffle bytes
	Output      float64 // field 6: reduce output bytes
}

// swimFields is the SWIM record arity.
const swimFields = 6

// parseSWIMRecord decodes one line into a typed record. Every failure is a
// positioned DecodeError naming the field.
func parseSWIMRecord(file string, line int, text string) (SWIMRecord, error) {
	rec := SWIMRecord{Pos: Position{File: file, Line: line}}
	fields, cols := splitFields(text, "\t")
	if len(fields) != swimFields {
		return rec, decodeErrf(file, line, 0, nil,
			"SWIM record has %d fields, want %d (job_id, submit_s, gap_s, map_bytes, shuffle_bytes, output_bytes)", len(fields), swimFields)
	}
	rec.JobID = strings.TrimSpace(fields[0])
	if rec.JobID == "" {
		return rec, decodeErrf(file, line, cols[0], nil, "empty job id")
	}
	num := func(i int, name string, min float64) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil {
			return 0, decodeErrf(file, line, cols[i], err, "bad %s %q", name, fields[i])
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < min {
			return 0, decodeErrf(file, line, cols[i], nil, "%s %v out of range (want finite, >= %v)", name, v, min)
		}
		return v, nil
	}
	var err error
	if rec.SubmitTime, err = num(1, "submit time", 0); err != nil {
		return rec, err
	}
	if rec.InterArrive, err = num(2, "inter-arrival gap", 0); err != nil {
		return rec, err
	}
	if rec.MapInput, err = num(3, "map input bytes", 0); err != nil {
		return rec, err
	}
	if rec.Shuffle, err = num(4, "shuffle bytes", 0); err != nil {
		return rec, err
	}
	if rec.Output, err = num(5, "reduce output bytes", 0); err != nil {
		return rec, err
	}
	return rec, nil
}

// splitFields splits text on sep and returns the fields plus each field's
// 1-based starting column, so validation errors can point inside the line.
func splitFields(text, sep string) ([]string, []int) {
	fields := strings.Split(text, sep)
	cols := make([]int, len(fields))
	col := 1
	for i, f := range fields {
		cols[i] = col
		col += len(f) + len(sep)
	}
	return fields, cols
}

// swimDecoder streams a SWIM file into jobs: one record is one job, already
// in submission order (validated non-decreasing).
type swimDecoder struct {
	sc     *lineScanner
	o      Options
	tscale float64
	prev   float64 // previous record's submit time (monotonicity check)
	n      int     // jobs decoded so far = next dense job ID
	e      error
}

func newSWIMDecoder(sc *lineScanner, o Options) *swimDecoder {
	return &swimDecoder{sc: sc, o: o, tscale: o.timeScale(SWIM), prev: math.Inf(-1)}
}

// next decodes the next job into j, overwriting every field (j may be a
// recycled pooled job). It returns false at end of file or on error.
func (d *swimDecoder) next(j *task.Job) bool {
	if d.e != nil {
		return false
	}
	if !d.sc.next() {
		d.e = d.sc.err
		return false
	}
	rec, err := parseSWIMRecord(d.sc.file, d.sc.line, d.sc.text())
	if err != nil {
		d.e = err
		return false
	}
	if rec.SubmitTime < d.prev {
		d.e = decodeErrf(d.sc.file, d.sc.line, 0, nil,
			"submit time %v before previous record's %v (records must be sorted by submission time)", rec.SubmitTime, d.prev)
		return false
	}
	d.prev = rec.SubmitTime
	if err := swimJob(d.o, d.n, rec, j); err != nil {
		d.e = err
		return false
	}
	d.n++
	return true
}

func (d *swimDecoder) err() error { return d.e }

// swimJob applies the SWIM mapping rules to one record, filling j in place:
//
//   - input tasks: ceil(MapInput / BytesPerTask), at least 1 — the HDFS
//     split rule the trace was collected under. Full splits carry WorkScale
//     intrinsic work; the final partial split carries its byte fraction,
//     floored at MinWorkFrac (zero-input jobs become one minimal task).
//   - reduce phase: Shuffle > 0 adds one downstream phase with
//     ceil(Shuffle / BytesPerTask) tasks, capped at the input task count
//     (reduce fan-in never exceeds map fan-out in these workloads).
//   - arrival: SubmitTime × TimeScale.
//   - bound: drawn by trace.AssignBound from a SubSeed(Seed, jobID) stream —
//     a pure function of (Options, record), independent of sharding.
func swimJob(o Options, id int, rec SWIMRecord, j *task.Job) error {
	n, ok := tasksFor(rec.MapInput, o.BytesPerTask, o.MaxTasks)
	if !ok {
		return decodeErrf(rec.Pos.File, rec.Pos.Line, 0, nil,
			"job %q maps to %.0f tasks (map input %.0f bytes / %.0f per task), over the %d-task limit",
			rec.JobID, math.Ceil(rec.MapInput/o.BytesPerTask), rec.MapInput, o.BytesPerTask, o.MaxTasks)
	}
	j.ID = id
	j.Arrival = rec.SubmitTime * o.timeScale(SWIM)
	if cap(j.InputWork) >= n {
		j.InputWork = j.InputWork[:n]
	} else {
		j.InputWork = make([]float64, n)
	}
	floor := o.WorkScale * o.MinWorkFrac
	rem := rec.MapInput
	for i := range j.InputWork {
		frac := rem / o.BytesPerTask
		if frac > 1 {
			frac = 1
		}
		w := o.WorkScale * frac
		if w < floor {
			w = floor
		}
		j.InputWork[i] = w
		rem -= o.BytesPerTask
	}
	if rec.Shuffle > 0 {
		// Reduce fan-in is capped at the input task count, so the cap also
		// bounds corrupt shuffle byte counts.
		nr, ok := tasksFor(rec.Shuffle, o.BytesPerTask, o.MaxTasks)
		if !ok || nr > n {
			nr = n
		}
		if cap(j.Phases) >= 1 {
			j.Phases = j.Phases[:1]
		} else {
			j.Phases = make([]task.Phase, 1)
		}
		j.Phases[0] = task.Phase{NumTasks: nr, WorkScale: o.WorkScale}
	} else {
		j.Phases = nil
	}
	j.Bound = task.Bound{}
	j.DeadlineFactor = 0
	j.IdealDuration = 0
	trace.AssignBound(o.boundConfig(), j, dist.NewRNG(dist.SubSeed(o.Seed, id)))
	return nil
}

// tasksFor is the split rule: ceil(bytes/perTask), at least one task. The
// comparison against max happens in float space BEFORE the int conversion,
// so a corrupt byte count beyond int range reports cleanly instead of
// overflowing.
func tasksFor(bytes, perTask float64, max int) (int, bool) {
	f := math.Ceil(bytes / perTask)
	if f > float64(max) {
		return 0, false
	}
	n := int(f)
	if n < 1 {
		n = 1
	}
	return n, true
}
