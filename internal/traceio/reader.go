package traceio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"strings"
)

// maxLineBytes bounds one record line. Real trace records are well under a
// kilobyte; a multi-megabyte "line" means the file is not line-oriented
// (binary, wrong format) and should fail with a position instead of
// buffering unbounded memory.
const maxLineBytes = 1 << 20

// osFS adapts the operating-system file tree to io/fs.FS with plain paths
// (fs.ValidPath rejects absolute and dot-relative paths, which is exactly
// what CLI users type). Readers take any fs.FS — fstest.MapFS in tests,
// embedded samples, osFS{} from the CLIs.
type osFS struct{}

func (osFS) Open(name string) (fs.File, error) { return os.Open(name) }

// OSFS returns an fs.FS over the host filesystem accepting the path forms a
// command line produces (absolute, relative, dot-relative).
func OSFS() fs.FS { return osFS{} }

// openFile opens path inside fsys, transparently decompressing ".gz" files.
// The returned closer closes both layers.
func openFile(fsys fs.FS, name string) (io.ReadCloser, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	if strings.EqualFold(path.Ext(name), ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("traceio: %s: not a gzip stream: %w", name, err)
		}
		return &gzipFile{zr: zr, f: f}, nil
	}
	return f, nil
}

// gzipFile closes the gzip layer and the underlying file together.
type gzipFile struct {
	zr *gzip.Reader
	f  fs.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipFile) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// lineScanner yields one record line at a time with 1-based line numbers.
// It accepts \n and \r\n terminators (public traces circulate through
// Windows tooling often enough that mixed newlines are a fact of life),
// skips blank lines and '#' comments, and rejects lines over maxLineBytes
// with a positioned error instead of growing the buffer unbounded.
type lineScanner struct {
	sc   *bufio.Scanner
	file string
	line int // line number of the text Text() returned
	err  error
}

func newLineScanner(r io.Reader, file string) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &lineScanner{sc: sc, file: file}
}

// next advances to the next non-blank, non-comment line. It returns false
// at end of input or on error (check err()).
func (s *lineScanner) next() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		t := strings.TrimSpace(s.text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		return true
	}
	if err := s.sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			s.err = decodeErrf(s.file, s.line+1, 0, nil,
				"record line exceeds %d bytes (is this a line-oriented trace file?)", maxLineBytes)
		} else {
			s.err = fmt.Errorf("traceio: %s: read: %w", s.file, err)
		}
	}
	return false
}

// text returns the current line with a trailing \r (from \r\n records)
// stripped and surrounding whitespace intact otherwise — column offsets
// must stay aligned with the raw file.
func (s *lineScanner) text() string {
	return strings.TrimSuffix(s.sc.Text(), "\r")
}
