package traceio

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/fstest"

	"github.com/approx-analytics/grass/internal/task"
)

// sampleFS exposes the vendored sample traces.
func sampleFS() fstest.MapFS {
	fsys := fstest.MapFS{}
	for _, name := range []string{"swim_fb_sample.tsv", "google_task_events_sample.csv.gz"} {
		b, err := os.ReadFile("testdata/samples/" + name)
		if err != nil {
			panic(err)
		}
		fsys[name] = &fstest.MapFile{Data: b}
	}
	return fsys
}

// TestScanVendoredSamples pins the vendored samples' decoded shape: the CI
// golden replay depends on these exact jobs.
func TestScanVendoredSamples(t *testing.T) {
	fsys := sampleFS()
	cases := []struct {
		file                string
		format              Format
		jobs, tasks, phases int
		bins                [3]int
	}{
		{"swim_fb_sample.tsv", SWIM, 2000, 47602, 1221, [3]int{1704, 296, 0}},
		{"google_task_events_sample.csv.gz", GoogleTaskEvents, 400, 8106, 0, [3]int{342, 58, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			st, err := Scan(fsys, tc.file, tc.format, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if st.Jobs != tc.jobs || st.Tasks != tc.tasks || st.Phases != tc.phases || st.Bins != tc.bins {
				t.Errorf("scan = %d jobs / %d tasks / %d reduce / bins %v, want %d / %d / %d / %v",
					st.Jobs, st.Tasks, st.Phases, st.Bins, tc.jobs, tc.tasks, tc.phases, tc.bins)
			}
			if st.Span <= 0 || st.TotalWork <= 0 {
				t.Errorf("degenerate stats: span %v, total work %v", st.Span, st.TotalWork)
			}
		})
	}
}

// TestShardUnionEqualsFull: for every shard count, the per-shard streams
// partition the full stream exactly — same jobs, same IDs, same bounds —
// which is what makes sharded imported replays byte-identical.
func TestShardUnionEqualsFull(t *testing.T) {
	fsys := sampleFS()
	for _, tc := range []struct {
		file   string
		format Format
	}{
		{"swim_fb_sample.tsv", SWIM},
		{"google_task_events_sample.csv.gz", GoogleTaskEvents},
	} {
		full := map[int]string{}
		src, err := NewSource(fsys, tc.file, tc.format, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			full[j.ID] = fmt.Sprintf("%+v", *j)
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		src.Close()

		for _, shards := range []int{2, 3} {
			seen := map[int]string{}
			for s := 0; s < shards; s++ {
				ss, err := NewShardSource(fsys, tc.file, tc.format, DefaultOptions(), s, shards)
				if err != nil {
					t.Fatal(err)
				}
				for {
					j, ok := ss.Next()
					if !ok {
						break
					}
					if j.ID%shards != s {
						t.Fatalf("%s: shard %d/%d emitted job %d", tc.file, s, shards, j.ID)
					}
					if _, dup := seen[j.ID]; dup {
						t.Fatalf("%s: job %d emitted twice", tc.file, j.ID)
					}
					seen[j.ID] = fmt.Sprintf("%+v", *j)
				}
				if err := ss.Err(); err != nil {
					t.Fatal(err)
				}
				ss.Close()
			}
			if len(seen) != len(full) {
				t.Fatalf("%s: %d shards produced %d jobs, full stream %d", tc.file, shards, len(seen), len(full))
			}
			for id, want := range full {
				if seen[id] != want {
					t.Errorf("%s: job %d differs sharded vs full:\n  shard %s\n  full  %s", tc.file, id, seen[id], want)
				}
			}
		}
	}
}

// TestGzipIdenticalToPlain: compressing the file must not change one byte of
// the decoded jobs.
func TestGzipIdenticalToPlain(t *testing.T) {
	plain, err := os.ReadFile("testdata/samples/swim_fb_sample.tsv")
	if err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(plain)
	zw.Close()
	fsys := fstest.MapFS{
		"t.tsv":    &fstest.MapFile{Data: plain},
		"t.tsv.gz": &fstest.MapFile{Data: zbuf.Bytes()},
	}
	for _, name := range []string{"t.tsv", "t.tsv.gz"} {
		st, err := Scan(fsys, name, SWIM, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if st.Jobs != 2000 {
			t.Errorf("%s: %d jobs, want 2000", name, st.Jobs)
		}
	}
	a, _ := NewSource(fsys, "t.tsv", SWIM, DefaultOptions())
	b, _ := NewSource(fsys, "t.tsv.gz", SWIM, DefaultOptions())
	for {
		ja, oka := a.Next()
		jb, okb := b.Next()
		if oka != okb {
			t.Fatal("plain and gzip streams ended at different jobs")
		}
		if !oka {
			break
		}
		if fmt.Sprintf("%+v", *ja) != fmt.Sprintf("%+v", *jb) {
			t.Fatalf("job %d differs plain vs gzip", ja.ID)
		}
		a.Release(ja)
		b.Release(jb)
	}
}

// TestSourcePoolRecycles pins the bounded-memory contract at the unit
// level: released jobs are handed back out instead of fresh allocations.
func TestSourcePoolRecycles(t *testing.T) {
	text := fmt.Sprintf("a\t0\t1\t%d\t0\t0\nb\t1\t1\t%d\t0\t0\n", 64*mib, 64*mib)
	src := swimSource(text, DefaultOptions())
	j1, ok := src.Next()
	if !ok {
		t.Fatal("no first job")
	}
	src.Release(j1)
	j2, ok := src.Next()
	if !ok {
		t.Fatal("no second job")
	}
	if j1 != j2 {
		t.Error("released job was not recycled by the next Next")
	}
	if j2.ID != 1 {
		t.Errorf("recycled job kept stale ID %d, want 1", j2.ID)
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, err := NewSource(fstest.MapFS{}, "missing.tsv", SWIM, DefaultOptions()); err == nil {
		t.Error("opening a missing file succeeded")
	}
	bad := fstest.MapFS{"broken.gz": &fstest.MapFile{Data: []byte("not gzip at all")}}
	if _, err := NewSource(bad, "broken.gz", SWIM, DefaultOptions()); err == nil {
		t.Error("opening a corrupt .gz succeeded")
	}
	if _, err := NewShardSource(nil, "x.tsv", SWIM, DefaultOptions(), 3, 2); err == nil {
		t.Error("shard 3 of 2 accepted")
	}
	o := DefaultOptions()
	o.BytesPerTask = 0
	if _, err := NewSource(fstest.MapFS{}, "x.tsv", SWIM, o); err == nil {
		t.Error("invalid Options accepted")
	}
}

// TestLineTooLong pins the positioned error for records over the 1 MiB line
// cap (a binary file fed to the importer by mistake).
func TestLineTooLong(t *testing.T) {
	long := strings.Repeat("x", maxLineBytes+10)
	src := swimSource("a\t0\t1\t5\t0\t0\n"+long+"\n", DefaultOptions())
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		src.Release(j)
	}
	err := src.Err()
	var de *DecodeError
	if err == nil || !errors.As(err, &de) {
		t.Fatalf("want a positioned DecodeError for an over-long line, got %v", err)
	}
	if de.Pos.Line != 2 {
		t.Errorf("error at line %d, want 2", de.Pos.Line)
	}
}

// TestScanEmptyTrace: comment-only files decode to zero jobs and no error —
// the CLI layers turn that into an actionable message.
func TestScanEmptyTrace(t *testing.T) {
	fsys := fstest.MapFS{"empty.tsv": &fstest.MapFile{Data: []byte("# nothing here\n\n")}}
	st, err := Scan(fsys, "empty.tsv", SWIM, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 0 {
		t.Errorf("empty trace scanned to %d jobs", st.Jobs)
	}
}

func TestWriteJobsJSON(t *testing.T) {
	text := fmt.Sprintf("a\t0\t1\t%d\t%d\t0\nb\t1\t1\t0\t0\t0\n", 300*mib, 64*mib)
	src := swimSource(text, DefaultOptions())
	var buf bytes.Buffer
	n, err := WriteJobsJSON(&buf, src)
	if err != nil || src.Err() != nil {
		t.Fatalf("write: %v / %v", err, src.Err())
	}
	if n != 2 {
		t.Fatalf("wrote %d jobs, want 2", n)
	}
	var jobs []*task.Job
	if err := json.Unmarshal(buf.Bytes(), &jobs); err != nil {
		t.Fatalf("output is not a JSON job array: %v", err)
	}
	if len(jobs) != 2 || jobs[0].NumTasks() != 3 || len(jobs[0].Phases) != 1 {
		t.Errorf("round-tripped jobs wrong: %+v", jobs)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("round-tripped job %d invalid: %v", j.ID, err)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"swim": SWIM, "FB": SWIM, "facebook": SWIM, "google": GoogleTaskEvents, "google-task-events": GoogleTaskEvents} {
		f, err := ParseFormat(in)
		if err != nil || f != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, f, err, want)
		}
	}
	if _, err := ParseFormat("borg"); err == nil || !strings.Contains(err.Error(), "borg") {
		t.Errorf("ParseFormat(borg) error %v should name the bad input", err)
	}
	if SWIM.String() != "swim" || GoogleTaskEvents.String() != "google" {
		t.Error("Format.String does not round-trip ParseFormat names")
	}
}
