package traceio

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// drain decodes every job from a reader-backed source, failing the test on
// any decode error.
func drain(t *testing.T, src *Source) []*task.Job {
	t.Helper()
	var jobs []*task.Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		jobs = append(jobs, j)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return jobs
}

func swimSource(text string, o Options) *Source {
	return NewReaderSource(strings.NewReader(text), "test.tsv", SWIM, o)
}

const mib = 1 << 20

func TestSWIMMappingRules(t *testing.T) {
	o := DefaultOptions()
	o.BytesPerTask = 128 * mib
	o.WorkScale = 10
	o.MinWorkFrac = 0.01

	text := strings.Join([]string{
		"# a comment line",
		"",
		fmt.Sprintf("j0\t0.0\t1.5\t%d\t0\t0", 300*mib),           // 3 tasks, partial tail
		fmt.Sprintf("j1\t1.5\t0.5\t0\t0\t0"),                     // zero input -> 1 floor task
		fmt.Sprintf("j2\t2.0\t0.5\t%d\t%d\t0", 256*mib, 64*mib),  // reduce phase
		fmt.Sprintf("j3\t2.0\t0.1\t%d\t%d\t5", 128*mib, 999*mib), // shuffle capped at input tasks
	}, "\n") + "\n"

	jobs := drain(t, swimSource(text, o))
	if len(jobs) != 4 {
		t.Fatalf("decoded %d jobs, want 4", len(jobs))
	}

	j0 := jobs[0]
	if j0.ID != 0 || j0.Arrival != 0 {
		t.Errorf("j0 id/arrival = %d/%v, want 0/0", j0.ID, j0.Arrival)
	}
	want0 := []float64{10, 10, 10 * float64(300*mib-2*128*mib) / float64(128*mib)}
	if len(j0.InputWork) != 3 {
		t.Fatalf("j0 has %d tasks, want 3 (300 MiB / 128 MiB splits)", len(j0.InputWork))
	}
	for i, w := range want0 {
		if math.Abs(j0.InputWork[i]-w) > 1e-9 {
			t.Errorf("j0 task %d work = %v, want %v", i, j0.InputWork[i], w)
		}
	}
	if len(j0.Phases) != 0 {
		t.Errorf("j0 has %d phases, want 0 (no shuffle)", len(j0.Phases))
	}

	j1 := jobs[1]
	if len(j1.InputWork) != 1 || j1.InputWork[0] != o.WorkScale*o.MinWorkFrac {
		t.Errorf("zero-input job = %v, want one task at the %v floor", j1.InputWork, o.WorkScale*o.MinWorkFrac)
	}
	if j1.Arrival != 1.5 {
		t.Errorf("j1 arrival = %v, want 1.5 (seconds 1:1)", j1.Arrival)
	}

	j2 := jobs[2]
	if len(j2.InputWork) != 2 {
		t.Fatalf("j2 has %d input tasks, want 2", len(j2.InputWork))
	}
	if len(j2.Phases) != 1 || j2.Phases[0].NumTasks != 1 || j2.Phases[0].WorkScale != o.WorkScale {
		t.Errorf("j2 phases = %+v, want one 1-task reduce phase at WorkScale", j2.Phases)
	}

	j3 := jobs[3]
	if len(j3.Phases) != 1 || j3.Phases[0].NumTasks != len(j3.InputWork) {
		t.Errorf("j3 reduce tasks = %+v with %d input tasks; fan-in must cap at fan-out", j3.Phases, len(j3.InputWork))
	}

	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("job %d invalid after mapping: %v", j.ID, err)
		}
	}
}

// TestSWIMBoundAssignmentDeterministic pins that bounds are a pure function
// of (Options, dense job ID): re-decoding yields identical bounds.
func TestSWIMBoundAssignmentDeterministic(t *testing.T) {
	o := DefaultOptions()
	text := fmt.Sprintf("a\t0\t1\t%d\t0\t0\nb\t1\t1\t%d\t%d\t0\n", 64*mib, 512*mib, 100*mib)
	a := drain(t, swimSource(text, o))
	b := drain(t, swimSource(text, o))
	for i := range a {
		if a[i].Bound != b[i].Bound || a[i].DeadlineFactor != b[i].DeadlineFactor {
			t.Errorf("job %d bound differs across decodes: %+v vs %+v", i, a[i].Bound, b[i].Bound)
		}
	}
}

// TestSWIMDecodeErrors is the satellite table: every malformed input fails
// with a DecodeError carrying the exact file and line (and column when the
// error is inside a field).
func TestSWIMDecodeErrors(t *testing.T) {
	ok := fmt.Sprintf("good\t0\t1\t%d\t0\t0", 64*mib)
	cases := []struct {
		name     string
		text     string
		wantLine int
		wantCol  int // 0 = whole record
		wantSub  string
	}{
		{
			name:     "too few fields",
			text:     ok + "\nbad\t1\t1\t5\n",
			wantLine: 2,
			wantSub:  "has 4 fields, want 6",
		},
		{
			name:     "too many fields",
			text:     "bad\t0\t1\t5\t0\t0\textra\n",
			wantLine: 1,
			wantSub:  "has 7 fields",
		},
		{
			name:     "non-monotone submit time",
			text:     ok + "\nlate\t5\t1\t5\t0\t0\nearly\t4\t1\t5\t0\t0\n",
			wantLine: 3,
			wantSub:  "before previous record",
		},
		{
			name:     "negative inter-arrival gap",
			text:     "bad\t0\t-2.5\t5\t0\t0\n",
			wantLine: 1,
			wantCol:  7,
			wantSub:  "inter-arrival gap",
		},
		{
			name:     "negative map bytes",
			text:     ok + "\nbad\t1\t1\t-9\t0\t0\n",
			wantLine: 2,
			wantSub:  "map input bytes",
		},
		{
			name:     "unparsable float",
			text:     "bad\t0\t1\tpotato\t0\t0\n",
			wantLine: 1,
			wantCol:  9,
			wantSub:  `bad map input bytes "potato"`,
		},
		{
			name:     "NaN submit time",
			text:     "bad\tNaN\t1\t5\t0\t0\n",
			wantLine: 1,
			wantCol:  5,
			wantSub:  "out of range",
		},
		{
			name:     "empty job id",
			text:     "\t0\t1\t5\t0\t0\n",
			wantLine: 1,
			wantCol:  1,
			wantSub:  "empty job id",
		},
		{
			name:     "huge task count",
			text:     "bad\t0\t1\t1e30\t0\t0\n",
			wantLine: 1,
			wantSub:  "over the 100000-task limit",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := swimSource(tc.text, DefaultOptions())
			for {
				j, live := src.Next()
				if !live {
					break
				}
				src.Release(j)
			}
			err := src.Err()
			if err == nil {
				t.Fatal("decode succeeded, want a positioned error")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %T is not a *DecodeError: %v", err, err)
			}
			if de.Pos.File != "test.tsv" || de.Pos.Line != tc.wantLine {
				t.Errorf("error at %s, want test.tsv:%d", de.Pos, tc.wantLine)
			}
			if tc.wantCol != 0 && de.Pos.Column != tc.wantCol {
				t.Errorf("error column %d, want %d", de.Pos.Column, tc.wantCol)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("test.tsv:%d", tc.wantLine)) {
				t.Errorf("error text %q does not render the file:line position", err)
			}
		})
	}
}

// TestSWIMWindowsNewlines pins that \r\n files decode identically to \n
// files (the published traces circulate with both).
func TestSWIMWindowsNewlines(t *testing.T) {
	o := DefaultOptions()
	unix := fmt.Sprintf("a\t0\t1\t%d\t0\t0\nb\t1\t1\t%d\t0\t0\n", 64*mib, 300*mib)
	dos := strings.ReplaceAll(unix, "\n", "\r\n")
	ju, jd := drain(t, swimSource(unix, o)), drain(t, swimSource(dos, o))
	if len(ju) != len(jd) {
		t.Fatalf("unix %d jobs, dos %d jobs", len(ju), len(jd))
	}
	for i := range ju {
		if fmt.Sprintf("%+v", ju[i]) != fmt.Sprintf("%+v", jd[i]) {
			t.Errorf("job %d differs across newline styles:\n  unix %+v\n  dos  %+v", i, ju[i], jd[i])
		}
	}
}

func TestTasksForOverflowGuard(t *testing.T) {
	if n, ok := tasksFor(1e300, 1, 100_000); ok {
		t.Errorf("tasksFor(1e300) = %d, ok; want rejection", n)
	}
	if n, ok := tasksFor(0, 128, 10); !ok || n != 1 {
		t.Errorf("tasksFor(0) = %d,%v; want 1 task minimum", n, ok)
	}
	if n, ok := tasksFor(129, 128, 10); !ok || n != 2 {
		t.Errorf("tasksFor(129, 128) = %d,%v; want ceil = 2", n, ok)
	}
}
