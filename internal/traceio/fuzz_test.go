package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzTraceioDecode fuzzes both decoders with arbitrary bytes. The first
// input byte selects the format (even = SWIM, odd = Google task_events);
// the rest is the file body. The contract under fuzzing:
//
//   - decoding never panics, whatever the bytes (truncated records, mixed
//     newlines, binary garbage, absurd numbers);
//   - every job emitted before the stream ends passes task.Job.Validate;
//   - a stream that ends in an error reports a *DecodeError carrying a
//     1-based line (and the fuzz file name), never a bare error;
//   - memory stays bounded: the decoder is line-oriented, so the 1 MiB
//     line cap converts pathological inputs into positioned errors.
func FuzzTraceioDecode(f *testing.F) {
	f.Add([]byte("\x00job0\t0\t1\t1000000\t0\t0\n"))
	f.Add([]byte("\x00a\t0\t1\t300000000\t64000000\t0\r\njob\t1\t1\t0\t0\t0\n"))
	f.Add([]byte("\x00# comment\n\nc\t0\t1\t1e30\t0\t0\n"))
	f.Add([]byte("\x00truncated\t0\t1\n"))
	f.Add([]byte("\x01100,,job1,0,,0,u,1,5,0.5,0.1,0.01,0\n"))
	f.Add([]byte("\x01100,,job1,0,,0,u,1,5,,0.1,0.01,0\n200,,job2,0,,0,u,1,5,0.9,0.1,0.01,0\n"))
	f.Add([]byte("\x019,,a,0,,0,u,1,5,0.5,0.1,0.01,0\n8,,b,0,,0,u,1,5,0.5,0.1,0.01,0\n"))
	f.Add([]byte("\x01100,,job1,-1,,99,u,1,5,7,0.1,0.01,0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		format := SWIM
		if data[0]%2 == 1 {
			format = GoogleTaskEvents
		}
		o := DefaultOptions()
		o.MaxTasks = 10_000 // keep absurd-but-legal inputs fast
		src := NewReaderSource(bytes.NewReader(data[1:]), "fuzz", format, o)
		emitted := 0
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			emitted++
			if err := j.Validate(); err != nil {
				t.Fatalf("decoder emitted an invalid job (#%d): %v", emitted, err)
			}
			if j.ID != emitted-1 {
				t.Fatalf("job IDs not dense: got %d at position %d", j.ID, emitted-1)
			}
			src.Release(j)
			if emitted > 1_000_000 {
				t.Fatal("unbounded emission")
			}
		}
		if err := src.Err(); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("stream error %T is not a positioned *DecodeError: %v", err, err)
			}
			if de.Pos.File != "fuzz" || de.Pos.Line < 1 {
				t.Fatalf("decode error lacks a usable position: %+v", de.Pos)
			}
			if !strings.Contains(err.Error(), "fuzz:") {
				t.Fatalf("decode error %q does not render its position", err)
			}
		}
	})
}
