package traceio

import (
	"fmt"
	"io"
	"io/fs"

	"github.com/approx-analytics/grass/internal/task"
)

// decoder is the per-format streaming contract: decode the next job into a
// (possibly recycled) job value, or stop at end of stream / first error.
type decoder interface {
	next(j *task.Job) bool
	err() error
}

// Source streams an imported trace as simulator jobs: it implements
// sched.Source and sched.Releaser (and the structurally identical
// trace.Source/trace.Releaser), so every replay entry point accepts it
// wherever a synthetic trace.Stream goes. Released jobs recycle through a
// pool, keeping a replay's import memory proportional to the jobs in
// flight. Not safe for concurrent use.
//
// Decode errors cannot surface through Next (the streaming interface has no
// error channel — by design, matching trace.Stream): a malformed record
// ends the stream early, and Err reports the positioned DecodeError.
// Callers that need errors up front run Scan first; the replay entry points
// (exp.Replay, grass-bench) do both.
type Source struct {
	dec           decoder
	rc            io.ReadCloser
	pool          []*task.Job
	emit          int // jobs handed out (dense ID space, all shards)
	shard, shards int
	scratch       *task.Job
}

// NewSource opens path inside fsys (".gz" transparently decompressed) and
// streams its jobs in arrival order. fsys nil means the host filesystem.
// The caller should Close the source when done (finishing the stream also
// releases the file).
func NewSource(fsys fs.FS, path string, format Format, o Options) (*Source, error) {
	return NewShardSource(fsys, path, format, o, 0, 1)
}

// NewShardSource streams partition shard's jobs of the imported trace: the
// jobs whose dense ID ≡ shard (mod shards), in arrival order — the same
// deterministic partitioner trace.NewShardStream applies to synthetic
// traces, so sched.RunSharded replays imported traces unchanged. Every
// shard reader decodes the full file (jobs are cheap next to simulating
// them); skipped jobs land in a reused scratch value, so the dense ID
// assignment is identical across shards and memory stays bounded.
func NewShardSource(fsys fs.FS, path string, format Format, o Options, shard, shards int) (*Source, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("traceio: %d shards", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("traceio: shard %d out of [0, %d)", shard, shards)
	}
	if fsys == nil {
		fsys = OSFS()
	}
	rc, err := openFile(fsys, path)
	if err != nil {
		return nil, err
	}
	s := NewShardReaderSource(rc, path, format, o, shard, shards)
	s.rc = rc
	return s, nil
}

// NewReaderSource streams jobs from an already-open reader (a pipe, a
// network stream, a test buffer). name labels error positions. Options are
// assumed valid (NewShardSource validates); invalid options surface as
// decode-time errors where they matter.
func NewReaderSource(r io.Reader, name string, format Format, o Options) *Source {
	sc := newLineScanner(r, name)
	var dec decoder
	switch format {
	case GoogleTaskEvents:
		dec = newGoogleDecoder(sc, o)
	default:
		dec = newSWIMDecoder(sc, o)
	}
	return &Source{dec: dec, shards: 1}
}

// NewShardReaderSource is NewReaderSource restricted to one partition's
// jobs (dense ID ≡ shard mod shards), for callers that shard streams not
// backed by a re-openable file — pipes, synthesized readers in tests. The
// caller supplies one reader per shard over identical bytes; shard/shards
// are assumed valid (NewShardSource validates the file-backed path).
func NewShardReaderSource(r io.Reader, name string, format Format, o Options, shard, shards int) *Source {
	s := NewReaderSource(r, name, format, o)
	s.shard, s.shards = shard, shards
	return s
}

// Next returns the next job in arrival order, or (nil, false) at end of
// stream — including a stream cut short by a decode error (check Err).
func (s *Source) Next() (*task.Job, bool) {
	for {
		var j *task.Job
		if s.shards > 1 && s.emit%s.shards != s.shard {
			// Not this shard's job: decode into scratch to keep the dense
			// ID sequence (and bound-assignment streams) in lockstep with
			// the unsharded reader.
			if s.scratch == nil {
				s.scratch = &task.Job{}
			}
			j = s.scratch
		} else {
			j = s.take()
		}
		if !s.dec.next(j) {
			if j != s.scratch {
				s.Release(j)
			}
			return nil, false
		}
		owned := j != s.scratch
		s.emit++
		if owned {
			return j, true
		}
	}
}

// Release returns a job to the pool for reuse by a later Next. Releasing
// nil is a no-op.
func (s *Source) Release(j *task.Job) {
	if j == nil {
		return
	}
	s.pool = append(s.pool, j)
}

// Err reports the decode error that ended the stream early, if any. It is
// meaningful once Next has returned false; a clean end of file leaves it
// nil.
func (s *Source) Err() error { return s.dec.err() }

// Emitted reports how many jobs the underlying decoder has produced so far
// across all shards — after a full drain, the trace's job count.
func (s *Source) Emitted() int { return s.emit }

// Close releases the underlying file. Safe to call on reader-backed
// sources (no-op) and more than once.
func (s *Source) Close() error {
	if s.rc == nil {
		return nil
	}
	rc := s.rc
	s.rc = nil
	return rc.Close()
}

// take pops a pooled job or mints a fresh one.
func (s *Source) take() *task.Job {
	if n := len(s.pool); n > 0 {
		j := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return j
	}
	return &task.Job{}
}

// ScanStats summarizes a validation pass over an imported trace. Everything
// is O(1) in the trace length.
type ScanStats struct {
	Format    Format
	Jobs      int
	Tasks     int
	Phases    int // jobs with a downstream (reduce) phase
	Bins      [3]int
	Span      float64 // last arrival, simulation time units
	TotalWork float64
	MeanTasks float64
}

// Scan decodes the whole file in bounded memory without simulating,
// validating every record and every mapped job: the up-front pass the
// replay entry points run so a malformed record fails with its position
// before any simulation starts, and so the sharded merge knows the total
// job count. fsys nil means the host filesystem.
func Scan(fsys fs.FS, path string, format Format, o Options) (*ScanStats, error) {
	src, err := NewSource(fsys, path, format, o)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	st := &ScanStats{Format: format}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("traceio: %s: job %d invalid after mapping: %w", path, j.ID, err)
		}
		st.Jobs++
		st.Tasks += j.NumTasks()
		if len(j.Phases) > 0 {
			st.Phases++
		}
		st.Bins[int(j.Bin())]++
		if j.Arrival > st.Span {
			st.Span = j.Arrival
		}
		st.TotalWork += j.TotalWork()
		src.Release(j)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if st.Jobs > 0 {
		st.MeanTasks = float64(st.Tasks) / float64(st.Jobs)
	}
	return st, nil
}
