package trace

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Jobs: 0, Slots: 1, Load: 0.5},
		{Jobs: 1, Slots: 0, Load: 0.5},
		{Jobs: 1, Slots: 1, Load: 0},
		{Jobs: 1, Slots: 1, Load: 3},
		{Jobs: 1, Slots: 1, Load: 0.5, DAGLength: -1},
		{Jobs: 1, Slots: 1, Load: 0.5, DeadlineFactorRange: [2]float64{0.2, 0.1}},
		{Jobs: 1, Slots: 1, Load: 0.5, ErrorRange: [2]float64{0.5, 0.2}},
		{Jobs: 1, Slots: 1, Load: 0.5, ErrorRange: [2]float64{0.5, 1.0}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	for _, w := range []Workload{Facebook, Bing} {
		for _, f := range []Framework{Hadoop, Spark} {
			for _, b := range []BoundMode{DeadlineBound, ErrorBound, ExactBound} {
				if err := DefaultConfig(w, f, b).Validate(); err != nil {
					t.Errorf("default config %v/%v/%v invalid: %v", w, f, b, err)
				}
			}
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, ErrorBound)
	cfg.Jobs = 200
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 200 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	prev := -1.0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		if j.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = j.Arrival
		if j.Bound.Kind != task.ErrorBound {
			t.Fatal("wrong bound kind")
		}
		if j.Bound.Epsilon < 0.05 || j.Bound.Epsilon > 0.30 {
			t.Fatalf("epsilon %v outside §6.1 range", j.Bound.Epsilon)
		}
	}
}

func TestGenerateDeadlines(t *testing.T) {
	cfg := DefaultConfig(Bing, Spark, DeadlineBound)
	cfg.Jobs = 150
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Bound.Kind != task.DeadlineBound {
			t.Fatal("wrong bound kind")
		}
		if j.DeadlineFactor < 0.02 || j.DeadlineFactor > 0.20 {
			t.Fatalf("deadline factor %v outside §6.1 range", j.DeadlineFactor)
		}
		if j.IdealDuration <= 0 {
			t.Fatal("ideal duration missing")
		}
		want := j.IdealDuration * (1 + j.DeadlineFactor)
		if math.Abs(j.Bound.Deadline-want)/want > 1e-9 {
			t.Fatalf("deadline %v inconsistent with ideal %v and factor %v",
				j.Bound.Deadline, j.IdealDuration, j.DeadlineFactor)
		}
	}
}

func TestGenerateExact(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, ExactBound)
	cfg.Jobs = 50
	jobs, _ := Generate(cfg)
	for _, j := range jobs {
		if j.Bound.Kind != task.ErrorBound || j.Bound.Epsilon != 0 {
			t.Fatal("exact bound wrong")
		}
	}
}

func TestBinMixCoversAllBins(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, ErrorBound)
	cfg.Jobs = 500
	jobs, _ := Generate(cfg)
	stats := Summarize(cfg, jobs)
	for _, b := range task.AllBins {
		if stats.BinCounts[b] < 20 {
			t.Errorf("bin %v has only %d jobs in 500", b, stats.BinCounts[b])
		}
	}
	if stats.Jobs != 500 || stats.TotalTasks == 0 || stats.MeanTasks <= 0 || stats.Span <= 0 {
		t.Errorf("stats incomplete: %+v", stats)
	}
}

func TestSparkTasksShorterThanHadoop(t *testing.T) {
	h := DefaultConfig(Facebook, Hadoop, ErrorBound)
	s := DefaultConfig(Facebook, Spark, ErrorBound)
	h.Jobs, s.Jobs = 50, 50
	hj, _ := Generate(h)
	sj, _ := Generate(s)
	hw := hj[0].InputWork[0]
	sw := sj[0].InputWork[0]
	if hw <= 5*sw {
		t.Fatalf("Hadoop work %v not ≫ Spark work %v", hw, sw)
	}
}

func TestDAGGeneration(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, DeadlineBound)
	cfg.Jobs = 20
	cfg.DAGLength = 4
	jobs, _ := Generate(cfg)
	for _, j := range jobs {
		if j.DAGLength() != 4 {
			t.Fatalf("DAG length %d, want 4", j.DAGLength())
		}
		for _, p := range j.Phases {
			if p.NumTasks < 1 || p.WorkScale <= 0 {
				t.Fatalf("bad phase %+v", p)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(Bing, Hadoop, DeadlineBound)
	cfg.Jobs = 60
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a {
		if a[i].NumTasks() != b[i].NumTasks() || a[i].Arrival != b[i].Arrival ||
			a[i].Bound != b[i].Bound {
			t.Fatalf("traces differ at job %d", i)
		}
	}
	cfg.Seed = 99
	c, _ := Generate(cfg)
	same := 0
	for i := range a {
		if a[i].NumTasks() == c[i].NumTasks() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestWorkloadFrameworkStrings(t *testing.T) {
	if Facebook.String() != "Facebook" || Bing.String() != "Bing" {
		t.Fatal("workload names")
	}
	if Hadoop.String() != "Hadoop" || Spark.String() != "Spark" {
		t.Fatal("framework names")
	}
	if Workload(9).String() == "" || Framework(9).String() == "" {
		t.Fatal("unknown values should render")
	}
}

func TestBingSkewsLarger(t *testing.T) {
	fb := DefaultConfig(Facebook, Hadoop, ErrorBound)
	bg := DefaultConfig(Bing, Hadoop, ErrorBound)
	fb.Jobs, bg.Jobs = 1000, 1000
	fj, _ := Generate(fb)
	bj, _ := Generate(bg)
	fs, bs := Summarize(fb, fj), Summarize(bg, bj)
	if float64(bs.BinCounts[task.Large])/1000 <= float64(fs.BinCounts[task.Large])/1000 {
		t.Errorf("Bing large-job share %d not above Facebook's %d",
			bs.BinCounts[task.Large], fs.BinCounts[task.Large])
	}
}
