package trace

import (
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// streamConfigs spans the generator's behavioural axes: workload, framework,
// every bound mode (including mixed), and DAG jobs.
func streamConfigs() []Config {
	var cfgs []Config
	for _, w := range []Workload{Facebook, Bing} {
		for _, b := range []BoundMode{DeadlineBound, ErrorBound, ExactBound, MixedBound} {
			c := DefaultConfig(w, Hadoop, b)
			c.Jobs = 60
			cfgs = append(cfgs, c)
		}
	}
	spark := DefaultConfig(Facebook, Spark, ErrorBound)
	spark.Jobs = 60
	cfgs = append(cfgs, spark)
	dag := DefaultConfig(Bing, Hadoop, DeadlineBound)
	dag.Jobs = 40
	dag.DAGLength = 4
	cfgs = append(cfgs, dag)
	return cfgs
}

// cloneJob deep-copies a job so comparisons survive pooling's reuse of the
// original's backing arrays.
func cloneJob(j *task.Job) *task.Job {
	c := *j
	c.InputWork = append([]float64(nil), j.InputWork...)
	if j.Phases != nil {
		c.Phases = append([]task.Phase(nil), j.Phases...)
	}
	return &c
}

// TestStreamMatchesGenerate is the streaming pipeline's core guarantee: for
// any config, the lazily emitted job sequence is identical — field for
// field — to the materialized trace from the same seed.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range streamConfigs() {
		want, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Remaining(); got != cfg.Jobs {
			t.Fatalf("%v/%v: Remaining() = %d before first job, want %d", cfg.Workload, cfg.Bound, got, cfg.Jobs)
		}
		for i := 0; ; i++ {
			j, ok := s.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("%v/%v: stream ended after %d jobs, want %d", cfg.Workload, cfg.Bound, i, len(want))
				}
				break
			}
			if !reflect.DeepEqual(j, want[i]) {
				t.Fatalf("%v/%v: streamed job %d differs from generated:\n stream: %+v\n generate: %+v",
					cfg.Workload, cfg.Bound, i, j, want[i])
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%v/%v: Next returned a job past the end", cfg.Workload, cfg.Bound)
		}
	}
}

// TestStreamPoolingPreservesTrace releases every job straight back to the
// pool and checks reuse cannot perturb later jobs: values still match the
// materialized trace, and the pooled objects really are recycled.
func TestStreamPoolingPreservesTrace(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, MixedBound)
	cfg.Jobs = 120
	cfg.DAGLength = 3
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev *task.Job
	reused := false
	for i := 0; ; i++ {
		j, ok := s.Next()
		if !ok {
			break
		}
		if j == prev {
			reused = true
		}
		if !reflect.DeepEqual(j, want[i]) {
			t.Fatalf("pooled stream job %d differs from generated trace", i)
		}
		s.Release(j)
		prev = j
	}
	if !reused {
		t.Fatal("released jobs were never reused by the pool")
	}
	s.Release(nil) // no-op
}

// checkShardPartition verifies the deterministic partitioner's contract
// for one (cfg, shards) cell: every shard stream emits exactly its residue
// class, byte-identical to the full trace's jobs, in arrival order, and
// the classes tile the trace with nothing missing or duplicated.
func checkShardPartition(t *testing.T, cfg Config, shards int) {
	t.Helper()
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(want))
	for shard := 0; shard < shards; shard++ {
		s, err := NewShardStream(cfg, shard, shards)
		if err != nil {
			t.Fatal(err)
		}
		wantRemaining := s.Remaining()
		got := 0
		prevArrival := -1.0
		for {
			j, ok := s.Next()
			if !ok {
				break
			}
			if j.ID%shards != shard {
				t.Fatalf("shard %d/%d emitted job %d of the wrong residue", shard, shards, j.ID)
			}
			if seen[j.ID] {
				t.Fatalf("job %d emitted by two shards", j.ID)
			}
			seen[j.ID] = true
			if !reflect.DeepEqual(j, want[j.ID]) {
				t.Fatalf("shard %d/%d: job %d differs from the full trace's", shard, shards, j.ID)
			}
			if j.Arrival < prevArrival {
				t.Fatalf("shard %d/%d: job %d arrives at %v after %v", shard, shards, j.ID, j.Arrival, prevArrival)
			}
			prevArrival = j.Arrival
			got++
			s.Release(j) // shard streams recycle like plain streams
		}
		if got != wantRemaining {
			t.Fatalf("shard %d/%d emitted %d jobs, Remaining promised %d", shard, shards, got, wantRemaining)
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("job %d emitted by no shard", id)
		}
	}
}

// TestShardStreamPartition: the shard streams tile the trace exactly, for
// every workload axis and several shard counts — including shards beyond
// the job count (some shards then emit nothing).
func TestShardStreamPartition(t *testing.T) {
	for _, cfg := range streamConfigs() {
		for _, shards := range []int{2, 3, 8} {
			checkShardPartition(t, cfg, shards)
		}
	}
	tiny := DefaultConfig(Facebook, Hadoop, MixedBound)
	tiny.Jobs = 3
	checkShardPartition(t, tiny, 8)
}

// TestShardStreamOneShardIsPlain: shards == 1 must be NewStream exactly.
func TestShardStreamOneShardIsPlain(t *testing.T) {
	cfg := DefaultConfig(Bing, Hadoop, MixedBound)
	cfg.Jobs = 50
	plain, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardStream(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, okA := plain.Next()
		b, okB := sharded.Next()
		if okA != okB {
			t.Fatalf("streams ended at different lengths")
		}
		if !okA {
			break
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("job %d differs between NewStream and NewShardStream(0, 1)", a.ID)
		}
	}
}

// TestShardStreamRejectsBadShards: the partitioner's bounds are validated.
func TestShardStreamRejectsBadShards(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, ErrorBound)
	cfg.Jobs = 5
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {2, 2}, {0, -3}} {
		if _, err := NewShardStream(cfg, bad[0], bad[1]); err == nil {
			t.Fatalf("NewShardStream(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

// FuzzShardStreamPartition fuzzes the partitioner over trace shape and
// shard count: whatever the configuration, the shards must tile the full
// trace byte-identically. This is the fuzz leg of the sharded-determinism
// evidence — the simulation layers above consume exactly these streams.
func FuzzShardStreamPartition(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2), uint8(0), uint8(1))
	f.Add(int64(7), uint8(33), uint8(5), uint8(3), uint8(3))
	f.Add(int64(42), uint8(1), uint8(7), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, jobs, shards, boundMode, dagLen uint8) {
		nj := int(jobs)%64 + 1
		ns := int(shards)%9 + 1
		cfg := DefaultConfig(Facebook, Hadoop, BoundMode(int(boundMode)%4))
		cfg.Jobs = nj
		cfg.Seed = seed
		cfg.DAGLength = int(dagLen) % 4
		want, err := Generate(cfg)
		if err != nil {
			t.Skip() // invalid config permutation
		}
		seen := 0
		for shard := 0; shard < ns; shard++ {
			s, err := NewShardStream(cfg, shard, ns)
			if err != nil {
				t.Fatal(err)
			}
			for {
				j, ok := s.Next()
				if !ok {
					break
				}
				if j.ID%ns != shard || !reflect.DeepEqual(j, want[j.ID]) {
					t.Fatalf("shard %d/%d: job %d wrong or differs from full trace", shard, ns, j.ID)
				}
				seen++
			}
		}
		if seen != nj {
			t.Fatalf("shards emitted %d jobs, want %d", seen, nj)
		}
	})
}

// TestMixedBoundComposition checks the mixed workload really carries all
// three job classes with valid bounds.
func TestMixedBoundComposition(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, MixedBound)
	cfg.Jobs = 400
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var deadline, errBound, exact int
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		switch {
		case j.Bound.Kind == task.DeadlineBound:
			deadline++
			if j.DeadlineFactor <= 0 || j.IdealDuration <= 0 {
				t.Fatalf("job %d: deadline job without calibration (factor %v, ideal %v)",
					j.ID, j.DeadlineFactor, j.IdealDuration)
			}
		case j.Bound.Epsilon > 0:
			errBound++
		default:
			exact++
		}
	}
	// 45/45/10 split over 400 jobs: each class must clearly show up.
	if deadline < 100 || errBound < 100 || exact < 10 {
		t.Fatalf("mixed composition off: %d deadline, %d error, %d exact", deadline, errBound, exact)
	}
}

// TestBoundModeValidation: unknown modes are rejected, mixed is accepted.
func TestBoundModeValidation(t *testing.T) {
	c := DefaultConfig(Facebook, Hadoop, MixedBound)
	if err := c.Validate(); err != nil {
		t.Fatalf("mixed bound rejected: %v", err)
	}
	c.Bound = BoundMode(99)
	if c.Validate() == nil {
		t.Fatal("unknown bound mode accepted")
	}
	if got := MixedBound.String(); got != "mixed" {
		t.Fatalf("MixedBound.String() = %q", got)
	}
}
