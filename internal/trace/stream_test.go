package trace

import (
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// streamConfigs spans the generator's behavioural axes: workload, framework,
// every bound mode (including mixed), and DAG jobs.
func streamConfigs() []Config {
	var cfgs []Config
	for _, w := range []Workload{Facebook, Bing} {
		for _, b := range []BoundMode{DeadlineBound, ErrorBound, ExactBound, MixedBound} {
			c := DefaultConfig(w, Hadoop, b)
			c.Jobs = 60
			cfgs = append(cfgs, c)
		}
	}
	spark := DefaultConfig(Facebook, Spark, ErrorBound)
	spark.Jobs = 60
	cfgs = append(cfgs, spark)
	dag := DefaultConfig(Bing, Hadoop, DeadlineBound)
	dag.Jobs = 40
	dag.DAGLength = 4
	cfgs = append(cfgs, dag)
	return cfgs
}

// cloneJob deep-copies a job so comparisons survive pooling's reuse of the
// original's backing arrays.
func cloneJob(j *task.Job) *task.Job {
	c := *j
	c.InputWork = append([]float64(nil), j.InputWork...)
	if j.Phases != nil {
		c.Phases = append([]task.Phase(nil), j.Phases...)
	}
	return &c
}

// TestStreamMatchesGenerate is the streaming pipeline's core guarantee: for
// any config, the lazily emitted job sequence is identical — field for
// field — to the materialized trace from the same seed.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range streamConfigs() {
		want, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Remaining(); got != cfg.Jobs {
			t.Fatalf("%v/%v: Remaining() = %d before first job, want %d", cfg.Workload, cfg.Bound, got, cfg.Jobs)
		}
		for i := 0; ; i++ {
			j, ok := s.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("%v/%v: stream ended after %d jobs, want %d", cfg.Workload, cfg.Bound, i, len(want))
				}
				break
			}
			if !reflect.DeepEqual(j, want[i]) {
				t.Fatalf("%v/%v: streamed job %d differs from generated:\n stream: %+v\n generate: %+v",
					cfg.Workload, cfg.Bound, i, j, want[i])
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%v/%v: Next returned a job past the end", cfg.Workload, cfg.Bound)
		}
	}
}

// TestStreamPoolingPreservesTrace releases every job straight back to the
// pool and checks reuse cannot perturb later jobs: values still match the
// materialized trace, and the pooled objects really are recycled.
func TestStreamPoolingPreservesTrace(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, MixedBound)
	cfg.Jobs = 120
	cfg.DAGLength = 3
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev *task.Job
	reused := false
	for i := 0; ; i++ {
		j, ok := s.Next()
		if !ok {
			break
		}
		if j == prev {
			reused = true
		}
		if !reflect.DeepEqual(j, want[i]) {
			t.Fatalf("pooled stream job %d differs from generated trace", i)
		}
		s.Release(j)
		prev = j
	}
	if !reused {
		t.Fatal("released jobs were never reused by the pool")
	}
	s.Release(nil) // no-op
}

// TestMixedBoundComposition checks the mixed workload really carries all
// three job classes with valid bounds.
func TestMixedBoundComposition(t *testing.T) {
	cfg := DefaultConfig(Facebook, Hadoop, MixedBound)
	cfg.Jobs = 400
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var deadline, errBound, exact int
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		switch {
		case j.Bound.Kind == task.DeadlineBound:
			deadline++
			if j.DeadlineFactor <= 0 || j.IdealDuration <= 0 {
				t.Fatalf("job %d: deadline job without calibration (factor %v, ideal %v)",
					j.ID, j.DeadlineFactor, j.IdealDuration)
			}
		case j.Bound.Epsilon > 0:
			errBound++
		default:
			exact++
		}
	}
	// 45/45/10 split over 400 jobs: each class must clearly show up.
	if deadline < 100 || errBound < 100 || exact < 10 {
		t.Fatalf("mixed composition off: %d deadline, %d error, %d exact", deadline, errBound, exact)
	}
}

// TestBoundModeValidation: unknown modes are rejected, mixed is accepted.
func TestBoundModeValidation(t *testing.T) {
	c := DefaultConfig(Facebook, Hadoop, MixedBound)
	if err := c.Validate(); err != nil {
		t.Fatalf("mixed bound rejected: %v", err)
	}
	c.Bound = BoundMode(99)
	if c.Validate() == nil {
		t.Fatal("unknown bound mode accepted")
	}
	if got := MixedBound.String(); got != "mixed" {
		t.Fatalf("MixedBound.String() = %q", got)
	}
}
