// Package trace generates the synthetic Facebook and Bing workloads the
// evaluation runs on. The production traces (Table 1: 575K Hadoop jobs at
// Facebook, 500K Dryad jobs at Bing) are proprietary; following the
// substitution rule in DESIGN.md we reproduce the statistical properties the
// paper actually exploits:
//
//   - heavy-tailed job sizes spanning the paper's three bins (<50, 51–500,
//     >500 tasks), with Bing skewing larger than Facebook;
//   - Pareto(β≈1.259) task durations (the simulator injects the tail; the
//     trace carries per-task intrinsic work);
//   - Poisson arrivals at a configurable offered load;
//   - deadline and error bounds assigned exactly as §6.1 describes:
//     deadlines at a uniform 2–20% factor over the job's calibrated ideal
//     duration, error bounds uniform in 5–30%;
//   - Hadoop vs Spark regimes, differing in task scale (Spark's in-memory
//     inputs make tasks roughly an order of magnitude shorter).
package trace

import (
	"fmt"
	"math"
	"strings"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
)

// Workload selects the production trace being mimicked.
type Workload int

const (
	// Facebook mimics the Hadoop trace from Facebook (Oct 2012).
	Facebook Workload = iota
	// Bing mimics the Dryad trace from Microsoft Bing (May–Dec 2011).
	Bing
)

// String returns the workload name.
func (w Workload) String() string {
	switch w {
	case Facebook:
		return "Facebook"
	case Bing:
		return "Bing"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// ParseWorkload resolves a workload name ("facebook"/"fb", "bing").
func ParseWorkload(s string) (Workload, error) {
	switch strings.ToLower(s) {
	case "facebook", "fb":
		return Facebook, nil
	case "bing":
		return Bing, nil
	default:
		return 0, fmt.Errorf("trace: unknown workload %q", s)
	}
}

// Framework selects the execution-engine regime.
type Framework int

const (
	// Hadoop reads inputs from disk (HDFS): long tasks.
	Hadoop Framework = iota
	// Spark reads in-memory RDDs: tasks roughly 10× shorter, which makes
	// straggler impact "more distinct" (§6.2.1).
	Spark
)

// String returns the framework name.
func (f Framework) String() string {
	switch f {
	case Hadoop:
		return "Hadoop"
	case Spark:
		return "Spark"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// ParseFramework resolves a framework name ("hadoop", "spark").
func ParseFramework(s string) (Framework, error) {
	switch strings.ToLower(s) {
	case "hadoop":
		return Hadoop, nil
	case "spark":
		return Spark, nil
	default:
		return 0, fmt.Errorf("trace: unknown framework %q", s)
	}
}

// BoundMode selects how jobs are bounded.
type BoundMode int

const (
	// DeadlineBound assigns every job a deadline at a uniform 2–20% factor
	// over its ideal duration.
	DeadlineBound BoundMode = iota
	// ErrorBound assigns every job an error tolerance uniform in 5–30%.
	ErrorBound
	// ExactBound gives every job a zero error bound (exact computation).
	ExactBound
	// MixedBound draws each job's bound kind independently — 45% deadline,
	// 45% error, 10% exact — approximating a production cluster that serves
	// every query class at once. This is the workload the million-job
	// streaming replays run.
	MixedBound
)

// ParseBound resolves a bound-mode name — the inverse of String, shared by
// every command-line frontend so a new mode is added in one place.
func ParseBound(s string) (BoundMode, error) {
	switch strings.ToLower(s) {
	case "deadline":
		return DeadlineBound, nil
	case "error":
		return ErrorBound, nil
	case "exact":
		return ExactBound, nil
	case "mixed":
		return MixedBound, nil
	default:
		return 0, fmt.Errorf("trace: unknown bound mode %q", s)
	}
}

// String returns the bound-mode name.
func (b BoundMode) String() string {
	switch b {
	case DeadlineBound:
		return "deadline"
	case ErrorBound:
		return "error"
	case ExactBound:
		return "exact"
	case MixedBound:
		return "mixed"
	default:
		return fmt.Sprintf("BoundMode(%d)", int(b))
	}
}

// Config parameterizes trace generation.
type Config struct {
	Workload  Workload
	Framework Framework
	Bound     BoundMode
	// Jobs is the number of jobs to generate.
	Jobs int
	// Slots is the cluster slot count, used to calibrate ideal durations
	// (§6.1) and arrival spacing.
	Slots int
	// Load is the offered load in (0, ~1]: the fraction of cluster capacity
	// the trace's REAL work consumes (ideal work times WorkInflation).
	// Around 0.75 reproduces a busy multi-tenant cluster with multi-waved
	// jobs but stable queues.
	Load float64
	// WorkInflation is the expected ratio of actual to median copy duration
	// under the simulator's straggler model (the mean of sched's default
	// body+tail factor distribution is ≈1.75). Arrival spacing uses it so
	// Load reflects capacity actually consumed. 0 means 1.45.
	WorkInflation float64
	// DAGLength forces every job's phase count (1 = input only). 0 means 1.
	DAGLength int
	// DeadlineFactorRange overrides the §6.1 default of [0.02, 0.20].
	DeadlineFactorRange [2]float64
	// ErrorRange overrides the §6.1 default of [0.05, 0.30].
	ErrorRange [2]float64
	// Seed drives generation.
	Seed int64
}

// DefaultConfig returns a trace configuration matching §6.1 for the given
// workload, framework and bound mode.
func DefaultConfig(w Workload, f Framework, b BoundMode) Config {
	return Config{
		Workload:            w,
		Framework:           f,
		Bound:               b,
		Jobs:                300,
		Slots:               400,
		Load:                0.75,
		DeadlineFactorRange: [2]float64{0.02, 0.20},
		ErrorRange:          [2]float64{0.05, 0.30},
		Seed:                1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("trace: %d jobs", c.Jobs)
	}
	if c.Slots <= 0 {
		return fmt.Errorf("trace: %d slots", c.Slots)
	}
	if c.Load <= 0 || c.Load > 2 {
		return fmt.Errorf("trace: load %v out of (0, 2]", c.Load)
	}
	if c.DAGLength < 0 {
		return fmt.Errorf("trace: negative DAG length %d", c.DAGLength)
	}
	if c.Bound < DeadlineBound || c.Bound > MixedBound {
		return fmt.Errorf("trace: unknown bound mode %d", int(c.Bound))
	}
	if c.DeadlineFactorRange[0] < 0 || c.DeadlineFactorRange[1] < c.DeadlineFactorRange[0] {
		return fmt.Errorf("trace: bad deadline factor range %v", c.DeadlineFactorRange)
	}
	if c.ErrorRange[0] < 0 || c.ErrorRange[1] >= 1 || c.ErrorRange[1] < c.ErrorRange[0] {
		return fmt.Errorf("trace: bad error range %v", c.ErrorRange)
	}
	return nil
}

// taskScale returns the framework's mean intrinsic task work (median copy
// duration in simulation time units).
func (c Config) taskScale() float64 {
	if c.Framework == Spark {
		return 1
	}
	return 10
}

// binMix returns the probability of drawing a job from each size bin.
// Facebook's mix is dominated by small interactive jobs; Bing's Dryad
// workload skews a little larger.
func (c Config) binMix() [3]float64 {
	if c.Workload == Bing {
		return [3]float64{0.40, 0.38, 0.22}
	}
	return [3]float64{0.48, 0.36, 0.16}
}

// Generate produces the trace: jobs sorted by arrival with bounds assigned
// per §6.1. It is the materializing wrapper around Stream — same seed, same
// jobs — for callers that want the whole trace in memory; replays at the
// paper's trace sizes should drive the simulator from a Stream instead.
func Generate(cfg Config) ([]*task.Job, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]*task.Job, 0, cfg.Jobs)
	for {
		j, ok := s.Next()
		if !ok {
			return jobs, nil
		}
		jobs = append(jobs, j)
	}
}

// sampleSize draws a job's task count: a size bin by workload mix, then a
// log-uniform count within the bin.
func sampleSize(cfg Config, rng *dist.RNG) int {
	mix := cfg.binMix()
	u := rng.Float64()
	var lo, hi float64
	switch {
	case u < mix[0]:
		lo, hi = 5, 50
	case u < mix[0]+mix[1]:
		lo, hi = 51, 500
	default:
		lo, hi = 501, 3000
	}
	// Log-uniform within the bin keeps small sizes common.
	v := math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	n := int(v)
	if n < int(lo) {
		n = int(lo)
	}
	if n > int(hi) {
		n = int(hi)
	}
	return n
}

// AssignBound sets the job's approximation bound per §6.1 — the same rules
// synthetic generation uses, exported so trace importers (internal/traceio)
// can bound real-trace jobs identically: MixedBound draws the class first
// (45% deadline / 45% error / 10% exact), error bounds are uniform in
// cfg.ErrorRange, and deadlines sit a uniform cfg.DeadlineFactorRange factor
// over the job's calibrated ideal duration on a cfg.Slots-slot cluster.
// Only Bound, ErrorRange, DeadlineFactorRange and Slots are consulted.
func AssignBound(cfg Config, j *task.Job, rng *dist.RNG) {
	assignBound(cfg, j, rng)
}

// assignBound sets the job's approximation bound per §6.1.
func assignBound(cfg Config, j *task.Job, rng *dist.RNG) {
	switch cfg.Bound {
	case MixedBound:
		// One extra draw picks the job's class; the class then consumes
		// exactly the draws it would in its dedicated mode.
		sub := cfg
		switch u := rng.Float64(); {
		case u < 0.45:
			sub.Bound = DeadlineBound
		case u < 0.90:
			sub.Bound = ErrorBound
		default:
			sub.Bound = ExactBound
		}
		assignBound(sub, j, rng)
	case ErrorBound:
		eps := cfg.ErrorRange[0] + rng.Float64()*(cfg.ErrorRange[1]-cfg.ErrorRange[0])
		j.Bound = task.NewError(eps)
	case ExactBound:
		j.Bound = task.Exact()
	default:
		// Ideal duration: every task at the median duration, on the job's
		// fair share of the cluster. In a multi-tenant cluster a job rarely
		// holds every slot; half the cluster approximates the share a
		// sizable job gets under fair scheduling — and because the ideal
		// substitutes the *median* duration for every task, the resulting
		// deadlines are aggressive against real straggler-inflated
		// executions, exactly the paper's intent.
		share := cfg.Slots / 2
		if share < 1 {
			share = 1
		}
		if n := j.NumTasks(); n < share {
			share = n
		}
		med := dist.Median(j.InputWork)
		waves := math.Ceil(float64(j.NumTasks()) / float64(share))
		ideal := waves * med
		factor := cfg.DeadlineFactorRange[0] +
			rng.Float64()*(cfg.DeadlineFactorRange[1]-cfg.DeadlineFactorRange[0])
		j.Bound = task.NewDeadline(ideal * (1 + factor))
		j.DeadlineFactor = factor
		j.IdealDuration = ideal
	}
}

// Source is the streaming admission contract a workload generator or
// importer satisfies: jobs one at a time, in non-decreasing arrival order.
// It is structurally identical to sched.Source — Stream implements it, and
// so do internal/traceio's real-trace readers — declared here too so trace
// consumers (summaries, converters) need not depend on the scheduler.
type Source interface {
	// Next returns the next job, or (nil, false) when the trace ends.
	Next() (*task.Job, bool)
}

// Releaser is the job-recycling half of the contract, mirroring
// sched.Releaser: a source that implements it gets each job handed back
// once the consumer is done with it.
type Releaser interface {
	Release(*task.Job)
}

// Stats summarizes a generated trace — the content of Table 1.
type Stats struct {
	Workload   Workload
	Framework  Framework
	Jobs       int
	TotalTasks int
	BinCounts  map[task.SizeBin]int
	MeanTasks  float64
	Span       float64 // arrival span of the trace
}

// Summarize computes trace statistics.
func Summarize(cfg Config, jobs []*task.Job) Stats {
	s := Stats{
		Workload:  cfg.Workload,
		Framework: cfg.Framework,
		Jobs:      len(jobs),
		BinCounts: make(map[task.SizeBin]int),
	}
	for _, j := range jobs {
		s.fold(j)
	}
	return s
}

// SummarizeSource drains src and computes the same statistics Summarize
// does, in bounded memory: each job is folded into the running aggregates
// and — when src recycles (Releaser) — handed straight back, so a multi-GB
// imported trace summarizes while holding one job at a time. Workload and
// Framework are left zero; imported traces carry neither.
func SummarizeSource(src Source) Stats {
	s := Stats{BinCounts: make(map[task.SizeBin]int)}
	rel, _ := src.(Releaser)
	for {
		j, ok := src.Next()
		if !ok {
			return s
		}
		s.Jobs++
		s.fold(j)
		if rel != nil {
			rel.Release(j)
		}
	}
}

// fold accumulates one job into the summary.
func (s *Stats) fold(j *task.Job) {
	s.TotalTasks += j.NumTasks()
	s.BinCounts[j.Bin()]++
	if j.Arrival > s.Span {
		s.Span = j.Arrival
	}
	if s.Jobs > 0 {
		s.MeanTasks = float64(s.TotalTasks) / float64(s.Jobs)
	}
}
