package trace

import (
	"fmt"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/task"
)

// Stream generates a trace lazily, one job per Next call, in arrival order.
// For a given Config (seed included) the emitted job sequence is
// byte-identical to Generate's: both draw from the same seeded RNG streams
// in the same order — Generate is just Stream plus materialization.
//
// Stream exists for replays at the paper's trace sizes (575K Facebook /
// 500K Bing jobs): materializing a million jobs costs gigabytes, while a
// stream keeps only the job being handed out. Callers that are done with a
// job (e.g. the simulator once the job finishes) can Release it back to the
// stream's pool, making a full replay's trace memory proportional to the
// number of jobs in flight, not the trace length.
//
// Stream implements the simulator's admission-source interface
// (sched.Source / sched.Releaser). It is not safe for concurrent use.
type Stream struct {
	cfg   Config
	scale float64

	sizeRNG  *dist.RNG
	workRNG  *dist.RNG
	boundRNG *dist.RNG
	arrRNG   *dist.RNG

	next int     // jobs emitted so far; the next job's ID
	now  float64 // next job's arrival time

	pool []*task.Job // released jobs awaiting reuse

	// shard/shards restrict emission to one residue class of job IDs
	// (NewShardStream). Non-owned jobs are still generated — into scratch,
	// reused across skips — so the RNG streams stay at exactly the
	// positions of the unsharded generator and every shard's jobs are
	// byte-identical to the corresponding jobs of the full trace.
	shard, shards int
	scratch       *task.Job
}

// NewStream validates cfg and positions a stream at the first job.
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := dist.NewRNG(cfg.Seed)
	return &Stream{
		cfg:      cfg,
		scale:    cfg.taskScale(),
		sizeRNG:  rng.Split(),
		workRNG:  rng.Split(),
		boundRNG: rng.Split(),
		arrRNG:   rng.Split(),
	}, nil
}

// NewShardStream returns a stream emitting partition shard's jobs of cfg's
// trace: the jobs whose ID ≡ shard (mod shards), in arrival order. The
// emitted jobs are byte-identical to the same-ID jobs of the full trace —
// the deterministic partitioner of a sharded simulation (sched.RunSharded):
// the union of the shards' streams is exactly NewStream's sequence, and
// every job belongs to exactly one shard.
//
// Skipped jobs still consume their RNG draws (generated into a reused
// scratch job), so a shard stream costs the full trace's generation work;
// that cost is small next to simulating the shard's jobs, and buys shards
// that share no state at all — each can run on its own goroutine.
// shards == 1 is NewStream exactly.
func NewShardStream(cfg Config, shard, shards int) (*Stream, error) {
	if shards < 1 {
		return nil, fmt.Errorf("trace: %d shards", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("trace: shard %d out of [0, %d)", shard, shards)
	}
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	s.shard, s.shards = shard, shards
	return s, nil
}

// Next returns the next job in arrival order, or (nil, false) once cfg.Jobs
// jobs have been emitted. The returned job is owned by the caller until it
// is passed to Release (releasing is optional — an unreleased job is plain
// garbage-collected memory).
func (s *Stream) Next() (*task.Job, bool) {
	for s.next < s.cfg.Jobs {
		if s.shards > 1 && s.next%s.shards != s.shard {
			// Not this shard's job: draw it into scratch to keep the RNG
			// streams in lockstep with the unsharded generator.
			if s.scratch == nil {
				s.scratch = &task.Job{}
			}
			s.fill(s.scratch)
			continue
		}
		j := s.take()
		s.fill(j)
		return j, true
	}
	return nil, false
}

// Release returns a job to the stream's pool so a later Next can reuse its
// backing arrays. The caller must not retain references into the job after
// releasing it. Releasing nil is a no-op.
func (s *Stream) Release(j *task.Job) {
	if j == nil {
		return
	}
	s.pool = append(s.pool, j)
}

// Remaining reports how many jobs the stream will still emit — for a shard
// stream, only the jobs of its own residue class.
func (s *Stream) Remaining() int {
	if s.shards <= 1 {
		return s.cfg.Jobs - s.next
	}
	// Owned IDs below x: those of the form shard + k·shards with k ≥ 0.
	below := func(x int) int {
		if x <= s.shard {
			return 0
		}
		return (x - s.shard + s.shards - 1) / s.shards
	}
	return below(s.cfg.Jobs) - below(s.next)
}

// take pops a pooled job or mints a fresh one.
func (s *Stream) take() *task.Job {
	if n := len(s.pool); n > 0 {
		j := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return j
	}
	return &task.Job{}
}

// fill generates one job in place. Every field is overwritten (pooled jobs
// carry stale values) and the RNG draw order exactly matches the original
// materializing generator, so pooling cannot change the trace.
func (s *Stream) fill(j *task.Job) {
	cfg := s.cfg
	n := sampleSize(cfg, s.sizeRNG)
	if cap(j.InputWork) >= n {
		j.InputWork = j.InputWork[:n]
	} else {
		j.InputWork = make([]float64, n)
	}
	sizeDist := dist.Lognormal{Mu: 0, Sigma: 0.8}
	for i := range j.InputWork {
		// Per-task data-size skew around the framework scale (median 1,
		// lognormal spread — the data skew of [19] that makes SJF/LJF
		// ordering matter). The simulator multiplies by the straggler
		// factor on top.
		f := sizeDist.Sample(s.workRNG)
		if f < 0.1 {
			f = 0.1
		}
		if f > 20 {
			f = 20
		}
		j.InputWork[i] = s.scale * f
	}
	j.ID = s.next
	j.Arrival = s.now
	j.Bound = task.Bound{}
	j.DeadlineFactor = 0
	j.IdealDuration = 0
	if dag := cfg.DAGLength; dag > 1 {
		if cap(j.Phases) >= dag-1 {
			j.Phases = j.Phases[:dag-1]
		} else {
			j.Phases = make([]task.Phase, dag-1)
		}
		for p := range j.Phases {
			// Intermediate phases aggregate: roughly a tenth of the
			// input task count, similar per-task work.
			nt := n / 10
			if nt < 1 {
				nt = 1
			}
			j.Phases[p] = task.Phase{NumTasks: nt, WorkScale: s.scale}
		}
	} else {
		j.Phases = nil
	}
	assignBound(cfg, j, s.boundRNG)
	s.next++
	// Poisson arrivals: mean spacing makes the trace's real work
	// (ideal × straggler inflation) consume cfg.Load of the cluster.
	inflation := cfg.WorkInflation
	if inflation == 0 {
		inflation = 1.75
	}
	spacing := j.TotalWork() * inflation / (float64(cfg.Slots) * cfg.Load)
	s.now += dist.Exponential{Mu: spacing}.Sample(s.arrRNG)
}
