package model

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/dist"
)

var beta = 1.259

func TestOmegaThresholds(t *testing.T) {
	p := dist.Pareto{Xm: 1, Beta: beta}
	if got := GSOmega(p); math.Abs(got-beta) > 1e-12 {
		t.Fatalf("GS omega %v, want %v", got, beta)
	}
	if got := RASOmega(p); math.Abs(got-2*beta) > 1e-12 {
		t.Fatalf("RAS omega %v, want %v", got, 2*beta)
	}
	// RAS always waits longer: it demands resource savings, not just time.
	if RASOmega(p) <= GSOmega(p) {
		t.Fatal("RAS must wait longer than GS")
	}
	// Check the defining identity E[τ−ω|τ>ω] = ω/(β−1) at ω_GS equals E[τ].
	om := GSOmega(p)
	if got, want := p.MeanResidual(om), p.Mean(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("residual at ω_GS = %v, want E[τ] = %v", got, want)
	}
}

func TestSigma(t *testing.T) {
	if got := Sigma(1.0); got != 2 {
		t.Fatalf("sigma(1.0) = %v", got)
	}
	if got := Sigma(1.259); math.Abs(got-2/1.259) > 1e-12 {
		t.Fatalf("sigma(1.259) = %v", got)
	}
	// Guideline 1: no early-wave speculation for finite-variance tails.
	if got := Sigma(2.0); got != 1 {
		t.Fatalf("sigma(2.0) = %v, want 1", got)
	}
	if got := Sigma(3.0); got != 1 {
		t.Fatalf("sigma(3.0) = %v, want 1", got)
	}
}

func TestTheorem1K(t *testing.T) {
	// Early waves: plenty of tasks → k = σ.
	if got := Theorem1K(1.0, 100, 10, beta); math.Abs(got-Sigma(beta)) > 1e-12 {
		t.Fatalf("early k = %v, want σ", got)
	}
	// Final wave, several tasks left: k = S / remaining tasks.
	if got := Theorem1K(0.05, 100, 10, beta); math.Abs(got-2) > 1e-12 {
		t.Fatalf("k = %v, want S/remTasks = 10/5 = 2", got)
	}
	// Less than one task left: every slot replicates it, k = S.
	if got := Theorem1K(0.005, 100, 10, beta); got != 10 {
		t.Fatalf("k = %v, want S", got)
	}
}

func TestTruncMean(t *testing.T) {
	p := dist.Pareto{Xm: 1, Beta: 2}
	if truncMean(p, 0.5) != 0 {
		t.Fatal("truncMean below xm should be 0")
	}
	// As ω→∞ the truncated mass approaches the full mean.
	full := p.Mean()
	if got := truncMean(p, 1e9); math.Abs(got-full)/full > 1e-3 {
		t.Fatalf("truncMean(∞) = %v, want %v", got, full)
	}
	// Monte Carlo check at ω = 3.
	r := dist.NewRNG(1)
	n := 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		if v := p.Sample(r); v < 3 {
			sum += v
		}
	}
	mc := sum / float64(n)
	if got := truncMean(p, 3); math.Abs(got-mc)/mc > 0.02 {
		t.Fatalf("truncMean(3) = %v, Monte Carlo %v", got, mc)
	}
}

func TestMinResidualMeanMonteCarlo(t *testing.T) {
	p := dist.Pareto{Xm: 1, Beta: 1.5}
	omega := 2.0
	got := minResidualMean(p, omega)
	// Monte Carlo: draw τ1 conditioned > ω, τ2 fresh; average min(τ1−ω, τ2).
	r := dist.NewRNG(2)
	n := 400000
	sum, cnt := 0.0, 0
	for cnt < n {
		t1 := p.Sample(r)
		if t1 <= omega {
			continue
		}
		t2 := p.Sample(r)
		sum += math.Min(t1-omega, t2)
		cnt++
	}
	mc := sum / float64(n)
	if math.Abs(got-mc)/mc > 0.03 {
		t.Fatalf("minResidualMean = %v, Monte Carlo %v", got, mc)
	}
}

func TestMinResidualOmegaZero(t *testing.T) {
	// ω = 0: both copies start together → E[min(τ1, τ2)].
	p := dist.Pareto{Xm: 1, Beta: 2}
	got := minResidualMean(p, 0)
	want := p.MinMean(2)
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("minResidualMean(0) = %v, want E[min2] = %v", got, want)
	}
}

func TestMuProactiveCapacity(t *testing.T) {
	p := dist.Pareto{Xm: 1, Beta: beta}
	// With abundant tasks the busy-slot factor is capped at S.
	muFull := MuProactive(p, 1.0, 1000, 10, 1)
	if muFull > 10 {
		t.Fatalf("µ = %v exceeds cluster rate", muFull)
	}
	// k=1 (no replication) at full backlog: efficiency exactly 1 → µ = S.
	if math.Abs(muFull-10) > 1e-9 {
		t.Fatalf("µ(k=1) = %v, want 10", muFull)
	}
	// For β<2, duplicating improves efficiency: µ(k=2) > µ(k=1) under full
	// backlog (the mathematical heart of Guideline 1).
	mu2 := MuProactive(p, 1.0, 1000, 10, 2)
	if mu2 <= muFull {
		t.Fatalf("duplication did not pay: µ(k=2)=%v <= µ(k=1)=%v", mu2, muFull)
	}
	// For β>2 it must not pay.
	light := dist.Pareto{Xm: 1, Beta: 3}
	if MuProactive(light, 1.0, 1000, 10, 2) >= MuProactive(light, 1.0, 1000, 10, 1) {
		t.Fatal("duplication paid off for a light tail")
	}
}

func TestReactiveValidate(t *testing.T) {
	bad := []Reactive{
		{Tau: dist.Pareto{Xm: 0, Beta: 2}, T: 10, S: 5},
		{Tau: dist.Pareto{Xm: 1, Beta: 1}, T: 10, S: 5}, // infinite mean
		{Tau: dist.Pareto{Xm: 1, Beta: 2}, T: 0, S: 5},
		{Tau: dist.Pareto{Xm: 1, Beta: 2}, T: 5, S: 10}, // < 1 wave
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestResponseTimeFinitePositive(t *testing.T) {
	r := Reactive{Tau: dist.Pareto{Xm: 1, Beta: beta}, T: 30, S: 10}
	for _, om := range []float64{0, 0.5, GSOmega(r.Tau), RASOmega(r.Tau), 5} {
		rt := r.ResponseTime(om)
		if math.IsInf(rt, 0) || math.IsNaN(rt) || rt <= 0 {
			t.Fatalf("response time at ω=%v is %v", om, rt)
		}
	}
}

func TestResponseTimeMoreWavesTakesLonger(t *testing.T) {
	mk := func(w float64) float64 {
		r := Reactive{Tau: dist.Pareto{Xm: 1, Beta: beta}, T: w * 10, S: 10}
		return r.ResponseTime(GSOmega(r.Tau))
	}
	if !(mk(1) < mk(2) && mk(2) < mk(4)) {
		t.Fatalf("response times not increasing in waves: %v %v %v", mk(1), mk(2), mk(4))
	}
}

// TestGuideline3 is the paper's Figure 4 claim: GS near-optimal for jobs
// under two waves, RAS near-optimal for two or more waves, and each clearly
// better than the other in its own regime.
func TestGuideline3(t *testing.T) {
	p := dist.Pareto{Xm: 1, Beta: beta}
	ratioAt := func(waves, omega float64) float64 {
		pts, err := Figure4Series(beta, waves, 10, 5, 26)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		var at float64
		for _, pt := range pts {
			if d := math.Abs(pt.Omega - omega); d < best {
				best, at = d, pt.Ratio
			}
		}
		return at
	}
	gs, ras := GSOmega(p), RASOmega(p)
	// Single-wave jobs: GS within a few percent of optimal.
	if r := ratioAt(1, gs); r > 1.06 {
		t.Errorf("GS ratio at 1 wave = %v, want near-optimal", r)
	}
	// Many-wave jobs: RAS within a few percent of optimal.
	if r := ratioAt(5, ras); r > 1.06 {
		t.Errorf("RAS ratio at 5 waves = %v, want near-optimal", r)
	}
	// And the regimes flip: at 5 waves RAS beats GS; at 1 wave GS ≤ RAS.
	if ratioAt(5, ras) >= ratioAt(5, gs) {
		t.Errorf("at 5 waves RAS (%v) should beat GS (%v)", ratioAt(5, ras), ratioAt(5, gs))
	}
	if ratioAt(1, gs) > ratioAt(1, ras) {
		t.Errorf("at 1 wave GS (%v) should not lose to RAS (%v)", ratioAt(1, gs), ratioAt(1, ras))
	}
}

func TestFigure4SeriesNormalized(t *testing.T) {
	pts, err := Figure4Series(beta, 3, 10, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 {
		t.Fatalf("%d points", len(pts))
	}
	min := math.Inf(1)
	for _, pt := range pts {
		if pt.Ratio < min {
			min = pt.Ratio
		}
		if pt.Ratio < 1-1e-9 {
			t.Fatalf("ratio %v below 1", pt.Ratio)
		}
	}
	if math.Abs(min-1) > 1e-9 {
		t.Fatalf("minimum ratio %v, want exactly 1", min)
	}
	if pts[0].Omega != 0 || pts[20].Omega != 5 {
		t.Fatal("omega grid endpoints wrong")
	}
}

func TestFigure4SeriesRejectsSubWave(t *testing.T) {
	if _, err := Figure4Series(beta, 0.5, 10, 5, 5); err == nil {
		t.Fatal("waves < 1 accepted")
	}
}

func TestSimpson(t *testing.T) {
	// ∫0^1 x² dx = 1/3 exactly for Simpson.
	got := simpson(func(x float64) float64 { return x * x }, 0, 1, 10)
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("simpson x² = %v", got)
	}
	// Odd n is rounded up.
	got = simpson(func(x float64) float64 { return x }, 0, 2, 3)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("simpson x over [0,2] = %v", got)
	}
}
