// Package model implements Appendix A's analytic model of speculation: the
// proactive-speculation service rate µ(t) of Eq. (1) with Theorem 1's
// optimal copy count k(x(t)), and the reactive ω-policy service rate of
// Eq. (3) whose numeric optimization produces Figure 4 and Guideline 3 (GS
// is near-optimal below two waves, RAS above).
//
// The model studies one job with T tasks on S slots (W = T/S waves), task
// sizes i.i.d. Pareto(xm, β). A reactive policy waits until a task has run
// ω time before launching one speculative copy; GS and RAS correspond to
//
//	ω_GS:  E[τ] = E[τ−ω | τ>ω]   ⇒  ω = β·xm
//	ω_RAS: 2E[τ] = E[τ−ω | τ>ω]  ⇒  ω = 2β·xm
//
// (for Pareto, E[τ−ω|τ>ω] = ω/(β−1) when ω ≥ xm).
package model

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/dist"
)

// GSOmega returns the waiting threshold implied by GS's criterion
// t_new < t_rem at equality: E[τ] = E[τ−ω|τ>ω] ⇒ ω = β·xm.
func GSOmega(p dist.Pareto) float64 { return p.Beta * p.Xm }

// RASOmega returns the waiting threshold implied by RAS's resource-saving
// criterion at equality (c=1): 2·E[τ] = E[τ−ω|τ>ω] ⇒ ω = 2β·xm.
func RASOmega(p dist.Pareto) float64 { return 2 * p.Beta * p.Xm }

// Sigma is Theorem 1's early-wave copy count σ = max(2/β, 1): two copies
// pay off only for infinite-variance tails (β < 2).
func Sigma(beta float64) float64 {
	if s := 2 / beta; s > 1 {
		return s
	}
	return 1
}

// Theorem1K returns the optimal proactive copy count k(x(t)) of Eq. (2).
// xfrac is x(t)/x, the remaining-work fraction; T and S the task and slot
// counts.
func Theorem1K(xfrac, T, S, beta float64) float64 {
	sigma := Sigma(beta)
	remTasks := xfrac * T
	switch {
	case remTasks*sigma >= S:
		return sigma
	case remTasks >= 1:
		return S / remTasks
	default:
		return S
	}
}

// minMeanCont is E[min(τ1..τk)] for (possibly non-integer) k iid Pareto
// draws: the minimum of k Pareto(xm, β) is Pareto(xm, kβ).
func minMeanCont(p dist.Pareto, k float64) float64 {
	kb := k * p.Beta
	if kb <= 1 {
		return math.Inf(1)
	}
	return p.Xm * kb / (kb - 1)
}

// MuProactive is Eq. (1): the work completion rate (in slot-work per unit
// time, cluster total S) for proactive k-way replication at remaining
// fraction xfrac. The first factor is the busy-slot count; the second the
// "blow-up factor" — useful work per slot-second when every task runs k
// copies and the first finisher wins.
func MuProactive(p dist.Pareto, xfrac, T, S, k float64) float64 {
	busy := xfrac * T * k
	if busy > S {
		busy = S
	}
	eff := p.Mean() / (k * minMeanCont(p, k))
	return busy * eff
}

// survival is P(τ > x) for the Pareto.
func survival(p dist.Pareto, x float64) float64 {
	if x <= p.Xm {
		return 1
	}
	return math.Pow(p.Xm/x, p.Beta)
}

// truncMean is E[τ | τ < ω]·P(τ < ω), the resource spent on tasks finishing
// before the speculation threshold. Zero when ω ≤ xm.
func truncMean(p dist.Pareto, omega float64) float64 {
	if omega <= p.Xm {
		return 0
	}
	b, xm := p.Beta, p.Xm
	if b == 1 {
		return xm * math.Log(omega/xm)
	}
	// ∫_{xm}^{ω} x f(x) dx = β·xm/(β−1) · (1 − (xm/ω)^{β−1})
	return b * xm / (b - 1) * (1 - math.Pow(xm/omega, b-1))
}

// minResidualMean is E[min(τ1−ω, τ2) | τ1 > ω]: after the original has run
// ω, a fresh copy races the original's residual; Z−ω in the paper's
// notation with Z = min(τ1, τ2+ω). Computed numerically:
// ∫0^∞ P(τ1 > ω+z | τ1 > ω) · P(τ2 > z) dz.
func minResidualMean(p dist.Pareto, omega float64) float64 {
	s1 := survival(p, omega)
	f := func(z float64) float64 {
		return survival(p, omega+z) / s1 * survival(p, z)
	}
	// Substitute z = u/(1−u) to integrate over u ∈ [0, 1).
	g := func(u float64) float64 {
		om := 1 - u
		z := u / om
		return f(z) / (om * om)
	}
	return simpson(g, 0, 1-1e-9, 4000)
}

// simpson is composite Simpson integration with n (even) intervals.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Reactive models one job under an ω-threshold reactive speculation policy.
type Reactive struct {
	Tau dist.Pareto
	T   float64 // tasks
	S   float64 // slots
}

// Validate checks the model parameters.
func (r Reactive) Validate() error {
	if r.Tau.Xm <= 0 || r.Tau.Beta <= 1 {
		return fmt.Errorf("model: need Pareto xm>0 and beta>1 (finite mean), got xm=%v beta=%v", r.Tau.Xm, r.Tau.Beta)
	}
	if r.T < 1 || r.S < 1 {
		return fmt.Errorf("model: need T>=1 and S>=1, got T=%v S=%v", r.T, r.S)
	}
	if r.T < r.S {
		return fmt.Errorf("model: W = T/S = %v < 1 wave", r.T/r.S)
	}
	return nil
}

// Waves returns W = T/S.
func (r Reactive) Waves() float64 { return r.T / r.S }

// earlyEfficiency is Eq. (3)'s first line without the capacity factor: the
// useful work delivered per slot-second under ω-threshold speculation.
func (r Reactive) earlyEfficiency(omega float64) float64 {
	p := r.Tau
	pLess := 1 - survival(p, omega)
	pMore := survival(p, omega)
	denom := truncMean(p, omega) + (2*minResidualMean(p, omega)+omega)*pMore
	_ = pLess // truncMean already folds in P(τ<ω)
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.Mean() / denom
}

// Mu returns the work completion rate at remaining fraction xfrac under the
// reactive ω policy (Eq. 3): the early-wave branch while speculable tasks
// can fill the cluster, the optimal proactive branch (Theorem 1) for the
// final wave.
func (r Reactive) Mu(xfrac, omega float64) float64 {
	return r.mu(xfrac, omega, r.earlyEfficiency(omega))
}

// mu is Mu with the (expensive, ω-only) early-wave efficiency precomputed,
// so the response-time integration pays for the numeric integral once.
func (r Reactive) mu(xfrac, omega, earlyEff float64) float64 {
	p := r.Tau
	pMore := survival(p, omega)
	copiesPerTask := (1 - pMore) + 2*pMore
	if xfrac*r.T*copiesPerTask >= r.S {
		return r.S * earlyEff
	}
	k := Theorem1K(xfrac, r.T, r.S, p.Beta)
	return MuProactive(p, xfrac, r.T, r.S, k)
}

// ResponseTime numerically integrates dx/dt = −µ(x) from the full job until
// one task-equivalent of work remains, then adds the expected duration of a
// fully replicated final task. Units: slot-work per unit time (a task of
// mean size E[τ] occupies one slot for E[τ] time).
func (r Reactive) ResponseTime(omega float64) float64 {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	x0 := r.T * r.Tau.Mean()
	x := x0
	t := 0.0
	earlyEff := r.earlyEfficiency(omega)
	// Integrate with steps small relative to both remaining work and the
	// current rate; the early branch is piecewise-constant in x so large
	// steps are safe until the final wave.
	floor := x0 / r.T // one mean-task of work
	for x > floor {
		mu := r.mu(x/x0, omega, earlyEff)
		if mu <= 0 {
			return math.Inf(1)
		}
		dx := x * 0.02
		if x-dx < floor {
			dx = x - floor
		}
		t += dx / mu
		x -= dx
	}
	// Final task: S-way replicated (Guideline 2 — use all slots).
	t += minMeanCont(r.Tau, r.S)
	return t
}

// Figure4Point is one point of Figure 4: the response time of the
// ω-threshold policy normalized by the best over the ω grid.
type Figure4Point struct {
	Omega float64
	Ratio float64
}

// Figure4Series computes one Figure 4 curve: the normalized response time
// across an ω grid for a job with the given wave count. omegaMax and points
// control the grid (the paper plots ω ∈ [0, 5]).
func Figure4Series(beta float64, waves float64, slots float64, omegaMax float64, points int) ([]Figure4Point, error) {
	r := Reactive{Tau: dist.Pareto{Xm: 1, Beta: beta}, T: waves * slots, S: slots}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	out := make([]Figure4Point, points)
	best := math.Inf(1)
	for i := 0; i < points; i++ {
		omega := omegaMax * float64(i) / float64(points-1)
		rt := r.ResponseTime(omega)
		out[i] = Figure4Point{Omega: omega, Ratio: rt}
		if rt < best {
			best = rt
		}
	}
	for i := range out {
		out[i].Ratio /= best
	}
	return out, nil
}
