package exp

import (
	"bytes"
	"strings"
	"testing"

	"github.com/approx-analytics/grass/internal/trace"
)

// tiny returns a fast configuration for unit tests.
func tiny() Config {
	return Config{
		Jobs:            40,
		Seeds:           []int64{1},
		Machines:        40,
		SlotsPerMachine: 2,
		DeadlineLoad:    1.3,
		ErrorLoad:       0.75,
	}
}

func TestNewFactoryNames(t *testing.T) {
	names := []string{
		"grass", "grass-strawman", "grass-best1", "grass-best2util",
		"grass-best2acc", "gs", "ras", "late", "mantri", "nospec", "oracle",
	}
	for _, n := range names {
		f, oracleMode, err := NewFactory(n, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if f == nil {
			t.Fatalf("%s: nil factory", n)
		}
		if (n == "oracle") != oracleMode {
			t.Fatalf("%s: oracle mode %v", n, oracleMode)
		}
	}
	if _, _, err := NewFactory("bogus", 1); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestConfigsDiffer(t *testing.T) {
	c := Default()
	q := Quick()
	if q.Jobs >= c.Jobs || len(q.Seeds) >= len(c.Seeds) {
		t.Fatal("Quick should be smaller than Default")
	}
	// Spark gets extra estimator noise.
	h := c.SchedConfig(trace.Hadoop, 1, false)
	s := c.SchedConfig(trace.Spark, 1, false)
	if s.Estimator.TRemNoise <= h.Estimator.TRemNoise {
		t.Fatal("Spark should have noisier estimates")
	}
	// Bound mode selects the load.
	dl := c.TraceConfig(trace.Facebook, trace.Hadoop, trace.DeadlineBound, 1)
	er := c.TraceConfig(trace.Facebook, trace.Hadoop, trace.ErrorBound, 1)
	if dl.Load <= er.Load {
		t.Fatal("deadline traces should run at higher offered load")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("row1", 1.5, 2.25)
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "row1", "1.50", "2.25", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunProducesResults(t *testing.T) {
	rs, err := tiny().Run(trace.Facebook, trace.Hadoop, trace.DeadlineBound, "late", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("%d results", len(rs))
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestFig3Hill(t *testing.T) {
	tab, err := Fig3Hill(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("only %d Hill points", len(tab.Rows))
	}
	// The estimated beta in the tail region should be near 1.259.
	last := tab.Rows[len(tab.Rows)-1]
	beta := last.Values[1]
	if beta < 0.9 || beta > 1.8 {
		t.Fatalf("tail beta estimate %v implausible", beta)
	}
}

func TestFig4Reactive(t *testing.T) {
	tab, err := Fig4Reactive()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 26 || len(tab.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v < 1-1e-9 {
				t.Fatalf("normalized ratio %v < 1", v)
			}
		}
	}
}

func TestTheorem1Table(t *testing.T) {
	tab := Theorem1Table()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Early waves, beta<2: two-way replication; beta>2: none.
	first := tab.Rows[0]
	if first.Values[0] < 1.5 || first.Values[2] != 1 {
		t.Fatalf("theorem-1 early-wave k wrong: %+v", first)
	}
}

func TestEndToEndSmallExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// A tiny potential-gains run exercises the full pipeline.
	tab, err := PotentialGains(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}
