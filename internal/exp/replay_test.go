package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/approx-analytics/grass/internal/simevent"
)

// replayTestConfig is a small but real mixed replay: all three job classes,
// speculation, deadlines and pooling all exercised.
func replayTestConfig(jobs int) ReplayConfig {
	rc := DefaultReplayConfig(jobs)
	rc.Machines = 40
	rc.Policy = "gs"
	return rc
}

func TestReplayAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	// 250 jobs: all three classes and multi-wave jobs appear, while the
	// test stays affordable under -race (the 100K CI smoke covers scale).
	rs, err := Replay(replayTestConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.DeadlineJobs + rs.ErrorJobs; got != 250 {
		t.Fatalf("classes sum to %d jobs, want 250", got)
	}
	if got := rs.BinCounts[0] + rs.BinCounts[1] + rs.BinCounts[2]; got != 250 {
		t.Fatalf("bins sum to %d jobs, want 250", got)
	}
	// The mixed workload must actually mix.
	if rs.DeadlineJobs == 0 || rs.ErrorJobs == 0 {
		t.Fatalf("degenerate mix: %d deadline, %d error", rs.DeadlineJobs, rs.ErrorJobs)
	}
	if rs.MeanAccuracy <= 0 || rs.MeanAccuracy > 1 {
		t.Fatalf("mean accuracy %v out of (0, 1]", rs.MeanAccuracy)
	}
	if rs.MeanInputDur <= 0 || rs.Makespan <= 0 || rs.Events == 0 || rs.Launched == 0 {
		t.Fatalf("empty aggregates: %+v", rs)
	}
	if rs.HeapHighWater == 0 || rs.HeapSysHighWater == 0 {
		t.Fatal("memory high-water not sampled")
	}
	var buf bytes.Buffer
	rs.Render(&buf)
	if !strings.Contains(buf.String(), "memory high-water") {
		t.Fatalf("render missing memory line:\n%s", buf.String())
	}
}

// TestReplayDeterministic: the memory sampler only observes — two replays
// of the same config agree on every simulation-derived number.
func TestReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	run := func(sample time.Duration) *ReplayStats {
		rc := replayTestConfig(120)
		rc.MemSample = sample
		rs, err := Replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(5*time.Millisecond), run(40*time.Millisecond)
	if a.Events != b.Events || a.Makespan != b.Makespan ||
		a.MeanAccuracy != b.MeanAccuracy || a.MeanInputDur != b.MeanInputDur ||
		a.Launched != b.Launched || a.Killed != b.Killed {
		t.Fatalf("replay not deterministic:\n a: %+v\n b: %+v", a, b)
	}
}

// TestReplayQueueKindInvariance: the event-queue implementation is pure
// mechanism — a heap replay and a calendar replay of the same trace agree
// on every simulation-derived number. This is the end-to-end leg of the
// heap-vs-calendar differential evidence (simevent's fuzz harness is the
// per-operation leg).
func TestReplayQueueKindInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	run := func(q simevent.QueueKind) *ReplayStats {
		rc := replayTestConfig(150)
		rc.Queue = q
		rs, err := Replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		rs.Wall, rs.ShardWalls, rs.Shards = 0, nil, 0
		rs.HeapHighWater, rs.HeapSysHighWater = 0, 0
		return rs
	}
	cal, heap := run(simevent.Calendar), run(simevent.Heap)
	if !reflect.DeepEqual(cal, heap) {
		t.Fatalf("queue kind changed the replay:\n calendar: %+v\n heap:     %+v", cal, heap)
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	if _, err := Replay(ReplayConfig{Jobs: 0}); err == nil {
		t.Fatal("zero-job replay accepted")
	}
	rc := DefaultReplayConfig(10)
	rc.Policy = "bogus"
	if _, err := Replay(rc); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestReplayShardInvariance: the shard (worker) count never touches replay
// results — only the partition count is model-visible — and one partition
// reduces to the plain pre-sharding replay exactly.
func TestReplayShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	run := func(partitions, shards int) *ReplayStats {
		rc := replayTestConfig(200)
		rc.Partitions = partitions
		rc.Shards = shards
		rs, err := Replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize the execution-only fields before comparison.
		rs.Wall, rs.ShardWalls, rs.Shards = 0, nil, 0
		rs.HeapHighWater, rs.HeapSysHighWater = 0, 0
		return rs
	}
	plain := run(1, 1)
	for _, shards := range []int{2, 4, 8} {
		if got := run(1, shards); !reflect.DeepEqual(got, plain) {
			t.Fatalf("partitions=1 shards=%d changed the replay:\n got: %+v\nwant: %+v", shards, got, plain)
		}
	}
	four := run(4, 1)
	for _, shards := range []int{2, 4, 8} {
		if got := run(4, shards); !reflect.DeepEqual(got, four) {
			t.Fatalf("partitions=4 shards=%d changed the replay:\n got: %+v\nwant: %+v", shards, got, four)
		}
	}
	if four.ErrorJobs+four.DeadlineJobs != 200 {
		t.Fatalf("partitioned replay lost jobs: %+v", four)
	}
}

// TestReplayShardedGolden pins the partitioned replay's headline
// aggregates for a fixed seed — the golden leg of the sharded-determinism
// evidence. These values must never move underneath a refactor of the
// sharding machinery: the model is only allowed to change when the
// partitioner or the engine changes deliberately (note it in the git
// history and regenerate, as with the simulation goldens).
func TestReplayShardedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	rc := replayTestConfig(200)
	rc.Partitions = 4
	rc.Shards = 2
	rs, err := Replay(rc)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("jobs=%d events=%d makespan=%.6f acc=%.6f dur=%.6f launched=%d killed=%d bins=%d/%d/%d",
		rs.DeadlineJobs+rs.ErrorJobs, rs.Events, rs.Makespan, rs.MeanAccuracy, rs.MeanInputDur,
		rs.Launched, rs.Killed, rs.BinCounts[0], rs.BinCounts[1], rs.BinCounts[2])
	const want = "jobs=200 events=35125 makespan=22663.595005 acc=0.485074 dur=212.074533 launched=53724 killed=18503 bins=104/70/26"
	if got != want {
		t.Fatalf("sharded replay golden moved:\n got: %s\nwant: %s", got, want)
	}
}

// TestReplayLearnEpochs: a multi-epoch sketch-learner replay carries
// merged learned state across epochs, stays deterministic for any worker
// count, and reports the final epoch's aggregates for exactly one trace.
func TestReplayLearnEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	run := func(shards int) *ReplayStats {
		rc := replayTestConfig(150)
		rc.Policy = "grass"
		rc.Learner = "sketch"
		rc.LearnEpochs = 2
		rc.Partitions = 2
		rc.Shards = shards
		rs, err := Replay(rc)
		if err != nil {
			t.Fatal(err)
		}
		rs.Wall, rs.ShardWalls, rs.Shards = 0, nil, 0
		rs.HeapHighWater, rs.HeapSysHighWater = 0, 0
		return rs
	}
	a, b := run(1), run(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi-epoch replay not worker-invariant:\n a: %+v\n b: %+v", a, b)
	}
	if got := a.DeadlineJobs + a.ErrorJobs; got != 150 {
		t.Fatalf("final-epoch aggregates cover %d jobs, want 150", got)
	}
	if a.Learner != "sketch" || a.LearnEpochs != 2 {
		t.Fatalf("learning config not echoed: %q/%d", a.Learner, a.LearnEpochs)
	}
	var buf bytes.Buffer
	a.Render(&buf)
	if !strings.Contains(buf.String(), "grass learning") {
		t.Fatalf("render missing learning line:\n%s", buf.String())
	}
}

func TestReplayLearnEpochsValidation(t *testing.T) {
	// Epochs need a mergeable learner: the default ring store cannot
	// carry state across epochs.
	rc := DefaultReplayConfig(10)
	rc.Policy = "grass"
	rc.LearnEpochs = 2
	if _, err := Replay(rc); err == nil {
		t.Fatal("ring-learner multi-epoch replay accepted")
	}
	rc = DefaultReplayConfig(10)
	rc.Learner = "bogus"
	if _, err := Replay(rc); err == nil {
		t.Fatal("unknown learner name accepted")
	}
	rc = DefaultReplayConfig(10)
	rc.LearnEpochs = -1
	if _, err := Replay(rc); err == nil {
		t.Fatal("negative epoch count accepted")
	}
	// A non-learning policy exports no state, so a second epoch has
	// nothing to seed — the replay must say so rather than silently
	// running independent passes.
	rc = DefaultReplayConfig(30)
	rc.Policy = "gs"
	rc.Learner = "sketch"
	rc.LearnEpochs = 2
	if _, err := Replay(rc); err == nil {
		t.Fatal("multi-epoch replay of a non-learning policy accepted")
	}
}
