//go:build !race

package exp

// raceEnabled lets scale-sensitive tests shrink under the race detector's
// ~10x slowdown without losing their assertions.
const raceEnabled = false
