package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the configured parallelism: Workers if positive,
// otherwise every available core.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1) over a bounded worker pool and returns the error
// of the lowest failing index.
//
// Determinism contract: fn(i) must derive all of its randomness from its
// own index/seed (every simulation builds a fresh dist.NewRNG tree from its
// run seed) and publish results only into slot i of a pre-sized slice. Then
// the harness output is byte-identical for any worker count — including 1 —
// and the error, if any, is the one a serial loop would have hit first.
func forEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	// lowestFailed lets workers skip doomed work: once index i has failed,
	// no index above it can become the returned error, so higher indices
	// are abandoned (their error slot stays nil, which is fine — the scan
	// below returns the lowest non-nil slot). Indices below a failure must
	// still run: one of them may fail too and take precedence.
	var lowestFailed atomic.Int64
	lowestFailed.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > lowestFailed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := lowestFailed.Load()
						if int64(i) >= cur || lowestFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
