// Package exp contains one experiment runner per table and figure in the
// paper's evaluation (§2.3, §6, Appendix A). Each runner generates the
// appropriate synthetic workload, simulates it under the relevant policies
// with paired seeds, and reduces the results to the same rows or series the
// paper plots. The rendering is plain text tables; cmd/grass-bench and the
// root bench_test.go expose every runner.
package exp

import (
	"fmt"
	"io"
	"strings"

	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/oracle"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// Config sizes the experiments.
type Config struct {
	// Jobs is the trace length per run.
	Jobs int
	// Seeds are the paired-run seeds; reported numbers are medians across
	// seeds (§6.1 repeats each experiment and picks the median).
	Seeds []int64
	// Machines and SlotsPerMachine size the cluster (paper: 200 nodes).
	Machines, SlotsPerMachine int
	// DeadlineLoad is the offered load for deadline-bound traces. Deadline
	// jobs shed incomplete work at their deadline, so overload is stable
	// and reproduces the busy-cluster regime the paper studies.
	DeadlineLoad float64
	// ErrorLoad is the offered load for error-bound/exact traces, which
	// must complete their work and therefore need spare capacity.
	ErrorLoad float64
	// Workers bounds how many (policy, seed) simulations a runner executes
	// concurrently; 0 means one per available core. Every run seeds its own
	// dist.NewRNG tree, so results are byte-identical for any worker count.
	Workers int
}

// Default returns the full-size configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		Jobs:            250,
		Seeds:           []int64{1, 2, 3},
		Machines:        200,
		SlotsPerMachine: 2,
		DeadlineLoad:    2.0,
		ErrorLoad:       0.75,
	}
}

// Quick returns a reduced configuration for benchmarks and CI.
func Quick() Config {
	c := Default()
	c.Jobs = 150
	c.Seeds = []int64{1, 2}
	return c
}

// NewFactory resolves a policy name to its factory. The boolean result
// requests oracle mode (ground-truth task views) from the simulator.
// Names: grass, grass-strawman, grass-best1, grass-best2util,
// grass-best2acc, gs, ras, late, mantri, nospec, oracle.
func NewFactory(name string, seed int64) (spec.Factory, bool, error) {
	return NewFactoryLearner(name, seed, core.LearnerRing)
}

// NewFactoryLearner is NewFactory with the GRASS learner implementation
// selected: core.LearnerRing is the default per-partition ring store,
// core.LearnerSketch the mergeable store whose state folds across
// partitions (and is required for LearnEpochs > 1 replays). Non-GRASS
// policy names ignore the learner.
func NewFactoryLearner(name string, seed int64, learner core.LearnerKind) (spec.Factory, bool, error) {
	mk := func(cfg core.Config) (spec.Factory, bool, error) {
		cfg.Seed = seed
		cfg.Learner = learner
		f, err := core.New(cfg)
		return f, false, err
	}
	switch strings.ToLower(name) {
	case "grass":
		return mk(core.DefaultConfig())
	case "grass-strawman":
		c := core.DefaultConfig()
		c.Strawman = true
		return mk(c)
	case "grass-best1":
		c := core.DefaultConfig()
		c.Factors = core.FactorSet{}
		return mk(c)
	case "grass-best2util":
		c := core.DefaultConfig()
		c.Factors = core.FactorSet{Utilization: true}
		return mk(c)
	case "grass-best2acc":
		c := core.DefaultConfig()
		c.Factors = core.FactorSet{Accuracy: true}
		return mk(c)
	case "gs":
		return spec.Stateless(spec.NewGS()), false, nil
	case "ras":
		return spec.Stateless(spec.NewRAS()), false, nil
	case "late":
		return spec.Stateless(spec.NewLATE()), false, nil
	case "mantri":
		return spec.Stateless(spec.NewMantri()), false, nil
	case "nospec":
		return spec.Stateless(spec.NoSpec{}), false, nil
	case "oracle":
		return oracle.New(), true, nil
	default:
		return nil, false, fmt.Errorf("exp: unknown policy %q", name)
	}
}

// SchedConfig builds the simulator configuration for a framework regime.
// Spark's much shorter tasks make them "more sensitive to estimation
// errors" (§6.3.2), modelled as extra estimator noise.
func (c Config) SchedConfig(fw trace.Framework, seed int64, oracleMode bool) sched.Config {
	s := sched.DefaultConfig()
	s.Cluster.Machines = c.Machines
	s.Cluster.SlotsPerMachine = c.SlotsPerMachine
	s.Seed = seed
	s.Oracle = oracleMode
	if fw == trace.Spark {
		s.Estimator.TRemNoise = 0.5
		s.Estimator.TNewNoise = 0.25
	}
	return s
}

// TraceConfig builds the workload configuration for one scenario.
func (c Config) TraceConfig(w trace.Workload, fw trace.Framework, b trace.BoundMode, seed int64) trace.Config {
	tc := trace.DefaultConfig(w, fw, b)
	tc.Jobs = c.Jobs
	tc.Seed = seed
	tc.Slots = c.Machines * c.SlotsPerMachine
	if b == trace.DeadlineBound {
		tc.Load = c.DeadlineLoad
	} else {
		tc.Load = c.ErrorLoad
	}
	return tc
}

// Run simulates one (workload, framework, bound, policy, seed) cell and
// returns its results. The trace is streamed into the simulator — identical
// results to materializing it, without holding the whole trace.
func (c Config) Run(w trace.Workload, fw trace.Framework, b trace.BoundMode, policy string, seed int64, dagLen int) ([]sched.JobResult, error) {
	tc := c.TraceConfig(w, fw, b, seed)
	if dagLen > 1 {
		tc.DAGLength = dagLen
	}
	stream, err := trace.NewStream(tc)
	if err != nil {
		return nil, err
	}
	factory, oracleMode, err := NewFactory(policy, seed)
	if err != nil {
		return nil, err
	}
	sim, err := sched.New(c.SchedConfig(fw, seed, oracleMode), factory)
	if err != nil {
		return nil, err
	}
	stats, err := sim.RunSource(stream)
	if err != nil {
		return nil, err
	}
	return stats.Results, nil
}

// Improvement runs base and treat policies over the config's seeds on
// identical traces and returns the median improvement percentage computed by
// metric on each paired run, optionally restricted by filter. The paired
// simulations fan out over the config's worker pool; results land in
// per-run slots so the median is identical for any worker count.
func (c Config) Improvement(w trace.Workload, fw trace.Framework, b trace.BoundMode,
	base, treat string, dagLen int,
	filter func(sched.JobResult) bool,
	metric func(base, treat []sched.JobResult) float64) (float64, error) {

	rs, err := c.runScenario(w, fw, b, dagLen, []policySpec{named(base), named(treat)}, nil)
	if err != nil {
		return 0, err
	}
	return rs.improvement(base, treat, metric, filter), nil
}

func filterResults(rs []sched.JobResult, keep func(sched.JobResult) bool) []sched.JobResult {
	out := rs[:0:0]
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// binFilter keeps one job-size bin.
func binFilter(b task.SizeBin) func(sched.JobResult) bool {
	return func(r sched.JobResult) bool { return r.Bin == b }
}

// Table is a rendered experiment result: the rows/series a paper figure
// plots.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one labelled line of a Table.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s\n", t.Title)
	width := 14
	fmt.Fprintf(w, "%-20s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%*s", width, c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-20s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%*.2f", width, v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
