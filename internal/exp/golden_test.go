package exp

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/trace"
)

// Golden headline metrics for the fixed-seed Quick() configuration
// (Facebook/Hadoop, GRASS vs LATE). The harness is deterministic — every
// run rebuilds its RNG tree from the run seed — so on one platform these
// values are exact, not statistical. The tolerance below is loose only to
// absorb cross-architecture float differences (e.g. FMA contraction on
// arm64); it is still far below any behavioural change. If a refactor
// shifts them past it, that refactor changed simulation behaviour and must
// say so explicitly (regenerate with
// `go test -run TestGoldenHeadlineMetrics -v` and copy the logged values).
//
// History of deliberate regenerations:
//   - PR 2: the LATE percentile-boundary/stalled-sentinel bugfix changed the
//     LATE baseline's speculation decisions (it no longer speculates healthy
//     tasks whose progress rates tie at the threshold), which moves both
//     GRASS-vs-LATE headline numbers. GS/RAS/GRASS/Mantri/NoSpec/oracle
//     results were verified hash-identical across the PR 2 dispatch-path
//     refactor; only the LATE change shifted these values.
//   - PR 4 (no regeneration): the incremental candidate views replaced the
//     per-attempt buildViews rebuild as the default dispatch path, and
//     these values stayed byte-identical — the per-attempt differential
//     harness in internal/sched is what locks the two paths together.
const (
	goldenDeadlineAccImprovementPct = 11.933948419674
	goldenErrorSpeedupPct           = 15.873170564905
	goldenTolerance                 = 1e-6
)

// TestGoldenHeadlineMetrics pins the paper's two headline numbers for a
// Quick() run: deadline-bound accuracy improvement and error-bound speedup
// of GRASS over LATE (§6.2's 47%/38% at full scale; the quick config is
// smaller, so the exact values differ — what matters here is that they
// never drift silently).
func TestGoldenHeadlineMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full Quick() simulation")
	}
	cfg := Quick()
	acc, err := cfg.Improvement(trace.Facebook, trace.Hadoop, trace.DeadlineBound,
		"late", "grass", 1, nil, metrics.AccuracyImprovementPct)
	if err != nil {
		t.Fatal(err)
	}
	spd, err := cfg.Improvement(trace.Facebook, trace.Hadoop, trace.ErrorBound,
		"late", "grass", 1, nil, metrics.SpeedupPct)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("deadline accuracy improvement %% = %.12f", acc)
	t.Logf("error-bound speedup %% = %.12f", spd)
	if math.Abs(acc-goldenDeadlineAccImprovementPct) > goldenTolerance {
		t.Errorf("deadline accuracy improvement %.12f drifted from golden %.12f",
			acc, float64(goldenDeadlineAccImprovementPct))
	}
	if math.Abs(spd-goldenErrorSpeedupPct) > goldenTolerance {
		t.Errorf("error-bound speedup %.12f drifted from golden %.12f",
			spd, float64(goldenErrorSpeedupPct))
	}
	// Direction sanity: GRASS should beat LATE on both axes at Quick()
	// scale, mirroring the paper's headline claims.
	if acc <= 0 {
		t.Errorf("GRASS did not improve deadline accuracy over LATE: %v%%", acc)
	}
	if spd <= 0 {
		t.Errorf("GRASS did not speed up error-bound jobs over LATE: %v%%", spd)
	}
}
