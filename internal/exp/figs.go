package exp

import (
	"fmt"
	"sort"

	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/model"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// policySpec names a policy and knows how to build it per seed.
type policySpec struct {
	name string
	make func(seed int64) (spec.Factory, bool, error)
}

func named(n string) policySpec {
	return policySpec{name: n, make: func(seed int64) (spec.Factory, bool, error) {
		return NewFactory(n, seed)
	}}
}

func grassWithXi(xi float64) policySpec {
	name := fmt.Sprintf("grass-xi%02.0f", xi*100)
	return policySpec{name: name, make: func(seed int64) (spec.Factory, bool, error) {
		c := core.DefaultConfig()
		c.Xi = xi
		c.Seed = seed
		f, err := core.New(c)
		return f, false, err
	}}
}

// runSet holds paired results: policy name → per-seed job results.
type runSet map[string][][]sched.JobResult

// scenario is one cell of an experiment's grid: a workload/framework/bound
// combination simulated under a set of policies (with an optional simulator
// config mutation) across every seed.
type scenario struct {
	w        trace.Workload
	fw       trace.Framework
	b        trace.BoundMode
	dag      int
	policies []policySpec
	mutate   func(*sched.Config)
}

// runScenarios fans the full (scenario, policy, seed) grid out over one
// bounded worker pool and returns one runSet per scenario, in input order.
// Pooling across scenarios — not per scenario — keeps every worker busy
// even when a single scenario has fewer runs than the pool has slots.
//
// Determinism: each run builds its own trace, factory and simulator from
// its seed alone and writes into its own pre-assigned result slot, so the
// output is byte-identical regardless of worker count or goroutine
// interleaving.
func (c Config) runScenarios(scs []scenario) ([]runSet, error) {
	nSeeds := len(c.Seeds)
	starts := make([]int, len(scs)+1)
	for i, sc := range scs {
		starts[i+1] = starts[i] + len(sc.policies)*nSeeds
	}
	results := make([][]sched.JobResult, starts[len(scs)])
	err := forEach(len(results), c.workers(), func(idx int) error {
		si := sort.Search(len(scs), func(i int) bool { return starts[i+1] > idx })
		sc := scs[si]
		off := idx - starts[si]
		p := sc.policies[off/nSeeds]
		seed := c.Seeds[off%nSeeds]
		tc := c.TraceConfig(sc.w, sc.fw, sc.b, seed)
		if sc.dag > 1 {
			tc.DAGLength = sc.dag
		}
		// Stream the trace instead of materializing it: RunSource pulls one
		// job per arrival and recycles finished jobs through the stream's
		// pool, so a worker's footprint tracks the jobs in flight. The
		// results are identical to the materializing path (the golden tests
		// pin that).
		stream, err := trace.NewStream(tc)
		if err != nil {
			return err
		}
		factory, oracleMode, err := p.make(seed)
		if err != nil {
			return err
		}
		scfg := c.SchedConfig(sc.fw, seed, oracleMode)
		if sc.mutate != nil {
			sc.mutate(&scfg)
		}
		sim, err := sched.New(scfg, factory)
		if err != nil {
			return err
		}
		stats, err := sim.RunSource(stream)
		if err != nil {
			return fmt.Errorf("%s/%s/%s seed %d: %w", sc.w, sc.fw, p.name, seed, err)
		}
		results[idx] = stats.Results
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]runSet, len(scs))
	for si, sc := range scs {
		rs := make(runSet, len(sc.policies))
		for pi, p := range sc.policies {
			lo := starts[si] + pi*nSeeds
			// Full slice expression: capacity ends at the policy's own
			// block, so a future append can never bleed into a neighbour.
			rs[p.name] = results[lo : lo+nSeeds : lo+nSeeds]
		}
		out[si] = rs
	}
	return out, nil
}

// runScenario is the single-cell convenience wrapper around runScenarios.
func (c Config) runScenario(w trace.Workload, fw trace.Framework, b trace.BoundMode, dag int,
	policies []policySpec, mutate func(*sched.Config)) (runSet, error) {

	out, err := c.runScenarios([]scenario{{w: w, fw: fw, b: b, dag: dag, policies: policies, mutate: mutate}})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// improvement reduces a runSet to the median (across seeds) improvement of
// treat over base under metric, restricted by filter (nil = all jobs).
func (rs runSet) improvement(base, treat string,
	metric func(b, t []sched.JobResult) float64,
	filter func(sched.JobResult) bool) float64 {

	bs, ts := rs[base], rs[treat]
	n := len(bs)
	if len(ts) < n {
		n = len(ts)
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		b, t := bs[i], ts[i]
		if filter != nil {
			b = filterResults(b, filter)
			t = filterResults(t, filter)
		}
		vals = append(vals, metric(b, t))
	}
	return metrics.MedianOfRuns(vals)
}

// boundMetric returns the paper's headline metric for the bound mode:
// accuracy-improvement % for deadlines, speedup % otherwise.
func boundMetric(b trace.BoundMode) func(base, treat []sched.JobResult) float64 {
	if b == trace.DeadlineBound {
		return metrics.AccuracyImprovementPct
	}
	return metrics.SpeedupPct
}

// Table1 reproduces Table 1: details of the (synthetic) Facebook and Bing
// traces.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Table 1: trace details (synthetic reproductions)",
		Columns: []string{"jobs", "tasks", "mean", "<50", "51-500", ">500"},
	}
	for _, w := range []trace.Workload{trace.Facebook, trace.Bing} {
		tc := cfg.TraceConfig(w, trace.Hadoop, trace.ErrorBound, cfg.Seeds[0])
		jobs, err := trace.Generate(tc)
		if err != nil {
			return nil, err
		}
		st := trace.Summarize(tc, jobs)
		t.AddRow(w.String(),
			float64(st.Jobs), float64(st.TotalTasks), st.MeanTasks,
			float64(st.BinCounts[task.Small]), float64(st.BinCounts[task.Medium]),
			float64(st.BinCounts[task.Large]))
	}
	t.Notes = append(t.Notes,
		"paper traces: Facebook Hadoop/Hive 575K jobs (Oct 2012), Bing Dryad/Scope 500K jobs (May-Dec 2011)")
	return t, nil
}

// Fig3Hill reproduces Figure 3: the Hill plot of task durations, whose flat
// region estimates the Pareto tail index β ≈ 1.259.
func Fig3Hill(cfg Config) (*Table, error) {
	// Sample realized task durations normalized by input size — the paper's
	// own methodology ("task durations are normalized by their input sizes
	// to be resistant to data skews", §2.2) — i.e. the straggler factor
	// times machine heterogeneity, without the intrinsic work.
	scfg := sched.DefaultConfig()
	rng := dist.NewRNG(cfg.Seeds[0])
	// The simulator truncates the tail at DurationCap for bounded run
	// times; the Hill plot examines the raw distribution, so sample the
	// untruncated tail (cap far beyond the order statistics plotted).
	factor, err := dist.NewBodyTail(0.6, 1.4, scfg.TailStart, scfg.DurationBeta, 1000, scfg.TailFrac)
	if err != nil {
		return nil, err
	}
	machine := dist.Lognormal{Mu: 0, Sigma: scfg.Cluster.HeterogeneitySigma}
	n := 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = factor.Sample(rng) * machine.Sample(rng)
	}
	pts := dist.HillPlot(samples, 200, n/20, 24)
	t := &Table{
		Title:   "Figure 3: Hill plot of task durations (flat region ~= beta)",
		Columns: []string{"k", "beta-hat"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("k=%d", p.K), float64(p.K), p.Beta)
	}
	t.Notes = append(t.Notes, "paper: flat region at beta = 1.259; tail is Pareto, body is not")
	return t, nil
}

// Fig4Reactive reproduces Figure 4: response time of ω-threshold reactive
// speculation normalized to optimal, for 1–5 wave jobs; GS and RAS marked.
func Fig4Reactive() (*Table, error) {
	const beta = 1.259
	p := dist.Pareto{Xm: 1, Beta: beta}
	t := &Table{
		Title:   "Figure 4: processing time / optimal vs omega (Pareto beta=1.259)",
		Columns: []string{"1 wave", "2 waves", "3 waves", "4 waves", "5 waves"},
	}
	const points = 26
	series := make([][]model.Figure4Point, 5)
	for wv := 1; wv <= 5; wv++ {
		s, err := model.Figure4Series(beta, float64(wv), 10, 5, points)
		if err != nil {
			return nil, err
		}
		series[wv-1] = s
	}
	for i := 0; i < points; i++ {
		vals := make([]float64, 5)
		for wv := 0; wv < 5; wv++ {
			vals[wv] = series[wv][i].Ratio
		}
		t.AddRow(fmt.Sprintf("omega=%.1f", series[0][i].Omega), vals...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("omega_GS = %.2f, omega_RAS = %.2f", model.GSOmega(p), model.RASOmega(p)),
		"guideline 3: GS near-optimal under 2 waves, RAS at 2+ waves")
	return t, nil
}

// PotentialGains reproduces §2.3: the headroom of an optimal scheduler over
// LATE and Mantri (paper: deadline accuracy +48%/+44% FB/Bing, error-bound
// speedups +32%/+40%).
func PotentialGains(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Sec 2.3 potential gains: Oracle vs production baselines (%)",
		Columns: []string{"vs LATE", "vs Mantri"},
	}
	pols := []policySpec{named("late"), named("mantri"), named("oracle")}
	var scs []scenario
	for _, w := range []trace.Workload{trace.Facebook, trace.Bing} {
		for _, b := range []trace.BoundMode{trace.DeadlineBound, trace.ErrorBound} {
			scs = append(scs, scenario{w: w, fw: trace.Hadoop, b: b, dag: 1, policies: pols})
		}
	}
	sets, err := cfg.runScenarios(scs)
	if err != nil {
		return nil, err
	}
	for i, sc := range scs {
		m := boundMetric(sc.b)
		label := fmt.Sprintf("%s/%s", sc.w, boundName(sc.b))
		t.AddRow(label,
			sets[i].improvement("late", "oracle", m, nil),
			sets[i].improvement("mantri", "oracle", m, nil))
	}
	return t, nil
}

func boundName(b trace.BoundMode) string {
	switch b {
	case trace.DeadlineBound:
		return "deadline"
	case trace.ErrorBound:
		return "error"
	default:
		return "exact"
	}
}

// figBinMatrix runs GRASS against both baselines across workloads and
// frameworks and reports per-bin improvements — the engine behind Figures 5
// and 7.
func figBinMatrix(cfg Config, b trace.BoundMode, title string) (*Table, error) {
	t := &Table{
		Title: title,
		Columns: []string{
			"FB/Had/LATE", "FB/Had/Mantri", "Bing/Had/LATE", "Bing/Had/Mantri",
			"FB/Spk/LATE", "FB/Spk/Mantri", "Bing/Spk/LATE", "Bing/Spk/Mantri",
		},
	}
	pols := []policySpec{named("late"), named("mantri"), named("grass")}
	metric := boundMetric(b)
	var scs []scenario
	for _, fw := range []trace.Framework{trace.Hadoop, trace.Spark} {
		for _, w := range []trace.Workload{trace.Facebook, trace.Bing} {
			scs = append(scs, scenario{w: w, fw: fw, b: b, dag: 1, policies: pols})
		}
	}
	cells, err := cfg.runScenarios(scs)
	if err != nil {
		return nil, err
	}
	addRow := func(label string, filter func(sched.JobResult) bool) {
		vals := make([]float64, 0, 8)
		for _, rs := range cells {
			vals = append(vals,
				rs.improvement("late", "grass", metric, filter),
				rs.improvement("mantri", "grass", metric, filter))
		}
		t.AddRow(label, vals...)
	}
	for _, bin := range task.AllBins {
		addRow(bin.String(), binFilter(bin))
	}
	addRow("all", nil)
	return t, nil
}

// Fig5Deadline reproduces Figure 5: accuracy improvement of GRASS for
// deadline-bound jobs, split by job bin, workload, framework and baseline.
func Fig5Deadline(cfg Config) (*Table, error) {
	return figBinMatrix(cfg, trace.DeadlineBound,
		"Figure 5: deadline-bound accuracy improvement (%) by job bin")
}

// Fig7Error reproduces Figure 7: speedup of GRASS for error-bound jobs.
func Fig7Error(cfg Config) (*Table, error) {
	return figBinMatrix(cfg, trace.ErrorBound,
		"Figure 7: error-bound job speedup (%) by job bin")
}

// Fig6Bounds reproduces Figure 6: GRASS's gains (vs LATE) binned by the
// deadline calibration factor (a) and the error bound (b).
func Fig6Bounds(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 6: gains (%) binned by deadline factor / error bound (vs LATE)",
		Columns: []string{"Facebook", "Bing"},
	}
	pols := []policySpec{named("late"), named("grass")}
	// One pool for all four scenarios: (a) deadline factor bins over both
	// workloads, then (b) error bins over both.
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.DeadlineBound, dag: 1, policies: pols},
		{w: trace.Bing, fw: trace.Hadoop, b: trace.DeadlineBound, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.ErrorBound, dag: 1, policies: pols},
		{w: trace.Bing, fw: trace.Hadoop, b: trace.ErrorBound, dag: 1, policies: pols},
	})
	if err != nil {
		return nil, err
	}
	dl := sets[:2]
	for _, db := range metrics.DeadlineBins {
		db := db
		f := func(r sched.JobResult) bool {
			pct := r.DeadlineFactor * 100
			return pct >= db.Lo-0.5 && pct < db.Hi+0.5
		}
		t.AddRow("deadline "+db.Label()+"%",
			dl[0].improvement("late", "grass", metrics.AccuracyImprovementPct, f),
			dl[1].improvement("late", "grass", metrics.AccuracyImprovementPct, f))
	}
	// (b) error bins.
	er := sets[2:]
	for _, eb := range metrics.ErrorBins {
		eb := eb
		f := func(r sched.JobResult) bool {
			pct := r.Epsilon * 100
			return pct >= eb.Lo-0.5 && pct < eb.Hi+0.5
		}
		t.AddRow("error "+eb.Label()+"%",
			er[0].improvement("late", "grass", metrics.SpeedupPct, f),
			er[1].improvement("late", "grass", metrics.SpeedupPct, f))
	}
	return t, nil
}

// Fig8Optimality reproduces Figure 8: GRASS against the optimal scheduler
// (both as improvement over LATE, Facebook workload with Spark).
func Fig8Optimality(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 8: GRASS vs Optimal, improvement (%) over LATE (FB, Spark)",
		Columns: []string{"GRASS dl", "Optimal dl", "GRASS err", "Optimal err"},
	}
	pols := []policySpec{named("late"), named("grass"), named("oracle")}
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Spark, b: trace.DeadlineBound, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Spark, b: trace.ErrorBound, dag: 1, policies: pols},
	})
	if err != nil {
		return nil, err
	}
	dl, er := sets[0], sets[1]
	add := func(label string, filter func(sched.JobResult) bool) {
		t.AddRow(label,
			dl.improvement("late", "grass", metrics.AccuracyImprovementPct, filter),
			dl.improvement("late", "oracle", metrics.AccuracyImprovementPct, filter),
			er.improvement("late", "grass", metrics.SpeedupPct, filter),
			er.improvement("late", "oracle", metrics.SpeedupPct, filter))
	}
	for _, bin := range task.AllBins {
		add(bin.String(), binFilter(bin))
	}
	add("all", nil)
	return t, nil
}

// Fig9DAG reproduces Figure 9: GRASS's gains across job DAG lengths 2–6.
func Fig9DAG(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 9: gains (%) vs DAG length (GRASS over LATE)",
		Columns: []string{"FB deadline", "Bing deadline", "FB error", "Bing error"},
	}
	pols := []policySpec{named("late"), named("grass")}
	var scs []scenario
	for dag := 2; dag <= 6; dag++ {
		for _, b := range []trace.BoundMode{trace.DeadlineBound, trace.ErrorBound} {
			for _, w := range []trace.Workload{trace.Facebook, trace.Bing} {
				scs = append(scs, scenario{w: w, fw: trace.Hadoop, b: b, dag: dag, policies: pols})
			}
		}
	}
	sets, err := cfg.runScenarios(scs)
	if err != nil {
		return nil, err
	}
	for dag := 2; dag <= 6; dag++ {
		// Scenario order is (dl FB, dl Bing, err FB, err Bing) per DAG
		// length — already the column layout.
		base := (dag - 2) * 4
		row := make([]float64, 0, 4)
		for i := 0; i < 4; i++ {
			rs := sets[base+i]
			row = append(row, rs.improvement("late", "grass", boundMetric(scs[base+i].b), nil))
		}
		t.AddRow(fmt.Sprintf("DAG=%d", dag), row[0], row[1], row[2], row[3])
	}
	return t, nil
}

// figSwitching runs GS-only, RAS-only and GRASS against LATE — Figures 10
// (deadline) and 11 (error) — across Hadoop and Spark.
func figSwitching(cfg Config, b trace.BoundMode, title string) (*Table, error) {
	t := &Table{
		Title: title,
		Columns: []string{
			"Had GS", "Had RAS", "Had GRASS",
			"Spk GS", "Spk RAS", "Spk GRASS",
		},
	}
	pols := []policySpec{named("late"), named("gs"), named("ras"), named("grass")}
	metric := boundMetric(b)
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: b, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Spark, b: b, dag: 1, policies: pols},
	})
	if err != nil {
		return nil, err
	}
	add := func(label string, filter func(sched.JobResult) bool) {
		vals := make([]float64, 0, 6)
		for _, rs := range sets {
			vals = append(vals,
				rs.improvement("late", "gs", metric, filter),
				rs.improvement("late", "ras", metric, filter),
				rs.improvement("late", "grass", metric, filter))
		}
		t.AddRow(label, vals...)
	}
	for _, bin := range task.AllBins {
		add(bin.String(), binFilter(bin))
	}
	add("all", nil)
	return t, nil
}

// Fig10SwitchingDeadline reproduces Figure 10.
func Fig10SwitchingDeadline(cfg Config) (*Table, error) {
	return figSwitching(cfg, trace.DeadlineBound,
		"Figure 10: GS-only vs RAS-only vs GRASS, deadline-bound gains (%) over LATE (FB)")
}

// Fig11SwitchingError reproduces Figure 11.
func Fig11SwitchingError(cfg Config) (*Table, error) {
	return figSwitching(cfg, trace.ErrorBound,
		"Figure 11: GS-only vs RAS-only vs GRASS, error-bound gains (%) over LATE (FB)")
}

// Fig12Strawman reproduces Figure 12: GRASS's learned switching against the
// static two-wave strawman.
func Fig12Strawman(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 12: learned switching vs two-wave strawman, gains (%) over LATE (FB, Hadoop)",
		Columns: []string{"Strawman dl", "GRASS dl", "Strawman err", "GRASS err"},
	}
	pols := []policySpec{named("late"), named("grass-strawman"), named("grass")}
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.DeadlineBound, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.ErrorBound, dag: 1, policies: pols},
	})
	if err != nil {
		return nil, err
	}
	dl, er := sets[0], sets[1]
	add := func(label string, filter func(sched.JobResult) bool) {
		t.AddRow(label,
			dl.improvement("late", "grass-strawman", metrics.AccuracyImprovementPct, filter),
			dl.improvement("late", "grass", metrics.AccuracyImprovementPct, filter),
			er.improvement("late", "grass-strawman", metrics.SpeedupPct, filter),
			er.improvement("late", "grass", metrics.SpeedupPct, filter))
	}
	for _, bin := range task.AllBins {
		add(bin.String(), binFilter(bin))
	}
	add("all", nil)
	return t, nil
}

// figFactors runs the factor ablation (Best-1, Best-2, full GRASS) —
// Figures 13 (deadline) and 14 (error).
func figFactors(cfg Config, b trace.BoundMode, title string) (*Table, error) {
	t := &Table{
		Title: title,
		Columns: []string{
			"Had B1", "Had B2u", "Had B2a", "Had all",
			"Spk B1", "Spk B2u", "Spk B2a", "Spk all",
		},
	}
	pols := []policySpec{
		named("late"), named("grass-best1"),
		named("grass-best2util"), named("grass-best2acc"), named("grass"),
	}
	metric := boundMetric(b)
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: b, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Spark, b: b, dag: 1, policies: pols},
	})
	if err != nil {
		return nil, err
	}
	add := func(label string, filter func(sched.JobResult) bool) {
		vals := make([]float64, 0, 8)
		for _, rs := range sets {
			vals = append(vals,
				rs.improvement("late", "grass-best1", metric, filter),
				rs.improvement("late", "grass-best2util", metric, filter),
				rs.improvement("late", "grass-best2acc", metric, filter),
				rs.improvement("late", "grass", metric, filter))
		}
		t.AddRow(label, vals...)
	}
	for _, bin := range task.AllBins {
		add(bin.String(), binFilter(bin))
	}
	add("all", nil)
	return t, nil
}

// Fig13FactorsDeadline reproduces Figure 13.
func Fig13FactorsDeadline(cfg Config) (*Table, error) {
	return figFactors(cfg, trace.DeadlineBound,
		"Figure 13: switching-factor ablation, deadline-bound gains (%) over LATE (FB)")
}

// Fig14FactorsError reproduces Figure 14.
func Fig14FactorsError(cfg Config) (*Table, error) {
	return figFactors(cfg, trace.ErrorBound,
		"Figure 14: switching-factor ablation, error-bound gains (%) over LATE (FB)")
}

// Fig15Perturbation reproduces Figure 15: GRASS's sensitivity to the
// perturbation probability ξ.
func Fig15Perturbation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Figure 15: sensitivity to perturbation xi, gains (%) over LATE",
		Columns: []string{"FB deadline", "Bing deadline", "FB error", "Bing error"},
	}
	xis := []float64{0, 0.05, 0.10, 0.15, 0.20}
	var scs []scenario
	grassNames := make([]string, len(xis))
	for xi1, xi := range xis {
		g := grassWithXi(xi)
		grassNames[xi1] = g.name
		pols := []policySpec{named("late"), g}
		for _, b := range []trace.BoundMode{trace.DeadlineBound, trace.ErrorBound} {
			for _, w := range []trace.Workload{trace.Facebook, trace.Bing} {
				scs = append(scs, scenario{w: w, fw: trace.Hadoop, b: b, dag: 1, policies: pols})
			}
		}
	}
	sets, err := cfg.runScenarios(scs)
	if err != nil {
		return nil, err
	}
	for xi1, xi := range xis {
		base := xi1 * 4
		row := make([]float64, 0, 4)
		for i := 0; i < 4; i++ {
			row = append(row, sets[base+i].improvement("late", grassNames[xi1], boundMetric(scs[base+i].b), nil))
		}
		t.AddRow(fmt.Sprintf("xi=%.0f%%", xi*100), row[0], row[1], row[2], row[3])
	}
	t.Notes = append(t.Notes, "paper: performance peaks at xi = 15%")
	return t, nil
}

// ExactJobs reproduces §6.2.2's exact-computation result: GRASS speeds up
// zero-error jobs too (paper: 34%).
func ExactJobs(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Exact jobs (error bound = 0): speedup (%) of GRASS",
		Columns: []string{"vs LATE", "vs Mantri"},
	}
	pols := []policySpec{named("late"), named("mantri"), named("grass")}
	workloads := []trace.Workload{trace.Facebook, trace.Bing}
	var scs []scenario
	for _, w := range workloads {
		scs = append(scs, scenario{w: w, fw: trace.Hadoop, b: trace.ExactBound, dag: 1, policies: pols})
	}
	sets, err := cfg.runScenarios(scs)
	if err != nil {
		return nil, err
	}
	for i, w := range workloads {
		t.AddRow(w.String(),
			sets[i].improvement("late", "grass", metrics.SpeedupPct, nil),
			sets[i].improvement("mantri", "grass", metrics.SpeedupPct, nil))
	}
	return t, nil
}

// Theorem1Table tabulates the optimal proactive copy count k(x(t)) of
// Theorem 1 across remaining-work fractions and tail shapes.
func Theorem1Table() *Table {
	t := &Table{
		Title:   "Theorem 1: optimal proactive replication k(x) (T=100, S=10)",
		Columns: []string{"beta=1.259", "beta=1.8", "beta=2.5"},
	}
	for _, xfrac := range []float64{1.0, 0.5, 0.2, 0.05, 0.02, 0.005} {
		t.AddRow(fmt.Sprintf("x/x0=%.3f", xfrac),
			model.Theorem1K(xfrac, 100, 10, 1.259),
			model.Theorem1K(xfrac, 100, 10, 1.8),
			model.Theorem1K(xfrac, 100, 10, 2.5))
	}
	t.Notes = append(t.Notes,
		"early waves: sigma = max(2/beta, 1) copies (2-way only for beta<2); final wave: fill all slots")
	return t
}

// AblationTail compares speculation's value under the default body+tail
// duration model against a light-tailed variant — Guideline 1 says the
// benefit should largely disappear without a heavy tail.
func AblationTail(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation: straggler tail. RAS speedup (%) over NoSpec on exact jobs (FB, Hadoop)",
		Columns: []string{"speedup"},
	}
	pols := []policySpec{named("nospec"), named("ras")}
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.ExactBound, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.ExactBound, dag: 1, policies: pols,
			mutate: func(s *sched.Config) {
				// Nearly tail-free: rare, mild stragglers.
				s.TailFrac = 0.02
				s.DurationBeta = 4
				s.DurationCap = 4
			}},
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("heavy tail (default)", sets[0].improvement("nospec", "ras", metrics.SpeedupPct, nil))
	t.AddRow("light tail", sets[1].improvement("nospec", "ras", metrics.SpeedupPct, nil))
	return t, nil
}

// AblationEstimation compares GRASS's gains under the default estimator
// noise against perfect estimates — RAS's conservatism is most valuable when
// estimates are poor (§4.1).
func AblationEstimation(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation: estimation noise. GRASS gains (%) over LATE, deadline-bound (FB, Hadoop)",
		Columns: []string{"gain"},
	}
	pols := []policySpec{named("late"), named("grass")}
	sets, err := cfg.runScenarios([]scenario{
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.DeadlineBound, dag: 1, policies: pols},
		{w: trace.Facebook, fw: trace.Hadoop, b: trace.DeadlineBound, dag: 1, policies: pols,
			mutate: func(s *sched.Config) {
				s.Estimator.TRemNoise = 0
				s.Estimator.TNewNoise = 0
			}},
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("default noise", sets[0].improvement("late", "grass", metrics.AccuracyImprovementPct, nil))
	t.AddRow("perfect estimates", sets[1].improvement("late", "grass", metrics.AccuracyImprovementPct, nil))
	return t, nil
}

// All returns every experiment in presentation order. Keys are the IDs used
// by cmd/grass-bench and DESIGN.md's experiment index.
func All() []NamedExperiment {
	return []NamedExperiment{
		{"table1", "Table 1 trace details", func(c Config) (*Table, error) { return Table1(c) }},
		{"fig3", "Figure 3 Hill plot", Fig3Hill},
		{"fig4", "Figure 4 reactive policies", func(c Config) (*Table, error) { return Fig4Reactive() }},
		{"gains", "Sec 2.3 potential gains", PotentialGains},
		{"fig5", "Figure 5 deadline accuracy", Fig5Deadline},
		{"fig6", "Figure 6 bound bins", Fig6Bounds},
		{"fig7", "Figure 7 error speedup", Fig7Error},
		{"fig8", "Figure 8 optimality", Fig8Optimality},
		{"fig9", "Figure 9 DAG lengths", Fig9DAG},
		{"fig10", "Figure 10 switching (deadline)", Fig10SwitchingDeadline},
		{"fig11", "Figure 11 switching (error)", Fig11SwitchingError},
		{"fig12", "Figure 12 strawman", Fig12Strawman},
		{"fig13", "Figure 13 factors (deadline)", Fig13FactorsDeadline},
		{"fig14", "Figure 14 factors (error)", Fig14FactorsError},
		{"fig15", "Figure 15 perturbation", Fig15Perturbation},
		{"exact", "Exact jobs speedup", ExactJobs},
		{"theorem1", "Theorem 1 k(x)", func(Config) (*Table, error) { return Theorem1Table(), nil }},
		{"abl-tail", "Ablation: straggler tail", AblationTail},
		{"abl-est", "Ablation: estimation noise", AblationEstimation},
	}
}

// NamedExperiment couples an experiment ID with its runner.
type NamedExperiment struct {
	ID   string
	Desc string
	Run  func(Config) (*Table, error)
}
