package exp

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/traceio"
)

const (
	swimSamplePath   = "../traceio/testdata/samples/swim_fb_sample.tsv"
	googleSamplePath = "../traceio/testdata/samples/google_task_events_sample.csv.gz"
)

// importReplayConfig replays a vendored sample on a small cluster.
func importReplayConfig(file string, format traceio.Format) ReplayConfig {
	rc := DefaultReplayConfig(0)
	rc.TraceFile = file
	rc.TraceFormat = format
	rc.Machines = 40
	rc.Policy = "gs"
	return rc
}

// TestReplayImportedSamples replays both vendored real-trace samples end to
// end, partitioned 4 ways, and checks the aggregates are real and exactly
// reproducible — the in-test half of the CI golden gate.
func TestReplayImportedSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming replay")
	}
	cases := []struct {
		name   string
		file   string
		format traceio.Format
		jobs   int
	}{
		{"swim", swimSamplePath, traceio.SWIM, 2000},
		{"google", googleSamplePath, traceio.GoogleTaskEvents, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := importReplayConfig(tc.file, tc.format)
			rc.Partitions = 4
			rc.Shards = 4
			rs, err := Replay(rc)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Jobs != tc.jobs {
				t.Fatalf("replayed %d jobs, want %d", rs.Jobs, tc.jobs)
			}
			if got := rs.DeadlineJobs + rs.ErrorJobs; got != tc.jobs {
				t.Fatalf("classes sum to %d, want %d", got, tc.jobs)
			}
			if rs.DeadlineJobs == 0 || rs.ErrorJobs == 0 {
				t.Fatalf("mixed-bound import degenerate: %d deadline, %d error", rs.DeadlineJobs, rs.ErrorJobs)
			}
			if rs.MeanAccuracy <= 0 || rs.MeanAccuracy > 1 {
				t.Fatalf("mean accuracy %v out of (0, 1]", rs.MeanAccuracy)
			}
			if rs.Makespan <= 0 || rs.Events == 0 || rs.MeanInputDur <= 0 {
				t.Fatalf("empty aggregates: %+v", rs)
			}

			// Identical reruns must agree exactly, and the worker count must
			// be invisible at a fixed partition count.
			again, err := Replay(rc)
			if err != nil {
				t.Fatal(err)
			}
			serial := rc
			serial.Shards = 1
			one, err := Replay(serial)
			if err != nil {
				t.Fatal(err)
			}
			for name, other := range map[string]*ReplayStats{"rerun": again, "1-shard": one} {
				a, b := *rs, *other
				a.Wall, b.Wall = 0, 0
				a.ShardWalls, b.ShardWalls = nil, nil
				a.Shards, b.Shards = 0, 0
				a.HeapHighWater, b.HeapHighWater = 0, 0
				a.HeapSysHighWater, b.HeapSysHighWater = 0, 0
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s replay diverged:\n  first %+v\n  other %+v", name, a, b)
				}
			}
		})
	}
}

// TestReplayImportedConfigErrors: the actionable-error contract for the new
// inputs at the library layer.
func TestReplayImportedConfigErrors(t *testing.T) {
	missing := importReplayConfig("testdata/does-not-exist.tsv", traceio.SWIM)
	if _, err := Replay(missing); err == nil || !strings.Contains(err.Error(), "does-not-exist") {
		t.Errorf("missing trace file error %v should name the file", err)
	}

	empty := importReplayConfig(swimSamplePath, traceio.SWIM)
	empty.TraceOptions = &traceio.Options{} // zero options are invalid
	if _, err := Replay(empty); err == nil || !strings.Contains(err.Error(), "BytesPerTask") {
		t.Errorf("invalid TraceOptions error %v should name the bad rule", err)
	}

	few := importReplayConfig(swimSamplePath, traceio.SWIM)
	few.Partitions = 4000 // more partitions than the sample's 2000 jobs
	if _, err := Replay(few); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Errorf("jobs<partitions error %v should explain the partition floor", err)
	}
}

// swimLineReader lazily synthesizes a SWIM trace of n single-task jobs: an
// io.Reader over a file that never exists in memory. Arrival spacing keeps
// the simulated queues stable so in-flight state, not queue growth,
// dominates the replay's footprint.
type swimLineReader struct {
	n, next int
	buf     []byte
}

func (r *swimLineReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		if r.next >= r.n {
			return 0, io.EOF
		}
		// 64 MiB input -> 1 task of work 5; spacing 0.025 -> ~40 jobs/unit
		// against ~80 tasks/unit of cluster capacity.
		r.buf = fmt.Appendf(r.buf[:0], "job%d\t%.3f\t0.025\t67108864\t0\t0\n", r.next, float64(r.next)*0.025)
		r.next++
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// replaySynthesizedSWIM replays n synthesized SWIM records through the real
// import decoder via the NewSource hook and reports the stats.
func replaySynthesizedSWIM(t *testing.T, n int) *ReplayStats {
	t.Helper()
	rc := DefaultReplayConfig(n)
	rc.Policy = "nospec"
	rc.NewSource = func(part, parts int) (sched.Source, error) {
		o := traceio.DefaultOptions()
		return traceio.NewShardReaderSource(&swimLineReader{n: n}, "synthetic.tsv", traceio.SWIM, o, part, parts), nil
	}
	rs, err := Replay(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs != n {
		t.Fatalf("replayed %d jobs, want %d", rs.Jobs, n)
	}
	if rs.MeanUtilization <= 0 || rs.MeanUtilization >= 1 {
		t.Fatalf("utilization %v: synthesized arrival spacing no longer keeps queues stable", rs.MeanUtilization)
	}
	if rs.HeapHighWater == 0 {
		t.Fatal("memory high-water not sampled")
	}
	return rs
}

// TestReplayImportedBoundedMemory is the acceptance gate: decoding and
// replaying a 1M-record SWIM stream must hold the heap high-water flat in
// the trace length — the footprint at 10x the records stays within small
// constant factors, and absolutely small.
func TestReplayImportedBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-record replay")
	}
	small, large := 100_000, 1_000_000
	if raceEnabled {
		small, large = 10_000, 100_000 // same 10x ratio under the ~10x slower race runtime
	}
	base := replaySynthesizedSWIM(t, small)
	big := replaySynthesizedSWIM(t, large)
	const mib = 1 << 20
	if big.HeapHighWater > 64*mib {
		t.Errorf("1M-record replay peaked at %d MiB of live heap, want < 64 MiB", big.HeapHighWater/mib)
	}
	// "Flat" with headroom: sampling jitter and GC timing move the
	// high-water by small constants, but O(records) retention would show
	// up as ~10x here.
	if limit := 3*base.HeapHighWater + 16*mib; big.HeapHighWater > limit {
		t.Errorf("heap high-water grew with trace length: %d records -> %d bytes, %d records -> %d bytes",
			small, base.HeapHighWater, large, big.HeapHighWater)
	}
}
