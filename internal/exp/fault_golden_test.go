package exp

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

// Pinned scenario × policy goldens. The interesting fact these constants
// freeze is a POLICY-RANKING CHANGE: on a benign cluster LATE's speculation
// beats no-speculation on deadline-job accuracy, but under the `contended`
// scenario — background bursts seizing free slots — the ranking inverts:
// speculative copies compete with fresh tasks for the slots interference
// left over, and conserving capacity (nospec) wins. A refactor that shifts
// any of these digits has changed either the fault schedule or the
// scheduler's behavior under it, and must be investigated, not re-pinned.
//
// Regeneration history (update when re-pinning after an intentional model
// change): 2026-08-08 initial values at the PR-10 fault-injection commit.
const (
	goldenBenignLateAcc      = 0.564256369021
	goldenBenignNoSpecAcc    = 0.545542096164
	goldenContendedLateAcc   = 0.524579834682
	goldenContendedNoSpecAcc = 0.530993032293

	// Fault-schedule pins for the same runs: the contended scenario fires
	// exactly this many interference bursts at this trace length. Policy
	// must not perturb the fault timeline — it is drawn from its own seed
	// stream — so both policies see the identical count.
	goldenContendedBursts = 6466

	goldenFaultTolerance = 1e-6
)

// faultGoldenRun replays the pinned workload (250 mixed Facebook/Hadoop
// jobs on a 50×2-slot cluster, seed 61) under one scenario × policy cell
// and returns the deadline-job mean accuracy plus the run's fault counts.
func faultGoldenRun(t *testing.T, scenario, policy string) (float64, sched.FaultStats) {
	t.Helper()
	fc, err := fault.Scenario(scenario)
	if err != nil {
		t.Fatalf("scenario %q: %v", scenario, err)
	}
	cfg := sched.DefaultConfig()
	cfg.Cluster.Machines = 50
	cfg.Seed = 61
	cfg.Faults = fc
	f, oracleMode, err := NewFactory(policy, cfg.Seed)
	if err != nil {
		t.Fatalf("policy %q: %v", policy, err)
	}
	cfg.Oracle = oracleMode
	tc := trace.DefaultConfig(trace.Facebook, trace.Hadoop, trace.MixedBound)
	tc.Jobs = 250
	tc.Seed = 61
	tc.Slots = cfg.Cluster.Machines * cfg.Cluster.SlotsPerMachine
	tc.Load = 0.75
	jobs, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.New(cfg, f)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var dl []sched.JobResult
	for _, r := range stats.Results {
		if r.Kind == task.DeadlineBound {
			dl = append(dl, r)
		}
	}
	return metrics.MeanAccuracy(dl), stats.Faults
}

// TestFaultScenarioPolicyRankingGolden pins the contended-vs-benign
// accuracy cells and the ranking change they demonstrate. Values must stay
// bit-stable across refactors: the fault stream is seeded independently of
// the simulation RNG, so only a behavioral change can move them.
func TestFaultScenarioPolicyRankingGolden(t *testing.T) {
	cells := []struct {
		scenario, policy string
		want             float64
	}{
		{"", "late", goldenBenignLateAcc},
		{"", "nospec", goldenBenignNoSpecAcc},
		{"contended", "late", goldenContendedLateAcc},
		{"contended", "nospec", goldenContendedNoSpecAcc},
	}
	got := make(map[[2]string]float64, len(cells))
	for _, c := range cells {
		acc, fs := faultGoldenRun(t, c.scenario, c.policy)
		got[[2]string{c.scenario, c.policy}] = acc
		if math.Abs(acc-c.want) > goldenFaultTolerance {
			t.Errorf("scenario=%q policy=%s: accuracy %.12f, golden %.12f (drift %.3g)",
				c.scenario, c.policy, acc, c.want, acc-c.want)
		}
		switch c.scenario {
		case "":
			if fs != (sched.FaultStats{}) {
				t.Errorf("benign run reported fault activity: %+v", fs)
			}
		case "contended":
			if fs.Bursts != goldenContendedBursts {
				t.Errorf("policy=%s: %d interference bursts, golden %d (policy perturbed the fault timeline?)",
					c.policy, fs.Bursts, goldenContendedBursts)
			}
			if fs.InterferedSlots == 0 {
				t.Errorf("policy=%s: bursts fired but no slots were ever seized", c.policy)
			}
			if fs.Crashes != 0 || fs.Storms != 0 || fs.LostCopies != 0 {
				t.Errorf("policy=%s: contended run fired non-interference faults: %+v", c.policy, fs)
			}
		}
	}

	// The regression-gated ranking change itself: speculation wins on the
	// benign cluster and loses under slot contention.
	if !(got[[2]string{"", "late"}] > got[[2]string{"", "nospec"}]) {
		t.Errorf("benign: expected late (%.6f) > nospec (%.6f)",
			got[[2]string{"", "late"}], got[[2]string{"", "nospec"}])
	}
	if !(got[[2]string{"contended", "nospec"}] > got[[2]string{"contended", "late"}]) {
		t.Errorf("contended: expected nospec (%.6f) > late (%.6f) — ranking inversion lost",
			got[[2]string{"contended", "nospec"}], got[[2]string{"contended", "late"}])
	}
}
