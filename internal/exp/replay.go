package exp

// This file implements trace-scale streaming replays. The paper's
// evaluation replays 575K Facebook and 500K Bing jobs; Replay reproduces
// that regime by streaming a synthetic trace of any length through one
// simulator in bounded memory — jobs are generated lazily, recycled when
// they finish, per-job results are folded into running aggregates instead
// of being retained, and the event engine recycles its event objects. A
// heap high-water sampler reports the footprint so regressions that tie
// memory back to the trace length are visible immediately.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
	"github.com/approx-analytics/grass/internal/traceio"
)

// ReplayConfig parameterizes one streaming replay.
type ReplayConfig struct {
	// Jobs is the trace length — a million-job replay is the intended use.
	Jobs int
	// Policy is the speculation policy name (NewFactory's set).
	Policy string
	// Workload, Framework, Bound select the synthetic trace. The zero Bound
	// is trace.DeadlineBound; DefaultReplayConfig picks trace.MixedBound,
	// the mixed production workload replays are normally run with.
	Workload  trace.Workload
	Framework trace.Framework
	Bound     trace.BoundMode
	// Machines and SlotsPerMachine size the cluster; 0 means the paper's
	// 200×2.
	Machines, SlotsPerMachine int
	// Load is the offered load; 0 means 0.75 (busy but stable queues, the
	// regime a replay must sustain for the whole trace).
	Load float64
	// Seed drives trace generation and the simulator.
	Seed int64
	// MemSample sets the heap sampling interval; 0 means 20ms.
	MemSample time.Duration
	// Queue selects the event-queue implementation (sched.Config.EventQueue);
	// the zero value is the calendar queue. Either kind replays the same
	// trace byte-identically — the knob only trades throughput.
	Queue simevent.QueueKind

	// Partitions is the sharded-execution model: the cluster and trace are
	// split into this many self-contained partitions with a deterministic
	// merge (sched.RunSharded). 1 is the plain engine; 0 follows Shards —
	// "replay sharded 4 ways" usually means both. The partition count
	// changes the simulated model (fair sharing is scoped to a partition),
	// so results are comparable only at equal Partitions.
	Partitions int
	// Shards is the number of worker goroutines executing partitions. At a
	// fixed Partitions it never affects results — only wall clock — but
	// when Partitions is 0 it also sets the partition count, which is
	// model-visible; 0 means 1.
	Shards int

	// TraceFile, when non-empty, replays an imported real cluster trace
	// (internal/traceio) instead of a synthetic one: TraceFormat selects
	// the decoder, TraceOptions the record→job mapping rules (nil means
	// traceio.DefaultOptions). The file is scanned once up front — every
	// record validated with positioned errors, the job count established
	// for the sharded merge — then streamed per partition, so a multi-GB
	// log replays in the same bounded memory as a synthetic stream. Jobs,
	// Workload, Framework and Bound are ignored (the trace is the
	// workload; bounds come from TraceOptions).
	TraceFile    string
	TraceFormat  traceio.Format
	TraceOptions *traceio.Options

	// Scenario names a fault-injection preset (fault.Scenarios: "crashy",
	// "rack-storm", "contended", "overload-mixed"); "" and "none" replay a
	// benign cluster, byte-identical to a build without fault support.
	// FaultSeed, when non-zero, pins the fault timeline independently of
	// Seed, so the same fault schedule can be replayed under different
	// workload seeds (and vice versa); 0 derives the timeline from Seed.
	Scenario  string
	FaultSeed int64

	// Learner selects the GRASS learner implementation by name ("" or
	// "ring" for the per-partition ring store, "sketch" for the mergeable
	// sketch store — core.ParseLearnerKind's set). With "sketch" at
	// Partitions > 1 the per-partition learners fold at the canonical
	// merge, so a later epoch's partitions query the combined cluster
	// history. Non-GRASS policies ignore it.
	Learner string
	// LearnEpochs replays the trace this many times, carrying merged
	// learned state from each epoch into the next (0 and 1 mean a single
	// pass). Epochs > 1 require Learner "sketch" — the ring store is not
	// mergeable. Reported aggregates are the FINAL epoch's (the warmed-up
	// regime); Wall and the memory high-water span all epochs.
	LearnEpochs int

	// NewSource, when set, replays fully custom admission sources:
	// NewSource(p, parts) must return partition p's jobs — dense IDs
	// ≡ p (mod parts), non-decreasing arrivals — and Jobs must hold the
	// exact total job count. Overrides both the synthetic trace and
	// TraceFile. Mainly for tests (e.g. bounded-memory harnesses feeding
	// synthesized trace bytes through the import decoder).
	NewSource func(part, parts int) (sched.Source, error)
}

// DefaultReplayConfig returns a mixed Facebook/Hadoop replay of n jobs —
// the single source of the replay defaults. Replay falls back to these for
// a zero Policy, Machines, SlotsPerMachine, Load and MemSample; Bound,
// Workload, Framework and Seed are taken as given (their zero values are
// meaningful: a deadline-bound Facebook/Hadoop trace with seed 0).
func DefaultReplayConfig(n int) ReplayConfig {
	return ReplayConfig{
		Jobs:            n,
		Policy:          "gs",
		Workload:        trace.Facebook,
		Framework:       trace.Hadoop,
		Bound:           trace.MixedBound,
		Machines:        200,
		SlotsPerMachine: 2,
		Load:            0.75,
		Seed:            1,
		MemSample:       20 * time.Millisecond,
	}
}

// ReplayStats aggregates a streaming replay. Everything here is O(1) in the
// trace length.
type ReplayStats struct {
	Jobs            int
	Events          uint64
	Makespan        float64
	MeanUtilization float64
	Wall            time.Duration

	// Partitions and Shards echo the sharded-execution configuration the
	// replay ran under. ShardWalls holds each partition's own wall clock
	// when Partitions > 1: Σ/max is the speedup bound extra cores can
	// realize, reported by Render as the balance line.
	Partitions, Shards int
	ShardWalls         []time.Duration

	// Learner and LearnEpochs echo the learning configuration; aggregates
	// are the final epoch's when LearnEpochs > 1.
	Learner     string
	LearnEpochs int

	// Scenario echoes the fault preset the replay ran under ("" when
	// benign); Faults are the cluster-wide applied fault counts and Lost the
	// crash-killed copies, summed across partitions. All zero when benign.
	Scenario string
	Faults   sched.FaultStats
	Lost     int64

	// Per-class aggregates: deadline jobs report mean accuracy, error-bound
	// (and exact) jobs mean input duration — the paper's two headline axes.
	DeadlineJobs     int
	MeanAccuracy     float64
	ErrorJobs        int
	MeanInputDur     float64
	BinCounts        [3]int // jobs per paper size bin
	Launched, Killed int64  // copies launched / killed cluster-wide

	// HeapHighWater is the peak sampled heap in use during the replay;
	// HeapSysHighWater the peak heap claimed from the OS. Bounded-memory
	// replays keep these flat as Jobs grows.
	HeapHighWater    uint64
	HeapSysHighWater uint64
}

// Render writes the replay summary as plain text.
func (r *ReplayStats) Render(w io.Writer) {
	fmt.Fprintf(w, "== Streaming replay: %d jobs, %d events, makespan %.0f, util %.2f [%v]\n",
		r.Jobs, r.Events, r.Makespan, r.MeanUtilization, r.Wall.Round(time.Millisecond))
	if r.Partitions > 1 {
		var sum, max time.Duration
		for _, d := range r.ShardWalls {
			sum += d
			if d > max {
				max = d
			}
		}
		balance := 0.0
		if max > 0 {
			balance = float64(sum) / float64(max)
		}
		fmt.Fprintf(w, "%-24s %d partitions on %d shard workers; balance %.2fx (sum/max partition wall — the ceiling extra cores can reach)\n",
			"sharded execution", r.Partitions, r.Shards, balance)
	}
	if r.LearnEpochs > 1 || r.Learner == "sketch" {
		fmt.Fprintf(w, "%-24s %s learner, %d epoch(s); stats are the final epoch's\n",
			"grass learning", r.Learner, max(r.LearnEpochs, 1))
	}
	fmt.Fprintf(w, "%-24s %12d %12d %12d\n", "jobs per bin (<50/51-500/>500)", r.BinCounts[0], r.BinCounts[1], r.BinCounts[2])
	fmt.Fprintf(w, "%-24s %12d   mean accuracy  %8.4f\n", "deadline jobs", r.DeadlineJobs, r.MeanAccuracy)
	fmt.Fprintf(w, "%-24s %12d   mean input dur %8.2f\n", "error/exact jobs", r.ErrorJobs, r.MeanInputDur)
	fmt.Fprintf(w, "%-24s %12d   killed %d\n", "copies launched", r.Launched, r.Killed)
	// The fault line exists only under a scenario, so benign replay output
	// stays byte-identical to the pre-fault pipeline (the goldens pin it).
	if r.Scenario != "" {
		fmt.Fprintf(w, "%-24s %s: %d crashes (%d copies lost), %d storms, %d bursts (%d slots)\n",
			"fault scenario", r.Scenario, r.Faults.Crashes, r.Lost, r.Faults.Storms, r.Faults.Bursts, r.Faults.InterferedSlots)
	}
	fmt.Fprintf(w, "%-24s %9.1f MiB (heap in use), %.1f MiB (heap from OS)\n",
		"memory high-water", float64(r.HeapHighWater)/(1<<20), float64(r.HeapSysHighWater)/(1<<20))
}

// memWatch samples the heap until stopped, keeping the maxima. Sampling
// only observes the run — simulation results do not depend on it.
type memWatch struct {
	heap, sys atomic.Uint64
	stop      chan struct{}
	done      sync.WaitGroup
}

func startMemWatch(every time.Duration) *memWatch {
	w := &memWatch{stop: make(chan struct{})}
	w.sample()
	w.done.Add(1)
	go func() {
		defer w.done.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.sample()
			case <-w.stop:
				return
			}
		}
	}()
	return w
}

func (w *memWatch) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > w.heap.Load() {
		w.heap.Store(m.HeapAlloc)
	}
	if m.HeapSys > w.sys.Load() {
		w.sys.Store(m.HeapSys)
	}
}

func (w *memWatch) finish() (heap, sys uint64) {
	close(w.stop)
	w.done.Wait()
	w.sample()
	return w.heap.Load(), w.sys.Load()
}

// Replay streams cfg.Jobs jobs through one simulator and returns the
// aggregates. Memory stays bounded for any trace length: the trace is
// generated lazily with finished jobs recycled, results are folded as they
// arrive, and the simulator's own state tracks the in-flight set.
func Replay(cfg ReplayConfig) (*ReplayStats, error) {
	if cfg.Jobs <= 0 && cfg.TraceFile == "" && cfg.NewSource == nil {
		return nil, fmt.Errorf("exp: replay of %d jobs", cfg.Jobs)
	}
	if cfg.NewSource != nil && cfg.Jobs <= 0 {
		return nil, fmt.Errorf("exp: a custom NewSource replay needs the exact job count (got %d)", cfg.Jobs)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("exp: %d shards (want >= 1, or 0 for the default single worker)", cfg.Shards)
	}
	if cfg.Partitions < 0 {
		return nil, fmt.Errorf("exp: %d partitions (want >= 1, or 0 to follow Shards)", cfg.Partitions)
	}
	if cfg.LearnEpochs < 0 {
		return nil, fmt.Errorf("exp: %d learn epochs (want >= 1, or 0 for a single pass)", cfg.LearnEpochs)
	}
	def := DefaultReplayConfig(cfg.Jobs)
	if cfg.Policy == "" {
		cfg.Policy = def.Policy
	}
	if cfg.Machines == 0 {
		cfg.Machines = def.Machines
	}
	if cfg.SlotsPerMachine == 0 {
		cfg.SlotsPerMachine = def.SlotsPerMachine
	}
	if cfg.Load == 0 {
		cfg.Load = def.Load
	}
	if cfg.MemSample == 0 {
		cfg.MemSample = def.MemSample
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = cfg.Shards
	}

	// Resolve the admission source: custom > imported trace file >
	// synthetic stream. Imported traces are scanned first — a full
	// streaming validation pass — so a malformed record fails here with
	// its file:line position instead of surfacing as a truncated replay,
	// and so the job count is known for the sharded merge.
	newSource := cfg.NewSource
	var imported *importedSources
	if newSource == nil && cfg.TraceFile != "" {
		opts := traceio.DefaultOptions()
		if cfg.TraceOptions != nil {
			opts = *cfg.TraceOptions
		}
		scan, err := traceio.Scan(nil, cfg.TraceFile, cfg.TraceFormat, opts)
		if err != nil {
			return nil, err
		}
		if scan.Jobs == 0 {
			return nil, fmt.Errorf("exp: %s contains no jobs (empty or comment-only trace)", cfg.TraceFile)
		}
		if scan.Jobs < cfg.Partitions {
			return nil, fmt.Errorf("exp: %s has %d jobs, fewer than %d partitions (every partition needs at least one job)",
				cfg.TraceFile, scan.Jobs, cfg.Partitions)
		}
		cfg.Jobs = scan.Jobs
		imported = &importedSources{file: cfg.TraceFile, format: cfg.TraceFormat, opts: opts}
		newSource = imported.open
	}

	tc := trace.DefaultConfig(cfg.Workload, cfg.Framework, cfg.Bound)
	tc.Jobs = cfg.Jobs
	tc.Seed = cfg.Seed
	tc.Slots = cfg.Machines * cfg.SlotsPerMachine
	tc.Load = cfg.Load

	learner, err := core.ParseLearnerKind(cfg.Learner)
	if err != nil {
		return nil, err
	}
	epochs := cfg.LearnEpochs
	if epochs <= 0 {
		epochs = 1
	}
	if epochs > 1 && learner != core.LearnerSketch {
		return nil, fmt.Errorf("exp: %d learn epochs need the mergeable sketch learner (set Learner to \"sketch\"; the ring store cannot carry state across epochs)", epochs)
	}
	_, oracleMode, err := NewFactoryLearner(cfg.Policy, cfg.Seed, learner)
	if err != nil {
		return nil, err
	}
	fc, err := fault.Scenario(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	if cfg.FaultSeed != 0 {
		fc.Seed = cfg.FaultSeed
	}
	scfg := sched.DefaultConfig()
	scfg.Cluster.Machines = cfg.Machines
	scfg.Cluster.SlotsPerMachine = cfg.SlotsPerMachine
	scfg.Seed = cfg.Seed
	scfg.Oracle = oracleMode
	scfg.EventQueue = cfg.Queue
	scfg.Faults = fc
	// The default event ceiling guards tests; a million-job replay
	// legitimately fires hundreds of millions of events.
	scfg.MaxEvents = uint64(cfg.Jobs)*2000 + 1_000_000

	rs := &ReplayStats{
		Jobs: cfg.Jobs, Partitions: cfg.Partitions, Shards: cfg.Shards,
		Learner: learner.String(), LearnEpochs: epochs,
	}
	if fc.Enabled() {
		rs.Scenario = cfg.Scenario
	}
	var accSum, durSum float64
	fold := func(r sched.JobResult) {
		rs.BinCounts[int(r.Bin)]++
		if r.Kind == task.DeadlineBound {
			rs.DeadlineJobs++
			accSum += r.Accuracy
		} else {
			rs.ErrorJobs++
			durSum += r.InputDuration
		}
		rs.Launched += int64(r.Launched)
		rs.Killed += int64(r.Killed)
		rs.Lost += int64(r.Lost)
	}

	// The partitioned runner: Partitions is the model, Shards the worker
	// count. Partitions == 1 takes RunSharded's plain-engine reduction, so
	// an unsharded replay is exactly the pre-sharding pipeline.
	walls := make([]time.Duration, cfg.Partitions)
	if newSource == nil {
		newSource = func(p, parts int) (sched.Source, error) {
			return trace.NewShardStream(tc, p, parts)
		}
	}
	run := sched.ShardedRun{
		Config:  scfg,
		Parts:   cfg.Partitions,
		Workers: cfg.Shards,
		NewFactory: func(seed int64) (spec.Factory, error) {
			f, _, err := NewFactoryLearner(cfg.Policy, seed, learner)
			return f, err
		},
		NewSource: func(p int) (sched.Source, error) {
			return newSource(p, cfg.Partitions)
		},
		OnResult: fold,
		Jobs:     cfg.Jobs,
		Walls:    walls,
	}

	watch := startMemWatch(cfg.MemSample)
	t0 := time.Now()
	var stats *sched.RunStats
	var cum spec.LearnedState // history accumulated across epochs
	for e := 0; e < epochs; e++ {
		// Aggregates report the final epoch: reset the fold state each lap.
		rs.BinCounts, rs.DeadlineJobs, rs.ErrorJobs = [3]int{}, 0, 0
		rs.Launched, rs.Killed = 0, 0
		accSum, durSum = 0, 0
		run.Learned = cum
		var delta spec.LearnedState
		if epochs > 1 {
			run.OnLearned = func(s spec.LearnedState) { delta = s }
		}
		if stats, err = sched.RunSharded(run); err != nil || e == epochs-1 {
			break
		}
		// Exports are this epoch's own recordings (the seeded base never
		// re-exports), so accumulating is a plain merge of deltas.
		if delta == nil {
			err = fmt.Errorf("exp: policy %q exported no learned state after epoch %d (multi-epoch replays need a GRASS policy)", cfg.Policy, e+1)
			break
		}
		if cum == nil {
			cum = delta
		} else {
			cum.MergeLearned(delta)
		}
	}
	rs.Wall = time.Since(t0)
	rs.ShardWalls = walls
	rs.HeapHighWater, rs.HeapSysHighWater = watch.finish()
	if imported != nil {
		// A decode error during the replay itself (the file changed since
		// the scan, a read failure mid-stream) surfaces as a truncated
		// partition; the source's own positioned error is the diagnosis.
		err = imported.close(err)
	}
	if err != nil {
		return nil, err
	}
	rs.Events = stats.Events
	rs.Makespan = stats.Makespan
	rs.MeanUtilization = stats.MeanUtilization
	rs.Faults = stats.Faults
	if rs.DeadlineJobs > 0 {
		rs.MeanAccuracy = accSum / float64(rs.DeadlineJobs)
	}
	if rs.ErrorJobs > 0 {
		rs.MeanInputDur = durSum / float64(rs.ErrorJobs)
	}
	return rs, nil
}

// importedSources tracks the per-partition trace readers of an imported
// replay so their file handles close and their positioned decode errors
// win over the generic "partition finished early" merge error. Partition
// workers open sources concurrently, hence the lock.
type importedSources struct {
	file   string
	format traceio.Format
	opts   traceio.Options

	mu      sync.Mutex
	readers []*traceio.Source
}

// open builds partition p's shard reader (jobs with dense ID ≡ p mod parts).
func (s *importedSources) open(p, parts int) (sched.Source, error) {
	src, err := traceio.NewShardSource(nil, s.file, s.format, s.opts, p, parts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.readers = append(s.readers, src)
	s.mu.Unlock()
	return src, nil
}

// close closes every reader and resolves the replay error: a reader's own
// positioned DecodeError is strictly more useful than runErr's echo of the
// truncated stream, so it takes precedence.
func (s *importedSources) close(runErr error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := runErr
	for _, src := range s.readers {
		if serr := src.Err(); serr != nil {
			var de *traceio.DecodeError
			if errors.As(serr, &de) || err == nil {
				err = serr
			}
		}
		src.Close()
	}
	return err
}
