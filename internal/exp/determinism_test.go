package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/trace"
)

// render executes one experiment and returns its rendered table bytes.
func render(t *testing.T, cfg Config, run func(Config) (*Table, error)) []byte {
	t.Helper()
	tab, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	return buf.Bytes()
}

// TestWorkerCountInvariance is the parallel harness's core guarantee: the
// same experiment produces byte-identical rendered output with 1 worker and
// with many, because every simulation derives its randomness from its own
// seed and lands in its own result slot.
func TestWorkerCountInvariance(t *testing.T) {
	serial := tiny()
	serial.Workers = 1
	parallel := tiny()
	parallel.Workers = 8

	// PotentialGains exercises runScenario (policy × seed grid); the
	// Improvement path is covered by TestImprovementWorkerInvariance.
	a := render(t, serial, PotentialGains)
	b := render(t, parallel, PotentialGains)
	if !bytes.Equal(a, b) {
		t.Fatalf("worker count changed experiment output.\n1 worker:\n%s\n8 workers:\n%s", a, b)
	}
}

// TestImprovementWorkerInvariance pins Improvement's paired-seed fan-out to
// the serial result.
func TestImprovementWorkerInvariance(t *testing.T) {
	serial := tiny()
	serial.Workers = 1
	serial.Seeds = []int64{1, 2, 3}
	parallel := serial
	parallel.Workers = 6

	get := func(c Config) float64 {
		v, err := c.Improvement(trace.Facebook, trace.Hadoop, trace.ErrorBound,
			"late", "grass", 1, nil, metrics.SpeedupPct)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := get(serial), get(parallel)
	if a != b {
		t.Fatalf("Improvement differs across worker counts: %v (1 worker) vs %v (6 workers)", a, b)
	}
}

// TestForEachErrorDeterministic: the pool reports the lowest-index error no
// matter which worker hits one first. Every (policy, seed) cell fails with
// a distinct message, so a race-dependent index choice would change the
// returned error text.
func TestForEachErrorDeterministic(t *testing.T) {
	bogus := tiny()
	bogus.Workers = 4
	bogus.Seeds = []int64{1, 2, 3, 4}
	failing := policySpec{name: "failing", make: func(seed int64) (spec.Factory, bool, error) {
		return nil, false, fmt.Errorf("boom seed %d", seed)
	}}
	// The failing policy is first, so grid index 0 = (failing, seed 1) must
	// always win even when a later cell fails earlier in wall-clock time.
	for i := 0; i < 5; i++ {
		_, err := bogus.runScenario(trace.Facebook, trace.Hadoop, trace.ErrorBound, 1,
			[]policySpec{failing, named("late")}, nil)
		if err == nil {
			t.Fatal("failing policy did not error")
		}
		if !strings.Contains(err.Error(), "boom seed 1") {
			t.Fatalf("run %d returned non-lowest-index error: %v", i, err)
		}
	}
}
