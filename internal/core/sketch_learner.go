package core

import (
	"fmt"
	"math"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// LearnerKind selects the GRASS learner implementation.
type LearnerKind uint8

const (
	// LearnerRing is the original per-bin ring-buffer curve store: bounded
	// memory and recency-weighted, but partition-scoped — at P>1 each
	// partition learns only from its own jobs.
	LearnerRing LearnerKind = iota
	// LearnerSketch is the mergeable streaming-sketch store: per factor
	// key, a grid of log-bucketed time-to-fraction histograms whose
	// bucket-wise merge is exact, so per-partition learners fold at the
	// sharded run's canonical merge step into precisely the state one
	// learner fed every sample would hold.
	LearnerSketch
)

// String names the kind the way ParseLearnerKind accepts it.
func (k LearnerKind) String() string {
	switch k {
	case LearnerRing:
		return "ring"
	case LearnerSketch:
		return "sketch"
	default:
		return fmt.Sprintf("LearnerKind(%d)", uint8(k))
	}
}

// ParseLearnerKind resolves a learner name: "ring" (or empty) and
// "sketch".
func ParseLearnerKind(s string) (LearnerKind, error) {
	switch s {
	case "", "ring":
		return LearnerRing, nil
	case "sketch":
		return LearnerSketch, nil
	default:
		return 0, fmt.Errorf("core: unknown learner %q (want ring or sketch)", s)
	}
}

// sketchGridN is the fraction grid the sketch learner summarizes
// completion curves on: per factor key and grid level g it keeps a
// histogram of "time a sample job took to reach fraction (g+1)/sketchGridN".
const sketchGridN = 32

// keyHists is one factor key's state: how many sample jobs were recorded
// under the key, and the per-grid-level time-to-fraction histograms.
type keyHists struct {
	n    uint64
	grid []*dist.Hist
}

// SketchLearner is the mergeable GRASS sample store. Where the ring
// Learner retains whole completion curves and averages the matched ones
// per query, the sketch learner folds every sample curve into streaming
// quantile histograms at Record time: per (size bin, policy, waves bucket,
// accuracy bucket) key, one log-bucketed histogram per fraction grid level
// holding the times sample jobs took to reach that fraction. The
// aggregate curve for a query is the per-level median of the matched
// histograms.
//
// The representation is chosen for one property: all state is integer
// bucket counts plus exact extremes, so Merge is loss-free, commutative
// and insertion-order-independent — two learners fed any partitioning of
// one sample multiset and merged are deeply equal to a single learner fed
// everything ("Sketch Disaggregation Across Time and Space" is the
// reference for splitting sketch state this way). That is what makes
// GRASS learning partition-invariant under sched.RunSharded: per-partition
// learners fold at the deterministic canonical merge step, and a seeded
// next epoch queries the combined cluster history instead of a
// partition-scoped slice. The trade against the ring store: no recency
// eviction (the histograms summarize the full history) and curve shapes
// quantized to the histograms' relative-error guarantee.
//
// A SketchLearner is not safe for concurrent use; the simulator is
// single-threaded and the sharded runner merges exported clones.
type SketchLearner struct {
	factors    FactorSet
	minSamples uint64
	keys       map[aggKey]*keyHists

	// base is an immutable seeded history layer (SetBase): queries
	// consult it alongside the learner's own keys, but Record, Merge and
	// Clone operate on the learner's own state only. Exports are
	// therefore DELTAS — a seeded partition never re-exports the seed, so
	// folding P seeded partitions (each holding the same base) cannot
	// count the seeded history P times.
	base *SketchLearner

	// records counts every sample folded in — Merge adds the source's
	// count, so a merged learner's records equals the single-learner
	// equivalent's. Doubles as the aggregate-cache version.
	records  uint64
	aggCache map[aggKey]aggEntry
	scratch  *dist.Hist // reusable merge buffer for multi-key queries
}

// NewSketchLearner builds an empty mergeable learner conditioning on the
// given factors.
func NewSketchLearner(factors FactorSet) *SketchLearner {
	return &SketchLearner{
		factors:    factors,
		minSamples: 3,
		keys:       make(map[aggKey]*keyHists),
		aggCache:   make(map[aggKey]aggEntry),
	}
}

// newKeyHists allocates one key's full histogram grid eagerly: the key
// space is tiny (3 bins × 2 policies × 4 waves × 3 accuracy buckets) and
// an identical layout on every learner keeps merged state deeply equal to
// single-learner state regardless of which levels each partition touched.
func newKeyHists() *keyHists {
	k := &keyHists{grid: make([]*dist.Hist, sketchGridN)}
	for g := range k.grid {
		k.grid[g] = dist.NewHist(dist.DefaultHistAlpha)
	}
	return k
}

// Record implements LearnerStore: the sample curve is folded into the
// key's histogram grid — for each grid fraction, the time the curve takes
// to reach it (TimeToFrac extrapolates past a curve's recorded end, the
// same convention the ring learner's predictions use; a curve that
// completed nothing contributes to no level).
func (l *SketchLearner) Record(p samplePolicy, bin task.SizeBin, waves, estAcc float64, c *Curve) {
	if c == nil || c.Empty() {
		return
	}
	key := aggKey{bin: bin, policy: p, waves: wavesBucket(waves), acc: accBucket(estAcc)}
	kh := l.keys[key]
	if kh == nil {
		kh = newKeyHists()
		l.keys[key] = kh
	}
	kh.n++
	l.records++
	for g := 0; g < sketchGridN; g++ {
		f := float64(g+1) / sketchGridN
		if t := c.TimeToFrac(f); !math.IsInf(t, 1) {
			kh.grid[g].Observe(t)
		}
	}
}

// SetBase installs previously merged state as an immutable read layer:
// every query from now on sees the seeded cluster history plus whatever
// this learner records itself, while exports (Clone) keep returning only
// the learner's own recordings. Installing a base invalidates cached
// aggregates; the base must not be mutated afterwards.
func (l *SketchLearner) SetBase(b *SketchLearner) {
	l.base = b
	clear(l.aggCache)
}

// Samples implements LearnerStore: total sample jobs recorded for the
// size bin and policy, across every factor bucket — seeded base history
// included, since the count gates the same sparse-data fallbacks the
// queries take.
func (l *SketchLearner) Samples(bin task.SizeBin, p samplePolicy) int {
	total := 0
	if l.base != nil {
		total = l.base.Samples(bin, p)
	}
	for wb := uint8(0); wb < 4; wb++ {
		for ab := uint8(0); ab < 3; ab++ {
			if kh := l.keys[aggKey{bin: bin, policy: p, waves: wb, acc: ab}]; kh != nil {
				total += int(kh.n)
			}
		}
	}
	return total
}

// matched collects the keys under (bin, policy) passing the bucket filter,
// in canonical (waves, accuracy, base-before-own) order — map iteration
// never decides anything here.
func (l *SketchLearner) matched(bin task.SizeBin, p samplePolicy, accept func(wb, ab uint8) bool, out []*keyHists) []*keyHists {
	for wb := uint8(0); wb < 4; wb++ {
		for ab := uint8(0); ab < 3; ab++ {
			if !accept(wb, ab) {
				continue
			}
			key := aggKey{bin: bin, policy: p, waves: wb, acc: ab}
			if l.base != nil {
				if kh := l.base.keys[key]; kh != nil && kh.n > 0 {
					out = append(out, kh)
				}
			}
			if kh := l.keys[key]; kh != nil && kh.n > 0 {
				out = append(out, kh)
			}
		}
	}
	return out
}

// match applies the enabled factors with the same hierarchical fallback as
// the ring learner — exact (waves, acc), then relax accuracy, then relax
// waves, then everything in the size bin — accepting the first stage with
// at least minSamples sample jobs. A disabled factor never filters, so the
// Best-1/Best-2 ablations remain strict subsets of the full design.
func (l *SketchLearner) match(bin task.SizeBin, p samplePolicy, waves, estAcc float64) []*keyHists {
	wb, ab := wavesBucket(waves), accBucket(estAcc)
	var stages []func(kwb, kab uint8) bool
	switch {
	case l.factors.Utilization && l.factors.Accuracy:
		stages = []func(kwb, kab uint8) bool{
			func(kwb, kab uint8) bool { return kwb == wb && kab == ab },
			func(kwb, kab uint8) bool { return kwb == wb },
			func(kwb, kab uint8) bool { return kab == ab },
		}
	case l.factors.Utilization:
		stages = []func(kwb, kab uint8) bool{func(kwb, kab uint8) bool { return kwb == wb }}
	case l.factors.Accuracy:
		stages = []func(kwb, kab uint8) bool{func(kwb, kab uint8) bool { return kab == ab }}
	}
	var buf [24]*keyHists // the whole (waves, acc) bucket space, base + own
	for _, accept := range stages {
		ms := l.matched(bin, p, accept, buf[:0])
		var n uint64
		for _, kh := range ms {
			n += kh.n
		}
		if n >= l.minSamples {
			return ms
		}
	}
	return l.matched(bin, p, func(uint8, uint8) bool { return true }, buf[:0])
}

// Aggregate implements LearnerStore: the matched histograms merge level by
// level (exact bucket addition into a reusable scratch histogram) and the
// aggregate curve takes each level's median time-to-fraction. The result
// is cached until the next Record. ok is false when no matched level holds
// a finite observation.
func (l *SketchLearner) Aggregate(p samplePolicy, bin task.SizeBin, waves, estAcc float64) (*Curve, bool) {
	key := aggKey{bin: bin, policy: p, waves: wavesBucket(waves), acc: accBucket(estAcc)}
	if e, hit := l.aggCache[key]; hit && e.version == l.records {
		return e.curve, e.curve != nil
	}
	ms := l.match(bin, p, waves, estAcc)
	var c *Curve
	for g := 0; g < sketchGridN; g++ {
		var h *dist.Hist
		switch len(ms) {
		case 0:
		case 1:
			h = ms[0].grid[g]
		default:
			if l.scratch == nil {
				l.scratch = dist.NewHist(dist.DefaultHistAlpha)
			}
			l.scratch.Reset()
			for _, kh := range ms {
				l.scratch.Merge(kh.grid[g])
			}
			h = l.scratch
		}
		if h == nil || h.Count() == 0 {
			continue
		}
		if c == nil {
			c = &Curve{}
		}
		c.Add(h.Quantile(0.5), float64(g+1)/sketchGridN)
	}
	l.aggCache[key] = aggEntry{version: l.records, curve: c}
	return c, c != nil
}

// Merge folds o into l: per-key sample counts and histogram buckets add
// exactly, so the merged learner is indistinguishable from one fed both
// learners' sample multisets — in any merge order. Merge operates on the
// learners' OWN state; seeded bases are not folded (exported states never
// carry one — Clone strips it — and the epoch driver accumulates deltas
// itself). Both learners must share the same factor configuration; Merge
// panics on mismatch (a programming error: partitions of one run always
// share the factory config).
func (l *SketchLearner) Merge(o *SketchLearner) {
	if o == nil {
		return
	}
	if o.factors != l.factors {
		panic("core: merging sketch learners with different factor sets")
	}
	for key, okh := range o.keys {
		kh := l.keys[key]
		if kh == nil {
			kh = newKeyHists()
			l.keys[key] = kh
		}
		kh.n += okh.n
		for g := range kh.grid {
			kh.grid[g].Merge(okh.grid[g])
		}
	}
	l.records += o.records
}

// Clone returns an independent deep copy of the learner's OWN recorded
// history, with query caches and any seeded base stripped: clones of
// learners that recorded the same sample multiset are deeply equal
// regardless of what was queried or seeded in between. This is the
// exported form the sharded merge folds — a delta, never the seed.
func (l *SketchLearner) Clone() *SketchLearner {
	c := NewSketchLearner(l.factors)
	c.minSamples = l.minSamples
	c.records = l.records
	for key, kh := range l.keys {
		nk := &keyHists{n: kh.n, grid: make([]*dist.Hist, len(kh.grid))}
		for g := range kh.grid {
			nk.grid[g] = kh.grid[g].Clone()
		}
		c.keys[key] = nk
	}
	return c
}

// MergeLearned implements spec.LearnedState, so exported learner clones
// fold at sched.RunSharded's canonical merge step.
func (l *SketchLearner) MergeLearned(o spec.LearnedState) {
	if o == nil {
		return
	}
	ol, ok := o.(*SketchLearner)
	if !ok {
		panic(fmt.Sprintf("core: merging incompatible learned state %T", o))
	}
	l.Merge(ol)
}
