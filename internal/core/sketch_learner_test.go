package core

import (
	"math"
	"reflect"
	"testing"

	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

func TestParseLearnerKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LearnerKind
	}{{"", LearnerRing}, {"ring", LearnerRing}, {"sketch", LearnerSketch}} {
		got, err := ParseLearnerKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLearnerKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Errorf("LearnerKind(%v).String() empty", got)
		}
	}
	if _, err := ParseLearnerKind("bogus"); err == nil {
		t.Error("ParseLearnerKind must reject unknown names")
	}
}

func TestSketchLearnerRecordAndAggregate(t *testing.T) {
	l := NewSketchLearner(AllFactors())
	if _, ok := l.Aggregate(sampleGS, task.Small, 2, 0.7); ok {
		t.Fatal("empty learner aggregated")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	if l.Samples(task.Small, sampleGS) != 1 {
		t.Fatal("sample not counted")
	}
	c, ok := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if !ok {
		t.Fatal("aggregate failed")
	}
	// A linear curve reaching 1.0 at t=10: the aggregate's time to the
	// half fraction must be ~5 within the histogram's relative error
	// (FracAt is too step-coarse to pin here — the 10-point source curve
	// dominates the quantization).
	if got := c.TimeToFrac(0.5); math.Abs(got-5) > 0.1 {
		t.Fatalf("aggregate TimeToFrac(0.5) = %v, want ~5", got)
	}
	// Cached pointer until the next Record, invalidated after.
	c2, _ := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if c2 != c {
		t.Fatal("aggregate not cached")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(20, 1))
	c3, _ := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if c3 == c {
		t.Fatal("cache not invalidated by Record")
	}
}

func TestSketchLearnerIgnoresEmptyAndDeadCurves(t *testing.T) {
	l := NewSketchLearner(AllFactors())
	l.Record(sampleGS, task.Small, 2, 0.7, &Curve{})
	l.Record(sampleGS, task.Small, 2, 0.7, nil)
	if l.Samples(task.Small, sampleGS) != 0 {
		t.Fatal("empty curve counted")
	}
	// A curve that completed nothing contributes to no grid level: it
	// counts as a sample but cannot produce an aggregate on its own.
	var dead Curve
	dead.Add(5, 0)
	l.Record(sampleGS, task.Small, 2, 0.7, &dead)
	if l.Samples(task.Small, sampleGS) != 1 {
		t.Fatal("dead curve should still count as a sample")
	}
	if _, ok := l.Aggregate(sampleGS, task.Small, 2, 0.7); ok {
		t.Fatal("aggregate from an all-infinite sample should fail")
	}
}

func TestSketchLearnerFallbackStages(t *testing.T) {
	l := NewSketchLearner(AllFactors())
	// Three fast samples at (waves bucket 1, acc bucket 2) and FIVE slow
	// at (waves bucket 3, acc bucket 0): with 8 samples in the all stage
	// the per-level median (rank ⌈0.5·8⌉ = 4) lands on a slow
	// observation, so the mixed aggregate is visibly distinct from the
	// pure-fast one.
	for i := 0; i < 5; i++ {
		if i < 3 {
			l.Record(sampleGS, task.Medium, 2, 0.9, mkCurve(10, 1))
		}
		l.Record(sampleGS, task.Medium, 10, 0.5, mkCurve(100, 1))
	}
	// timeAtHalf reads the aggregate's time to fraction 0.5 — enough to
	// tell a ~10s curve (→ ~5) from a ~100s curve (→ ~50) or a mix.
	timeAtHalf := func(waves, acc float64) float64 {
		c, ok := l.Aggregate(sampleGS, task.Medium, waves, acc)
		if !ok {
			t.Fatalf("aggregate failed for waves=%v acc=%v", waves, acc)
		}
		return c.TimeToFrac(0.5)
	}
	if got := timeAtHalf(2, 0.9); math.Abs(got-5) > 1 {
		t.Errorf("exact stage: time-to-half %v, want ~5", got)
	}
	if got := timeAtHalf(2, 0.5); math.Abs(got-5) > 1 {
		t.Errorf("relax-acc stage: time-to-half %v, want ~5", got)
	}
	if got := timeAtHalf(3, 0.9); math.Abs(got-5) > 1 {
		t.Errorf("relax-waves stage: time-to-half %v, want ~5", got)
	}
	// The all stage mixes both sample sets; the per-level median rank
	// falls on a slow observation, far from the pure-fast ~5.
	if got := timeAtHalf(3, 0.7); math.Abs(got-50) > 5 {
		t.Errorf("all stage: time-to-half %v, want ~50 (slow median)", got)
	}
}

func TestSketchLearnerEmptyFactorSetMatchesAll(t *testing.T) {
	l := NewSketchLearner(FactorSet{})
	l.Record(sampleRAS, task.Small, 10, 0.9, mkCurve(42, 1))
	c, ok := l.Aggregate(sampleRAS, task.Small, 1, 0.5)
	if !ok {
		t.Fatal("empty factor set must match the single sample")
	}
	if got := c.TimeToFrac(0.5); math.Abs(got-21) > 2 {
		t.Fatalf("time-to-half %v, want ~21", got)
	}
}

func TestSketchLearnerCloneIndependent(t *testing.T) {
	l := NewSketchLearner(AllFactors())
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	l.Aggregate(sampleGS, task.Small, 2, 0.7) // populate cache + scratch
	c := l.Clone()
	c.Record(sampleGS, task.Small, 2, 0.7, mkCurve(20, 1))
	if l.Samples(task.Small, sampleGS) != 1 || c.Samples(task.Small, sampleGS) != 2 {
		t.Fatalf("clone not independent: %d / %d", l.Samples(task.Small, sampleGS), c.Samples(task.Small, sampleGS))
	}
	// Clones of identically-fed learners are deeply equal no matter what
	// was queried in between — caches and scratch are stripped.
	a, b := NewSketchLearner(AllFactors()), NewSketchLearner(AllFactors())
	a.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	b.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	a.Aggregate(sampleGS, task.Small, 2, 0.7)
	a.Aggregate(sampleGS, task.Small, 99, 0.1)
	if !reflect.DeepEqual(a.Clone(), b.Clone()) {
		t.Fatal("queries leaked into cloned state")
	}
}

func TestSketchLearnerBaseLayer(t *testing.T) {
	seed := NewSketchLearner(AllFactors())
	for i := 0; i < 3; i++ {
		seed.Record(sampleGS, task.Small, 2, 0.9, mkCurve(10, 1))
	}
	l := NewSketchLearner(AllFactors())
	l.SetBase(seed.Clone())
	// Queries and the sample gate see the seeded history immediately.
	if got := l.Samples(task.Small, sampleGS); got != 3 {
		t.Fatalf("samples with base = %d, want 3", got)
	}
	c, ok := l.Aggregate(sampleGS, task.Small, 2, 0.9)
	if !ok || math.Abs(c.TimeToFrac(0.5)-5) > 1 {
		t.Fatalf("base-only aggregate: ok=%v time-to-half %v, want ~5", ok, c.TimeToFrac(0.5))
	}
	// Own records combine with the base: 3 fast seeded + 5 slow own puts
	// the per-level median (rank 4 of 8) on a slow observation.
	for i := 0; i < 5; i++ {
		l.Record(sampleGS, task.Small, 2, 0.9, mkCurve(100, 1))
	}
	if got := l.Samples(task.Small, sampleGS); got != 8 {
		t.Fatalf("samples with base+own = %d, want 8", got)
	}
	c, ok = l.Aggregate(sampleGS, task.Small, 2, 0.9)
	if !ok || math.Abs(c.TimeToFrac(0.5)-50) > 5 {
		t.Fatalf("combined aggregate: ok=%v time-to-half %v, want ~50", ok, c.TimeToFrac(0.5))
	}
	// The export is the delta: deeply equal to a learner that recorded
	// only the 5 own samples, the base stripped entirely.
	own := NewSketchLearner(AllFactors())
	for i := 0; i < 5; i++ {
		own.Record(sampleGS, task.Small, 2, 0.9, mkCurve(100, 1))
	}
	if !reflect.DeepEqual(l.Clone(), own.Clone()) {
		t.Fatal("export leaked the seeded base")
	}
}

func TestSketchLearnerMergePanics(t *testing.T) {
	l := NewSketchLearner(AllFactors())
	l.Merge(nil) // no-op
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merging learners with different factor sets must panic")
			}
		}()
		l.Merge(NewSketchLearner(FactorSet{}))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merging incompatible learned state must panic")
			}
		}()
		l.MergeLearned(fakeLearnedState{})
	}()
}

type fakeLearnedState struct{}

func (fakeLearnedState) MergeLearned(spec.LearnedState) {}

// differentialSamples builds a fixed, varied sample multiset spanning
// both policies, all size bins, every factor bucket, and curves of
// different durations and final fractions — the workload for the
// partition-invariance tests.
type diffSample struct {
	p     samplePolicy
	bin   task.SizeBin
	waves float64
	acc   float64
	curve *Curve
}

func differentialSamples() []diffSample {
	policies := []samplePolicy{sampleGS, sampleRAS}
	bins := []task.SizeBin{task.Small, task.Medium, task.Large}
	waves := []float64{0.5, 1.5, 3, 10, math.NaN()}
	accs := []float64{0.5, 0.7, 0.9, math.NaN()}
	var out []diffSample
	i := 0
	for _, p := range policies {
		for _, b := range bins {
			for _, w := range waves {
				for _, a := range accs {
					dur := float64(5 + i%37)
					final := 0.4 + 0.2*float64(i%4)
					out = append(out, diffSample{p: p, bin: b, waves: w, acc: a, curve: mkCurve(dur, final)})
					i++
				}
			}
		}
	}
	return out
}

// TestSketchLearnerPartitionInvariant is the acceptance criterion of the
// P>1 learning fix: distribute one sample multiset round-robin across P
// learners (the sharded runner's jobID-mod-P shape), fold them at the
// canonical merge step, and the merged state is DEEPLY EQUAL to a single
// learner fed every sample — so at P∈{2,4} every partition's next epoch
// queries exactly the combined cluster history, not a partition-scoped
// slice.
func TestSketchLearnerPartitionInvariant(t *testing.T) {
	samples := differentialSamples()
	single := NewSketchLearner(AllFactors())
	for _, s := range samples {
		single.Record(s.p, s.bin, s.waves, s.acc, s.curve)
	}
	for _, parts := range []int{2, 4} {
		learners := make([]*SketchLearner, parts)
		for p := range learners {
			learners[p] = NewSketchLearner(AllFactors())
		}
		for i, s := range samples {
			learners[i%parts].Record(s.p, s.bin, s.waves, s.acc, s.curve)
		}
		// Fold exported clones in canonical ascending-partition order,
		// exactly as sched.MergeLearnedStates does.
		states := make([]spec.LearnedState, parts)
		for p := range learners {
			learners[p].Aggregate(sampleGS, task.Small, 2, 0.7) // queries must not leak
			states[p] = learners[p].Clone()
		}
		var acc spec.LearnedState = states[0]
		for _, s := range states[1:] {
			acc.MergeLearned(s)
		}
		merged := acc.(*SketchLearner)
		if !reflect.DeepEqual(merged.Clone(), single.Clone()) {
			t.Errorf("P=%d: merged learner state diverges from single-learner state", parts)
		}
		// Behavioral check on top of the structural one: identical
		// aggregate curves for a spread of queries.
		for _, q := range []struct {
			p          samplePolicy
			bin        task.SizeBin
			waves, acc float64
		}{
			{sampleGS, task.Small, 2, 0.9},
			{sampleRAS, task.Medium, 10, 0.5},
			{sampleGS, task.Large, 1, 0.7},
		} {
			mc, mok := merged.Aggregate(q.p, q.bin, q.waves, q.acc)
			sc, sok := single.Aggregate(q.p, q.bin, q.waves, q.acc)
			if mok != sok || !reflect.DeepEqual(mc, sc) {
				t.Errorf("P=%d: aggregate diverges for %+v", parts, q)
			}
		}
	}
}

// TestSketchLearnerMergeOrderInvariant: the canonical ascending order at
// the sharded merge step is a convention, not a correctness requirement —
// any merge order of the same partition states lands on equal state.
func TestSketchLearnerMergeOrderInvariant(t *testing.T) {
	samples := differentialSamples()
	mk := func(order []int) *SketchLearner {
		parts := make([]*SketchLearner, 3)
		for p := range parts {
			parts[p] = NewSketchLearner(AllFactors())
		}
		for i, s := range samples {
			parts[i%3].Record(s.p, s.bin, s.waves, s.acc, s.curve)
		}
		acc := parts[order[0]].Clone()
		acc.Merge(parts[order[1]].Clone())
		acc.Merge(parts[order[2]].Clone())
		return acc
	}
	fwd, rev := mk([]int{0, 1, 2}), mk([]int{2, 1, 0})
	if !reflect.DeepEqual(fwd.Clone(), rev.Clone()) {
		t.Fatal("merge order changed sketch learner state")
	}
}
