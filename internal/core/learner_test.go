package core

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/task"
)

// mkCurve builds a linear curve reaching frac `final` at time `dur`.
func mkCurve(dur, final float64) *Curve {
	var c Curve
	for i := 1; i <= 10; i++ {
		c.Add(dur*float64(i)/10, final*float64(i)/10)
	}
	return &c
}

func TestBuckets(t *testing.T) {
	if wavesBucket(0.5) != 0 || wavesBucket(1) != 0 || wavesBucket(1.5) != 1 ||
		wavesBucket(3) != 2 || wavesBucket(10) != 3 {
		t.Fatal("waves bucketing wrong")
	}
	if accBucket(0.5) != 0 || accBucket(0.7) != 1 || accBucket(0.9) != 2 {
		t.Fatal("accuracy bucketing wrong")
	}
}

func TestLearnerRecordAndPredict(t *testing.T) {
	l := NewLearner(AllFactors())
	if _, ok := l.PredictFrac(sampleGS, task.Small, 2, 0.7, 1); ok {
		t.Fatal("empty learner predicted")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	if l.Samples(task.Small, sampleGS) != 1 {
		t.Fatal("sample not stored")
	}
	got, ok := l.PredictFrac(sampleGS, task.Small, 2, 0.7, 5)
	if !ok || math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("PredictFrac = %v ok=%v, want 0.5", got, ok)
	}
	tt, ok := l.PredictTime(sampleGS, task.Small, 2, 0.7, 0.5)
	if !ok || math.Abs(tt-5) > 1e-9 {
		t.Fatalf("PredictTime = %v ok=%v, want 5", tt, ok)
	}
}

func TestLearnerAverages(t *testing.T) {
	l := NewLearner(AllFactors())
	l.Record(sampleRAS, task.Medium, 2, 0.7, mkCurve(10, 1))
	l.Record(sampleRAS, task.Medium, 2, 0.7, mkCurve(20, 1))
	got, ok := l.PredictFrac(sampleRAS, task.Medium, 2, 0.7, 10)
	if !ok || math.Abs(got-0.75) > 1e-9 { // (1.0 + 0.5)/2
		t.Fatalf("average prediction %v, want 0.75", got)
	}
}

func TestLearnerIgnoresEmptyCurves(t *testing.T) {
	l := NewLearner(AllFactors())
	l.Record(sampleGS, task.Small, 2, 0.7, &Curve{})
	l.Record(sampleGS, task.Small, 2, 0.7, nil)
	if l.Samples(task.Small, sampleGS) != 0 {
		t.Fatal("empty curve stored")
	}
}

func TestLearnerRingEviction(t *testing.T) {
	l := NewLearner(AllFactors())
	for i := 0; i < 200; i++ {
		l.Record(sampleGS, task.Large, 2, 0.7, mkCurve(float64(i+1), 1))
	}
	if got := l.Samples(task.Large, sampleGS); got != l.maxPerKey {
		t.Fatalf("ring holds %d, want %d", got, l.maxPerKey)
	}
}

func TestLearnerSeparatesPoliciesAndBins(t *testing.T) {
	l := NewLearner(AllFactors())
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	l.Record(sampleRAS, task.Small, 2, 0.7, mkCurve(100, 1))
	l.Record(sampleGS, task.Large, 2, 0.7, mkCurve(1000, 1))
	gsT, _ := l.PredictTime(sampleGS, task.Small, 2, 0.7, 1)
	rasT, _ := l.PredictTime(sampleRAS, task.Small, 2, 0.7, 1)
	lgT, _ := l.PredictTime(sampleGS, task.Large, 2, 0.7, 1)
	if gsT != 10 || rasT != 100 || lgT != 1000 {
		t.Fatalf("cross-contamination: %v %v %v", gsT, rasT, lgT)
	}
}

func TestLearnerFactorMatching(t *testing.T) {
	l := NewLearner(AllFactors())
	// Three samples in waves-bucket 1 (≤2 waves), fast; three in bucket 3
	// (>4 waves), slow. Same accuracy bucket.
	for i := 0; i < 3; i++ {
		l.Record(sampleGS, task.Medium, 2, 0.9, mkCurve(10, 1))
		l.Record(sampleGS, task.Medium, 10, 0.9, mkCurve(100, 1))
	}
	fast, ok := l.PredictTime(sampleGS, task.Medium, 2, 0.9, 1)
	if !ok || fast != 10 {
		t.Fatalf("waves=2 prediction %v, want 10 (only fast samples)", fast)
	}
	slow, ok := l.PredictTime(sampleGS, task.Medium, 10, 0.9, 1)
	if !ok || slow != 100 {
		t.Fatalf("waves=10 prediction %v, want 100 (only slow samples)", slow)
	}
}

func TestLearnerFactorDisabled(t *testing.T) {
	// With Utilization disabled, waves must not filter: predictions mix.
	l := NewLearner(FactorSet{})
	for i := 0; i < 3; i++ {
		l.Record(sampleGS, task.Medium, 2, 0.9, mkCurve(10, 1))
		l.Record(sampleGS, task.Medium, 10, 0.9, mkCurve(100, 1))
	}
	got, ok := l.PredictTime(sampleGS, task.Medium, 2, 0.9, 1)
	if !ok || math.Abs(got-55) > 1e-9 {
		t.Fatalf("Best-1 prediction %v, want mixed 55", got)
	}
}

func TestLearnerFallbackWhenBucketSparse(t *testing.T) {
	l := NewLearner(AllFactors())
	// Plenty of samples, but none in the queried (waves, acc) bucket.
	for i := 0; i < 5; i++ {
		l.Record(sampleRAS, task.Small, 10, 0.9, mkCurve(50, 1))
	}
	got, ok := l.PredictTime(sampleRAS, task.Small, 1, 0.5, 1)
	if !ok || got != 50 {
		t.Fatalf("fallback prediction %v ok=%v, want 50", got, ok)
	}
}

func TestPredictTimeSkipsInfinite(t *testing.T) {
	l := NewLearner(AllFactors())
	var dead Curve
	dead.Add(5, 0) // job that completed nothing
	l.Record(sampleGS, task.Small, 2, 0.7, &dead)
	if _, ok := l.PredictTime(sampleGS, task.Small, 2, 0.7, 0.5); ok {
		t.Fatal("prediction from all-infinite samples should fail")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	got, ok := l.PredictTime(sampleGS, task.Small, 2, 0.7, 0.5)
	if !ok || got != 5 {
		t.Fatalf("finite sample ignored: %v ok=%v", got, ok)
	}
}

func TestAggregateAveragesAndCaches(t *testing.T) {
	l := NewLearner(AllFactors())
	if _, ok := l.Aggregate(sampleGS, task.Small, 2, 0.7); ok {
		t.Fatal("empty learner aggregated")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(10, 1))
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(20, 1))
	c, ok := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if !ok {
		t.Fatal("aggregate failed")
	}
	// At t=10 the first curve is done (1.0), the second halfway (0.5).
	if got := c.FracAt(10); math.Abs(got-0.75) > 0.06 {
		t.Fatalf("aggregate FracAt(10) = %v, want ~0.75", got)
	}
	// Cached pointer until the next Record.
	c2, _ := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if c2 != c {
		t.Fatal("aggregate not cached")
	}
	l.Record(sampleGS, task.Small, 2, 0.7, mkCurve(30, 1))
	c3, _ := l.Aggregate(sampleGS, task.Small, 2, 0.7)
	if c3 == c {
		t.Fatal("cache not invalidated by Record")
	}
}

func TestAggregateMonotone(t *testing.T) {
	l := NewLearner(AllFactors())
	for i := 1; i <= 5; i++ {
		l.Record(sampleRAS, task.Medium, 3, 0.7, mkCurve(float64(i*7), 0.2*float64(i)))
	}
	c, ok := l.Aggregate(sampleRAS, task.Medium, 3, 0.7)
	if !ok {
		t.Fatal("aggregate failed")
	}
	prev := -1.0
	for tm := 0.0; tm <= 40; tm += 2 {
		v := c.FracAt(tm)
		if v < prev {
			t.Fatalf("aggregate not monotone at t=%v", tm)
		}
		prev = v
	}
}

func TestBucketsRejectNaN(t *testing.T) {
	// NaN compares false against every boundary: without the explicit
	// check it would fall through to the highest waves bucket and the
	// middle-ish accuracy bucket. A NaN factor input is an unknown and
	// must clamp to the lowest bucket instead.
	if got := wavesBucket(math.NaN()); got != 0 {
		t.Errorf("wavesBucket(NaN) = %d, want 0", got)
	}
	if got := accBucket(math.NaN()); got != 0 {
		t.Errorf("accBucket(NaN) = %d, want 0", got)
	}
	// And a NaN query must find samples recorded under NaN factors: both
	// land in bucket 0, so the exact stage matches.
	l := NewLearner(AllFactors())
	for i := 0; i < 3; i++ {
		l.Record(sampleGS, task.Small, math.NaN(), math.NaN(), mkCurve(10, 1))
	}
	got, ok := l.PredictTime(sampleGS, task.Small, math.NaN(), math.NaN(), 1)
	if !ok || got != 10 {
		t.Fatalf("NaN-factored query missed NaN-factored samples: %v ok=%v", got, ok)
	}
}

func TestLearnerRingWraparound(t *testing.T) {
	l := NewLearner(AllFactors())
	// Fill the ring exactly, then overwrite: the oldest slot (index 0)
	// is replaced first, so the mean prediction shifts deterministically.
	for i := 0; i < l.maxPerKey; i++ {
		l.Record(sampleGS, task.Large, 2, 0.9, mkCurve(10, 1))
	}
	l.Record(sampleGS, task.Large, 2, 0.9, mkCurve(100, 1))
	if got := l.Samples(task.Large, sampleGS); got != l.maxPerKey {
		t.Fatalf("ring grew past capacity: %d", got)
	}
	want := (float64(l.maxPerKey-1)*10 + 100) / float64(l.maxPerKey)
	got, ok := l.PredictTime(sampleGS, task.Large, 2, 0.9, 1)
	if !ok || math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-wraparound prediction %v, want %v", got, want)
	}
	// A full second lap leaves only the new samples.
	for i := 0; i < l.maxPerKey; i++ {
		l.Record(sampleGS, task.Large, 2, 0.9, mkCurve(100, 1))
	}
	got, ok = l.PredictTime(sampleGS, task.Large, 2, 0.9, 1)
	if !ok || got != 100 {
		t.Fatalf("full lap did not evict every old sample: %v", got)
	}
}

func TestLearnerFallbackStages(t *testing.T) {
	l := NewLearner(AllFactors())
	// Three fast samples at (waves bucket 1, acc bucket 2); three slow at
	// (waves bucket 3, acc bucket 0).
	for i := 0; i < 3; i++ {
		l.Record(sampleGS, task.Medium, 2, 0.9, mkCurve(10, 1))
		l.Record(sampleGS, task.Medium, 10, 0.5, mkCurve(100, 1))
	}
	// Stage 1 (exact): query (wb1, ab2) hits the fast samples directly.
	if got, _ := l.PredictTime(sampleGS, task.Medium, 2, 0.9, 1); got != 10 {
		t.Errorf("exact stage: %v, want 10", got)
	}
	// Stage 2 (relax accuracy): (wb1, ab0) has no exact match; waves-only
	// still isolates the fast samples.
	if got, _ := l.PredictTime(sampleGS, task.Medium, 2, 0.5, 1); got != 10 {
		t.Errorf("relax-acc stage: %v, want 10", got)
	}
	// Stage 3 (relax waves): (wb2, ab2) matches nothing by waves; acc-only
	// isolates the fast samples.
	if got, _ := l.PredictTime(sampleGS, task.Medium, 3, 0.9, 1); got != 10 {
		t.Errorf("relax-waves stage: %v, want 10", got)
	}
	// Stage 4 (all): (wb2, ab1) matches nothing by either factor; the
	// whole size bin mixes.
	if got, _ := l.PredictTime(sampleGS, task.Medium, 3, 0.7, 1); got != 55 {
		t.Errorf("all stage: %v, want mixed 55", got)
	}
}

func TestLearnerEmptyFactorSetMatchesAll(t *testing.T) {
	// FactorSet{} builds no filter stages at all: even a single sample
	// (below minSamples) must match, because the stage loop is empty and
	// match falls straight through to the whole size bin.
	l := NewLearner(FactorSet{})
	l.Record(sampleRAS, task.Small, 10, 0.9, mkCurve(42, 1))
	got, ok := l.PredictTime(sampleRAS, task.Small, 1, 0.5, 1)
	if !ok || got != 42 {
		t.Fatalf("empty factor set: %v ok=%v, want 42", got, ok)
	}
}
