package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-analytics/grass/internal/dist"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

// Config tunes the GRASS policy family.
type Config struct {
	// Xi is the perturbation probability: the fraction of jobs that run pure
	// GS or pure RAS end-to-end to generate learning samples (§4.2). The
	// paper finds ξ = 15% empirically best (Figure 15).
	Xi float64
	// Factors selects which switching factors the learner conditions on
	// (§4.1); AllFactors() is the full design.
	Factors FactorSet
	// Strawman disables learning entirely and switches statically at the
	// estimated final-two-waves point (§6.3.2's strawman).
	Strawman bool
	// Splits is the number of candidate switch points evaluated in the
	// remaining work (default 12).
	Splits int
	// Seed drives the perturbation coin flips.
	Seed int64
	// Learner selects the sample store: the zero value is the original
	// per-bin ring-buffer Learner (partition-scoped at P>1);
	// LearnerSketch selects the mergeable SketchLearner, whose state
	// folds exactly across sched.RunSharded partitions.
	Learner LearnerKind
}

// DefaultConfig returns the paper's configuration: ξ=15%, all three factors.
func DefaultConfig() Config {
	return Config{Xi: 0.15, Factors: AllFactors(), Splits: 12, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Xi < 0 || c.Xi > 1 {
		return fmt.Errorf("core: xi %v out of [0,1]", c.Xi)
	}
	if c.Splits < 0 {
		return fmt.Errorf("core: negative splits %d", c.Splits)
	}
	if c.Learner > LearnerSketch {
		return fmt.Errorf("core: unknown learner kind %d", c.Learner)
	}
	return nil
}

// Factory builds per-job GRASS policies sharing one learner — the cluster
// scheduler's long-lived state.
type Factory struct {
	cfg     Config
	learner LearnerStore
	rng     *dist.RNG
	stats   Stats

	// gs/ras are templates whose selection buffers every per-job policy
	// shares: a factory serves one scheduler goroutine, and the buffers live
	// only within a single Pick call.
	gs  spec.GS
	ras spec.RAS
}

// Stats counts policy decisions across a factory's jobs (diagnostics).
type Stats struct {
	// Sampled is the number of ξ-perturbation jobs (pure GS or RAS).
	Sampled int
	// Adaptive is the number of jobs running the RAS→GS switching logic.
	Adaptive int
	// Switched is how many adaptive jobs actually took the switch.
	Switched int
	// LearnedDecisions and StaticDecisions count switch evaluations that
	// used learner predictions versus the static fallback rule.
	LearnedDecisions, StaticDecisions int
}

// New constructs a GRASS policy factory.
func New(cfg Config) (*Factory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Splits == 0 {
		cfg.Splits = 12
	}
	var learner LearnerStore
	if cfg.Learner == LearnerSketch {
		learner = NewSketchLearner(cfg.Factors)
	} else {
		learner = NewLearner(cfg.Factors)
	}
	return &Factory{
		cfg:     cfg,
		learner: learner,
		rng:     dist.NewRNG(cfg.Seed),
		gs:      spec.NewGS(),
		ras:     spec.NewRAS(),
	}, nil
}

// Name identifies the variant: the full design, the static strawman, or a
// factor ablation (Best-1 uses only the bound; Best-2 adds one factor).
func (f *Factory) Name() string {
	if f.cfg.Strawman {
		return "GRASS-Strawman"
	}
	switch {
	case f.cfg.Factors.Utilization && f.cfg.Factors.Accuracy:
		return "GRASS"
	case f.cfg.Factors.Utilization:
		return "GRASS-Best2(util)"
	case f.cfg.Factors.Accuracy:
		return "GRASS-Best2(acc)"
	default:
		return "GRASS-Best1"
	}
}

// Learner exposes the shared sample store (tests and diagnostics).
func (f *Factory) Learner() LearnerStore { return f.learner }

// Stats reports decision counts accumulated so far.
func (f *Factory) Stats() Stats { return f.stats }

// ExportLearned implements spec.SharedLearner: with the sketch learner
// configured it snapshots the mergeable sample store (caches stripped, so
// exports depend only on the recorded sample multiset); the ring learner
// is not mergeable and exports nil.
func (f *Factory) ExportLearned() spec.LearnedState {
	if sl, ok := f.learner.(*SketchLearner); ok {
		return sl.Clone()
	}
	return nil
}

// SeedLearned implements spec.SharedLearner: the factory layers an
// independent copy of the state under its learner as an immutable base —
// queries see the seeded cluster history plus whatever this factory
// records, while ExportLearned keeps returning only the factory's own
// recordings. Every partition of a sharded run is seeded with the SAME
// merged value; exporting deltas is what keeps the next merge from
// folding that shared base P times. Only the sketch learner can adopt
// state; seeding a ring-learner factory with a non-nil state is a
// configuration error and panics.
func (f *Factory) SeedLearned(state spec.LearnedState) {
	if state == nil {
		return
	}
	src, ok := state.(*SketchLearner)
	if !ok {
		panic(fmt.Sprintf("core: seeding factory with incompatible learned state %T", state))
	}
	sl, ok := f.learner.(*SketchLearner)
	if !ok {
		panic("core: a ring-learner factory cannot adopt merged state (set Config.Learner = LearnerSketch)")
	}
	if src.factors != f.cfg.Factors {
		panic("core: seeding factory with learned state of a different factor set")
	}
	sl.SetBase(src.Clone())
}

// NewPolicy creates the policy for one job, flipping the ξ-perturbation
// coin: with probability ξ the job runs pure GS or pure RAS (equally
// likely) for its entire life and contributes a learning sample.
func (f *Factory) NewPolicy(jobID, numTasks int) spec.Policy {
	p := &policy{
		f:        f,
		numTasks: numTasks,
		bin:      task.BinOf(numTasks),
		gs:       f.gs,
		ras:      f.ras,
	}
	if !f.cfg.Strawman && f.rng.Float64() < f.cfg.Xi {
		p.sampled = true
		if f.rng.Float64() < 0.5 {
			p.samplePol = sampleGS
		} else {
			p.samplePol = sampleRAS
		}
	}
	if p.sampled {
		f.stats.Sampled++
	} else {
		f.stats.Adaptive++
	}
	return p
}

// policy is the per-job GRASS controller.
type policy struct {
	f        *Factory
	numTasks int
	bin      task.SizeBin

	sampled   bool
	samplePol samplePolicy

	switched bool // RAS → GS switch already taken
	curve    Curve

	gs  spec.GS
	ras spec.RAS

	// Candidate-state arguments of the in-flight Pick/PickIncremental
	// call, stashed as fields so the shared switching logic can compute
	// the median t_new from whichever representation is live without a
	// per-call closure allocation. Exactly one is non-nil during a call.
	vsArg    *spec.ViewSet
	tasksArg []spec.TaskView
}

// clearArgs drops the stashed candidate state when a call returns: the
// views belong to the scheduler (the shared rebuild buffer, a per-phase
// ViewSet) and must not be retained across calls — a later out-of-call
// read should hit nil, not a dead phase's views.
func (g *policy) clearArgs() { g.tasksArg, g.vsArg = nil, nil }

// medTNew returns the median fresh-copy estimate over the in-flight
// call's candidate state.
func (g *policy) medTNew() float64 {
	if g.vsArg != nil {
		return g.vsArg.MedianTNew()
	}
	return medianTNew(g.tasksArg)
}

// Name implements spec.Policy.
func (g *policy) Name() string { return g.f.Name() }

// Pick implements spec.Policy: sample jobs run their assigned pure policy;
// adaptive jobs run RAS until the learned (or strawman) switch point, then
// GS for the rest of the job.
func (g *policy) Pick(ctx spec.Ctx, tasks []spec.TaskView) (spec.Decision, bool) {
	g.tasksArg, g.vsArg = tasks, nil
	defer g.clearArgs()
	if g.sampled {
		if g.samplePol == sampleGS {
			return g.gs.Pick(ctx, tasks)
		}
		return g.ras.Pick(ctx, tasks)
	}
	if !g.switched && g.shouldSwitch(ctx) {
		g.switched = true
		g.f.stats.Switched++
	}
	if g.switched {
		return g.gs.Pick(ctx, tasks)
	}
	return g.ras.Pick(ctx, tasks)
}

// PickIncremental implements spec.IncrementalPolicy: the same control flow
// as Pick with the switching decision and the delegated GS/RAS selections
// answered from the maintained candidate state. The switched flag and the
// learner are shared with Pick, so a job may interleave both paths (the
// differential tests do) without divergence.
func (g *policy) PickIncremental(ctx spec.Ctx, vs *spec.ViewSet) (spec.Decision, bool) {
	g.tasksArg, g.vsArg = nil, vs
	defer g.clearArgs()
	if g.sampled {
		if g.samplePol == sampleGS {
			return g.gs.PickIncremental(ctx, vs)
		}
		return g.ras.PickIncremental(ctx, vs)
	}
	if !g.switched && g.shouldSwitch(ctx) {
		g.switched = true
		g.f.stats.Switched++
	}
	if g.switched {
		return g.gs.PickIncremental(ctx, vs)
	}
	return g.ras.PickIncremental(ctx, vs)
}

// shouldSwitch decides whether "the optimal switching point turns out to be
// at present" (§4.1). It steps through candidate split points of the
// remaining work; the predicted performance of splitting at s is the sum of
// a pure-RAS prefix and a pure-GS suffix, each predicted from sample-job
// curves matched on job size, waves and estimation accuracy. When the
// learner has no data (or in strawman mode) it falls back to the static
// two-waves rule.
func (g *policy) shouldSwitch(ctx spec.Ctx) bool {
	if g.f.cfg.Strawman {
		return g.staticRule(ctx)
	}
	if ctx.Kind == task.DeadlineBound {
		return g.switchDeadline(ctx)
	}
	return g.switchError(ctx)
}

// switchWith evaluates the switching decision against an explicit view
// slice — the entry point the unit tests drive shouldSwitch through.
func (g *policy) switchWith(ctx spec.Ctx, tasks []spec.TaskView) bool {
	g.tasksArg, g.vsArg = tasks, nil
	defer g.clearArgs()
	return g.shouldSwitch(ctx)
}

// waves approximates the job's wave count from its slot share.
func (g *policy) waves(ctx spec.Ctx) float64 {
	w := ctx.WaveWidth
	if w < 1 {
		w = 1
	}
	return float64(g.numTasks) / float64(w)
}

// continueFrom predicts the extra fraction a policy's average curve adds
// when continuing from fraction phi for t more time units: the curve is
// entered at the position where phi was reached, so segment predictions are
// marginal rather than from-zero (summing two from-zero prefixes of concave
// curves would double-count the easy early completions and bias the search
// toward never switching).
func continueFrom(c *Curve, phi, t float64) float64 {
	t0 := c.TimeToFrac(phi)
	if math.IsInf(t0, 1) {
		return 0
	}
	d := c.FracAt(t0+t) - phi
	if d < 0 {
		return 0
	}
	return d
}

func (g *policy) switchDeadline(ctx spec.Ctx) bool {
	rem := ctx.RemainingTime
	if rem <= 0 {
		return true // nothing left to conserve; be greedy
	}
	l, waves, acc := g.f.learner, g.waves(ctx), ctx.EstimationAccuracy
	rasC, ok1 := l.Aggregate(sampleRAS, g.bin, waves, acc)
	gsC, ok2 := l.Aggregate(sampleGS, g.bin, waves, acc)
	if !ok1 || !ok2 {
		g.f.stats.StaticDecisions++
		return g.staticRule(ctx) // insufficient samples yet
	}
	g.f.stats.LearnedDecisions++
	phi := 0.0
	if ctx.TotalTasks > 0 {
		phi = float64(ctx.CompletedTasks) / float64(ctx.TotalTasks)
	}
	splits := g.f.cfg.Splits
	bestIdx, bestAcc := -1, -1.0
	for i := 0; i <= splits; i++ {
		s := rem * float64(i) / float64(splits)
		mid := phi + continueFrom(rasC, phi, s)
		a := mid + continueFrom(gsC, mid, rem-s)
		if a > bestAcc {
			bestIdx, bestAcc = i, a
		}
	}
	// Split index 0 means "spend no more time in RAS": switch now. A later
	// evaluation re-asks the same question with less remaining time, which
	// is the paper's periodic re-checking.
	return bestIdx == 0
}

func (g *policy) switchError(ctx spec.Ctx) bool {
	remTasks := ctx.Remaining()
	if remTasks <= 0 {
		return true
	}
	total := ctx.TotalTasks
	if total <= 0 {
		return true
	}
	l, waves, acc := g.f.learner, g.waves(ctx), ctx.EstimationAccuracy
	rasC, ok1 := l.Aggregate(sampleRAS, g.bin, waves, acc)
	gsC, ok2 := l.Aggregate(sampleGS, g.bin, waves, acc)
	if !ok1 || !ok2 {
		g.f.stats.StaticDecisions++
		return g.staticRule(ctx)
	}
	g.f.stats.LearnedDecisions++
	phi := float64(ctx.CompletedTasks) / float64(total)
	target := float64(ctx.TargetTasks) / float64(total)
	// segTime is the marginal time for a policy to carry the job from
	// fraction a to fraction b along its average curve.
	segTime := func(c *Curve, a, b float64) float64 {
		if b <= a {
			return 0
		}
		ta, tb := c.TimeToFrac(a), c.TimeToFrac(b)
		if math.IsInf(tb, 1) {
			return math.Inf(1)
		}
		if math.IsInf(ta, 1) || tb < ta {
			return 0
		}
		return tb - ta
	}
	splits := g.f.cfg.Splits
	bestIdx := -1
	bestDur := math.Inf(1)
	for i := 0; i <= splits; i++ {
		mid := phi + (target-phi)*float64(i)/float64(splits)
		d := segTime(rasC, phi, mid) + segTime(gsC, mid, target)
		if d < bestDur {
			bestIdx, bestDur = i, d
		}
	}
	if math.IsInf(bestDur, 1) {
		return g.staticRule(ctx)
	}
	return bestIdx == 0
}

// staticRule is the theory-guided two-waves heuristic (§4's strawman, also
// GRASS's cold-start fallback): switch to GS once the remaining work fits
// in at most two waves of tasks.
func (g *policy) staticRule(ctx spec.Ctx) bool {
	if ctx.Kind == task.DeadlineBound {
		// Time to the deadline sufficient for at most two waves, with task
		// duration taken as the median estimate of a fresh copy.
		med := g.medTNew()
		if med <= 0 {
			return false
		}
		return ctx.RemainingTime <= 2*med
	}
	// Remaining needed tasks make up at most two waves.
	w := ctx.WaveWidth
	if w < 1 {
		w = 1
	}
	return ctx.Remaining() <= 2*w
}

// medianTNew returns the median fresh-copy estimate across views.
func medianTNew(tasks []spec.TaskView) float64 {
	if len(tasks) == 0 {
		return 0
	}
	vals := make([]float64, len(tasks))
	for i, t := range tasks {
		vals[i] = t.TNew
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// OnTaskComplete implements spec.ProgressObserver: it extends the job's
// completion curve.
func (g *policy) OnTaskComplete(completed int, t float64) {
	g.curve.Add(t, float64(completed)/float64(g.numTasks))
}

// OnJobEnd implements spec.Observer: sample jobs contribute their completion
// curve to the shared learner, keyed by the factor values at completion.
func (g *policy) OnJobEnd(ctx spec.Ctx, acc, dur float64) {
	if !g.sampled || g.curve.Empty() {
		return
	}
	g.f.learner.Record(g.samplePol, g.bin, g.waves(ctx), ctx.EstimationAccuracy, &g.curve)
}
