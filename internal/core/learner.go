package core

import (
	"math"

	"github.com/approx-analytics/grass/internal/task"
)

// FactorSet selects which of §4.1's three switching factors the learner
// conditions on. The deadline/error bound is always used — it is the query
// variable — so the set controls the other two. The full GRASS uses both;
// Figures 13/14's "Best-1" uses neither and "Best-2" uses one.
type FactorSet struct {
	// Utilization buckets samples by the job's wave count, approximated from
	// cluster utilization / slot share ("we augment our samples ... with the
	// number of waves, simply approximated using current cluster
	// utilization").
	Utilization bool
	// Accuracy buckets samples by the measured estimation accuracy of t_rem
	// and t_new.
	Accuracy bool
}

// AllFactors is the full GRASS factor set.
func AllFactors() FactorSet { return FactorSet{Utilization: true, Accuracy: true} }

// samplePolicy identifies which pure policy produced a sample.
type samplePolicy uint8

const (
	sampleGS samplePolicy = iota
	sampleRAS
)

// wavesBucket quantizes a job's (fractional) wave count. NaN compares
// false against every boundary, so without the explicit check it would
// fall through to the highest bucket — a NaN factor input is an unknown,
// not a many-waves job, so it clamps to the lowest bucket instead (and a
// NaN query then matches the same bucket a NaN-factored sample recorded
// under).
func wavesBucket(waves float64) uint8 {
	switch {
	case math.IsNaN(waves), waves <= 1:
		return 0
	case waves <= 2:
		return 1
	case waves <= 4:
		return 2
	default:
		return 3
	}
}

// accBucket quantizes estimation accuracy. NaN would otherwise fall
// through to the highest-accuracy bucket; like wavesBucket it clamps to
// the lowest.
func accBucket(acc float64) uint8 {
	switch {
	case math.IsNaN(acc), acc < 0.65:
		return 0
	case acc < 0.8:
		return 1
	default:
		return 2
	}
}

// LearnerStore is the learner API the GRASS policy drives: Record feeds a
// sample job's completion curve in, Aggregate answers the switch-point
// search with the average completion curve of the matched samples, and
// Samples reports store occupancy (diagnostics and tests). Two
// implementations exist: the per-bin ring-buffer Learner (the original,
// partition-scoped) and the mergeable SketchLearner, whose state folds
// exactly across partitions.
type LearnerStore interface {
	// Record stores one sample job's completion curve with its factor
	// values. Nil or empty curves are ignored.
	Record(p samplePolicy, bin task.SizeBin, waves, estAcc float64, c *Curve)
	// Aggregate returns the average completion curve of the samples
	// matching the query's factor values, with hierarchical fallback when
	// the exact bucket is sparse. ok is false with no samples.
	Aggregate(p samplePolicy, bin task.SizeBin, waves, estAcc float64) (*Curve, bool)
	// Samples reports how many sample jobs are stored for a size bin and
	// policy.
	Samples(bin task.SizeBin, p samplePolicy) int
}

// sample is one recorded pure-GS or pure-RAS job execution.
type sample struct {
	waves uint8
	acc   uint8
	curve *Curve
}

// binKey groups samples the way the paper compares them: "we bucket jobs by
// their number of tasks and compare only within jobs of the same bucket".
type binKey struct {
	bin    task.SizeBin
	policy samplePolicy
}

// Learner is GRASS's shared store of sample-job completion curves. One
// Learner serves every job in a cluster (it is owned by the policy Factory).
// It is not safe for concurrent use; the simulator is single-threaded.
type Learner struct {
	factors    FactorSet
	maxPerKey  int
	minSamples int
	buckets    map[binKey][]sample // ring buffer per key
	next       map[binKey]int

	version  uint64 // bumped on Record, invalidates aggregate cache
	aggCache map[aggKey]aggEntry
}

type aggKey struct {
	bin    task.SizeBin
	policy samplePolicy
	waves  uint8
	acc    uint8
}

type aggEntry struct {
	version uint64
	curve   *Curve
}

// NewLearner builds an empty learner conditioning on the given factors.
func NewLearner(factors FactorSet) *Learner {
	return &Learner{
		factors:    factors,
		maxPerKey:  48,
		minSamples: 3,
		buckets:    make(map[binKey][]sample),
		next:       make(map[binKey]int),
		aggCache:   make(map[aggKey]aggEntry),
	}
}

// Record stores a sample job's completion curve with its factor values.
// Curves are downsampled to bound memory; the store keeps the most recent
// maxPerKey samples so it stays "abreast with dynamic changes in clusters".
func (l *Learner) Record(p samplePolicy, bin task.SizeBin, waves, estAcc float64, c *Curve) {
	if c == nil || c.Empty() {
		return
	}
	k := binKey{bin: bin, policy: p}
	s := sample{waves: wavesBucket(waves), acc: accBucket(estAcc), curve: c.Downsample(64)}
	l.version++
	ring := l.buckets[k]
	if len(ring) < l.maxPerKey {
		l.buckets[k] = append(ring, s)
		return
	}
	ring[l.next[k]] = s
	l.next[k] = (l.next[k] + 1) % l.maxPerKey
}

// Samples reports how many samples are stored for a size bin and policy.
func (l *Learner) Samples(bin task.SizeBin, p samplePolicy) int {
	return len(l.buckets[binKey{bin: bin, policy: p}])
}

// match selects the samples relevant to a query, applying the enabled
// factors with hierarchical fallback: exact (waves, acc) match first, then
// relax accuracy, then relax waves, then everything in the size bin. This
// fallback is what makes Best-1/Best-2 ablations a strict subset of the full
// design: a disabled factor simply never filters.
func (l *Learner) match(bin task.SizeBin, p samplePolicy, waves, estAcc float64) []sample {
	all := l.buckets[binKey{bin: bin, policy: p}]
	if len(all) == 0 {
		return nil
	}
	wb, ab := wavesBucket(waves), accBucket(estAcc)
	type filter func(s sample) bool
	var stages []filter
	switch {
	case l.factors.Utilization && l.factors.Accuracy:
		stages = []filter{
			func(s sample) bool { return s.waves == wb && s.acc == ab },
			func(s sample) bool { return s.waves == wb },
			func(s sample) bool { return s.acc == ab },
		}
	case l.factors.Utilization:
		stages = []filter{func(s sample) bool { return s.waves == wb }}
	case l.factors.Accuracy:
		stages = []filter{func(s sample) bool { return s.acc == ab }}
	}
	for _, f := range stages {
		var out []sample
		for _, s := range all {
			if f(s) {
				out = append(out, s)
			}
		}
		if len(out) >= l.minSamples {
			return out
		}
	}
	return all
}

// PredictFrac estimates the fraction of tasks a job of this size bin would
// complete in t time units under pure policy p, given the current waves and
// estimation-accuracy context. ok is false when no samples exist.
func (l *Learner) PredictFrac(p samplePolicy, bin task.SizeBin, waves, estAcc, t float64) (frac float64, ok bool) {
	ms := l.match(bin, p, waves, estAcc)
	if len(ms) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range ms {
		sum += s.curve.FracAt(t)
	}
	return sum / float64(len(ms)), true
}

// Aggregate returns the average completion curve of the matched samples: at
// a grid of times spanning the samples, the mean completed fraction. The
// result is cached until the next Record. ok is false with no samples.
func (l *Learner) Aggregate(p samplePolicy, bin task.SizeBin, waves, estAcc float64) (*Curve, bool) {
	key := aggKey{bin: bin, policy: p, waves: wavesBucket(waves), acc: accBucket(estAcc)}
	if e, hit := l.aggCache[key]; hit && e.version == l.version {
		return e.curve, e.curve != nil
	}
	ms := l.match(bin, p, waves, estAcc)
	var c *Curve
	if len(ms) > 0 {
		maxT := 0.0
		for _, s := range ms {
			if t, _ := s.curve.Final(); t > maxT {
				maxT = t
			}
		}
		if maxT > 0 {
			const gridN = 48
			c = &Curve{}
			for i := 1; i <= gridN; i++ {
				t := maxT * float64(i) / gridN
				sum := 0.0
				for _, s := range ms {
					sum += s.curve.FracAt(t)
				}
				c.Add(t, sum/float64(len(ms)))
			}
		}
	}
	l.aggCache[key] = aggEntry{version: l.version, curve: c}
	return c, c != nil
}

// PredictTime estimates the time a job of this size bin needs to complete
// fraction f of its tasks under pure policy p. ok is false when no samples
// exist or no sample provides a finite estimate.
func (l *Learner) PredictTime(p samplePolicy, bin task.SizeBin, waves, estAcc, f float64) (t float64, ok bool) {
	ms := l.match(bin, p, waves, estAcc)
	if len(ms) == 0 {
		return 0, false
	}
	sum, n := 0.0, 0
	for _, s := range ms {
		v := s.curve.TimeToFrac(f)
		if !math.IsInf(v, 1) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
