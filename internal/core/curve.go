// Package core implements the paper's primary contribution: the GRASS
// speculation algorithm (§4). GRASS starts every job under RAS and switches
// to GS as the job approaches its approximation bound. The switching point
// is learned from samples of past job performance: with probability ξ a job
// is perturbed to run pure GS or pure RAS for its whole life (§4.2), and the
// tasks-completed-versus-time curves of those sample jobs — bucketed by job
// size, wave count (a utilization proxy) and estimation accuracy (§4.1) —
// let an adaptive job evaluate every candidate switch point in its remaining
// work and switch exactly when "the best accuracy is obtained by switching
// now".
package core

import "math"

// Curve is a monotone tasks-completed-versus-time record of one job: the
// fraction of input tasks done as a function of time since the job started.
// GRASS's learner stores one curve per sample job.
type Curve struct {
	ts []float64
	fs []float64
}

// Add appends a point. Points must arrive with non-decreasing time and
// fraction; violating points are clamped monotone (completions can share a
// timestamp).
func (c *Curve) Add(t, f float64) {
	if n := len(c.ts); n > 0 {
		if t < c.ts[n-1] {
			t = c.ts[n-1]
		}
		if f < c.fs[n-1] {
			f = c.fs[n-1]
		}
	}
	c.ts = append(c.ts, t)
	c.fs = append(c.fs, f)
}

// Len returns the number of points.
func (c *Curve) Len() int { return len(c.ts) }

// Empty reports whether the curve has no points.
func (c *Curve) Empty() bool { return len(c.ts) == 0 }

// Final returns the last recorded (time, fraction), or zeros when empty.
func (c *Curve) Final() (t, f float64) {
	if len(c.ts) == 0 {
		return 0, 0
	}
	return c.ts[len(c.ts)-1], c.fs[len(c.ts)-1]
}

// FracAt returns the completed fraction at time t: the fraction of the last
// point at or before t (0 before the first point).
func (c *Curve) FracAt(t float64) float64 {
	// Binary search for the last index with ts <= t.
	lo, hi := 0, len(c.ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ts[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.fs[lo-1]
}

// TimeToFrac returns the earliest time the curve reaches fraction f. If the
// curve never got that far, the time is extrapolated proportionally from the
// final point (an error-bound sample job stops at its target fraction, but
// queries may ask beyond it).
func (c *Curve) TimeToFrac(f float64) float64 {
	if f <= 0 {
		return 0
	}
	lastT, lastF := c.Final()
	if lastF < f {
		if lastF <= 0 || lastT <= 0 {
			return math.Inf(1)
		}
		return lastT * f / lastF
	}
	lo, hi := 0, len(c.fs)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.fs[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.ts[lo]
}

// Downsample returns a curve with at most max points, keeping the first and
// last and evenly spanning the rest. The receiver is returned unchanged if
// it already fits.
func (c *Curve) Downsample(max int) *Curve {
	if max < 2 {
		max = 2
	}
	n := len(c.ts)
	if n <= max {
		return c
	}
	out := &Curve{ts: make([]float64, 0, max), fs: make([]float64, 0, max)}
	for i := 0; i < max; i++ {
		idx := i * (n - 1) / (max - 1)
		out.ts = append(out.ts, c.ts[idx])
		out.fs = append(out.fs, c.fs[idx])
	}
	return out
}
