package core

import (
	"testing"

	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{{Xi: -0.1}, {Xi: 1.5}, {Xi: 0.1, Splits: -1}}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Xi: 0.15, Factors: AllFactors()}, "GRASS"},
		{Config{Xi: 0.15, Strawman: true}, "GRASS-Strawman"},
		{Config{Xi: 0.15}, "GRASS-Best1"},
		{Config{Xi: 0.15, Factors: FactorSet{Utilization: true}}, "GRASS-Best2(util)"},
		{Config{Xi: 0.15, Factors: FactorSet{Accuracy: true}}, "GRASS-Best2(acc)"},
	}
	for _, c := range cases {
		f, err := New(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if f.Name() != c.want {
			t.Errorf("name %q, want %q", f.Name(), c.want)
		}
	}
}

func TestPerturbationRate(t *testing.T) {
	f, err := New(Config{Xi: 0.15, Factors: AllFactors(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	n := 10000
	sampled, gsCount := 0, 0
	for i := 0; i < n; i++ {
		p := f.NewPolicy(i, 100).(*policy)
		if p.sampled {
			sampled++
			if p.samplePol == sampleGS {
				gsCount++
			}
		}
	}
	frac := float64(sampled) / float64(n)
	if frac < 0.12 || frac > 0.18 {
		t.Errorf("sampled fraction %v, want ≈0.15", frac)
	}
	gsFrac := float64(gsCount) / float64(sampled)
	if gsFrac < 0.4 || gsFrac > 0.6 {
		t.Errorf("GS fraction among samples %v, want ≈0.5", gsFrac)
	}
}

func TestZeroXiNeverSamples(t *testing.T) {
	f, _ := New(Config{Xi: 0, Factors: AllFactors(), Seed: 1})
	for i := 0; i < 100; i++ {
		if f.NewPolicy(i, 50).(*policy).sampled {
			t.Fatal("ξ=0 produced a sample job")
		}
	}
}

func TestStrawmanNeverSamples(t *testing.T) {
	f, _ := New(Config{Xi: 0.5, Strawman: true, Seed: 1})
	for i := 0; i < 100; i++ {
		if f.NewPolicy(i, 50).(*policy).sampled {
			t.Fatal("strawman produced a sample job")
		}
	}
}

func newAdaptive(t *testing.T, cfg Config, numTasks int) *policy {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := f.NewPolicy(0, numTasks).(*policy)
	p.sampled = false
	return p
}

func deadlineCtx(remaining float64, total, width int) spec.Ctx {
	return spec.Ctx{
		Kind:               task.DeadlineBound,
		RemainingTime:      remaining,
		TargetTasks:        total,
		TotalTasks:         total,
		WaveWidth:          width,
		EstimationAccuracy: 0.75,
	}
}

func errorCtx(targetLeft, total, width int) spec.Ctx {
	return spec.Ctx{
		Kind:               task.ErrorBound,
		TargetTasks:        targetLeft,
		TotalTasks:         total,
		WaveWidth:          width,
		EstimationAccuracy: 0.75,
	}
}

func TestStrawmanStaticRuleDeadline(t *testing.T) {
	p := newAdaptive(t, Config{Strawman: true}, 100)
	tasks := []spec.TaskView{{Index: 0, TNew: 5}, {Index: 1, TNew: 5}, {Index: 2, TNew: 5}}
	// Deadline far away: stays RAS.
	if p.switchWith(deadlineCtx(100, 100, 10), tasks) {
		t.Fatal("strawman switched with a loose deadline")
	}
	// Two median task durations left: switch.
	if !p.switchWith(deadlineCtx(10, 100, 10), tasks) {
		t.Fatal("strawman did not switch near the deadline")
	}
}

func TestStrawmanStaticRuleError(t *testing.T) {
	p := newAdaptive(t, Config{Strawman: true}, 100)
	// 50 tasks remaining, wave width 10: more than two waves → RAS.
	if p.switchWith(errorCtx(50, 100, 10), nil) {
		t.Fatal("strawman switched with many waves remaining")
	}
	// 15 remaining ≤ 2×10 → switch.
	if !p.switchWith(errorCtx(15, 100, 10), nil) {
		t.Fatal("strawman did not switch in the last two waves")
	}
}

func TestColdStartFallsBackToStatic(t *testing.T) {
	// No samples in the learner: adaptive GRASS must behave like the
	// strawman rather than guessing.
	p := newAdaptive(t, Config{Xi: 0.15, Factors: AllFactors()}, 100)
	tasks := []spec.TaskView{{Index: 0, TNew: 5}}
	if p.switchWith(deadlineCtx(100, 100, 10), tasks) {
		t.Fatal("cold-start switched with a loose deadline")
	}
	if !p.switchWith(deadlineCtx(8, 100, 10), tasks) {
		t.Fatal("cold-start did not fall back to the static rule")
	}
}

func TestLearnedSwitchDeadline(t *testing.T) {
	// GS samples complete fast early; RAS samples ramp slowly but finish
	// higher. With lots of remaining time the split search should keep RAS;
	// with little time it should switch to GS.
	f, _ := New(Config{Xi: 0.15, Factors: AllFactors(), Seed: 3})
	for i := 0; i < 5; i++ {
		// GS: reaches 60% at t=10 then flat.
		var gs Curve
		gs.Add(2, 0.3)
		gs.Add(10, 0.6)
		gs.Add(40, 0.65)
		f.learner.Record(sampleGS, task.Medium, 3, 0.75, &gs)
		// RAS: slow start, strong finish.
		var ras Curve
		ras.Add(10, 0.2)
		ras.Add(25, 0.7)
		ras.Add(40, 1.0)
		f.learner.Record(sampleRAS, task.Medium, 3, 0.75, &ras)
	}
	p := f.NewPolicy(0, 100).(*policy)
	p.sampled = false
	tasks := []spec.TaskView{{Index: 0, TNew: 5}}
	if p.switchWith(deadlineCtx(40, 100, 30), tasks) {
		t.Fatal("switched despite RAS being predicted better over a long horizon")
	}
	if !p.switchWith(deadlineCtx(6, 100, 30), tasks) {
		t.Fatal("did not switch with a short horizon where GS dominates")
	}
}

func TestLearnedSwitchError(t *testing.T) {
	f, _ := New(Config{Xi: 0.15, Factors: AllFactors(), Seed: 4})
	for i := 0; i < 5; i++ {
		// GS reaches small fractions very fast but is slow to high
		// fractions; RAS is linear. Splitting should favor RAS for large
		// remaining work and GS for the tail.
		var gs Curve
		gs.Add(0.2, 0.1)
		gs.Add(1, 0.2)
		gs.Add(30, 1.0)
		f.learner.Record(sampleGS, task.Medium, 3, 0.75, &gs)
		var ras Curve
		for j := 1; j <= 10; j++ {
			ras.Add(float64(j), float64(j)/10)
		}
		f.learner.Record(sampleRAS, task.Medium, 3, 0.75, &ras)
	}
	p := f.NewPolicy(0, 100).(*policy)
	p.sampled = false
	if p.switchWith(errorCtx(80, 100, 30), nil) {
		t.Fatal("switched with 80% of the work remaining")
	}
	if !p.switchWith(errorCtx(10, 100, 30), nil) {
		t.Fatal("did not switch with only 10% remaining")
	}
}

func TestSwitchIsSticky(t *testing.T) {
	p := newAdaptive(t, Config{Strawman: true}, 10)
	tasks := []spec.TaskView{{Index: 0, TNew: 5}}
	// Force a switch (the pick itself may decline — TNew exceeds the
	// remaining time — but the mode change must stick).
	p.Pick(deadlineCtx(1, 10, 10), tasks)
	if !p.switched {
		t.Fatal("policy did not record the switch")
	}
	// Even with a long horizon afterwards, it stays GS (switching back is
	// never considered — the job only moves toward its bound).
	p.Pick(deadlineCtx(1000, 10, 10), tasks)
	if !p.switched {
		t.Fatal("policy un-switched")
	}
}

func TestSampleJobUsesPurePolicy(t *testing.T) {
	f, _ := New(Config{Xi: 1.0, Factors: AllFactors(), Seed: 5})
	sawGS, sawRAS := false, false
	for i := 0; i < 50 && !(sawGS && sawRAS); i++ {
		p := f.NewPolicy(i, 100).(*policy)
		if !p.sampled {
			t.Fatal("ξ=1 job not sampled")
		}
		// A deadline context in which GS and RAS differ: a running task
		// with positive saving but not the lowest t_new.
		tasks := []spec.TaskView{
			{Index: 0, Running: true, Speculable: true, Copies: 1, TRem: 50, TNew: 10},
			{Index: 1, TNew: 5},
		}
		d, ok := p.Pick(deadlineCtx(100, 100, 10), tasks)
		if !ok {
			t.Fatal("sample job declined")
		}
		if d.Speculative {
			sawRAS = true // RAS prefers the positive-saving speculation
		} else {
			sawGS = true // GS prefers the shortest fresh task
		}
	}
	if !sawGS || !sawRAS {
		t.Fatalf("samples not split across policies: GS=%v RAS=%v", sawGS, sawRAS)
	}
}

func TestOnJobEndRecordsOnlySamples(t *testing.T) {
	f, _ := New(Config{Xi: 1.0, Factors: AllFactors(), Seed: 6})
	p := f.NewPolicy(0, 100).(*policy)
	p.OnTaskComplete(10, 5)
	p.OnTaskComplete(50, 9)
	p.OnJobEnd(spec.Ctx{WaveWidth: 20, EstimationAccuracy: 0.8}, 0.5, 9)
	if f.Learner().Samples(task.Medium, p.samplePol) != 1 {
		t.Fatal("sample job curve not recorded")
	}
	// Adaptive jobs record nothing.
	q := f.NewPolicy(1, 100).(*policy)
	q.sampled = false
	q.OnTaskComplete(10, 5)
	before := f.Learner().Samples(task.Medium, sampleGS) + f.Learner().Samples(task.Medium, sampleRAS)
	q.OnJobEnd(spec.Ctx{WaveWidth: 20, EstimationAccuracy: 0.8}, 0.5, 9)
	after := f.Learner().Samples(task.Medium, sampleGS) + f.Learner().Samples(task.Medium, sampleRAS)
	if after != before {
		t.Fatal("adaptive job polluted the learner")
	}
}

func TestMedianTNew(t *testing.T) {
	if medianTNew(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
	views := []spec.TaskView{{TNew: 3}, {TNew: 1}, {TNew: 2}}
	if got := medianTNew(views); got != 2 {
		t.Fatalf("median %v, want 2", got)
	}
	views = append(views, spec.TaskView{TNew: 10})
	if got := medianTNew(views); got != 2.5 {
		t.Fatalf("median %v, want 2.5", got)
	}
}
