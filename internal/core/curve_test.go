package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/approx-analytics/grass/internal/dist"
)

func TestCurveBasics(t *testing.T) {
	var c Curve
	if !c.Empty() || c.Len() != 0 {
		t.Fatal("fresh curve not empty")
	}
	if ft, ff := c.Final(); ft != 0 || ff != 0 {
		t.Fatal("empty Final should be zeros")
	}
	c.Add(1, 0.1)
	c.Add(2, 0.2)
	c.Add(4, 0.5)
	if c.Len() != 3 || c.Empty() {
		t.Fatal("curve length wrong")
	}
	ft, ff := c.Final()
	if ft != 4 || ff != 0.5 {
		t.Fatalf("Final = (%v, %v)", ft, ff)
	}
}

func TestCurveFracAt(t *testing.T) {
	var c Curve
	c.Add(1, 0.25)
	c.Add(2, 0.5)
	c.Add(4, 1.0)
	cases := []struct{ t, want float64 }{
		{0, 0}, {0.99, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {3.9, 0.5}, {4, 1}, {100, 1},
	}
	for _, cs := range cases {
		if got := c.FracAt(cs.t); got != cs.want {
			t.Errorf("FracAt(%v) = %v, want %v", cs.t, got, cs.want)
		}
	}
}

func TestCurveTimeToFrac(t *testing.T) {
	var c Curve
	c.Add(1, 0.25)
	c.Add(2, 0.5)
	c.Add(4, 1.0)
	cases := []struct{ f, want float64 }{
		{0, 0}, {0.1, 1}, {0.25, 1}, {0.3, 2}, {0.5, 2}, {0.9, 4}, {1, 4},
	}
	for _, cs := range cases {
		if got := c.TimeToFrac(cs.f); got != cs.want {
			t.Errorf("TimeToFrac(%v) = %v, want %v", cs.f, got, cs.want)
		}
	}
}

func TestCurveTimeToFracExtrapolates(t *testing.T) {
	var c Curve
	c.Add(2, 0.5) // job stopped at half done
	if got := c.TimeToFrac(1.0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("extrapolated time %v, want 4", got)
	}
}

func TestCurveTimeToFracInfiniteWhenNoProgress(t *testing.T) {
	var c Curve
	c.Add(5, 0) // never completed anything
	if got := c.TimeToFrac(0.5); !math.IsInf(got, 1) {
		t.Fatalf("got %v, want +Inf", got)
	}
}

func TestCurveMonotoneClamping(t *testing.T) {
	var c Curve
	c.Add(2, 0.5)
	c.Add(1, 0.4) // regressions are clamped
	ft, ff := c.Final()
	if ft < 2 || ff < 0.5 {
		t.Fatalf("clamping failed: (%v, %v)", ft, ff)
	}
}

func TestCurveDownsample(t *testing.T) {
	var c Curve
	for i := 0; i < 100; i++ {
		c.Add(float64(i), float64(i)/100)
	}
	d := c.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d points", d.Len())
	}
	// First and last preserved.
	if d.ts[0] != 0 || d.ts[9] != 99 {
		t.Fatalf("endpoints lost: %v ... %v", d.ts[0], d.ts[9])
	}
	// No-op when already small.
	if c2 := d.Downsample(50); c2 != d {
		t.Fatal("downsample of small curve should return receiver")
	}
}

func TestCurvePropertyMonotone(t *testing.T) {
	// Whatever is added, FracAt is non-decreasing in t and TimeToFrac is
	// non-decreasing in f.
	if err := quick.Check(func(seed int64) bool {
		r := dist.NewRNG(seed)
		var c Curve
		tm, f := 0.0, 0.0
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			tm += r.Float64()
			f += r.Float64() / float64(n)
			if f > 1 {
				f = 1
			}
			c.Add(tm, f)
		}
		prev := -1.0
		for q := 0.0; q <= tm+1; q += tm / 7.0 {
			v := c.FracAt(q)
			if v < prev {
				return false
			}
			prev = v
		}
		prevT := -1.0
		for q := 0.05; q <= 1; q += 0.1 {
			v := c.TimeToFrac(q)
			if math.IsInf(v, 1) {
				continue
			}
			if v < prevT {
				return false
			}
			prevT = v
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
