package simevent

import (
	"math/rand"
	"testing"
)

// The handle-lifetime contract (package doc): a *Event handle is valid
// while its event is pending — that whole time the caller may legally
// Cancel it — and the engine may only hand the same object back from a
// later schedule call after the event has fired or been cancelled. These
// tests hold a shadow set of every handle still pending and witness, for
// both queue implementations, that no schedule call ever returns an object
// aliasing a live handle, and that a live handle never reads as cancelled.

// lifetimeHarness drives one engine with a random schedule/cancel/step/
// run-until mix while checking the shadow set after every operation.
func lifetimeHarness(t *testing.T, kind QueueKind, seed int64, nOps int) {
	t.Helper()
	eng := NewKind(kind)
	rng := rand.New(rand.NewSource(seed))
	live := make(map[*Event]int) // handle -> id, the could-still-Cancel set
	nextID := 0

	check := func(op string) {
		for ev, id := range live {
			if ev.Cancelled() {
				t.Fatalf("%s/%s: pending handle #%d reads Cancelled", kind, op, id)
			}
			if ev.Fn == nil {
				t.Fatalf("%s/%s: pending handle #%d lost its callback — recycled while live", kind, op, id)
			}
		}
	}
	schedule := func(tm float64, first bool) {
		id := nextID
		nextID++
		var ev *Event
		fn := func(*Engine) {
			// Fired: the handle leaves the could-still-Cancel set here, the
			// only legal hand-back point besides Cancel.
			delete(live, ev)
		}
		if first {
			ev = eng.AtFirst(tm, fn)
		} else {
			ev = eng.At(tm, fn)
		}
		if other, clash := live[ev]; clash {
			t.Fatalf("%s: schedule #%d returned the live handle of pending #%d — recycled while a caller could still Cancel it", kind, id, other)
		}
		live[ev] = id
	}
	anyLive := func() *Event {
		// Deterministic pick: the live handle with the smallest id.
		var best *Event
		bestID := -1
		for ev, id := range live {
			if bestID < 0 || id < bestID {
				best, bestID = ev, id
			}
		}
		return best
	}

	for i := 0; i < nOps; i++ {
		switch op := rng.Intn(10); {
		case op < 4:
			// Quantized times force shared buckets and staged batches.
			schedule(eng.Now()+float64(rng.Intn(8))*0.5, rng.Intn(4) == 0)
			check("schedule")
		case op < 6:
			if ev := anyLive(); ev != nil {
				delete(live, ev)
				eng.Cancel(ev)
				if !ev.Cancelled() {
					t.Fatalf("%s: freshly cancelled handle does not read Cancelled", kind)
				}
			}
			check("cancel")
		case op < 9:
			eng.Step()
			check("step")
		default:
			eng.RunUntil(eng.Now() + float64(rng.Intn(4)))
			check("rununtil")
		}
	}
	for eng.Step() {
	}
	if len(live) != 0 {
		t.Fatalf("%s: %d handles still tracked after a full drain — events lost", kind, len(live))
	}
}

func TestHandleLifetimeContract(t *testing.T) {
	for _, kind := range []QueueKind{Heap, Calendar} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				lifetimeHarness(t, kind, seed, 400)
			}
		})
	}
}

// FuzzHandleLifetime lets the fuzzer hunt for interleavings the seeded
// harness misses; the op mix is re-derived from the fuzz input.
func FuzzHandleLifetime(f *testing.F) {
	f.Add(int64(1), uint16(400))
	f.Add(int64(99), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, nOps uint16) {
		if nOps > 4000 {
			nOps = 4000
		}
		for _, kind := range []QueueKind{Heap, Calendar} {
			lifetimeHarness(t, kind, seed, int(nOps))
		}
	})
}
