package simevent

import "container/heap"

// heapQueue is the binary-heap queue — the original engine and the
// reference implementation the differential harness checks the calendar
// queue against. O(log n) per push/pop.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) remove(ev *Event) { heap.Remove(&q.h, ev.index) }

func (q *heapQueue) len() int { return len(q.h) }

// drainMin pops the heap while the top shares the minimum (Time, class);
// heap pops among equal keys come out in seq order, so the batch is FIFO.
func (q *heapQueue) drainMin(dst []*Event) []*Event {
	top := q.h[0]
	t, c := top.Time, top.class
	for len(q.h) > 0 && q.h[0].Time == t && q.h[0].class == c {
		dst = append(dst, heap.Pop(&q.h).(*Event))
	}
	return dst
}

// eventHeap orders by (Time, class, seq).
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventBefore(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
