package simevent

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.At(tm, func(*Engine) { got = append(got, tm) })
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(*Engine) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(2.5, func(en *Engine) {
		if en.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", en.Now())
		}
	})
	e.Run(0)
	if e.Now() != 2.5 {
		t.Fatalf("final Now() = %v, want 2.5", e.Now())
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at float64
	e.At(3, func(en *Engine) {
		en.After(2, func(en2 *Engine) { at = en2.Now() })
	})
	e.Run(0)
	if at != 5 {
		t.Fatalf("After(2) from t=3 fired at %v, want 5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(5, func(*Engine) {})
	})
	e.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func(*Engine) {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelMiddleOfQueue(t *testing.T) {
	e := New()
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(float64(i), func(*Engine) { got = append(got, i) }))
	}
	e.Cancel(evs[7])
	e.Cancel(evs[13])
	e.Run(0)
	if len(got) != 18 {
		t.Fatalf("fired %d, want 18", len(got))
	}
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("out of order after cancels: %v", got)
	}
}

func TestRunLimit(t *testing.T) {
	e := New()
	// A self-perpetuating event chain must be stopped by the limit.
	var rearm func(*Engine)
	rearm = func(en *Engine) { en.After(1, rearm) }
	e.At(0, rearm)
	n, err := e.Run(100)
	if err == nil {
		t.Fatal("expected limit error")
	}
	if n != 100 {
		t.Fatalf("fired %d, want 100", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func(*Engine) { got = append(got, tm) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	if e.Len() != 2 {
		t.Fatalf("pending %d, want 2", e.Len())
	}
	// RunUntil past the queue end advances the clock anyway.
	e.RunUntil(10)
	if e.Now() != 10 || e.Len() != 0 {
		t.Fatalf("Now=%v Len=%d after RunUntil(10)", e.Now(), e.Len())
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func(*Engine) {})
	}
	e.Run(0)
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

func TestOrderingProperty(t *testing.T) {
	// For arbitrary non-negative schedules, events always fire in
	// non-decreasing time order and all fire exactly once.
	if err := quick.Check(func(raw []float64) bool {
		e := New()
		times := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			if v > 1e12 || v != v { // cap and skip NaN
				continue
			}
			times = append(times, v)
		}
		var fired []float64
		for _, tm := range times {
			tm := tm
			e.At(tm, func(*Engine) { fired = append(fired, tm) })
		}
		e.Run(0)
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
