package simevent

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.At(tm, func(*Engine) { got = append(got, tm) })
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(*Engine) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(2.5, func(en *Engine) {
		if en.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", en.Now())
		}
	})
	e.Run(0)
	if e.Now() != 2.5 {
		t.Fatalf("final Now() = %v, want 2.5", e.Now())
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at float64
	e.At(3, func(en *Engine) {
		en.After(2, func(en2 *Engine) { at = en2.Now() })
	})
	e.Run(0)
	if at != 5 {
		t.Fatalf("After(2) from t=3 fired at %v, want 5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(5, func(*Engine) {})
	})
	e.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func(*Engine) {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelMiddleOfQueue(t *testing.T) {
	e := New()
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(float64(i), func(*Engine) { got = append(got, i) }))
	}
	e.Cancel(evs[7])
	e.Cancel(evs[13])
	e.Run(0)
	if len(got) != 18 {
		t.Fatalf("fired %d, want 18", len(got))
	}
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("out of order after cancels: %v", got)
	}
}

func TestRunLimit(t *testing.T) {
	e := New()
	// A self-perpetuating event chain must be stopped by the limit.
	var rearm func(*Engine)
	rearm = func(en *Engine) { en.After(1, rearm) }
	e.At(0, rearm)
	n, err := e.Run(100)
	if err == nil {
		t.Fatal("expected limit error")
	}
	if n != 100 {
		t.Fatalf("fired %d, want 100", n)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func(*Engine) { got = append(got, tm) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(got))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	if e.Len() != 2 {
		t.Fatalf("pending %d, want 2", e.Len())
	}
	// RunUntil past the queue end advances the clock anyway.
	e.RunUntil(10)
	if e.Now() != 10 || e.Len() != 0 {
		t.Fatalf("Now=%v Len=%d after RunUntil(10)", e.Now(), e.Len())
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func(*Engine) {})
	}
	e.Run(0)
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", e.Fired())
	}
}

// TestAtFirstOutranksAt: an AtFirst event fires before every same-time At
// event no matter the insertion order, while ties within each class stay
// FIFO — the property that makes streamed job admission order identical to
// the materialized schedule even at tied timestamps.
func TestAtFirstOutranksAt(t *testing.T) {
	e := New()
	var got []string
	e.At(1, func(*Engine) { got = append(got, "at0") })
	e.At(1, func(*Engine) { got = append(got, "at1") })
	e.AtFirst(1, func(*Engine) { got = append(got, "first0") })
	e.AtFirst(1, func(*Engine) { got = append(got, "first1") })
	e.At(0.5, func(*Engine) { got = append(got, "early") })
	e.Run(0)
	want := []string{"early", "first0", "first1", "at0", "at1"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	// Recycling must preserve the class: a pooled ex-AtFirst event
	// scheduled via At no longer outranks anything.
	e.At(2, func(*Engine) { got = append(got, "late-at") })
	e.AtFirst(2, func(*Engine) { got = append(got, "late-first") })
	e.Run(0)
	if got[len(got)-1] != "late-at" {
		t.Fatalf("recycled event kept its old class: %v", got)
	}
}

// TestEventPoolingNoAllocsAfterWarmup pins the free list's purpose: a
// schedule/fire cycle on a warmed-up engine performs no heap allocation,
// so long replays do not generate per-event garbage.
func TestEventPoolingNoAllocsAfterWarmup(t *testing.T) {
	e := New()
	fn := func(*Engine) {}
	// Warm up: populate the free list beyond the steady-state queue depth.
	for i := 0; i < 64; i++ {
		e.At(float64(i), fn)
	}
	e.Run(0)
	allocs := testing.AllocsPerRun(200, func() {
		e.At(e.Now()+1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+fire allocated %v objects per op after warm-up, want 0", allocs)
	}
	// Cancelled events are recycled too.
	allocs = testing.AllocsPerRun(200, func() {
		ev := e.At(e.Now()+1, fn)
		e.Cancel(ev)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocated %v objects per op after warm-up, want 0", allocs)
	}
}

// TestEventPoolingReusesObjects verifies fired and cancelled events really
// come back from the free list (identity, not just alloc counting).
func TestEventPoolingReusesObjects(t *testing.T) {
	e := New()
	a := e.At(1, func(*Engine) {})
	e.Cancel(a)
	b := e.At(2, func(*Engine) {})
	if a != b {
		t.Fatal("cancelled event was not recycled by the next At")
	}
	if b.Cancelled() {
		t.Fatal("recycled event still reports Cancelled")
	}
	e.Run(0)
	c := e.At(3, func(*Engine) {})
	if c != b {
		t.Fatal("fired event was not recycled by the next At")
	}
	e.Run(0)
}

// TestCancelledSemanticsWithPooling: the Cancelled query stays correct for
// the window the handle contract allows — after Cancel and before the
// object is handed out again.
func TestCancelledSemanticsWithPooling(t *testing.T) {
	e := New()
	fired := false
	keep := e.At(1, func(*Engine) { fired = true })
	e.Cancel(keep)
	if !keep.Cancelled() {
		t.Fatal("Cancelled() false immediately after Cancel")
	}
	// Double cancel of a not-yet-reused handle stays a no-op.
	e.Cancel(keep)
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// A pending event never reports cancelled; a fired one neither.
	p := e.At(5, func(*Engine) {})
	if p.Cancelled() {
		t.Fatal("pending event reports Cancelled")
	}
	e.Run(0)
}

// TestPoolingPreservesFIFO: recycling must not disturb the (Time, seq)
// total order — a recycled object carries a fresh sequence number.
func TestPoolingPreservesFIFO(t *testing.T) {
	e := New()
	var got []int
	// Round 1 populates the free list.
	for i := 0; i < 8; i++ {
		e.At(1, func(*Engine) {})
	}
	e.Run(0)
	// Round 2 reuses it; ties must still fire in insertion order.
	for i := 0; i < 8; i++ {
		i := i
		e.At(2, func(*Engine) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO after recycling: %v", got)
		}
	}
}

func TestOrderingProperty(t *testing.T) {
	// For arbitrary non-negative schedules, events always fire in
	// non-decreasing time order and all fire exactly once.
	if err := quick.Check(func(raw []float64) bool {
		e := New()
		times := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			if v > 1e12 || v != v { // cap and skip NaN
				continue
			}
			times = append(times, v)
		}
		var fired []float64
		for _, tm := range times {
			tm := tm
			e.At(tm, func(*Engine) { fired = append(fired, tm) })
		}
		e.Run(0)
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAtLastFiresAfterSameTimeEvents: an AtLast event fires after every
// same-time AtFirst and At event no matter the insertion order, with FIFO
// ties within the class — the contract that lets a fault injected at time t
// observe every arrival and completion of that instant before it applies.
func TestAtLastFiresAfterSameTimeEvents(t *testing.T) {
	e := New()
	var got []string
	e.AtLast(1, func(*Engine) { got = append(got, "last0") })
	e.At(1, func(*Engine) { got = append(got, "at0") })
	e.AtLast(1, func(*Engine) { got = append(got, "last1") })
	e.AtFirst(1, func(*Engine) { got = append(got, "first0") })
	e.At(1, func(*Engine) { got = append(got, "at1") })
	e.At(0.5, func(*Engine) { got = append(got, "early") })
	e.AtLast(2, func(*Engine) { got = append(got, "next-tick") })
	e.Run(0)
	want := []string{"early", "first0", "at0", "at1", "last0", "last1", "next-tick"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	// An AtLast handler scheduling more same-time work: the new events fire
	// at the same timestamp (classes 0/1 were already drained, but the
	// engine must not deadlock or skip them).
	got = got[:0]
	e.AtLast(3, func(en *Engine) {
		got = append(got, "fault")
		en.At(3, func(*Engine) { got = append(got, "respawn") })
	})
	e.Run(0)
	if len(got) != 2 || got[0] != "fault" || got[1] != "respawn" {
		t.Fatalf("AtLast rescheduling same-time work fired %v", got)
	}
	// Cancel applies to staged AtLast events like any other class, and
	// recycling must not leak the class: a pooled ex-AtLast event scheduled
	// via At fires in its new class rank.
	got = got[:0]
	ev := e.AtLast(4, func(*Engine) { got = append(got, "cancelled") })
	e.Cancel(ev)
	e.AtLast(4, func(*Engine) { got = append(got, "last") })
	e.At(4, func(*Engine) { got = append(got, "at") })
	e.Run(0)
	if len(got) != 2 || got[0] != "at" || got[1] != "last" {
		t.Fatalf("cancel/recycle across AtLast fired %v", got)
	}
}
