package simevent

import "math"

// calendarQueue is a calendar queue (Brown 1988) specialized for the
// simulator's quantized-timestamp regime. Events hash into power-of-two
// time buckets by virtual bucket index floor(Time/width); a cursor walks
// the buckets in virtual-time order and drainMin lifts the whole minimal
// (Time, class) group out of one bucket in a single scan. Push, remove and
// drain are O(1) amortized when the width tracks the observed event
// spacing; the structure resizes and re-widths itself as the pending count
// crosses powers of two.
//
// Correctness does not depend on the width being well tuned — only
// throughput does. The cursor acceptance test compares virtual bucket
// indices computed by the same vbFor the placement used (never re-derived
// float window bounds), so placement and scan can never disagree about
// which window an event belongs to, and the (Time, class, seq) order the
// engine promises is exact for any width. A sweep that finds every window
// empty falls back to a direct minimum search and jumps the cursor there.
type calendarQueue struct {
	width   float64
	buckets [][]*Event
	scratch []*Event // resize staging, reused
	vb      int64    // cursor's virtual bucket; MaxInt64 when empty
	mask    int64
	n       int
}

const (
	calInitBuckets = 32
	// calMaxVB clamps virtual bucket indices: everything at or beyond it
	// shares one far bucket that only the direct-search fallback visits.
	// Because vbFor is monotone in Time, a minimum in the far bucket means
	// every pending event is there, so scanning it stays correct.
	calMaxVB = int64(1) << 60
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		width:   1,
		buckets: make([][]*Event, calInitBuckets),
		mask:    calInitBuckets - 1,
		vb:      math.MaxInt64,
	}
}

// vbFor maps a time to its virtual bucket index. Pure and monotone
// nondecreasing in t — both the placement and the cursor scan use it, which
// is what makes the windowed scan exact regardless of float rounding.
func (cq *calendarQueue) vbFor(t float64) int64 {
	q := t / cq.width
	if q >= float64(calMaxVB) {
		return calMaxVB
	}
	return int64(q)
}

func (cq *calendarQueue) len() int { return cq.n }

func (cq *calendarQueue) push(ev *Event) {
	if cq.n+1 > 2*len(cq.buckets) {
		cq.resize(2 * len(cq.buckets))
	}
	cq.n++
	if v := cq.vbFor(ev.Time); v < cq.vb {
		// The cursor may never sit past the earliest pending event; a push
		// behind it (a bound probe unstaging, or a drained-empty restart)
		// pulls it back.
		cq.vb = v
	}
	cq.place(ev)
}

func (cq *calendarQueue) place(ev *Event) {
	b := int(cq.vbFor(ev.Time) & cq.mask)
	ev.bucket = int32(b)
	ev.index = len(cq.buckets[b])
	cq.buckets[b] = append(cq.buckets[b], ev)
}

func (cq *calendarQueue) remove(ev *Event) {
	b := cq.buckets[ev.bucket]
	last := len(b) - 1
	b[ev.index] = b[last]
	b[ev.index].index = ev.index
	b[last] = nil
	cq.buckets[ev.bucket] = b[:last]
	cq.n--
	if cq.n < len(cq.buckets)/2 && len(cq.buckets) > calInitBuckets {
		cq.resize(len(cq.buckets) / 2)
	}
}

// drainMin removes the minimal (Time, class) group and appends it to dst in
// seq order. Same-Time events always share a bucket (vbFor is a function of
// Time alone), so one bucket scan collects the whole group.
func (cq *calendarQueue) drainMin(dst []*Event) []*Event {
	for tries := 0; tries < len(cq.buckets); tries++ {
		var best *Event
		for _, ev := range cq.buckets[int(cq.vb&cq.mask)] {
			if cq.vbFor(ev.Time) <= cq.vb && (best == nil || eventBefore(ev, best)) {
				best = ev
			}
		}
		if best != nil {
			return cq.take(best, dst)
		}
		cq.vb++
	}
	// A whole sweep of empty windows: find the minimum directly and jump
	// the cursor to it. This is what bounds a sparse region — and what
	// serves the far bucket, whose window no cursor walk reaches.
	var best *Event
	for _, b := range cq.buckets {
		for _, ev := range b {
			if best == nil || eventBefore(ev, best) {
				best = ev
			}
		}
	}
	cq.vb = cq.vbFor(best.Time)
	return cq.take(best, dst)
}

// take removes best's whole (Time, class) group from its bucket, appending
// it to dst in seq order.
func (cq *calendarQueue) take(best *Event, dst []*Event) []*Event {
	b := cq.buckets[best.bucket]
	start := len(dst)
	w := b[:0]
	for _, ev := range b {
		if ev.Time == best.Time && ev.class == best.class {
			dst = append(dst, ev)
		} else {
			ev.index = len(w)
			w = append(w, ev)
		}
	}
	for i := len(w); i < len(b); i++ {
		b[i] = nil
	}
	cq.buckets[best.bucket] = w
	cq.n -= len(dst) - start
	// FIFO within the group: insertion sort by seq — same-(Time, class)
	// groups are drawn from one bucket and are almost always tiny.
	grp := dst[start:]
	for i := 1; i < len(grp); i++ {
		for j := i; j > 0 && grp[j].seq < grp[j-1].seq; j-- {
			grp[j], grp[j-1] = grp[j-1], grp[j]
		}
	}
	if cq.n == 0 {
		cq.vb = math.MaxInt64
	} else if cq.n < len(cq.buckets)/2 && len(cq.buckets) > calInitBuckets {
		cq.resize(len(cq.buckets) / 2)
	}
	return dst
}

// resize rebuilds the bucket array at the new size and recomputes the
// bucket width from the observed time spread — 3x the mean inter-event gap,
// floored so the virtual index space stays far from the clamp. Width
// changes remap every event, so the cursor is re-derived from the true
// minimum; order is unaffected (see the type comment).
func (cq *calendarQueue) resize(nb int) {
	if nb < calInitBuckets {
		nb = calInitBuckets
	}
	evs := cq.scratch[:0]
	tmin, tmax := math.Inf(1), math.Inf(-1)
	for _, b := range cq.buckets {
		for _, ev := range b {
			evs = append(evs, ev)
			if ev.Time < tmin {
				tmin = ev.Time
			}
			if ev.Time > tmax && !math.IsInf(ev.Time, 1) {
				tmax = ev.Time
			}
		}
	}
	if len(evs) > 0 && tmax > tmin {
		w := 3 * (tmax - tmin) / float64(len(evs))
		if floor := tmax / float64(int64(1)<<40); w < floor {
			w = floor
		}
		if w > 0 && !math.IsInf(w, 1) {
			cq.width = w
		}
	}
	cq.buckets = make([][]*Event, nb)
	cq.mask = int64(nb - 1)
	cq.vb = math.MaxInt64
	for _, ev := range evs {
		cq.place(ev)
	}
	if len(evs) > 0 {
		cq.vb = cq.vbFor(tmin)
	}
	cq.scratch = evs[:0]
}
