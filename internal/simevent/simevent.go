// Package simevent provides the discrete-event simulation engine used by the
// cluster simulator: a time-ordered event queue with a deterministic
// tie-break and a simulation clock.
//
// Events are arbitrary callbacks scheduled at absolute simulation times.
// Ties are broken by insertion order (FIFO among equal timestamps) so that
// runs are fully reproducible regardless of heap internals.
//
// # Event recycling
//
// Event objects are owned by the engine and recycled through a free list:
// once an event has fired or been cancelled, the engine may hand the same
// object back from a later At/After call. A *Event handle is therefore only
// valid while its event is pending plus the window until the next schedule
// call — callers must drop (or nil out) handles when the event fires or is
// cancelled, and must not Cancel the same handle twice with scheduling in
// between. Million-job replays schedule hundreds of millions of events;
// recycling keeps them from being the simulator's dominant garbage.
package simevent

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events.
type Event struct {
	Time float64
	Fn   func(*Engine)

	class uint8  // tie rank: AtFirst events (0) fire before At events (1)
	seq   uint64 // insertion order, breaks (timestamp, class) ties
	index int    // heap index, -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// Engine owns the event queue and the simulation clock.
type Engine struct {
	now    float64
	nextSq uint64
	queue  eventHeap
	fired  uint64
	free   []*Event // recycled fired/cancelled events, see package doc
}

// New returns an engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns how many events have executed, useful for run statistics and
// loop guards in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn at absolute time t and returns the event handle. It panics
// if t is before the current time — that would reorder history. The handle
// comes from the engine's free list and is reclaimed when the event fires or
// is cancelled (see the package doc for the handle-lifetime contract).
func (e *Engine) At(t float64, fn func(*Engine)) *Event {
	return e.schedule(t, 1, fn)
}

// AtFirst schedules fn at absolute time t ahead of every same-time event
// scheduled with At, regardless of insertion order; ties among AtFirst
// events keep FIFO order. The simulator schedules job arrivals with it so
// that admission order at a tied timestamp does not depend on when the
// arrival was enqueued — the property that makes streamed and materialized
// replays identical even for traces with quantized (tie-prone) timestamps.
func (e *Engine) AtFirst(t float64, fn func(*Engine)) *Event {
	return e.schedule(t, 0, fn)
}

func (e *Engine) schedule(t float64, class uint8, fn func(*Engine)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simevent: scheduling at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.Time, ev.Fn, ev.class, ev.seq = t, fn, class, e.nextSq
	} else {
		ev = &Event{Time: t, Fn: fn, class: class, seq: e.nextSq}
	}
	e.nextSq++
	heap.Push(&e.queue, ev)
	return ev
}

// recycle returns a dead event to the free list. The callback reference is
// dropped so recycling never pins the scheduler state a closure captured.
func (e *Engine) recycle(ev *Event) {
	ev.Fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn delta time units from now.
func (e *Engine) After(delta float64, fn func(*Engine)) *Event {
	if delta < 0 {
		panic(fmt.Sprintf("simevent: negative delay %v", delta))
	}
	return e.At(e.now+delta, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
	e.recycle(ev)
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.Time
	e.fired++
	ev.Fn(e)
	// Recycle only after the callback returns: the callback may still read
	// the handle (but must drop it afterwards — see the package doc).
	e.recycle(ev)
	return true
}

// Run fires events until the queue drains or until limit events have fired
// (limit <= 0 means no limit). It returns the number of events fired by this
// call and an error if the limit was hit — a guard against runaway
// simulations.
func (e *Engine) Run(limit uint64) (uint64, error) {
	return e.RunEvery(limit, 0, nil)
}

// RunEvery is Run with a periodic stop check: every `every` fired events
// (and once before the first) check is called, and a non-nil error stops
// the loop immediately and is returned with the queue intact. every <= 0 or
// a nil check is plain Run. The simulator uses this for context
// cancellation — the check keys the cost off the hot path (one call per
// batch, not per event), and stopping between events never observes a
// half-applied callback, so the abandoned state is internally consistent.
func (e *Engine) RunEvery(limit, every uint64, check func() error) (uint64, error) {
	var n uint64
	if check != nil {
		if err := check(); err != nil {
			return 0, err
		}
	}
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			if e.Len() > 0 {
				return n, fmt.Errorf("simevent: event limit %d reached with %d events pending", limit, e.Len())
			}
			return n, nil
		}
		if check != nil && every > 0 && n%every == 0 {
			if err := check(); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// RunUntil fires events with time <= t, then advances the clock to exactly t
// if it has not passed it. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.queue) > 0 && e.queue[0].Time <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// eventHeap orders by (Time, class, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].class != h[j].class {
		return h[i].class < h[j].class
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
