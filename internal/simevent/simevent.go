// Package simevent provides the discrete-event simulation engine used by the
// cluster simulator: a time-ordered event queue with a deterministic
// tie-break and a simulation clock.
//
// Events are arbitrary callbacks scheduled at absolute simulation times.
// The total order is (Time, class, seq): ties are broken first by the
// scheduling class (AtFirst before At before AtLast) and then by insertion
// order (FIFO among equal timestamps), so runs are fully reproducible
// regardless of the queue's internals.
//
// # Queue implementations
//
// Two interchangeable queues implement that order. The default is a
// calendar queue (Brown 1988): events hash into time-width buckets, a
// cursor walks the buckets in virtual-time order, and every event sharing
// the earliest (Time, class) key is drained in one bucket scan — O(1)
// amortized per event against the heap's O(log n), and a single scan where
// quantized trace timestamps make same-time batches common. A binary heap
// remains available as the reference implementation; the differential fuzz
// harness drives both over random interleavings and demands identical
// behavior. Select with NewKind; New gives the default.
//
// # Event recycling
//
// Event objects are owned by the engine and recycled through a free list:
// once an event has fired or been cancelled, the engine may hand the same
// object back from a later At/After call. A *Event handle is therefore only
// valid while its event is pending plus the window until the next schedule
// call — callers must drop (or nil out) handles when the event fires or is
// cancelled, and must not Cancel the same handle twice with scheduling in
// between. Million-job replays schedule hundreds of millions of events;
// recycling keeps them from being the simulator's dominant garbage.
package simevent

import (
	"fmt"
)

// QueueKind selects the pending-event queue implementation.
type QueueKind uint8

const (
	// Calendar is the bucketed calendar queue — the default engine.
	Calendar QueueKind = iota
	// Heap is the binary-heap reference implementation the differential
	// harness checks the calendar queue against.
	Heap
)

// String returns the flag-friendly name of the queue kind.
func (k QueueKind) String() string {
	switch k {
	case Calendar:
		return "calendar"
	case Heap:
		return "heap"
	}
	return fmt.Sprintf("QueueKind(%d)", uint8(k))
}

// ParseQueueKind maps a flag value to a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "calendar":
		return Calendar, nil
	case "heap":
		return Heap, nil
	}
	return Calendar, fmt.Errorf("simevent: unknown queue kind %q (want calendar or heap)", s)
}

// Event state sentinels carried in index/bucket. A pending event in the
// heap has index >= 0 and bucket == -1; in the calendar queue index >= 0
// and bucket >= 0 (its bucket's position). Once popped into the engine's
// staged batch, bucket == bucketStaged and index is the batch position, so
// Cancel keeps working on same-time siblings that were staged together.
const bucketStaged = -3

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events.
type Event struct {
	Time float64
	Fn   func(*Engine)

	seq    uint64 // insertion order, breaks (timestamp, class) ties
	index  int    // queue position (or batch position when staged), -1 fired, -2 cancelled
	bucket int32  // calendar bucket, -1 outside the calendar, bucketStaged in the batch
	class  uint8  // tie rank: AtFirst (0) before At (1) before AtLast (2)
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// queue is the pending-event store behind Engine. Implementations must
// realize the (Time, class, seq) total order exactly: drainMin removes
// every pending event sharing the earliest (Time, class) key and appends
// them to dst in seq (FIFO) order.
type queue interface {
	push(ev *Event)
	drainMin(dst []*Event) []*Event
	remove(ev *Event)
	len() int
}

// eventBefore is the engine's total order: (Time, class, seq).
func eventBefore(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.seq < b.seq
}

// Engine owns the event queue and the simulation clock.
//
// The engine drains the queue in same-(Time, class) batches: one drainMin
// stages the whole group, and Step serves staged events one at a time, so
// run-loop semantics (exact event limits, per-event checks) are unchanged
// while the queue is only consulted once per batch.
type Engine struct {
	now        float64
	batchTime  float64 // fire time of the staged batch (valid when batchLive > 0)
	nextSq     uint64
	fired      uint64
	q          queue
	batch      []*Event // staged same-(Time, class) events in seq order; nil = consumed
	free       []*Event // recycled fired/cancelled events, see package doc
	batchPos   int
	batchLive  int // staged events not yet fired or cancelled
	kind       QueueKind
	batchClass uint8 // class of the staged batch (valid when batchLive > 0)
}

// New returns an engine with the clock at 0 and the default queue.
func New() *Engine {
	return NewKind(Calendar)
}

// NewKind returns an engine with the clock at 0 using the given queue
// implementation.
func NewKind(k QueueKind) *Engine {
	e := &Engine{kind: k}
	switch k {
	case Heap:
		e.q = &heapQueue{}
	default:
		e.q = newCalendarQueue()
	}
	return e
}

// Kind reports which queue implementation the engine runs on.
func (e *Engine) Kind() QueueKind { return e.kind }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns how many events have executed, useful for run statistics and
// loop guards in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Len returns the number of pending events (queued plus staged-unfired).
func (e *Engine) Len() int { return e.q.len() + e.batchLive }

// At schedules fn at absolute time t and returns the event handle. It panics
// if t is before the current time — that would reorder history. The handle
// comes from the engine's free list and is reclaimed when the event fires or
// is cancelled (see the package doc for the handle-lifetime contract).
func (e *Engine) At(t float64, fn func(*Engine)) *Event {
	return e.schedule(t, 1, fn)
}

// AtFirst schedules fn at absolute time t ahead of every same-time event
// scheduled with At, regardless of insertion order; ties among AtFirst
// events keep FIFO order. The simulator schedules job arrivals with it so
// that admission order at a tied timestamp does not depend on when the
// arrival was enqueued — the property that makes streamed and materialized
// replays identical even for traces with quantized (tie-prone) timestamps.
func (e *Engine) AtFirst(t float64, fn func(*Engine)) *Event {
	return e.schedule(t, 0, fn)
}

// AtLast schedules fn at absolute time t AFTER every same-time event
// scheduled with AtFirst or At, regardless of insertion order; ties among
// AtLast events keep FIFO order. The simulator schedules fault-injection
// events with it (machine crashes, rack storms, contention bursts): a fault
// at time t observes every arrival and completion of that instant first, so
// the fault schedule composes with the existing (Time, class, seq) total
// order without perturbing the classes the benign goldens pin.
func (e *Engine) AtLast(t float64, fn func(*Engine)) *Event {
	return e.schedule(t, 2, fn)
}

func (e *Engine) schedule(t float64, class uint8, fn func(*Engine)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simevent: scheduling at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.Time, ev.Fn, ev.class, ev.seq = t, fn, class, e.nextSq
	} else {
		ev = &Event{Time: t, Fn: fn, class: class, seq: e.nextSq}
	}
	e.nextSq++
	if e.batchLive > 0 {
		if t == e.batchTime && class == e.batchClass {
			// Joins the staged batch directly: its seq is larger than every
			// staged member's, so FIFO order puts it at the tail. Arrival
			// chains at tied trace timestamps take this path.
			ev.bucket = bucketStaged
			ev.index = len(e.batch)
			e.batch = append(e.batch, ev)
			e.batchLive++
			return ev
		}
		if t < e.batchTime || (t == e.batchTime && class < e.batchClass) {
			// The new event outranks the staged batch (a bound probe can
			// stage a batch the caller never drained): return the batch to
			// the queue so the order stays exact.
			e.unstage()
		}
	}
	ev.bucket = -1
	e.q.push(ev)
	return ev
}

// unstage pushes unfired staged events back into the queue. Their original
// seq values go with them, so re-draining reproduces the exact order.
func (e *Engine) unstage() {
	for _, ev := range e.batch[e.batchPos:] {
		if ev != nil {
			ev.bucket = -1
			e.q.push(ev)
		}
	}
	e.batch = e.batch[:0]
	e.batchPos, e.batchLive = 0, 0
}

// ensureStaged returns the next unfired staged event, draining the next
// same-(Time, class) group from the queue when the stage is empty. It does
// not consume the event; nil means no events are pending.
func (e *Engine) ensureStaged() *Event {
	for {
		for e.batchPos < len(e.batch) {
			if ev := e.batch[e.batchPos]; ev != nil {
				return ev
			}
			e.batchPos++
		}
		e.batch = e.batch[:0]
		e.batchPos, e.batchLive = 0, 0
		if e.q.len() == 0 {
			return nil
		}
		e.batch = e.q.drainMin(e.batch)
		for i, ev := range e.batch {
			ev.bucket = bucketStaged
			ev.index = i
		}
		e.batchLive = len(e.batch)
		e.batchTime = e.batch[0].Time
		e.batchClass = e.batch[0].class
	}
}

// recycle returns a dead event to the free list. The callback reference is
// dropped so recycling never pins the scheduler state a closure captured.
func (e *Engine) recycle(ev *Event) {
	ev.Fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn delta time units from now.
func (e *Engine) After(delta float64, fn func(*Engine)) *Event {
	if delta < 0 {
		panic(fmt.Sprintf("simevent: negative delay %v", delta))
	}
	return e.At(e.now+delta, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op. Staged events — same-time siblings
// already drained from the queue but not yet fired — cancel exactly like
// queued ones, which is what a sibling-kill at a tied timestamp needs.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if ev.bucket == bucketStaged {
		e.batch[ev.index] = nil
		e.batchLive--
		ev.index, ev.bucket = -2, -1
		e.recycle(ev)
		return
	}
	if ev.index < 0 {
		return
	}
	e.q.remove(ev)
	ev.index, ev.bucket = -2, -1
	e.recycle(ev)
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	ev := e.ensureStaged()
	if ev == nil {
		return false
	}
	e.batch[e.batchPos] = nil
	e.batchPos++
	e.batchLive--
	ev.index, ev.bucket = -1, -1
	e.now = ev.Time
	e.fired++
	ev.Fn(e)
	// Recycle only after the callback returns: the callback may still read
	// the handle (but must drop it afterwards — see the package doc).
	e.recycle(ev)
	return true
}

// StepBatch fires every event sharing the earliest pending fire time —
// across both classes, including events the callbacks add at that same
// time — and returns how many fired. The queue is consulted once per
// (Time, class) group rather than once per event; it returns 0 when the
// queue is empty.
func (e *Engine) StepBatch() int {
	first := e.ensureStaged()
	if first == nil {
		return 0
	}
	t := first.Time
	n := 0
	for {
		ev := e.ensureStaged()
		if ev == nil || ev.Time != t {
			return n
		}
		e.Step()
		n++
	}
}

// Run fires events until the queue drains or until limit events have fired
// (limit <= 0 means no limit). It returns the number of events fired by this
// call and an error if the limit was hit — a guard against runaway
// simulations.
func (e *Engine) Run(limit uint64) (uint64, error) {
	return e.RunEvery(limit, 0, nil)
}

// RunEvery is Run with a periodic stop check: every `every` fired events
// (and once before the first) check is called, and a non-nil error stops
// the loop immediately and is returned with the queue intact. every <= 0 or
// a nil check is plain Run. The simulator uses this for context
// cancellation — the check keys the cost off the hot path (one call per
// batch, not per event), and stopping between events never observes a
// half-applied callback, so the abandoned state is internally consistent.
func (e *Engine) RunEvery(limit, every uint64, check func() error) (uint64, error) {
	var n uint64
	if check != nil {
		if err := check(); err != nil {
			return 0, err
		}
	}
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			if e.Len() > 0 {
				return n, fmt.Errorf("simevent: event limit %d reached with %d events pending", limit, e.Len())
			}
			return n, nil
		}
		if check != nil && every > 0 && n%every == 0 {
			if err := check(); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// RunUntil fires events with time <= t, then advances the clock to exactly t
// if it has not passed it. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t float64) {
	e.RunUntilEvery(t, 0, nil)
}

// RunUntilEvery is RunUntil with the same periodic stop check RunEvery has:
// every `every` fired events (and once before the first) check is called; a
// non-nil error stops the drain immediately and is returned with the queue
// intact and the clock left at the last fired event — the bounded drain
// equivalent of RunEvery's cancellation contract. It returns the number of
// events fired by this call.
func (e *Engine) RunUntilEvery(t float64, every uint64, check func() error) (uint64, error) {
	var n uint64
	if check != nil {
		if err := check(); err != nil {
			return 0, err
		}
	}
	for {
		ev := e.ensureStaged()
		if ev == nil || ev.Time > t {
			break
		}
		e.Step()
		n++
		if check != nil && every > 0 && n%every == 0 {
			if err := check(); err != nil {
				return n, err
			}
		}
	}
	if e.now < t {
		e.now = t
	}
	return n, nil
}
