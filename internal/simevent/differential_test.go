package simevent

import (
	"fmt"
	"math/rand"
	"testing"
)

// The heap-vs-calendar differential harness: the same operation stream —
// At/AtFirst/AtLast/After/Cancel/RunUntil/Step, with recycling always on —
// drives one engine per queue implementation, and every observable (fire
// order, clock, fired count, pending count, cancellation behavior) must
// match exactly. The heap is the reference; the calendar queue has no
// correctness budget of its own.

// qdriver runs one engine through the shared op script, logging every
// observation. Callbacks exercise the staged-batch paths deliberately:
// some events schedule a same-time follow-up from inside their callback
// (the tied-arrival chain), some cancel a same-time sibling (the
// sibling-kill at a tied timestamp — a staged-member cancel).
type qdriver struct {
	eng  *Engine
	pend map[int]*Event
	log  []string
}

func newQdriver(k QueueKind) *qdriver {
	return &qdriver{eng: NewKind(k), pend: make(map[int]*Event)}
}

func (d *qdriver) note(format string, args ...any) {
	d.log = append(d.log, fmt.Sprintf(format, args...))
}

// schedule registers event id at time t. Child events spawned from
// callbacks get ids >= childBase so they never spawn grandchildren.
const childBase = 1 << 20

func (d *qdriver) schedule(id int, t float64, class int) {
	fn := func(eng *Engine) {
		delete(d.pend, id)
		d.note("fire %.6g #%d", eng.Now(), id)
		if id >= childBase {
			return
		}
		if id%5 == 0 {
			// Same-time follow-up from inside the callback: joins the
			// in-flight batch at the tail.
			d.schedule(id+childBase, eng.Now(), 1)
		}
		if id%7 == 0 {
			d.schedule(id+2*childBase, eng.Now()+0.5, 0)
		}
		if id%11 == 0 {
			// Same-time AtLast from inside a callback — the fault-injection
			// shape: outranked by the batch in flight, fires at its tail.
			d.schedule(id+3*childBase, eng.Now(), 2)
		}
		if id%3 == 0 {
			// Sibling kill: cancel the next id if it is still pending —
			// often a same-time staged member.
			if ev, ok := d.pend[id+1]; ok {
				d.cancel(id+1, ev)
			}
		}
	}
	var ev *Event
	switch class {
	case 0:
		ev = d.eng.AtFirst(t, fn)
	case 2:
		ev = d.eng.AtLast(t, fn)
	default:
		ev = d.eng.At(t, fn)
	}
	d.pend[id] = ev
	d.note("sched %.6g #%d class=%d", t, id, class)
}

func (d *qdriver) cancel(id int, ev *Event) {
	d.eng.Cancel(ev)
	if !ev.Cancelled() {
		d.note("cancel #%d NOT marked cancelled", id)
	} else {
		d.note("cancel #%d", id)
	}
	delete(d.pend, id)
}

// minPending returns the smallest pending id — the deterministic pick for
// cancellation ops (map iteration order must not leak into the script).
func (d *qdriver) minPending() (int, *Event, bool) {
	best := -1
	for id := range d.pend {
		if best < 0 || id < best {
			best = id
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return best, d.pend[best], true
}

// applyOps interprets the byte script against one driver.
func (d *qdriver) applyOps(ops []byte) {
	id := 0
	for i := 0; i+1 < len(ops); i += 2 {
		op, arg := ops[i], ops[i+1]
		// Quantized deltas: arg>>4 in {0..15} halved — tie-heavy on purpose.
		delta := float64(arg>>4) * 0.5
		switch op % 7 {
		case 0:
			d.schedule(id, d.eng.Now()+delta, 1)
			id++
		case 1:
			d.schedule(id, d.eng.Now()+delta, 0)
			id++
		case 6:
			d.schedule(id, d.eng.Now()+delta, 2)
			id++
		case 2:
			ev := d.eng.After(delta, func(eng *Engine) {
				d.note("fire-after %.6g", eng.Now())
			})
			// After events are anonymous: cancel immediately half the time
			// so the handle never goes stale.
			if arg%2 == 0 {
				d.eng.Cancel(ev)
				d.note("cancel-after")
			}
		case 3:
			if cid, ev, ok := d.minPending(); ok {
				d.cancel(cid, ev)
			}
		case 4:
			fired := d.eng.Step()
			d.note("step %v now=%.6g fired=%d len=%d", fired, d.eng.Now(), d.eng.Fired(), d.eng.Len())
		case 5:
			d.eng.RunUntil(d.eng.Now() + delta)
			d.note("until now=%.6g fired=%d len=%d", d.eng.Now(), d.eng.Fired(), d.eng.Len())
		}
	}
	// Drain both engines completely so every scheduled event's fire order
	// is part of the comparison.
	for d.eng.Step() {
	}
	d.note("end now=%.6g fired=%d len=%d", d.eng.Now(), d.eng.Fired(), d.eng.Len())
}

// diffQueues runs the script against both queue kinds and reports the
// first observation that differs.
func diffQueues(t *testing.T, ops []byte) {
	t.Helper()
	ref := newQdriver(Heap)
	cal := newQdriver(Calendar)
	ref.applyOps(ops)
	cal.applyOps(ops)
	if len(ref.log) != len(cal.log) {
		t.Fatalf("heap made %d observations, calendar %d\nheap tail: %v\ncalendar tail: %v",
			len(ref.log), len(cal.log), tail(ref.log), tail(cal.log))
	}
	for i := range ref.log {
		if ref.log[i] != cal.log[i] {
			t.Fatalf("observation %d diverges:\n  heap:     %s\n  calendar: %s", i, ref.log[i], cal.log[i])
		}
	}
}

func tail(log []string) []string {
	if len(log) > 5 {
		return log[len(log)-5:]
	}
	return log
}

// FuzzQueueDifferential is the harness CI runs with a short budget; the
// corpus seeds cover the staged-batch edge cases by construction.
func FuzzQueueDifferential(f *testing.F) {
	// Tie-heavy mixed script: same-time At/AtFirst with steps interleaved.
	f.Add([]byte{0, 0x10, 1, 0x10, 0, 0x10, 4, 0, 0, 0x00, 1, 0x00, 4, 0, 4, 0})
	// RunUntil staging a batch it never drains, then an earlier schedule.
	f.Add([]byte{0, 0x80, 0, 0x80, 5, 0x20, 0, 0x30, 4, 0, 4, 0, 4, 0})
	// Cancel-heavy: staged-member cancels via the id%3 sibling kill.
	f.Add([]byte{0, 0x20, 0, 0x20, 0, 0x20, 0, 0x20, 3, 0, 4, 0, 3, 0, 4, 0})
	// After + immediate cancel + drains.
	f.Add([]byte{2, 0x11, 2, 0x22, 0, 0x00, 5, 0x40, 1, 0x00, 4, 0})
	// AtLast tied with At/AtFirst at one timestamp, then steps.
	f.Add([]byte{6, 0x10, 0, 0x10, 1, 0x10, 6, 0x10, 4, 0, 4, 0, 4, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		diffQueues(t, ops)
	})
}

// TestQueueDifferentialRandom covers the same harness under plain `go
// test`: 300 seeded random scripts, long enough to cross calendar resize
// thresholds in both directions.
func TestQueueDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(240)
		ops := make([]byte, 2*n)
		rng.Read(ops)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			diffQueues(t, ops)
		})
	}
}
