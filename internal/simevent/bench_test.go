package simevent

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkEngineChurn is the classic hold-model queue benchmark: the
// engine holds a steady pending set of n events, and each fired event
// schedules one replacement at a random future offset, so every iteration
// is one fire + one schedule at fixed queue depth. The heap pays O(log n)
// per operation and the calendar queue O(1) amortized — the gap between
// the two variants at the same n is exactly the queue implementation
// (callbacks, recycling and the staging layer are shared).
func BenchmarkEngineChurn(b *testing.B) {
	for _, kind := range []QueueKind{Calendar, Heap} {
		for _, n := range []int{64, 1024, 16384} {
			b.Run(fmt.Sprintf("%s/pending=%d", kind, n), func(b *testing.B) {
				eng := NewKind(kind)
				rng := rand.New(rand.NewSource(1))
				var fn func(*Engine)
				fn = func(e *Engine) {
					e.At(e.Now()+rng.Float64()*10, fn)
				}
				for i := 0; i < n; i++ {
					eng.At(rng.Float64()*10, fn)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}
