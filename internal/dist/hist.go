package dist

import (
	"math"
	"sort"
)

// Hist is the counts-only core of the DDSketch-style quantile sketch: a
// log-bucketed histogram whose entire state is integer bucket counts plus
// the exact extremes of the observed multiset. It exists as its own type
// because integer-only state has a property the full Sketch (which also
// carries a floating-point Sum) cannot offer: two Hists built from ANY
// partitioning of one observation multiset — in any observation order,
// merged in any grouping — are deeply equal, field for field. GRASS's
// mergeable sketch learner builds on exactly that guarantee: per-partition
// learners fold at the sharded merge step and the folded state must be
// indistinguishable from a single learner fed every sample.
//
// A value v > 0 lands in bucket ⌈log_γ v⌉ with γ = (1+α)/(1−α), so every
// reported quantile is within relative error α of an exact quantile of the
// observed multiset. Values ≤ 0 (and NaN) collapse into a zero bucket.
//
// The zero Hist is not ready for use; call NewHist. A Hist is not safe for
// concurrent use.
type Hist struct {
	gamma     float64
	invLogG   float64 // 1 / ln(gamma), cached for the index computation
	relAlpha  float64
	counts    map[int]uint64
	zero      uint64 // observations ≤ 0
	n         uint64
	min, max  float64
	sortedBuf []int // reusable key buffer for Quantile
}

// DefaultHistAlpha is the default relative-error guarantee: reported
// quantiles are within 1% of an exact quantile.
const DefaultHistAlpha = 0.01

// NewHist returns an empty histogram with relative-error guarantee alpha
// in (0, 1); alpha <= 0 selects DefaultHistAlpha.
func NewHist(alpha float64) *Hist {
	if alpha <= 0 {
		alpha = DefaultHistAlpha
	}
	if alpha >= 1 {
		alpha = 0.5
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Hist{
		gamma:    gamma,
		invLogG:  1 / math.Log(gamma),
		counts:   make(map[int]uint64),
		relAlpha: alpha,
	}
}

// Alpha returns the histogram's relative-error guarantee.
func (h *Hist) Alpha() float64 { return h.relAlpha }

// Observe records one value. Values ≤ 0 (or NaN, which compares false
// everywhere) collapse into the zero bucket and report as 0 from Quantile.
func (h *Hist) Observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	if v > 0 {
		h.counts[h.bucket(v)]++
	} else {
		h.zero++
	}
}

// bucket maps a positive value to its log-γ bucket index.
func (h *Hist) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) * h.invLogG))
}

// value maps a bucket index back to a representative value: the bucket's
// geometric midpoint 2γ^i/(γ+1), the point minimizing worst-case relative
// error within the bucket.
func (h *Hist) value(i int) float64 {
	return 2 * math.Pow(h.gamma, float64(i)) / (h.gamma + 1)
}

// Count returns how many values have been observed.
func (h *Hist) Count() uint64 { return h.n }

// Min returns the exact minimum observed value (0 when empty).
func (h *Hist) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observed value (0 when empty).
func (h *Hist) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Merge folds o into h: bucket-wise integer addition, so the result is
// exactly the histogram of the union of both observation multisets. Both
// histograms must have been built with the same alpha — bucket boundaries
// differ otherwise and the merged counts would be meaningless; Merge
// panics on mismatch (a programming error, not a data condition). Merging
// a nil or empty histogram is a no-op.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	if o.gamma != h.gamma {
		panic("dist: merging histograms with different alpha")
	}
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.zero += o.zero
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Clone returns an independent copy with the query scratch buffer
// stripped, so clones of histograms built from the same multiset are
// deeply equal regardless of what was queried in between.
func (h *Hist) Clone() *Hist {
	c := *h
	c.counts = make(map[int]uint64, len(h.counts))
	for i, n := range h.counts {
		c.counts[i] = n
	}
	c.sortedBuf = nil
	return &c
}

// Reset empties the histogram in place, keeping allocated capacity — the
// learner reuses one scratch Hist across aggregate queries.
func (h *Hist) Reset() {
	clear(h.counts)
	h.zero, h.n = 0, 0
	h.min, h.max = 0, 0
}

// Quantile returns the value at quantile q in [0, 1], within relative
// error alpha of an exact quantile of the observed multiset. Extremes are
// exact: q = 0 reports Min and q = 1 reports Max. An empty histogram
// reports 0; q outside [0, 1] is clamped.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	// rank is 1-based: the ⌈q·n⌉-th smallest observation.
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= h.zero {
		return 0
	}
	seen := h.zero
	keys := h.sortedBuf[:0]
	for i := range h.counts {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	h.sortedBuf = keys
	for _, i := range keys {
		seen += h.counts[i]
		if seen >= rank {
			return h.value(i)
		}
	}
	return h.Max() // unreachable unless counts were mutated mid-query
}
