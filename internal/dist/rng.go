// Package dist provides the randomness substrate of the simulator: seeded
// splittable RNG streams, the heavy-tailed samplers the paper's straggler
// model is built from (Pareto tails with β ≈ 1.259, §2.2; lognormal data
// skew and machine heterogeneity, §6.1), and small summary-statistics
// helpers.
//
// Determinism is a design requirement, not an accident: every simulation
// run derives all of its randomness from one NewRNG(seed) root, and Split
// carves independent child streams out of a parent without any global
// state. Identical seeds therefore replay identical traces and identical
// straggler luck — which is what makes paired policy comparisons (§6.1)
// and the parallel experiment harness (internal/exp) bit-reproducible
// regardless of GOMAXPROCS or worker count.
package dist

import (
	"math"
	"math/bits"
)

// RNG is a deterministic, splittable pseudo-random stream in the style of
// SplitMix64 / java.util.SplittableRandom: the state advances by a
// per-stream odd "gamma" increment and outputs are a bit-mixing hash of the
// state. It is cheap (two multiplies per draw), has 64-bit period per
// stream, and — unlike math/rand — supports deterministic Split without
// locks. Not safe for concurrent use; give each goroutine its own stream.
type RNG struct {
	state uint64
	gamma uint64 // odd
}

// goldenGamma is 2^64 / φ rounded to odd — SplitMix64's default increment.
const goldenGamma = 0x9e3779b97f4a7c15

// NewRNG returns a stream seeded with seed. Streams with different seeds
// are statistically independent; the same seed always replays the same
// stream.
func NewRNG(seed int64) *RNG {
	// Pre-mix the seed so small consecutive seeds (1, 2, 3 — the harness's
	// convention) start in well-separated states.
	return &RNG{state: mix64(uint64(seed)), gamma: goldenGamma}
}

// SubSeed derives the i-th child seed of seed — the seed-level analog of
// RNG.Split for components that take a seed rather than a stream (a
// partitioned simulation seeds each partition's simulator with
// SubSeed(seed, partition)). Children of one seed are statistically
// independent of each other and of NewRNG(seed)'s own stream: the child
// state is the parent's pre-mixed state advanced i+1 gamma steps and
// hashed, exactly how Split derives a child state — but skipping the
// parent's draw history, so the derivation is a pure function of
// (seed, i). SubSeed(seed, i) != seed for all practical i (that would
// need a mix64 fixed point).
func SubSeed(seed int64, i int) int64 {
	return int64(mix64(mix64(uint64(seed)) + (uint64(i)+1)*goldenGamma))
}

// mix64 is SplitMix64's output hash (Stafford variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixGamma derives a new odd gamma with enough bit transitions to be a good
// increment (the SplittableRandom recipe).
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	z = (z ^ (z >> 33)) | 1
	if bits.OnesCount64(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

// next advances the state one step.
func (r *RNG) next() uint64 {
	r.state += r.gamma
	return r.state
}

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 { return mix64(r.next()) }

// Split carves an independent child stream out of r, advancing r by two
// draws. Parent and child sequences do not overlap in any realistic
// horizon, and the derivation is deterministic: the k-th Split of a given
// stream is always the same stream.
func (r *RNG) Split() *RNG {
	return &RNG{state: mix64(r.next()), gamma: mixGamma(r.next())}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return int(r.Int63() & int64(n-1))
	}
	// Rejection sampling to remove modulo bias (math/rand's Int63n scheme).
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return int(v % int64(n))
}

// Norm returns a standard normal draw (Box–Muller). Exactly two uniforms
// are consumed per call — no cached spare — so the stream position after k
// calls is independent of call-site history, keeping replay simple.
func (r *RNG) Norm() float64 {
	u1 := 1 - r.Float64() // (0, 1]: log stays finite
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
