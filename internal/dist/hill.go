package dist

import (
	"math"
	"sort"
)

// HillPoint is one point of a Hill plot: the Hill estimate of the Pareto
// tail index computed from the top K order statistics.
type HillPoint struct {
	K    int
	Beta float64
}

// HillPlot computes the Hill estimator β̂(k) of the tail index over a
// log-spaced grid of points between kMin and kMax order statistics — the
// methodology behind the paper's Figure 3, where the flat region of the
// plot reads off β ≈ 1.259. The input is not modified.
//
// For the top k observations X(1) ≥ … ≥ X(k) ≥ X(k+1):
//
//	H(k) = (1/k) Σ_{i≤k} ln X(i) − ln X(k+1),   β̂(k) = 1/H(k)
func HillPlot(samples []float64, kMin, kMax, points int) []HillPoint {
	n := len(samples)
	if n < 3 || points <= 0 {
		return nil
	}
	if kMax > n-1 {
		kMax = n - 1
	}
	if kMin < 1 {
		kMin = 1
	}
	if kMin > kMax {
		kMin = kMax
	}
	desc := append([]float64(nil), samples...)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))

	// Prefix sums of log order statistics make each H(k) O(1).
	logs := make([]float64, kMax+1)
	prefix := make([]float64, kMax+2)
	for i := 0; i <= kMax; i++ {
		logs[i] = math.Log(desc[i])
		prefix[i+1] = prefix[i] + logs[i]
	}

	out := make([]HillPoint, 0, points)
	ratio := float64(kMax) / float64(kMin)
	last := 0
	for i := 0; i < points; i++ {
		f := 0.0
		if points > 1 {
			f = float64(i) / float64(points-1)
		}
		k := int(math.Round(float64(kMin) * math.Pow(ratio, f)))
		if k <= last { // dedup after rounding
			continue
		}
		last = k
		h := prefix[k]/float64(k) - logs[k]
		if h <= 0 {
			continue // degenerate (ties at the k-th order statistic)
		}
		out = append(out, HillPoint{K: k, Beta: 1 / h})
	}
	return out
}
