package dist

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// histTestValues draws a heavy-tailed task-duration-shaped sample.
func histTestValues(n int, seed int64) []float64 {
	rng := NewRNG(seed)
	ln := Lognormal{Mu: 2, Sigma: 1.1}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = ln.Sample(rng)
	}
	return vals
}

// TestHistQuantileRelativeError: reported quantiles are within the
// promised relative error of the exact ⌈q·n⌉-th smallest observation.
func TestHistQuantileRelativeError(t *testing.T) {
	vals := histTestValues(30_000, 9)
	h := NewHist(0.01)
	for _, v := range vals {
		h.Observe(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		rank := int(math.Ceil(q * float64(len(sorted))))
		want := sorted[rank-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.011 {
			t.Errorf("q=%g: hist %v vs exact %v (relative error %.4f > alpha)", q, got, want, rel)
		}
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("extremes inexact: min %v/%v max %v/%v", h.Min(), sorted[0], h.Max(), sorted[len(sorted)-1])
	}
}

// TestHistMergeDeepEqual is the property the mergeable GRASS learner is
// built on: Hist state is integer counts plus exact extremes, so P
// per-partition histograms merged in canonical order are DEEPLY EQUAL —
// field for field, not just quantile-equal — to one histogram fed every
// observation, for any partitioning.
func TestHistMergeDeepEqual(t *testing.T) {
	vals := histTestValues(8_000, 4)
	whole := NewHist(0.01)
	for _, v := range vals {
		whole.Observe(v)
	}
	for _, parts := range []int{2, 4, 7} {
		shards := make([]*Hist, parts)
		for p := range shards {
			shards[p] = NewHist(0.01)
		}
		for i, v := range vals {
			shards[i%parts].Observe(v)
		}
		merged := NewHist(0.01)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		// Clone both sides: Clone strips the Quantile scratch buffer, the
		// only state legitimately allowed to differ.
		if !reflect.DeepEqual(merged.Clone(), whole.Clone()) {
			t.Errorf("parts=%d: merged histogram not deeply equal to whole", parts)
		}
	}
}

// TestHistZeroAndNaN: non-positive and NaN observations collapse into the
// zero bucket and report as 0, while still counting toward n and extremes
// handling.
func TestHistZeroAndNaN(t *testing.T) {
	h := NewHist(0.01)
	h.Observe(0)
	h.Observe(-2)
	h.Observe(math.NaN())
	h.Observe(7)
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("median with 3 zero-bucket observations reported %v, want 0", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Errorf("max quantile %v, want 7", got)
	}
}

// TestHistCloneAndReset: clones are independent and cache-stripped; Reset
// empties in place so the learner's scratch histogram is reusable.
func TestHistCloneAndReset(t *testing.T) {
	h := NewHist(0.02)
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	h.Quantile(0.5) // populate the scratch buffer
	c := h.Clone()
	if c.sortedBuf != nil {
		t.Error("Clone must strip the quantile scratch buffer")
	}
	c.Observe(100)
	if h.Count() != 4 || c.Count() != 5 {
		t.Errorf("clone not independent: %d / %d", h.Count(), c.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset must empty the histogram")
	}
	h.Observe(9)
	if got := h.Quantile(0.5); got == 0 {
		t.Errorf("post-Reset observe broken: median %v", got)
	}
}

// TestHistMergeAlphaMismatch: merging histograms with different bucket
// boundaries is a programming error and must panic, even when the source
// is empty.
func TestHistMergeAlphaMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging histograms with different alpha must panic")
		}
	}()
	NewHist(0.01).Merge(NewHist(0.05))
}
