package dist

import (
	"fmt"
	"math"
)

// Sampler draws values from a distribution. Mean is the analytic expected
// value; the simulator uses it for cold-start estimates (and the trace
// generator to convert offered load into arrival spacing).
type Sampler interface {
	Sample(r *RNG) float64
	Mean() float64
}

// Pareto is the (untruncated) Pareto distribution with scale Xm and shape
// Beta: P(τ > x) = (Xm/x)^Beta for x ≥ Xm. The paper's Hill estimate of
// production task durations is Beta = 1.259 (Figure 3) — infinite variance,
// the regime where speculation pays.
type Pareto struct {
	Xm   float64
	Beta float64
}

// Sample draws by inverting the survival function.
func (p Pareto) Sample(r *RNG) float64 {
	// 1−U ∈ (0, 1] keeps the power finite.
	return p.Xm * math.Pow(1-r.Float64(), -1/p.Beta)
}

// Mean is E[τ] = β·xm/(β−1), +Inf for β ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Beta <= 1 {
		return math.Inf(1)
	}
	return p.Beta * p.Xm / (p.Beta - 1)
}

// Median is xm·2^(1/β).
func (p Pareto) Median() float64 { return p.Xm * math.Pow(2, 1/p.Beta) }

// MeanResidual is E[τ−ω | τ>ω]: ω/(β−1) for ω ≥ xm (the memory-increasing
// property Appendix A leans on), E[τ]−ω below the scale where the
// conditioning is vacuous. +Inf for β ≤ 1.
func (p Pareto) MeanResidual(omega float64) float64 {
	if p.Beta <= 1 {
		return math.Inf(1)
	}
	if omega <= p.Xm {
		return p.Mean() - omega
	}
	return omega / (p.Beta - 1)
}

// MinMean is E[min(τ1..τk)] for k iid draws (k may be fractional, as in
// Theorem 1's continuous relaxation): the minimum of k Paretos is
// Pareto(xm, kβ).
func (p Pareto) MinMean(k float64) float64 {
	kb := k * p.Beta
	if kb <= 1 {
		return math.Inf(1)
	}
	return p.Xm * kb / (kb - 1)
}

// Lognormal is exp(N(Mu, Sigma²)) — per-task data skew and per-machine
// slowdown factors (median exp(Mu)).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws exp(Mu + Sigma·Z).
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.Norm())
}

// Mean is exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Median is exp(Mu).
func (l Lognormal) Median() float64 { return math.Exp(l.Mu) }

// Exponential has mean Mu — Poisson arrival spacing in the trace generator.
type Exponential struct {
	Mu float64
}

// Sample draws by inversion.
func (e Exponential) Sample(r *RNG) float64 {
	return -e.Mu * math.Log(1-r.Float64())
}

// Mean returns Mu.
func (e Exponential) Mean() float64 { return e.Mu }

// TruncatedPareto is a Pareto(Xm, Beta) conditioned on τ ≤ Cap: finite
// traces never realize the infinite tail, so the simulator caps duration
// factors (sched.Config.DurationCap) while keeping the Pareto shape below
// the cap.
type TruncatedPareto struct {
	Xm, Beta, Cap float64
	// pCap caches (Xm/Cap)^Beta = P(τ > Cap) of the untruncated law.
	pCap float64
}

// NewTruncatedPareto builds the truncated sampler. Cap must exceed Xm.
func NewTruncatedPareto(xm, beta, cap float64) (TruncatedPareto, error) {
	if xm <= 0 || beta <= 0 {
		return TruncatedPareto{}, fmt.Errorf("dist: truncated Pareto needs xm>0, beta>0 (got xm=%v beta=%v)", xm, beta)
	}
	if cap <= xm {
		return TruncatedPareto{}, fmt.Errorf("dist: truncation cap %v must exceed xm %v", cap, xm)
	}
	return TruncatedPareto{Xm: xm, Beta: beta, Cap: cap, pCap: math.Pow(xm/cap, beta)}, nil
}

// Sample inverts the truncated CDF — exactly one uniform per draw, so
// replay never depends on rejection luck.
func (t TruncatedPareto) Sample(r *RNG) float64 {
	u := r.Float64()
	v := t.Xm * math.Pow(1-u*(1-t.pCap), -1/t.Beta)
	if v > t.Cap { // guard float round-off at u → 1
		v = t.Cap
	}
	return v
}

// Mean is the conditional mean E[τ | τ ≤ Cap] — always finite, even for
// β ≤ 1.
func (t TruncatedPareto) Mean() float64 {
	b, xm, cap := t.Beta, t.Xm, t.Cap
	mass := 1 - t.pCap
	if b == 1 {
		return xm * math.Log(cap/xm) / mass
	}
	// ∫_{xm}^{cap} x·βxm^β x^{−β−1} dx = βxm^β/(β−1)·(xm^{1−β} − cap^{1−β})
	num := b * math.Pow(xm, b) / (b - 1) * (math.Pow(xm, 1-b) - math.Pow(cap, 1-b))
	return num / mass
}

// BodyTail is the paper-faithful copy-duration factor distribution
// (Figure 3: production durations are "not exactly Pareto in its body" —
// only the tail is). With probability TailFrac a draw is a straggler from a
// truncated Pareto tail starting at TailStart; otherwise it comes from the
// predictable uniform body [BodyLo, BodyHi] around the median.
type BodyTail struct {
	BodyLo, BodyHi float64
	TailFrac       float64
	Tail           TruncatedPareto
}

// NewBodyTail builds the mixture: body uniform on [bodyLo, bodyHi], tail
// TruncatedPareto(tailStart, beta, cap) drawn with probability tailFrac.
func NewBodyTail(bodyLo, bodyHi, tailStart, beta, cap, tailFrac float64) (BodyTail, error) {
	if bodyLo <= 0 || bodyHi < bodyLo {
		return BodyTail{}, fmt.Errorf("dist: body range [%v, %v] invalid", bodyLo, bodyHi)
	}
	if tailFrac <= 0 || tailFrac > 1 {
		return BodyTail{}, fmt.Errorf("dist: tail fraction %v out of (0, 1]", tailFrac)
	}
	if tailStart < bodyHi {
		return BodyTail{}, fmt.Errorf("dist: tail start %v below body top %v", tailStart, bodyHi)
	}
	tail, err := NewTruncatedPareto(tailStart, beta, cap)
	if err != nil {
		return BodyTail{}, err
	}
	return BodyTail{BodyLo: bodyLo, BodyHi: bodyHi, TailFrac: tailFrac, Tail: tail}, nil
}

// Sample flips the straggler coin, then draws from the chosen component.
// Always exactly two uniforms (coin + component) per call, so stream
// positions are branch-independent.
func (b BodyTail) Sample(r *RNG) float64 {
	if r.Float64() < b.TailFrac {
		return b.Tail.Sample(r)
	}
	return b.BodyLo + r.Float64()*(b.BodyHi-b.BodyLo)
}

// Mean mixes the component means.
func (b BodyTail) Mean() float64 {
	body := (b.BodyLo + b.BodyHi) / 2
	return (1-b.TailFrac)*body + b.TailFrac*b.Tail.Mean()
}
