package dist

import (
	"fmt"
	"math"
	"testing"
)

// TestRNGDeterministicReplay: identical seeds replay identical streams —
// including through Split — and different seeds diverge.
func TestRNGDeterministicReplay(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	// Split derivation is part of the replayed state.
	as, bs := a.Split(), b.Split()
	for i := 0; i < 1000; i++ {
		if as.Float64() != bs.Float64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
	// Parents continue in lockstep after splitting.
	if a.Uint64() != b.Uint64() {
		t.Fatal("parents diverged after Split")
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42 and 43 collide on %d/100 draws", same)
	}
}

// TestSplitIndependence: a child stream and its parent should be
// uncorrelated, and two consecutive splits should differ from each other.
func TestSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Split()
	c2 := root.Split()
	const n = 4000
	match12, matchP := 0, 0
	for i := 0; i < n; i++ {
		v1, v2, vp := c1.Float64(), c2.Float64(), root.Float64()
		if math.Abs(v1-v2) < 1e-12 {
			match12++
		}
		if math.Abs(v1-vp) < 1e-12 {
			matchP++
		}
	}
	if match12 > 0 || matchP > 0 {
		t.Fatalf("split streams repeat values: %d vs sibling, %d vs parent", match12, matchP)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	sum := 0.0
	for i := 0; i < 200000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 200000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(2)
	const n, draws = 7, 140000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("Intn(%d) bucket %d has %d draws, want ~%.0f", n, v, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 400000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		ss += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v", mean)
	}
	if variance := ss/n - mean*mean; math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v", variance)
	}
}

// TestParetoTailIndex: the Hill estimator applied to pure Pareto samples
// recovers the shape parameter — the β = 1.259 calibration the whole
// straggler model rests on (§2.2, Figure 3).
func TestParetoTailIndex(t *testing.T) {
	for _, beta := range []float64{1.259, 2.0} {
		p := Pareto{Xm: 1, Beta: beta}
		r := NewRNG(11)
		n := 200000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = p.Sample(r)
			if samples[i] < p.Xm {
				t.Fatalf("Pareto sample %v below xm", samples[i])
			}
		}
		pts := HillPlot(samples, 100, n/10, 16)
		if len(pts) < 10 {
			t.Fatalf("only %d Hill points", len(pts))
		}
		// Deep-tail estimate (largest k): tight for a pure Pareto.
		got := pts[len(pts)-1].Beta
		if math.Abs(got-beta)/beta > 0.05 {
			t.Fatalf("Hill beta %v, want %v", got, beta)
		}
	}
}

func TestParetoAnalyticMoments(t *testing.T) {
	p := Pareto{Xm: 2, Beta: 1.5}
	if got, want := p.Mean(), 1.5*2/0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v, want %v", got, want)
	}
	if got := (Pareto{Xm: 1, Beta: 1}).Mean(); !math.IsInf(got, 1) {
		t.Fatalf("beta=1 mean %v, want +Inf", got)
	}
	// Median: sample check.
	r := NewRNG(5)
	n := 200000
	s := make([]float64, n)
	for i := range s {
		s[i] = p.Sample(r)
	}
	if got, want := Median(s), p.Median(); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample median %v, analytic %v", got, want)
	}
	// MeanResidual at ω ≥ xm is ω/(β−1); below xm it degrades to E[τ]−ω.
	if got, want := p.MeanResidual(4), 4/0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean residual %v, want %v", got, want)
	}
	if got, want := p.MeanResidual(1), p.Mean()-1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean residual below xm %v, want %v", got, want)
	}
	// MinMean(k): min of k Paretos is Pareto(xm, kβ).
	if got, want := p.MinMean(2), 2.0*3/(3-1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("min mean %v, want %v", got, want)
	}
}

// TestTruncatedPareto: every draw respects the truncation bounds, the
// analytic mean matches Monte Carlo, and cap sanity is validated.
func TestTruncatedPareto(t *testing.T) {
	tp, err := NewTruncatedPareto(1.5, 1.259, 30)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(6)
	n := 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := tp.Sample(r)
		if v < tp.Xm || v > tp.Cap {
			t.Fatalf("sample %v outside [%v, %v]", v, tp.Xm, tp.Cap)
		}
		sum += v
	}
	mc := sum / float64(n)
	if got := tp.Mean(); math.Abs(got-mc)/mc > 0.02 {
		t.Fatalf("analytic mean %v, Monte Carlo %v", got, mc)
	}
	if _, err := NewTruncatedPareto(2, 1.2, 1.5); err == nil {
		t.Fatal("cap below xm accepted")
	}
	if _, err := NewTruncatedPareto(0, 1.2, 10); err == nil {
		t.Fatal("xm=0 accepted")
	}
	// β = 1 exercises the log branch of the mean.
	tp1, err := NewTruncatedPareto(1, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	r = NewRNG(7)
	sum = 0
	for i := 0; i < n; i++ {
		sum += tp1.Sample(r)
	}
	if mc := sum / float64(n); math.Abs(tp1.Mean()-mc)/mc > 0.02 {
		t.Fatalf("beta=1 analytic mean %v, Monte Carlo %v", tp1.Mean(), mc)
	}
}

func TestLognormalMedian(t *testing.T) {
	ln := Lognormal{Mu: 0.3, Sigma: 0.8}
	r := NewRNG(8)
	n := 200000
	s := make([]float64, n)
	for i := range s {
		s[i] = ln.Sample(r)
	}
	if got, want := Median(s), ln.Median(); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample median %v, want exp(mu) = %v", got, want)
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(n)
	if want := ln.Mean(); math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("sample mean %v, want %v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{Mu: 3.5}
	r := NewRNG(9)
	n := 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mc := sum / float64(n); math.Abs(mc-e.Mu)/e.Mu > 0.02 {
		t.Fatalf("sample mean %v, want %v", mc, e.Mu)
	}
}

// TestBodyTailMixture: the straggler fraction matches TailFrac, the body
// stays in its band, the tail respects its truncation, and the mixture mean
// matches the analytic value the simulator's load calibration relies on.
func TestBodyTailMixture(t *testing.T) {
	bt, err := NewBodyTail(0.6, 1.4, 1.5, 1.259, 30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(10)
	n := 400000
	tail := 0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := bt.Sample(r)
		sum += v
		switch {
		case v >= 0.6 && v <= 1.4: // body band
		case v >= 1.5 && v <= 30: // tail band
			tail++
		default:
			t.Fatalf("sample %v in neither body [0.6,1.4] nor tail [1.5,30]", v)
		}
	}
	if frac := float64(tail) / float64(n); math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("tail fraction %v, want 0.25", frac)
	}
	mc := sum / float64(n)
	if got := bt.Mean(); math.Abs(got-mc)/mc > 0.02 {
		t.Fatalf("analytic mean %v, Monte Carlo %v", got, mc)
	}
	// The sched default's inflation constant (trace.Config.WorkInflation
	// docs say ≈1.75) comes from exactly this mixture.
	if mc < 1.6 || mc > 1.9 {
		t.Fatalf("default mixture mean %v drifted from the documented ~1.75", mc)
	}
	if _, err := NewBodyTail(0.6, 1.4, 1.2, 1.259, 30, 0.25); err == nil {
		t.Fatal("tail starting inside the body accepted")
	}
	if _, err := NewBodyTail(0.6, 1.4, 1.5, 1.259, 30, 0); err == nil {
		t.Fatal("zero tail fraction accepted")
	}
}

func TestSummaryStats(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if got := Median(s); got != 3 {
		t.Fatalf("median %v", got)
	}
	// Median must not reorder the caller's slice (sim.go passes live data).
	if s[0] != 5 || s[4] != 3 {
		t.Fatalf("Median mutated its input: %v", s)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("empty median %v", got)
	}
	if got := Max(s); got != 5 {
		t.Fatalf("max %v", got)
	}
	if !math.IsInf(Max(nil), -1) {
		t.Fatal("empty max should be -Inf")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("stddev %v", got)
	}
	if StdDev([]float64{1}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate stddev should be 0")
	}
}

// TestHillPlotGrid: the k grid is increasing, bounded, and deduplicated.
func TestHillPlotGrid(t *testing.T) {
	r := NewRNG(12)
	p := Pareto{Xm: 1, Beta: 1.5}
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = p.Sample(r)
	}
	pts := HillPlot(samples, 10, 500, 12)
	if len(pts) < 8 {
		t.Fatalf("only %d points", len(pts))
	}
	prev := 0
	for _, pt := range pts {
		if pt.K <= prev {
			t.Fatalf("k grid not strictly increasing: %d after %d", pt.K, prev)
		}
		if pt.K < 10 || pt.K > 500 {
			t.Fatalf("k %d outside requested range", pt.K)
		}
		if pt.Beta <= 0 || math.IsNaN(pt.Beta) {
			t.Fatalf("bad beta %v at k=%d", pt.Beta, pt.K)
		}
		prev = pt.K
	}
	if HillPlot(samples[:2], 1, 10, 5) != nil {
		t.Fatal("degenerate input should yield nil")
	}
}

// TestSubSeed: child seeds are a pure function of (seed, i), distinct from
// each other and from the parent across a broad sweep, and their RNG
// streams diverge immediately — the property the partitioned simulator's
// per-shard seeding rests on.
func TestSubSeed(t *testing.T) {
	seen := make(map[int64]string)
	for _, seed := range []int64{0, 1, 2, 3, -1, 1 << 40} {
		seen[seed] = "parent"
		for i := 0; i < 64; i++ {
			c := SubSeed(seed, i)
			if c != SubSeed(seed, i) {
				t.Fatal("SubSeed not deterministic")
			}
			key := fmt.Sprintf("seed %d child %d", seed, i)
			if prev, dup := seen[c]; dup {
				t.Fatalf("SubSeed collision: %s == %s (%d)", key, prev, c)
			}
			seen[c] = key
			a, b := NewRNG(seed), NewRNG(c)
			if a.Uint64() == b.Uint64() {
				t.Fatalf("%s: child stream opens with the parent's draw", key)
			}
		}
	}
}
