package dist

import (
	"math"
	"sort"
)

// Median returns the middle value of s (mean of the middle two for even
// lengths), 0 for an empty slice. The input is not modified.
func Median(s []float64) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Max returns the largest value of s, -Inf for an empty slice.
func Max(s []float64) float64 {
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n−1 denominator) of s,
// 0 for fewer than two values.
func StdDev(s []float64) float64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
