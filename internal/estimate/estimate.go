// Package estimate implements the task duration estimators of §5.1:
//
//   - t_rem, the remaining duration of a running copy, extrapolated from
//     progress reports (modelled as the true remaining time perturbed by
//     configurable relative noise — real extrapolation is linear in progress
//     and therefore noisy in exactly this way);
//   - t_new, the duration of a fresh copy, sampled from the durations of
//     completed tasks normalized by input size.
//
// The paper measures moderate accuracies (72% for t_rem, 76% for t_new) and
// feeds the measured accuracy into GRASS's switching decision; Estimator
// reproduces that bookkeeping: every estimate can later be scored against
// the actual outcome, and Accuracy() reports the running average.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"github.com/approx-analytics/grass/internal/dist"
)

// Config tunes an Estimator.
type Config struct {
	// TRemNoise is the relative error sigma applied to remaining-time
	// estimates. 0 gives perfect estimates; ≈0.45 reproduces the paper's
	// ~72% measured accuracy.
	TRemNoise float64
	// TNewNoise is the additional relative error sigma applied on top of the
	// empirical new-copy estimate. ≈0.35 reproduces ~76% accuracy.
	TNewNoise float64
	// Prior is the assumed normalized task duration before any task has
	// completed (a cold-start prior, like Hadoop's default of assuming tasks
	// take the job's configured average).
	Prior float64
	// Window caps how many recent completions inform t_new (0 means 512).
	Window int
}

// Validate checks the configuration. NaN and ±Inf are rejected explicitly:
// NaN fails every ordered comparison, so range checks alone would wave a
// NaN sigma straight into the noise samplers.
func (c Config) Validate() error {
	if !finiteNonNegative(c.TRemNoise) || !finiteNonNegative(c.TNewNoise) {
		return fmt.Errorf("estimate: noise sigmas must be finite and non-negative (trem=%v, tnew=%v)", c.TRemNoise, c.TNewNoise)
	}
	if math.IsNaN(c.Prior) || math.IsInf(c.Prior, 0) || c.Prior <= 0 {
		return fmt.Errorf("estimate: prior %v must be finite and positive", c.Prior)
	}
	if c.Window < 0 {
		return fmt.Errorf("estimate: negative window %d", c.Window)
	}
	return nil
}

// finiteNonNegative reports v ∈ [0, +Inf) excluding NaN.
func finiteNonNegative(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Estimator produces noisy t_rem / t_new estimates and tracks their measured
// accuracy. Not safe for concurrent use.
type Estimator struct {
	cfg Config
	rng *dist.RNG

	// Ring buffer of normalized completed-task durations (eviction order)
	// plus a sorted mirror for O(log n + n) median maintenance.
	window  []float64
	sorted  []float64
	next    int
	version uint64

	tremAccSum float64
	tremN      int
	tnewAccSum float64
	tnewN      int
}

// New constructs an Estimator. rng drives the noise; pass a Split of the
// simulation RNG so estimator noise is reproducible.
func New(cfg Config, rng *dist.RNG) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := cfg.Window
	if w == 0 {
		w = 512
	}
	return &Estimator{
		cfg:    cfg,
		rng:    rng,
		window: make([]float64, 0, w),
		sorted: make([]float64, 0, w),
	}, nil
}

// noisy returns v multiplied by (1 + N(0, sigma)), floored at a small
// positive fraction of v so estimates stay positive.
func (e *Estimator) noisy(v, sigma float64) float64 {
	if sigma == 0 || v == 0 {
		return v
	}
	f := 1 + sigma*e.rng.Norm()
	if f < 0.05 {
		f = 0.05
	}
	return v * f
}

// TRem estimates the remaining duration of a running copy whose true
// remaining time is trueRem. The simulator owns the ground truth; the
// estimator injects the error a progress-based extrapolation would have.
func (e *Estimator) TRem(trueRem float64) float64 {
	return e.noisy(trueRem, e.cfg.TRemNoise)
}

// SampleTRemBias draws a persistent multiplicative error for one copy's
// remaining-time estimates. Extrapolation error is systematic per copy —
// the same skewed progress reports produce the same skew on every query —
// so the scheduler attaches one bias to each copy rather than re-rolling
// noise per estimate (re-rolled noise would let a policy "retry the dice"
// every scheduling round and over-speculate on transient spikes).
func (e *Estimator) SampleTRemBias() float64 {
	return e.biasFactor(e.cfg.TRemNoise)
}

// SampleTNewBias draws a persistent multiplicative error for one task's
// fresh-copy estimates (mis-sized inputs skew every t_new query for that
// task the same way).
func (e *Estimator) SampleTNewBias() float64 {
	return e.biasFactor(e.cfg.TNewNoise)
}

func (e *Estimator) biasFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	f := 1 + sigma*e.rng.Norm()
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// TNew estimates the duration of a new copy of a task with intrinsic work
// scale workScale, using the median of completed normalized durations
// (§5.1: "sampling from durations of completed tasks normalized to input
// and output sizes").
func (e *Estimator) TNew(workScale float64) float64 {
	return e.noisy(e.NormalizedMedian()*workScale, e.cfg.TNewNoise)
}

// NormalizedMedian returns the median completed duration per unit work, or
// the prior before any completion.
func (e *Estimator) NormalizedMedian() float64 {
	n := len(e.sorted)
	if n == 0 {
		return e.cfg.Prior
	}
	if n%2 == 1 {
		return e.sorted[n/2]
	}
	return (e.sorted[n/2-1] + e.sorted[n/2]) / 2
}

// ObserveCompletion records a completed task's duration-per-unit-work,
// updating the t_new empirical base ("the tnew values of all tasks are
// updated whenever a task completes").
func (e *Estimator) ObserveCompletion(normalizedDuration float64) {
	if normalizedDuration <= 0 {
		return
	}
	if len(e.window) < cap(e.window) {
		e.window = append(e.window, normalizedDuration)
	} else {
		e.sortedRemove(e.window[e.next])
		e.window[e.next] = normalizedDuration
		e.next = (e.next + 1) % cap(e.window)
	}
	e.sortedInsert(normalizedDuration)
	e.version++
}

// Version increments whenever the t_new empirical base changes; callers may
// cache values derived from NormalizedMedian until it moves.
func (e *Estimator) Version() uint64 { return e.version }

func (e *Estimator) sortedInsert(v float64) {
	i := sort.SearchFloat64s(e.sorted, v)
	e.sorted = append(e.sorted, 0)
	copy(e.sorted[i+1:], e.sorted[i:])
	e.sorted[i] = v
}

// sortedRemove deletes one instance of v from the sorted mirror. A missing
// value means the mirror has diverged from the ring buffer — every later
// median would be silently wrong — so it panics instead of no-oping.
func (e *Estimator) sortedRemove(v float64) {
	i := sort.SearchFloat64s(e.sorted, v)
	if i >= len(e.sorted) || e.sorted[i] != v {
		panic(fmt.Sprintf("estimate: sorted mirror diverged from window: %v not found among %d values", v, len(e.sorted)))
	}
	e.sorted = append(e.sorted[:i], e.sorted[i+1:]...)
}

// Completions returns how many samples currently inform t_new.
func (e *Estimator) Completions() int { return len(e.window) }

// score converts an (estimate, actual) pair into the paper's accuracy
// measure: 1 − relative error, clamped to [0, 1].
func score(est, actual float64) float64 {
	if actual <= 0 {
		return 0
	}
	rel := (est - actual) / actual
	if rel < 0 {
		rel = -rel
	}
	if rel > 1 {
		rel = 1
	}
	return 1 - rel
}

// RecordTRem scores a past t_rem estimate against the realized remaining
// time ("when a task completes, we update the accuracy using the estimated
// and actual durations").
func (e *Estimator) RecordTRem(est, actual float64) {
	e.tremAccSum += score(est, actual)
	e.tremN++
}

// RecordTNew scores a past t_new estimate against a realized fresh-copy
// duration.
func (e *Estimator) RecordTNew(est, actual float64) {
	e.tnewAccSum += score(est, actual)
	e.tnewN++
}

// TRemAccuracy returns the measured mean accuracy of t_rem estimates, or 0.5
// (maximally uncertain) before any measurement.
func (e *Estimator) TRemAccuracy() float64 {
	if e.tremN == 0 {
		return 0.5
	}
	return e.tremAccSum / float64(e.tremN)
}

// TNewAccuracy returns the measured mean accuracy of t_new estimates, or 0.5
// before any measurement.
func (e *Estimator) TNewAccuracy() float64 {
	if e.tnewN == 0 {
		return 0.5
	}
	return e.tnewAccSum / float64(e.tnewN)
}

// Accuracy returns the combined estimation accuracy — the third factor in
// GRASS's switching decision (§4.1).
func (e *Estimator) Accuracy() float64 {
	return (e.TRemAccuracy() + e.TNewAccuracy()) / 2
}
