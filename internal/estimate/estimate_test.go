package estimate

import (
	"math"
	"testing"

	"github.com/approx-analytics/grass/internal/dist"
)

func newTest(t *testing.T, cfg Config, seed int64) *Estimator {
	t.Helper()
	e, err := New(cfg, dist.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []Config{
		{TRemNoise: -1, Prior: 1},
		{TNewNoise: -1, Prior: 1},
		{Prior: 0},
		{Prior: 1, Window: -1},
		// NaN passes every ordered comparison, so each float field must
		// reject it explicitly; ±Inf passes one-sided range checks.
		{TRemNoise: nan, Prior: 1},
		{TNewNoise: nan, Prior: 1},
		{TRemNoise: inf, Prior: 1},
		{Prior: nan},
		{Prior: inf},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := []Config{{Prior: 1}, {TRemNoise: 0.4, TNewNoise: 0.15, Prior: 1, Window: 64}}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
}

func TestPerfectEstimates(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 1)
	if got := e.TRem(7.5); got != 7.5 {
		t.Fatalf("zero-noise TRem(7.5) = %v", got)
	}
	e.ObserveCompletion(2.0)
	if got := e.TNew(3); math.Abs(got-6) > 1e-12 {
		t.Fatalf("TNew(3) with median 2 = %v, want 6", got)
	}
}

func TestPriorUsedBeforeCompletions(t *testing.T) {
	e := newTest(t, Config{Prior: 4}, 2)
	if got := e.TNew(2); math.Abs(got-8) > 1e-12 {
		t.Fatalf("cold-start TNew(2) = %v, want 8", got)
	}
}

func TestMedianTracksCompletions(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 3)
	for _, v := range []float64{1, 100, 3} {
		e.ObserveCompletion(v)
	}
	if got := e.NormalizedMedian(); got != 3 {
		t.Fatalf("median %v, want 3", got)
	}
	e.ObserveCompletion(5)
	if got := e.NormalizedMedian(); got != 4 {
		t.Fatalf("median of {1,3,5,100} = %v, want 4", got)
	}
}

func TestWindowEviction(t *testing.T) {
	e := newTest(t, Config{Prior: 1, Window: 4}, 4)
	// Fill with large values, then push enough small ones to evict them all.
	for i := 0; i < 4; i++ {
		e.ObserveCompletion(100)
	}
	for i := 0; i < 4; i++ {
		e.ObserveCompletion(1)
	}
	if got := e.NormalizedMedian(); got != 1 {
		t.Fatalf("median after eviction %v, want 1", got)
	}
	if e.Completions() != 4 {
		t.Fatalf("window holds %d, want 4", e.Completions())
	}
}

// TestSortedRemoveMissingPanics pins the divergence guard: removing a value
// the sorted mirror does not hold means the mirror and the ring buffer have
// drifted apart, and every later median would be silently wrong. The old
// code no-oped here; it must panic.
func TestSortedRemoveMissingPanics(t *testing.T) {
	e := newTest(t, Config{Prior: 1, Window: 4}, 11)
	e.ObserveCompletion(1)
	e.ObserveCompletion(2)
	defer func() {
		if recover() == nil {
			t.Fatal("sortedRemove of a missing value did not panic")
		}
	}()
	e.sortedRemove(123.456)
}

// TestVersionTracksCompletions: the cache-invalidation counter moves exactly
// when the t_new base changes.
func TestVersionTracksCompletions(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 12)
	if e.Version() != 0 {
		t.Fatalf("fresh estimator version %d", e.Version())
	}
	e.ObserveCompletion(2)
	e.ObserveCompletion(-1) // ignored: must not bump the version
	e.ObserveCompletion(0)  // ignored
	if e.Version() != 1 {
		t.Fatalf("version %d after one real completion, want 1", e.Version())
	}
	e.ObserveCompletion(3)
	if e.Version() != 2 {
		t.Fatalf("version %d after two real completions, want 2", e.Version())
	}
}

func TestNonPositiveCompletionsIgnored(t *testing.T) {
	e := newTest(t, Config{Prior: 2}, 5)
	e.ObserveCompletion(0)
	e.ObserveCompletion(-3)
	if e.Completions() != 0 {
		t.Fatal("non-positive completions recorded")
	}
	if e.NormalizedMedian() != 2 {
		t.Fatal("prior lost after ignored completions")
	}
}

func TestNoiseStaysPositive(t *testing.T) {
	e := newTest(t, Config{Prior: 1, TRemNoise: 2.0}, 6) // absurd noise
	for i := 0; i < 10000; i++ {
		if v := e.TRem(5); v <= 0 {
			t.Fatalf("TRem produced non-positive %v", v)
		}
	}
}

func TestNoiseMagnitude(t *testing.T) {
	// With sigma=0.45 the measured accuracy should land near the paper's
	// ~72%; this also exercises the Record/Accuracy loop end to end.
	e := newTest(t, Config{Prior: 1, TRemNoise: 0.45}, 7)
	for i := 0; i < 20000; i++ {
		actual := 10.0
		est := e.TRem(actual)
		e.RecordTRem(est, actual)
	}
	acc := e.TRemAccuracy()
	if acc < 0.6 || acc > 0.8 {
		t.Fatalf("measured TRem accuracy %v, want ≈0.72", acc)
	}
}

func TestAccuracyScoring(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 8)
	e.RecordTNew(10, 10) // perfect
	if got := e.TNewAccuracy(); got != 1 {
		t.Fatalf("perfect estimate scored %v", got)
	}
	e.RecordTNew(0, 10) // 100% off
	if got := e.TNewAccuracy(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean accuracy %v, want 0.5", got)
	}
	e.RecordTNew(30, 10) // >100% off clamps to 0
	if got := e.TNewAccuracy(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("mean accuracy %v, want 1/3", got)
	}
}

func TestDefaultAccuracyBeforeData(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 9)
	if e.TRemAccuracy() != 0.5 || e.TNewAccuracy() != 0.5 || e.Accuracy() != 0.5 {
		t.Fatal("cold-start accuracy should be 0.5")
	}
}

func TestCombinedAccuracy(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 10)
	e.RecordTRem(10, 10) // 1.0
	e.RecordTNew(15, 10) // 0.5
	if got := e.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("combined accuracy %v, want 0.75", got)
	}
}

func TestTNewUsesScale(t *testing.T) {
	e := newTest(t, Config{Prior: 1}, 11)
	e.ObserveCompletion(2)
	a, b := e.TNew(1), e.TNew(10)
	if math.Abs(b-10*a) > 1e-9 {
		t.Fatalf("TNew not linear in scale: %v vs %v", a, b)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []float64 {
		e, _ := New(Config{Prior: 1, TRemNoise: 0.3}, dist.NewRNG(42))
		out := make([]float64, 50)
		for i := range out {
			out[i] = e.TRem(5)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimator nondeterministic at %d", i)
		}
	}
}
