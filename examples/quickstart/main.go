// Quickstart: generate a small Facebook-like deadline-bound workload, run
// it under GRASS and under LATE on identical seeds, and print the accuracy
// improvement — the paper's headline experiment in miniature.
package main

import (
	"fmt"
	"log"

	grass "github.com/approx-analytics/grass"
)

func main() {
	// A 50-node cluster and 80 deadline-bound jobs.
	tc := grass.DefaultTraceConfig(grass.Facebook, grass.Hadoop, grass.DeadlineBound)
	tc.Jobs = 80
	tc.Slots = 100
	tc.Load = 1.3
	jobs, err := grass.GenerateTrace(tc)
	if err != nil {
		log.Fatal(err)
	}

	sim := grass.DefaultSimConfig()
	sim.Cluster.Machines = 50
	sim.Seed = 42

	late, err := grass.Simulate(sim, "late", jobs)
	if err != nil {
		log.Fatal(err)
	}
	gr, err := grass.Simulate(sim, "grass", jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deadline-bound jobs: %d, cluster: %d slots\n",
		len(jobs), sim.Cluster.Machines*sim.Cluster.SlotsPerMachine)
	fmt.Printf("LATE  mean accuracy: %.3f\n", grass.MeanAccuracy(late.Results))
	fmt.Printf("GRASS mean accuracy: %.3f\n", grass.MeanAccuracy(gr.Results))
	fmt.Printf("improvement: %.1f%%\n",
		grass.AccuracyImprovementPct(late.Results, gr.Results))
	for _, bin := range []grass.SizeBin{grass.Small, grass.Medium, grass.Large} {
		l := grass.FilterBin(late.Results, bin)
		g := grass.FilterBin(gr.Results, bin)
		if len(l) == 0 {
			continue
		}
		fmt.Printf("  bin %-8s %2d jobs: %+.1f%%\n", bin, len(l),
			grass.AccuracyImprovementPct(l, g))
	}
}
