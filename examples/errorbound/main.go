// Error-bound study: the paper's traffic-counting motivation — counting
// cars to the nearest thousand is good enough, so jobs stop after
// completing (1−ε) of their tasks. This example sweeps the error bound and
// shows how GRASS's speedup over LATE behaves as ε tightens toward exact
// computation (ε = 0).
package main

import (
	"fmt"
	"log"

	grass "github.com/approx-analytics/grass"
)

func main() {
	sim := grass.DefaultSimConfig()
	sim.Cluster.Machines = 100
	sim.Seed = 11

	fmt.Println("traffic-counting error-bound sweep: 50 jobs/point, 200 slots")
	fmt.Printf("%-10s %12s %12s %10s\n", "epsilon", "LATE dur", "GRASS dur", "speedup")
	for _, eps := range []float64{0.30, 0.20, 0.10, 0.05, 0.0} {
		tc := grass.DefaultTraceConfig(grass.Facebook, grass.Hadoop, grass.ErrorBound)
		tc.Jobs = 50
		tc.Slots = 200
		tc.Load = 0.7
		tc.Seed = 11
		tc.ErrorRange = [2]float64{eps, eps} // pin every job to this ε
		if eps == 0 {
			tc = grass.DefaultTraceConfig(grass.Facebook, grass.Hadoop, grass.ExactBound)
			tc.Jobs = 50
			tc.Slots = 200
			tc.Load = 0.7
			tc.Seed = 11
		}
		jobs, err := grass.GenerateTrace(tc)
		if err != nil {
			log.Fatal(err)
		}
		late, err := grass.Simulate(sim, "late", jobs)
		if err != nil {
			log.Fatal(err)
		}
		gr, err := grass.Simulate(sim, "grass", jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %12.2f %12.2f %+9.1f%%\n", eps,
			grass.MeanDuration(late.Results),
			grass.MeanDuration(gr.Results),
			grass.SpeedupPct(late.Results, gr.Results))
	}
	fmt.Println("\nε = 0 is an exact computation: GRASS is a unified solution (§6.2.2).")
}
