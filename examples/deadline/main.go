// Deadline-bound study: a real-time ad system wants the best possible
// click-through estimate within a hard latency budget. This example builds
// that workload by hand — many multi-waved aggregation jobs with tight
// deadlines — and compares every speculation policy on it, including the
// oracle upper bound.
package main

import (
	"fmt"
	"log"

	grass "github.com/approx-analytics/grass"
)

func main() {
	jobs := adWorkload(60, 7)

	sim := grass.DefaultSimConfig()
	sim.Cluster.Machines = 100
	sim.Seed = 7

	fmt.Println("ad-system deadline workload: 60 jobs, 200 slots")
	fmt.Printf("%-16s %10s %12s %8s\n", "policy", "accuracy", "improvement", "spec")
	var base float64
	for _, p := range []string{"late", "mantri", "gs", "ras", "grass", "oracle"} {
		stats, err := grass.Simulate(sim, p, jobs)
		if err != nil {
			log.Fatal(err)
		}
		acc := grass.MeanAccuracy(stats.Results)
		if p == "late" {
			base = acc
		}
		spec := 0
		for _, r := range stats.Results {
			spec += r.Speculative
		}
		fmt.Printf("%-16s %10.3f %+11.1f%% %8d\n", p, acc, (acc-base)/base*100, spec)
	}
}

// adWorkload builds deadline-bound aggregation jobs: heavy-tailed task
// counts, skewed per-task work (some ad partitions are far hotter than
// others), and deadlines close to each job's ideal duration.
func adWorkload(n int, seed int64) []*grass.Job {
	jobs := make([]*grass.Job, 0, n)
	arrival := 0.0
	rng := newRand(seed)
	for id := 0; id < n; id++ {
		tasks := 40 + rng.intn(800)
		work := make([]float64, tasks)
		for i := range work {
			// Hot partitions: 1 in 8 carries 4x the data.
			work[i] = 8
			if rng.intn(8) == 0 {
				work[i] = 32
			}
		}
		waves := float64(tasks)/66 + 1
		deadline := waves * 9 * 1.1 // ~10% slack over the ideal
		jobs = append(jobs, &grass.Job{
			ID:        id,
			Arrival:   arrival,
			InputWork: work,
			Bound:     grass.NewDeadline(deadline),
		})
		arrival += float64(rng.intn(30)) / 2
	}
	return jobs
}

// newRand is a tiny deterministic generator so the example is reproducible
// without pulling in the library's internals.
type xorshift struct{ s uint64 }

func newRand(seed int64) *xorshift { return &xorshift{s: uint64(seed)*2685821657736338717 + 1} }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }
