// DAG pipeline study: jobs composed as map → join → reduce phases (§5.2).
// The input phase is where stragglers live and where the approximation
// bound applies; GRASS estimates intermediate-phase time from completed
// jobs and subtracts it from the deadline. This example shows gains staying
// stable as the DAG deepens (Figure 9's claim).
package main

import (
	"fmt"
	"log"

	grass "github.com/approx-analytics/grass"
)

func main() {
	sim := grass.DefaultSimConfig()
	sim.Cluster.Machines = 100
	sim.Seed = 21

	fmt.Println("DAG pipeline workload: deadline-bound, 60 jobs/point, 200 slots")
	fmt.Printf("%-8s %14s %14s %12s\n", "DAG", "LATE acc", "GRASS acc", "improvement")
	for dag := 2; dag <= 6; dag++ {
		tc := grass.DefaultTraceConfig(grass.Facebook, grass.Hadoop, grass.DeadlineBound)
		tc.Jobs = 60
		tc.Slots = 200
		tc.Load = 1.3
		tc.Seed = 21
		tc.DAGLength = dag
		jobs, err := grass.GenerateTrace(tc)
		if err != nil {
			log.Fatal(err)
		}
		late, err := grass.Simulate(sim, "late", jobs)
		if err != nil {
			log.Fatal(err)
		}
		gr, err := grass.Simulate(sim, "grass", jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14.3f %14.3f %+11.1f%%\n", dag,
			grass.MeanAccuracy(late.Results),
			grass.MeanAccuracy(gr.Results),
			grass.AccuracyImprovementPct(late.Results, gr.Results))
	}
}
