// Package grass is a from-scratch reproduction of GRASS (Ananthanarayanan
// et al., "GRASS: Trimming Stragglers in Approximation Analytics",
// NSDI 2014): speculation-aware scheduling for approximation jobs — jobs
// with deadline or error bounds that need only a subset of their tasks to
// complete.
//
// The package bundles:
//
//   - the GRASS speculation algorithm (Greedy Speculative and Resource
//     Aware Speculative scheduling with learned adaptive switching),
//   - the production baselines it was evaluated against (LATE, Mantri),
//   - a discrete-event cluster simulator with heavy-tailed stragglers,
//     fair sharing with preemption, deadline/error bounds and DAG jobs,
//   - synthetic Facebook/Bing workload generators, and
//   - the analytic model of the paper's Appendix A.
//
// Quick start:
//
//	jobs, _ := grass.GenerateTrace(grass.DefaultTraceConfig(
//	    grass.Facebook, grass.Hadoop, grass.DeadlineBound))
//	stats, _ := grass.Simulate(grass.DefaultSimConfig(), "grass", jobs)
//	fmt.Println(grass.MeanAccuracy(stats.Results))
//
// Policy names accepted by Simulate and NewPolicy: "grass",
// "grass-strawman", "grass-best1", "grass-best2util", "grass-best2acc",
// "gs", "ras", "late", "mantri", "nospec", "oracle".
package grass

import (
	"context"
	"fmt"
	"io/fs"

	"github.com/approx-analytics/grass/internal/cluster"
	"github.com/approx-analytics/grass/internal/core"
	"github.com/approx-analytics/grass/internal/exp"
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/serve"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/spec"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
	"github.com/approx-analytics/grass/internal/traceio"
)

// Core domain types.
type (
	// Job describes one analytics job: per-task work, DAG phases, bound.
	Job = task.Job
	// Bound is a job's approximation bound (deadline or error).
	Bound = task.Bound
	// BoundKind distinguishes deadline- from error-bound jobs.
	BoundKind = task.BoundKind
	// Phase is one intermediate DAG phase.
	Phase = task.Phase
	// SizeBin is the paper's job-size classification.
	SizeBin = task.SizeBin
	// JobResult is the outcome of one simulated job.
	JobResult = sched.JobResult
	// RunStats aggregates one simulation run.
	RunStats = sched.RunStats
	// SimConfig parameterizes the cluster simulator.
	SimConfig = sched.Config
	// ClusterConfig describes machines and slots.
	ClusterConfig = cluster.Config
	// FaultConfig is a deterministic fault schedule (SimConfig.Faults):
	// machine crash/restart, correlated rack slowdown storms, and
	// background-load interference. The zero value injects nothing and
	// costs nothing. Fault randomness lives in its own seed substream, so
	// enabling faults never perturbs the workload's own draws.
	FaultConfig = fault.Config
	// FaultStats counts the fault events a run's schedule applied
	// (RunStats.Faults; all zero on a benign run).
	FaultStats = sched.FaultStats
	// TraceConfig parameterizes synthetic workload generation.
	TraceConfig = trace.Config
	// GrassConfig tunes the GRASS policy family (ξ, factors, strawman).
	GrassConfig = core.Config
	// PolicyFactory builds per-job speculation policies.
	PolicyFactory = spec.Factory
	// Workload selects the mimicked production trace.
	Workload = trace.Workload
	// Framework selects the Hadoop or Spark regime.
	Framework = trace.Framework
	// BoundMode selects how generated jobs are bounded.
	BoundMode = trace.BoundMode
	// TraceStream generates a synthetic workload lazily, one job per Next,
	// with a pool for recycling finished jobs (StreamTrace builds one).
	TraceStream = trace.Stream
	// JobSource is a streaming admission source: jobs in arrival order, one
	// at a time. TraceStream implements it; so does any importer of real
	// cluster logs. Sources that also implement sched.Releaser get finished
	// jobs handed back for reuse.
	JobSource = sched.Source
	// QueueKind selects the event engine's pending-event queue
	// (SimConfig.EventQueue). Both kinds simulate byte-identically; the
	// calendar queue (the zero value) is the fast default, the heap the
	// reference implementation.
	QueueKind = simevent.QueueKind
)

// Workload, framework and bound-mode constants.
const (
	Facebook = trace.Facebook
	Bing     = trace.Bing

	Hadoop = trace.Hadoop
	Spark  = trace.Spark

	DeadlineBound = trace.DeadlineBound
	ErrorBound    = trace.ErrorBound
	ExactBound    = trace.ExactBound
	MixedBound    = trace.MixedBound

	CalendarQueue = simevent.Calendar
	HeapQueue     = simevent.Heap
)

// ParseQueueKind maps a flag value ("calendar" | "heap") to a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) { return simevent.ParseQueueKind(s) }

// Job-size bins (paper §6.1).
const (
	Small  = task.Small
	Medium = task.Medium
	Large  = task.Large
)

// NewDeadline returns a deadline bound of d time units.
func NewDeadline(d float64) Bound { return task.NewDeadline(d) }

// NewError returns an error bound tolerating fraction eps of skipped tasks.
func NewError(eps float64) Bound { return task.NewError(eps) }

// Exact returns a zero-error bound (exact computation).
func Exact() Bound { return task.Exact() }

// DefaultSimConfig returns the evaluation's simulator configuration: a
// 200-node cluster, β=1.259 straggler tails, estimator noise tuned to the
// paper's measured accuracies.
func DefaultSimConfig() SimConfig { return sched.DefaultConfig() }

// DefaultTraceConfig returns a §6.1-calibrated workload configuration.
func DefaultTraceConfig(w Workload, f Framework, b BoundMode) TraceConfig {
	return trace.DefaultConfig(w, f, b)
}

// DefaultGrassConfig returns the paper's GRASS configuration (ξ = 15%, all
// three switching factors).
func DefaultGrassConfig() GrassConfig { return core.DefaultConfig() }

// FaultScenario resolves a named fault preset ("crashy", "rack-storm",
// "contended", "overload-mixed"; "" and "none" mean no faults) to a
// FaultConfig for SimConfig.Faults or WithFaults.
func FaultScenario(name string) (FaultConfig, error) { return fault.Scenario(name) }

// FaultScenarios lists the fault preset names in stable order.
func FaultScenarios() []string { return fault.Scenarios() }

// WithFaults attaches a deterministic fault schedule to a simulation — a
// convenience over setting SimConfig.Faults directly, usable with every
// options-pattern entry point. Under SimulateTrace's partitioned model the
// schedule splits with the machines, so results stay byte-identical for
// any shard count at a fixed partition count.
func WithFaults(fc FaultConfig) SimOption { return func(o *simOptions) { o.faults = &fc } }

// NewPolicy resolves a policy name to a factory. The boolean result
// reports whether the policy needs oracle mode (ground-truth task views);
// set SimConfig.Oracle accordingly (Simulate does this for you).
func NewPolicy(name string, seed int64) (PolicyFactory, bool, error) {
	return exp.NewFactory(name, seed)
}

// NewGrassPolicy builds a GRASS factory with a custom configuration
// (perturbation ξ, factor ablations, strawman switching).
func NewGrassPolicy(cfg GrassConfig) (PolicyFactory, error) {
	return core.New(cfg)
}

// GenerateTrace produces a synthetic workload: jobs sorted by arrival with
// §6.1-style deadline/error bounds. It is the materializing wrapper around
// StreamTrace — identical jobs for the same config — for workloads small
// enough to hold in memory.
func GenerateTrace(cfg TraceConfig) ([]*Job, error) {
	return trace.Generate(cfg)
}

// StreamTrace returns a lazy generator of the same workload GenerateTrace
// materializes: byte-identical jobs for the same config, emitted one at a
// time. Pass the stream to SimulateStream to replay traces at the paper's
// sizes (575K/500K jobs and beyond) in bounded memory.
func StreamTrace(cfg TraceConfig) (*TraceStream, error) {
	return trace.NewStream(cfg)
}

// SimOption configures the options-pattern entry points — SimulateTrace,
// SimulateJobs, SimulateSource and Serve — for simulations that want more
// than the positional defaults (sharded execution, streamed result
// folding, cancellation, a custom policy factory).
type SimOption func(*simOptions)

type simOptions struct {
	shards     int
	partitions int
	fold       func(JobResult)
	ctx        context.Context
	factory    PolicyFactory
	faults     *FaultConfig
}

// WithShards sets the number of worker goroutines executing the
// simulation's partitions. At a fixed partition count the shard count is
// pure execution parallelism: results are byte-identical for any value —
// it only changes wall clock. BUT when WithPartitions is not given, the
// partition count follows the shard count ("split k ways and run on k
// cores"), and the partition count IS model-visible — pass
// WithPartitions explicitly to vary worker counts against one model.
// Values above the partition count are clamped; 0 (the default) means
// one worker.
func WithShards(k int) SimOption { return func(o *simOptions) { o.shards = k } }

// WithPartitions sets the partition count — the sharded-execution MODEL:
// the cluster's machines and the trace are split into this many
// self-contained sub-simulations (fair sharing is scoped to a partition)
// whose outputs are merged deterministically. 1, the default, is the
// plain engine; 0 follows WithShards, so WithShards(4) alone means
// "split 4 ways and run on 4 cores". Results are comparable only at
// equal partition counts.
func WithPartitions(p int) SimOption { return func(o *simOptions) { o.partitions = p } }

// WithFold streams each job's result to fn instead of accumulating
// RunStats.Results, so nothing retained grows with the trace length. Under
// SimulateTrace the results arrive in ascending JobID order (the canonical
// sharded merge); under SimulateJobs/SimulateSource they arrive in
// completion order, exactly as the simulator finishes them.
func WithFold(fn func(JobResult)) SimOption { return func(o *simOptions) { o.fold = fn } }

// WithContext makes the simulation cancellable: once ctx is done the run
// stops promptly — the event loop checks between event batches, sharded
// workers stop claiming partitions — and the entry point returns ctx.Err().
// A cancelled run's partial work is discarded (an installed WithFold fn may
// have observed a prefix of the results); the engine's pooled state is
// abandoned consistently, so building a fresh simulation afterwards is
// always safe. A nil ctx (the default) disables checking.
func WithContext(ctx context.Context) SimOption { return func(o *simOptions) { o.ctx = ctx } }

// WithFactory runs the simulation under a custom policy factory instead of
// a named policy; the policy-name argument is ignored (pass ""). Oracle
// mode is NOT inferred — set SimConfig.Oracle yourself if the factory
// needs ground-truth views. Not supported by SimulateTrace, whose
// partitioned model must re-derive per-partition factories from seeds.
func WithFactory(f PolicyFactory) SimOption { return func(o *simOptions) { o.factory = f } }

// SimulateTrace generates cfg's synthetic workload lazily and simulates
// it under the named policy — the sharding-capable, options-pattern entry
// point. With no options it is SimulateStream over StreamTrace(tc):
// one partition, one worker, results accumulated. WithPartitions /
// WithShards partition the run across cores with a deterministic merge;
// the trace is consumed as per-partition shard streams, so no
// materialization happens at any partition count.
func SimulateTrace(sc SimConfig, tc TraceConfig, policy string, opts ...SimOption) (*RunStats, error) {
	var o simOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.factory != nil {
		return nil, fmt.Errorf("grass: WithFactory is not supported by SimulateTrace (partitions need seed-derived factories); use SimulateJobs or SimulateSource")
	}
	if o.shards <= 0 {
		o.shards = 1
	}
	if o.partitions <= 0 {
		o.partitions = o.shards
	}
	if o.faults != nil {
		sc.Faults = *o.faults
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	_, oracleMode, err := exp.NewFactory(policy, sc.Seed)
	if err != nil {
		return nil, err
	}
	sc.Oracle = oracleMode
	run := sched.ShardedRun{
		Config:  sc,
		Parts:   o.partitions,
		Workers: o.shards,
		NewFactory: func(seed int64) (PolicyFactory, error) {
			f, _, err := exp.NewFactory(policy, seed)
			return f, err
		},
		NewSource: func(p int) (JobSource, error) {
			return trace.NewShardStream(tc, p, o.partitions)
		},
	}
	if o.fold != nil {
		run.OnResult = o.fold
		run.Jobs = tc.Jobs
	}
	run.Ctx = o.ctx
	return sched.RunSharded(run)
}

// SimulateJobs runs a materialized trace through the cluster simulator
// under the named policy — the options-pattern successor of Simulate and
// SimulateWith. Oracle mode is enabled automatically for the "oracle"
// policy (unless WithFactory overrides the policy). Supports WithFold,
// WithContext and WithFactory; sharded execution (WithShards /
// WithPartitions) requires SimulateTrace, whose partitioner splits the
// trace by construction.
func SimulateJobs(cfg SimConfig, policy string, jobs []*Job, opts ...SimOption) (*RunStats, error) {
	o, err := collectUnshardedOptions("SimulateJobs", opts)
	if err != nil {
		return nil, err
	}
	return runSim(cfg, policy, jobs, nil, o)
}

// SimulateSource runs a streamed trace through the cluster simulator under
// the named policy — the options-pattern successor of SimulateStream and
// SimulateStreamFold. Results are identical to materializing the same
// trace and calling SimulateJobs; memory differs — the simulator holds
// only in-flight jobs (finished jobs are recycled when src implements
// sched.Releaser, as TraceStream does). Accepts the same options as
// SimulateJobs.
func SimulateSource(cfg SimConfig, policy string, src JobSource, opts ...SimOption) (*RunStats, error) {
	o, err := collectUnshardedOptions("SimulateSource", opts)
	if err != nil {
		return nil, err
	}
	return runSim(cfg, policy, nil, src, o)
}

// collectUnshardedOptions folds opts and rejects the sharded-execution
// options the single-engine entry points cannot honor — silently running
// an 8-partition request on one partition would change the model the
// caller asked for.
func collectUnshardedOptions(entry string, opts []SimOption) (simOptions, error) {
	var o simOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards > 1 || o.partitions > 1 {
		return o, fmt.Errorf("grass: %s runs one plain engine; sharded execution (WithShards/WithPartitions) requires SimulateTrace", entry)
	}
	return o, nil
}

// runSim is the single execution core behind every non-partitioned entry
// point — Simulate, SimulateWith, SimulateStream, SimulateStreamFold,
// SimulateJobs and SimulateSource all land here, so the materialized and
// streamed paths cannot drift. Exactly one of jobs and src must be set.
// With o.factory nil the policy name is resolved (enabling oracle mode
// when the policy needs ground truth); otherwise the factory is used as
// given.
func runSim(cfg SimConfig, policy string, jobs []*Job, src JobSource, o simOptions) (*RunStats, error) {
	if o.faults != nil {
		cfg.Faults = *o.faults
	}
	factory := o.factory
	if factory == nil {
		f, oracleMode, err := exp.NewFactory(policy, cfg.Seed)
		if err != nil {
			return nil, err
		}
		factory = f
		cfg.Oracle = oracleMode
	}
	sim, err := sched.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	if o.ctx != nil {
		sim.SetContext(o.ctx)
	}
	if o.fold != nil {
		sim.OnResult(o.fold)
	}
	if src != nil {
		return sim.RunSource(src)
	}
	return sim.Run(jobs)
}

// Simulate runs jobs through the cluster simulator under the named policy.
// Oracle mode is enabled automatically for the "oracle" policy.
//
// Deprecated: use SimulateJobs, which takes options (WithFold,
// WithContext, WithFactory). Results are byte-identical.
func Simulate(cfg SimConfig, policy string, jobs []*Job) (*RunStats, error) {
	return SimulateJobs(cfg, policy, jobs)
}

// SimulateWith runs jobs under a custom policy factory.
//
// Deprecated: use SimulateJobs with WithFactory. Results are
// byte-identical.
func SimulateWith(cfg SimConfig, factory PolicyFactory, jobs []*Job) (*RunStats, error) {
	if factory == nil {
		return nil, fmt.Errorf("sched: nil policy factory")
	}
	return SimulateJobs(cfg, "", jobs, WithFactory(factory))
}

// SimulateStream runs a streamed trace through the cluster simulator under
// the named policy.
//
// Deprecated: use SimulateSource, which takes options. Results are
// byte-identical.
func SimulateStream(cfg SimConfig, policy string, src JobSource) (*RunStats, error) {
	return SimulateSource(cfg, policy, src)
}

// SimulateStreamFold is the bounded-memory variant of SimulateStream: each
// job's result is passed to fold as the job finishes (in completion order)
// instead of accumulating in RunStats.Results.
//
// Deprecated: use SimulateSource with WithFold. Results are byte-identical.
func SimulateStreamFold(cfg SimConfig, policy string, src JobSource, fold func(JobResult)) (*RunStats, error) {
	if fold == nil {
		return nil, fmt.Errorf("grass: nil fold func")
	}
	return SimulateSource(cfg, policy, src, WithFold(fold))
}

// Service-mode types (see internal/serve for the full contract).
type (
	// ServeConfig parameterizes a live scheduler service.
	ServeConfig = serve.Config
	// Server is a running scheduler service: Submit jobs (or attach a
	// ServeConfig.Source driver), Snapshot live telemetry, Close admission,
	// Wait for the final SLO summary.
	Server = serve.Server
	// ServeSummary is a serve run's final report: job count, makespan,
	// utilization, and p50/p95/p99/p999 job-latency quantiles.
	ServeSummary = serve.Summary
	// ServeSnapshot is the live telemetry read: queue depth, progress
	// counters, utilization and running latency quantiles.
	ServeSnapshot = serve.Snapshot
	// Pace times a service's open-loop arrival driver.
	Pace = serve.Pace
	// PaceMode selects trace-timed or Poisson arrival timing.
	PaceMode = serve.PaceMode
)

// Arrival pacing modes for ServeConfig.Pace.
const (
	// TraceTimed keeps each job's own arrival time — a trace-timed serve
	// run is byte-identical to the offline replay of the same trace.
	TraceTimed = serve.TraceTimed
	// Poisson re-times jobs on an open-loop Poisson process of Pace.Rate
	// jobs per virtual-time unit.
	Poisson = serve.Poisson
)

// ErrServeClosed is returned by Server.Submit after admission closed.
var ErrServeClosed = serve.ErrClosed

// Serve starts a live scheduler service running the named policy: the
// long-running counterpart of SimulateSource, accepting jobs through
// Server.Submit (or an attached cfg.Source open-loop driver) and reporting
// p50/p95/p99/p999 job latency, queue depth and slot utilization while it
// runs. Virtual-time results are deterministic — a trace-timed serve run
// of a trace is byte-identical to replaying it — and cfg.Ctx cancels the
// whole service. If cfg.NewFactory is already set, the policy name is
// ignored (set cfg.Sim.Oracle yourself in that case).
func Serve(cfg ServeConfig, policy string) (*Server, error) {
	if cfg.NewFactory == nil {
		_, oracleMode, err := exp.NewFactory(policy, cfg.Sim.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Sim.Oracle = oracleMode
		cfg.NewFactory = func(seed int64) (PolicyFactory, error) {
			f, _, err := exp.NewFactory(policy, seed)
			return f, err
		}
	}
	return serve.New(cfg)
}

// MeanAccuracy averages job accuracies (the deadline-bound metric).
func MeanAccuracy(rs []JobResult) float64 { return metrics.MeanAccuracy(rs) }

// MeanDuration averages input-phase durations (the error-bound metric).
func MeanDuration(rs []JobResult) float64 { return metrics.MeanInputDuration(rs) }

// AccuracyImprovementPct is the relative accuracy gain of treat over base.
func AccuracyImprovementPct(base, treat []JobResult) float64 {
	return metrics.AccuracyImprovementPct(base, treat)
}

// SpeedupPct is the relative duration reduction of treat versus base.
func SpeedupPct(base, treat []JobResult) float64 {
	return metrics.SpeedupPct(base, treat)
}

// FilterBin keeps the results of one job-size bin.
func FilterBin(rs []JobResult, b SizeBin) []JobResult {
	return metrics.FilterBin(rs, b)
}

// Real-trace import (package traceio): typed, validating, streaming readers
// for production cluster logs, decoding into the same Job model the
// synthetic generators produce.
type (
	// TraceFormat identifies a supported real-trace file format.
	TraceFormat = traceio.Format
	// ImportOptions maps raw trace records onto the simulator's job model
	// (bytes per task, work scale, time scale, bound assignment).
	ImportOptions = traceio.Options
	// ImportStats summarizes a validation pass over an imported trace.
	ImportStats = traceio.ScanStats
	// ImportSource streams an imported trace as jobs in arrival order; it
	// implements JobSource, so SimulateSource replays real traces in
	// bounded memory. Check Err after the stream ends.
	ImportSource = traceio.Source
	// TracePosition locates a record (file, 1-based line, column) in an
	// imported trace; every import decode error carries one.
	TracePosition = traceio.Position
	// TraceDecodeError is a positioned import failure (errors.As target).
	TraceDecodeError = traceio.DecodeError
)

// Supported real-trace formats.
const (
	// SWIMTrace is the SWIM / Facebook workload-repository format: one job
	// per tab-separated line (id, submit time, inter-arrival, map input
	// bytes, shuffle bytes, output bytes).
	SWIMTrace = traceio.SWIM
	// GoogleTrace is the Google cluster-data v2 task_events table: one CSV
	// row per task event, grouped into jobs by SUBMIT events.
	GoogleTrace = traceio.GoogleTaskEvents
)

// ParseTraceFormat maps a flag value ("swim" | "google") to a TraceFormat.
func ParseTraceFormat(s string) (TraceFormat, error) { return traceio.ParseFormat(s) }

// DefaultImportOptions returns the documented default record→job mapping
// (128 MiB splits, §6.1-style mixed bounds).
func DefaultImportOptions() ImportOptions { return traceio.DefaultOptions() }

// ImportTrace opens a real cluster-trace file (".gz" transparently
// decompressed) and streams its jobs in arrival order with bounded memory.
// fsys nil means the host filesystem. Close the source when done; after the
// stream ends, its Err method reports the positioned decode error that cut
// it short, if any — run ScanTrace first to validate a file up front.
func ImportTrace(fsys fs.FS, path string, format TraceFormat, o ImportOptions) (*ImportSource, error) {
	return traceio.NewSource(fsys, path, format, o)
}

// ScanTrace validates every record of a trace file in bounded memory
// without simulating, returning summary statistics. The first malformed
// record fails with a TraceDecodeError carrying its file:line:column.
func ScanTrace(fsys fs.FS, path string, format TraceFormat, o ImportOptions) (*ImportStats, error) {
	return traceio.Scan(fsys, path, format, o)
}
