package grass_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	grass "github.com/approx-analytics/grass"
)

// TestImportTraceFacade drives the public real-trace import surface end to
// end: scan a vendored SWIM sample, stream it through SimulateSource, and
// check the error path reports positioned decode failures.
func TestImportTraceFacade(t *testing.T) {
	fsys := os.DirFS("internal/traceio/testdata/samples")
	const sample = "swim_fb_sample.tsv"

	f, err := grass.ParseTraceFormat("swim")
	if err != nil || f != grass.SWIMTrace {
		t.Fatalf("ParseTraceFormat(swim) = %v, %v", f, err)
	}
	st, err := grass.ScanTrace(fsys, sample, f, grass.DefaultImportOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2000 {
		t.Fatalf("scanned %d jobs, want 2000", st.Jobs)
	}

	src, err := grass.ImportTrace(fsys, sample, f, grass.DefaultImportOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if testing.Short() {
		// Decode-only under -short: count the stream without simulating.
		n := 0
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			n++
			src.Release(j)
		}
		if src.Err() != nil || n != st.Jobs {
			t.Fatalf("streamed %d jobs (err %v), want %d", n, src.Err(), st.Jobs)
		}
		return
	}
	cfg := smallSim(1)
	rs, err := grass.SimulateSource(cfg, "nospec", src)
	if err != nil {
		t.Fatal(err)
	}
	if src.Err() != nil {
		t.Fatalf("stream error after replay: %v", src.Err())
	}
	if len(rs.Results) != st.Jobs {
		t.Fatalf("simulated %d jobs, want %d", len(rs.Results), st.Jobs)
	}

	// The positioned-error contract through the facade types.
	bad := os.DirFS("internal/traceio/testdata/fuzz/FuzzTraceioDecode")
	if _, err := grass.ScanTrace(bad, "seed_swim_truncated", grass.SWIMTrace, grass.DefaultImportOptions()); err == nil {
		t.Fatal("scanning a corpus seed file (corpus header line) should fail")
	} else {
		var de *grass.TraceDecodeError
		if !errors.As(err, &de) {
			t.Fatalf("scan error %T is not a *TraceDecodeError: %v", err, err)
		}
		if de.Pos.Line < 1 || !strings.Contains(err.Error(), ":") {
			t.Fatalf("decode error lacks a position: %v", err)
		}
	}
}
