// Command grass-sim runs one simulated trace under one speculation policy
// and prints per-bin and aggregate results. It is the quickest way to poke
// at the simulator:
//
//	grass-sim -policy grass -workload facebook -framework hadoop \
//	          -bound deadline -jobs 200 -seed 1
//
// Policies: grass, grass-strawman, grass-best1, grass-best2util,
// grass-best2acc, gs, ras, late, mantri, nospec, oracle.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/approx-analytics/grass/internal/exp"
	"github.com/approx-analytics/grass/internal/metrics"
	"github.com/approx-analytics/grass/internal/sched"
	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

func main() {
	var (
		policy    = flag.String("policy", "grass", "speculation policy")
		workload  = flag.String("workload", "facebook", "facebook | bing")
		framework = flag.String("framework", "hadoop", "hadoop | spark")
		bound     = flag.String("bound", "deadline", "deadline | error | exact | mixed")
		jobs      = flag.Int("jobs", 200, "number of jobs")
		load      = flag.Float64("load", 0.7, "offered load")
		dag       = flag.Int("dag", 1, "DAG length (phases)")
		seed      = flag.Int64("seed", 1, "random seed")
		machines  = flag.Int("machines", 200, "cluster machines")
		slotsPer  = flag.Int("slots", 2, "slots per machine")
	)
	flag.Parse()
	if err := run(*policy, *workload, *framework, *bound, *jobs, *load, *dag, *seed, *machines, *slotsPer); err != nil {
		fmt.Fprintln(os.Stderr, "grass-sim:", err)
		os.Exit(1)
	}
}

func run(policy, workload, framework, bound string, jobs int, load float64, dag int, seed int64, machines, slotsPer int) error {
	tc, err := traceConfig(workload, framework, bound)
	if err != nil {
		return err
	}
	tc.Jobs = jobs
	tc.Load = load
	tc.Seed = seed
	tc.Slots = machines * slotsPer
	if dag > 1 {
		tc.DAGLength = dag
	}
	stream, err := trace.NewStream(tc)
	if err != nil {
		return err
	}

	scfg := sched.DefaultConfig()
	scfg.Cluster.Machines = machines
	scfg.Cluster.SlotsPerMachine = slotsPer
	scfg.Seed = seed
	if tc.Framework == trace.Spark {
		// Smaller tasks are more sensitive to estimation error (§6.3.2).
		scfg.Estimator.TRemNoise = 0.5
		scfg.Estimator.TNewNoise = 0.25
	}
	factory, oracleMode, err := exp.NewFactory(policy, seed)
	if err != nil {
		return err
	}
	scfg.Oracle = oracleMode

	sim, err := sched.New(scfg, factory)
	if err != nil {
		return err
	}
	// Stream the trace: same results as materializing it, bounded memory.
	stats, err := sim.RunSource(stream)
	if err != nil {
		return err
	}
	report(tc, factory.Name(), stats)
	return nil
}

func traceConfig(workload, framework, bound string) (trace.Config, error) {
	w, err := trace.ParseWorkload(workload)
	if err != nil {
		return trace.Config{}, err
	}
	f, err := trace.ParseFramework(framework)
	if err != nil {
		return trace.Config{}, err
	}
	b, err := trace.ParseBound(bound)
	if err != nil {
		return trace.Config{}, err
	}
	return trace.DefaultConfig(w, f, b), nil
}

func report(tc trace.Config, policy string, stats *sched.RunStats) {
	fmt.Printf("policy=%s workload=%s framework=%s bound=%v jobs=%d\n",
		policy, tc.Workload, tc.Framework, tc.Bound, len(stats.Results))
	fmt.Printf("makespan=%.1f meanUtil=%.2f events=%d estimatorAcc=%.2f\n",
		stats.Makespan, stats.MeanUtilization, stats.Events, stats.EstimatorAccuracy)
	fmt.Printf("%-8s %6s %10s %10s %8s %8s\n", "bin", "jobs", "accuracy", "duration", "spec", "killed")
	for _, b := range task.AllBins {
		rs := metrics.FilterBin(stats.Results, b)
		if len(rs) == 0 {
			continue
		}
		var spec, killed int
		for _, r := range rs {
			spec += r.Speculative
			killed += r.Killed
		}
		fmt.Printf("%-8s %6d %10.3f %10.2f %8d %8d\n",
			b, len(rs), metrics.MeanAccuracy(rs), metrics.MeanInputDuration(rs), spec, killed)
	}
	fmt.Printf("%-8s %6d %10.3f %10.2f\n", "all", len(stats.Results),
		metrics.MeanAccuracy(stats.Results), metrics.MeanInputDuration(stats.Results))
}
