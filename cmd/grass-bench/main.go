// Command grass-bench regenerates the paper's tables and figures:
//
//	grass-bench            # every experiment at the quick size
//	grass-bench -full      # full size (EXPERIMENTS.md numbers)
//	grass-bench -fig fig5  # one experiment
//	grass-bench -list      # available experiment IDs
//
// Output is plain-text tables with the same rows/series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/approx-analytics/grass/internal/exp"
)

func main() {
	var (
		fig     = flag.String("fig", "", "run one experiment by ID (see -list)")
		full    = flag.Bool("full", false, "full-size runs (slower; EXPERIMENTS.md numbers)")
		list    = flag.Bool("list", false, "list experiment IDs")
		workers = flag.Int("workers", 0, "concurrent simulations per experiment (0 = all cores); results are identical for any value")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := exp.Quick()
	if *full {
		cfg = exp.Default()
	}
	cfg.Workers = *workers
	ran := 0
	for _, e := range exp.All() {
		if *fig != "" && e.ID != *fig {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Printf("[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "grass-bench: unknown experiment %q (try -list)\n", *fig)
		os.Exit(1)
	}
}
