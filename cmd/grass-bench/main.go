// Command grass-bench regenerates the paper's tables and figures:
//
//	grass-bench                # every experiment at the quick size
//	grass-bench -full          # full size (EXPERIMENTS.md numbers)
//	grass-bench -fig fig5      # one experiment
//	grass-bench -list          # available experiment IDs
//	grass-bench -profile perf  # also write perf.cpu.prof / perf.mem.prof
//
// Output is plain-text tables with the same rows/series the paper plots.
// With -profile, CPU samples cover the experiment runs and a heap profile is
// written at exit — `go tool pprof perf.cpu.prof` then points at the
// simulator's hot path.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/approx-analytics/grass/internal/exp"
)

// main delegates to run so deferred cleanup (profile finalization) executes
// on every exit path; os.Exit here would skip it.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig     = flag.String("fig", "", "run one experiment by ID (see -list)")
		full    = flag.Bool("full", false, "full-size runs (slower; EXPERIMENTS.md numbers)")
		list    = flag.Bool("list", false, "list experiment IDs")
		workers = flag.Int("workers", 0, "concurrent simulations per experiment (0 = all cores); results are identical for any value")
		profile = flag.String("profile", "", "write <prefix>.cpu.prof and <prefix>.mem.prof covering the experiment runs")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return 0
	}
	if *profile != "" {
		cpu, err := os.Create(*profile + ".cpu.prof")
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		// Finalize both profiles even when an experiment fails: a profile of
		// the run that errored is exactly what the debugging session needs.
		defer func() {
			pprof.StopCPUProfile()
			cpu.Close()
			mem, err := os.Create(*profile + ".mem.prof")
			if err != nil {
				fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
				return
			}
			defer mem.Close()
			runtime.GC() // materialize accurate live-heap stats
			if err := pprof.WriteHeapProfile(mem); err != nil {
				fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			}
		}()
	}
	cfg := exp.Quick()
	if *full {
		cfg = exp.Default()
	}
	cfg.Workers = *workers
	ran := 0
	for _, e := range exp.All() {
		if *fig != "" && e.ID != *fig {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %s: %v\n", e.ID, err)
			return 1
		}
		t.Render(os.Stdout)
		fmt.Printf("[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "grass-bench: unknown experiment %q (try -list)\n", *fig)
		return 1
	}
	return 0
}
