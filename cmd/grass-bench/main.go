// Command grass-bench regenerates the paper's tables and figures, and runs
// trace-scale streaming replays:
//
//	grass-bench                    # every experiment at the quick size
//	grass-bench -full              # full size (EXPERIMENTS.md numbers)
//	grass-bench -fig fig5          # one experiment
//	grass-bench -list              # available experiment IDs
//	grass-bench -profile perf      # also write CPU/heap profiles
//	grass-bench -jobs 1000000      # streaming replay: a million mixed jobs
//	                               # in bounded memory, high-water reported
//	grass-bench -trace-file fb.tsv -trace-format swim -shards 4
//	                               # replay an imported real cluster trace
//	                               # (SWIM/Facebook or Google task_events,
//	                               # plain or .gz) through the same
//	                               # bounded-memory pipeline
//	grass-bench -jobs 1000000 -shards 4
//	                               # the same trace partitioned 4 ways and
//	                               # executed on 4 worker goroutines; the
//	                               # merge is deterministic, so the output
//	                               # is identical for any -shards at a
//	                               # fixed -partitions (README "Sharded
//	                               # execution")
//
// Output is plain-text tables with the same rows/series the paper plots.
// With -profile, CPU samples cover the runs and a heap profile is written
// at exit — `go tool pprof <dir>/perf.cpu.prof` then points at the
// simulator's hot path. Bare profile prefixes land in a fresh temp
// directory (printed on start) so repeated runs never litter the working
// tree; give a path containing a separator to choose the location.
//
// The -jobs replay streams the trace through the simulator: jobs are
// generated lazily in arrival order, recycled when they finish, and results
// fold into running aggregates — heap high-water stays flat as -jobs grows.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/approx-analytics/grass/internal/exp"
	"github.com/approx-analytics/grass/internal/fault"
	"github.com/approx-analytics/grass/internal/simevent"
	"github.com/approx-analytics/grass/internal/trace"
	"github.com/approx-analytics/grass/internal/traceio"
)

// main delegates to run so deferred cleanup (profile finalization) executes
// on every exit path; os.Exit here would skip it.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig     = flag.String("fig", "", "run one experiment by ID (see -list)")
		full    = flag.Bool("full", false, "full-size runs (slower; EXPERIMENTS.md numbers)")
		list    = flag.Bool("list", false, "list experiment IDs")
		workers = flag.Int("workers", 0, "concurrent simulations per experiment (0 = all cores); results are identical for any value")
		profile = flag.String("profile", "", "write <prefix>.cpu.prof and <prefix>.mem.prof covering the runs (bare prefixes go to a temp dir)")

		jobs        = flag.Int("jobs", 0, "streaming replay: replay this many jobs instead of running experiments")
		policy      = flag.String("policy", "gs", "replay policy (see grass-sim for names)")
		workload    = flag.String("workload", "facebook", "replay workload: facebook | bing")
		bound       = flag.String("bound", "mixed", "replay bound mode: mixed | deadline | error | exact")
		seed        = flag.Int64("seed", 1, "replay seed")
		traceFile   = flag.String("trace-file", "", "streaming replay of an imported real cluster trace (SWIM or Google task_events, .gz ok) instead of a synthetic workload")
		traceFormat = flag.String("trace-format", "swim", "imported trace format: swim | google")
		shards      = flag.Int("shards", 1, "replay worker goroutines executing partitions; with -partitions set explicitly this never changes results, but when -partitions is 0 it also sets the partition count, which IS model-visible")
		parts       = flag.Int("partitions", 0, "replay partition count — the sharded model: cluster and trace split with a deterministic merge; results are comparable only at equal partition counts (0 = same as -shards; 1 = the plain engine)")
		queue       = flag.String("queue", "calendar", "event-queue implementation: calendar | heap; byte-identical results, calendar is faster")
		learner     = flag.String("learner", "ring", "GRASS learner: ring (per-partition ring buffer) | sketch (mergeable sketch store — partition-invariant learning at -partitions > 1)")
		learnEpochs = flag.Int("learn-epochs", 1, "replay the trace this many times, carrying merged learned state into each next epoch (needs -learner sketch when > 1); stats report the final epoch")
		scenario    = flag.String("scenario", "", "replay fault scenario: "+strings.Join(fault.Scenarios(), " | ")+" (empty or none = benign cluster)")
		faultSeed   = flag.Int64("fault-seed", 0, "pin the fault timeline independently of -seed (0 = derive it from -seed)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return 0
	}
	if *profile != "" {
		prefix, err := profilePrefix(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		cpu, err := os.Create(prefix + ".cpu.prof")
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		fmt.Printf("profiles: %s.cpu.prof, %s.mem.prof\n", prefix, prefix)
		// Finalize both profiles even when an experiment fails: a profile of
		// the run that errored is exactly what the debugging session needs.
		defer func() {
			pprof.StopCPUProfile()
			cpu.Close()
			mem, err := os.Create(prefix + ".mem.prof")
			if err != nil {
				fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
				return
			}
			defer mem.Close()
			runtime.GC() // materialize accurate live-heap stats
			if err := pprof.WriteHeapProfile(mem); err != nil {
				fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			}
		}()
	}

	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "grass-bench: -jobs %d: a replay needs a positive job count\n", *jobs)
		return 1
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "grass-bench: -shards %d: need at least one worker goroutine\n", *shards)
		return 1
	}
	if *parts < 0 {
		fmt.Fprintf(os.Stderr, "grass-bench: -partitions %d: want >= 1, or 0 to follow -shards\n", *parts)
		return 1
	}
	// Fail a bad scenario name up front, and refuse fault flags outside
	// replay mode — the experiment tables are defined on a benign cluster.
	if _, err := fault.Scenario(*scenario); err != nil {
		fmt.Fprintf(os.Stderr, "grass-bench: -scenario: %v\n", err)
		return 1
	}
	if (*scenario != "" && *scenario != "none" || *faultSeed != 0) && *jobs == 0 && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "grass-bench: -scenario/-fault-seed apply to streaming replays only (set -jobs or -trace-file)")
		return 1
	}
	if *traceFile != "" {
		if *fig != "" || *full {
			fmt.Fprintln(os.Stderr, "grass-bench: -trace-file (imported replay) cannot be combined with -fig or -full")
			return 1
		}
		// The imported trace IS the workload: flags that shape the
		// synthetic trace contradict it, and silently ignoring them would
		// replay something other than what was asked for.
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "jobs", "workload", "bound":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "grass-bench: -%s shapes the synthetic workload and cannot be combined with -trace-file (the trace defines the jobs; bounds come from the import mapping)\n", conflict)
			return 1
		}
		if _, err := os.Stat(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: -trace-file: %v (give a readable SWIM or Google task_events file, optionally .gz)\n", err)
			return 1
		}
		return runReplay(0, *traceFile, *traceFormat, *policy, *workload, *bound, *queue, *learner, *scenario, *seed, *faultSeed, *shards, *parts, *learnEpochs)
	}
	if *jobs > 0 {
		if *fig != "" || *full {
			fmt.Fprintln(os.Stderr, "grass-bench: -jobs (streaming replay) cannot be combined with -fig or -full")
			return 1
		}
		if *parts > 0 && *jobs < *parts {
			fmt.Fprintf(os.Stderr, "grass-bench: -jobs %d is fewer than -partitions %d: every partition needs at least one job\n", *jobs, *parts)
			return 1
		}
		return runReplay(*jobs, "", "", *policy, *workload, *bound, *queue, *learner, *scenario, *seed, *faultSeed, *shards, *parts, *learnEpochs)
	}

	cfg := exp.Quick()
	if *full {
		cfg = exp.Default()
	}
	cfg.Workers = *workers
	ran := 0
	for _, e := range exp.All() {
		if *fig != "" && e.ID != *fig {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %s: %v\n", e.ID, err)
			return 1
		}
		t.Render(os.Stdout)
		fmt.Printf("[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "grass-bench: unknown experiment %q (try -list)\n", *fig)
		return 1
	}
	return 0
}

// runReplay executes one streaming replay — synthetic (jobs > 0) or an
// imported real trace (traceFile != "") — and renders its aggregates.
func runReplay(jobs int, traceFile, traceFormat, policy, workload, bound, queue, learner, scenario string, seed, faultSeed int64, shards, partitions, learnEpochs int) int {
	rc := exp.DefaultReplayConfig(jobs)
	rc.Policy = policy
	rc.Seed = seed
	rc.Shards = shards
	rc.Partitions = partitions
	rc.Learner = learner
	rc.LearnEpochs = learnEpochs
	rc.Scenario = scenario
	rc.FaultSeed = faultSeed
	var err error
	if traceFile != "" {
		rc.TraceFile = traceFile
		if rc.TraceFormat, err = traceio.ParseFormat(traceFormat); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: -trace-format: %v\n", err)
			return 1
		}
	} else {
		if rc.Workload, err = trace.ParseWorkload(workload); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
		if rc.Bound, err = trace.ParseBound(bound); err != nil {
			fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
			return 1
		}
	}
	if rc.Queue, err = simevent.ParseQueueKind(queue); err != nil {
		fmt.Fprintf(os.Stderr, "grass-bench: %v\n", err)
		return 1
	}
	rs, err := exp.Replay(rc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-bench: replay: %v\n", err)
		return 1
	}
	rs.Render(os.Stdout)
	return 0
}

// profilePrefix resolves where profile files go: a prefix with a path
// separator is used as given; a bare prefix lands in a fresh temp directory
// so CI runs and repeated profiling sessions leave no stray files in the
// working tree.
func profilePrefix(p string) (string, error) {
	if strings.ContainsRune(p, os.PathSeparator) {
		return p, nil
	}
	dir, err := os.MkdirTemp("", "grass-bench-")
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, p), nil
}
