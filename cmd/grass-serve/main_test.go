package main

import (
	"bufio"
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildServe compiles the command once per test into a temp dir, so the
// signal tests exercise the real process-level path (signal.Notify, the
// drain, the exit code) rather than an in-process approximation.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "grass-serve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building grass-serve: %v\n%s", err, out)
	}
	return bin
}

// TestGracefulSignalDrainsToSummary: the first SIGTERM (and, separately,
// SIGINT) closes admission instead of killing the run — in-flight jobs
// drain and the process exits 0 with the machine-parseable SLO summary, the
// contract an orchestrator's stop hook relies on.
func TestGracefulSignalDrainsToSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real process")
	}
	bin := buildServe(t)
	for _, sig := range []syscall.Signal{syscall.SIGTERM, syscall.SIGINT} {
		t.Run(sig.String(), func(t *testing.T) {
			// Wall-paced and wall-bounded: admission trickles slowly enough
			// that the signal lands mid-run, and -for backstops the test if
			// the signal path breaks entirely.
			cmd := exec.Command(bin, "-jobs", "0", "-for", "2m", "-wall-speed", "25")
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// The banner prints after the signal handler is installed; wait
			// for it so the signal cannot land before Notify.
			br := bufio.NewReader(stdout)
			banner, err := br.ReadString('\n')
			if err != nil || !strings.HasPrefix(banner, "serving ") {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("banner = %q, %v (stderr: %s)", banner, err, stderr.String())
			}
			time.Sleep(500 * time.Millisecond) // let a few jobs enter flight
			if err := cmd.Process.Signal(sig); err != nil {
				t.Fatal(err)
			}
			rest, _ := io.ReadAll(br)
			err = cmd.Wait()
			out := string(rest)
			if err != nil {
				t.Fatalf("graceful %v exited with %v\nstdout: %s\nstderr: %s", sig, err, out, stderr.String())
			}
			if !strings.Contains(out, "SLO latency p50=") {
				t.Fatalf("graceful %v produced no SLO summary\nstdout: %s\nstderr: %s", sig, out, stderr.String())
			}
			if !strings.Contains(stderr.String(), "closing admission") {
				t.Fatalf("no drain notice on stderr: %s", stderr.String())
			}
		})
	}
}

// TestScenarioFlagValidation: a bad -scenario fails fast with the preset
// list, before any service starts.
func TestScenarioFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real process")
	}
	bin := buildServe(t)
	out, err := exec.Command(bin, "-scenario", "nope", "-jobs", "10").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown scenario accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown scenario") {
		t.Fatalf("error does not name the problem:\n%s", out)
	}
}
