// Command grass-serve runs the scheduler as a live service: an open-loop
// arrival driver feeds synthetic jobs into the speculation engine and the
// service reports what a production deployment is judged on — job-latency
// SLO quantiles (p50/p95/p99/p999), queue depth, and slot utilization —
// while it runs.
//
//	grass-serve -jobs 50000 -rate 2.5        # 50K jobs, Poisson arrivals
//	grass-serve -jobs 50000                  # trace-timed (byte-identical
//	                                         # to replaying the trace)
//	grass-serve -for 10s -rate 2.5           # wall-clock-bounded run
//	grass-serve -jobs 20000 -partitions 4    # partitioned service
//	grass-serve -wall-speed 100 -stats 1s    # paced in real time, live
//	                                         # stats every second
//
// The run is bounded by -jobs (virtual job count) and/or -for (wall
// clock); whichever trips first closes admission, and in-flight jobs
// drain. SIGINT (Ctrl-C) and SIGTERM shut down gracefully: the first
// signal closes admission and the in-flight jobs drain to a normal SLO
// summary — what an orchestrator's stop hook expects; a second signal
// cancels outright and exits nonzero without a summary.
//
// Virtual-time output is deterministic: for fixed -seed, -pace-seed and
// -partitions, every line of the final summary except wall-clock
// observations (wall time, max queue depth) is identical across runs and
// across -wall-speed settings. The final "SLO latency" line is
// machine-parseable; CI greps it.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	grass "github.com/approx-analytics/grass"
	"github.com/approx-analytics/grass/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jobs     = flag.Int("jobs", 50_000, "serve this many jobs then close admission (0 = unbounded, requires -for)")
		policy   = flag.String("policy", "gs", "speculation policy (see grass-sim for names)")
		workload = flag.String("workload", "facebook", "workload: facebook | bing")
		bound    = flag.String("bound", "mixed", "bound mode: mixed | deadline | error | exact")
		seed     = flag.Int64("seed", 1, "simulator + trace seed")
		parts    = flag.Int("partitions", 1, "partition count — the sharded model; virtual-time output is deterministic per partition count")
		load     = flag.Float64("load", 0.75, "offered load for trace-timed arrivals (ignored with -rate)")
		rate     = flag.Float64("rate", 0, "Poisson arrival rate in jobs per virtual-time unit (0 = trace-timed arrivals); ~0.04 is 0.75 offered load for the default facebook/mixed workload on the 400-slot cluster")
		paceSeed = flag.Int64("pace-seed", 1, "arrival-process seed (Poisson mode; independent of -seed)")
		wall     = flag.Float64("wall-speed", 0, "pace admission in real time at this many virtual-time units per second (0 = flat out)")
		forDur   = flag.Duration("for", 0, "close admission after this much wall-clock time (0 = unbounded)")
		stats    = flag.Duration("stats", 0, "print a live stats line at this interval (0 = off)")
		queueCap = flag.Int("queue-cap", 0, "per-partition admission queue capacity (0 = default 1024)")
		queue    = flag.String("queue", "calendar", "event-queue implementation: calendar | heap; byte-identical results, calendar is faster")
		scenario = flag.String("scenario", "", "fault scenario: "+strings.Join(grass.FaultScenarios(), " | ")+" (empty or none = benign cluster)")
		fltSeed  = flag.Int64("fault-seed", 0, "pin the fault timeline independently of -seed (0 = derive it from -seed)")
	)
	flag.Parse()

	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "grass-serve: -jobs %d: want a positive job count, or 0 with -for\n", *jobs)
		return 1
	}
	if *jobs == 0 && *forDur <= 0 {
		fmt.Fprintln(os.Stderr, "grass-serve: an unbounded run needs a bound: give -jobs, -for, or both")
		return 1
	}
	if *parts < 1 {
		fmt.Fprintf(os.Stderr, "grass-serve: -partitions %d: need at least one partition\n", *parts)
		return 1
	}
	if *rate < 0 {
		fmt.Fprintf(os.Stderr, "grass-serve: -rate %v: a Poisson rate must be positive (or 0 for trace-timed)\n", *rate)
		return 1
	}
	if *wall < 0 {
		fmt.Fprintf(os.Stderr, "grass-serve: -wall-speed %v: want virtual units per second >= 0\n", *wall)
		return 1
	}
	if *queueCap < 0 {
		fmt.Fprintf(os.Stderr, "grass-serve: -queue-cap %d: want a positive capacity (or 0 for the default)\n", *queueCap)
		return 1
	}

	w, err := trace.ParseWorkload(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}
	b, err := trace.ParseBound(*bound)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}

	sc := grass.DefaultSimConfig()
	sc.Seed = *seed
	if sc.EventQueue, err = grass.ParseQueueKind(*queue); err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}
	if sc.Faults, err = grass.FaultScenario(*scenario); err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: -scenario: %v\n", err)
		return 1
	}
	if *fltSeed != 0 {
		sc.Faults.Seed = *fltSeed
	}
	tc := grass.DefaultTraceConfig(w, grass.Hadoop, b)
	tc.Seed = *seed
	tc.Slots = sc.Cluster.Machines * sc.Cluster.SlotsPerMachine
	tc.Load = *load
	tc.Jobs = *jobs
	if tc.Jobs == 0 {
		// Wall-clock-bounded run: give the generator effectively unlimited
		// jobs; -for closes admission long before the stream runs dry.
		tc.Jobs = math.MaxInt32
	}
	src, err := grass.StreamTrace(tc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}

	// Graceful shutdown: the FIRST SIGINT or SIGTERM closes admission —
	// queued jobs drain, in-flight work completes, and the final SLO
	// summary still prints (what an orchestrator's stop hook wants). A
	// SECOND signal cancels outright: the service stops promptly, pooled
	// state is abandoned consistently, and we exit nonzero with no summary.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	pace := grass.Pace{Mode: grass.TraceTimed, WallSpeed: *wall}
	if *rate > 0 {
		pace = grass.Pace{Mode: grass.Poisson, Rate: *rate, Seed: *paceSeed, WallSpeed: *wall}
	}
	srv, err := grass.Serve(grass.ServeConfig{
		Sim:        sc,
		Partitions: *parts,
		QueueCap:   *queueCap,
		Ctx:        ctx,
		Source:     src,
		Pace:       pace,
		MaxJobs:    *jobs,
		For:        *forDur,
	}, *policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "grass-serve: %v: closing admission, draining in-flight jobs (signal again to abort)\n", s)
		srv.Close()
		if _, ok := <-sig; ok {
			cancel()
		}
	}()

	fmt.Printf("serving %s/%s load under %q: partitions=%d pace=%s", *workload, *bound, *policy, *parts, pace.Mode)
	if *rate > 0 {
		fmt.Printf(" rate=%g", *rate)
	}
	if *jobs > 0 {
		fmt.Printf(" jobs=%d", *jobs)
	}
	if *forDur > 0 {
		fmt.Printf(" for=%v", *forDur)
	}
	if sc.Faults.Enabled() {
		fmt.Printf(" scenario=%s", *scenario)
	}
	fmt.Println()

	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		done := make(chan struct{})
		defer close(done)
		start := time.Now()
		go func() {
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					s := srv.Snapshot()
					fmt.Printf("t=%-8v submitted=%-8d done=%-8d depth=%-5d util=%.2f vtime=%.1f p50=%.2f p99=%.2f\n",
						time.Since(start).Round(time.Second), s.Submitted, s.Done, s.QueueDepth, s.Utilization, s.VirtualNow, s.P50, s.P99)
				}
			}
		}()
	}

	sum, err := srv.Wait()
	if err != nil {
		fmt.Fprintf(os.Stderr, "grass-serve: %v\n", err)
		return 1
	}
	printSummary(sum)
	return 0
}

// printSummary renders the final report; the "SLO latency" line is the
// machine-parseable contract (CI greps and parses it).
func printSummary(s *grass.ServeSummary) {
	fmt.Printf("\nserved %d jobs over %d partition(s) in %v wall\n", s.Jobs, s.Partitions, s.Wall.Round(time.Millisecond))
	fmt.Printf("  virtual makespan    %.2f\n", s.Makespan)
	fmt.Printf("  events              %d\n", s.Events)
	fmt.Printf("  mean utilization    %.3f\n", s.MeanUtilization)
	fmt.Printf("  estimator accuracy  %.3f\n", s.EstimatorAccuracy)
	fmt.Printf("  max queue depth     %d\n", s.MaxQueueDepth)
	fmt.Printf("  latency mean/min/max  %.3f / %.3f / %.3f\n", s.MeanLatency, s.MinLatency, s.MaxLatency)
	fmt.Printf("SLO latency p50=%.6g p95=%.6g p99=%.6g p999=%.6g\n", s.P50, s.P95, s.P99, s.P999)
}
