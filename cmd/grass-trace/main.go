// Command grass-trace generates a synthetic workload and prints its
// Table-1-style summary plus a per-job listing (optionally as JSON for
// external tooling):
//
//	grass-trace -workload bing -framework spark -bound error -jobs 100
//	grass-trace -json > trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "facebook", "facebook | bing")
		framework = flag.String("framework", "hadoop", "hadoop | spark")
		bound     = flag.String("bound", "deadline", "deadline | error | exact | mixed")
		jobs      = flag.Int("jobs", 100, "number of jobs")
		slots     = flag.Int("slots", 400, "cluster slots (calibration)")
		load      = flag.Float64("load", 1.0, "offered load")
		dag       = flag.Int("dag", 1, "DAG length")
		seed      = flag.Int64("seed", 1, "seed")
		asJSON    = flag.Bool("json", false, "emit the full trace as JSON")
	)
	flag.Parse()
	if err := run(*workload, *framework, *bound, *jobs, *slots, *load, *dag, *seed, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "grass-trace:", err)
		os.Exit(1)
	}
}

func run(workload, framework, bound string, jobs, slots int, load float64, dag int, seed int64, asJSON bool) error {
	w, err := trace.ParseWorkload(workload)
	if err != nil {
		return err
	}
	f, err := trace.ParseFramework(framework)
	if err != nil {
		return err
	}
	b, err := trace.ParseBound(bound)
	if err != nil {
		return err
	}
	cfg := trace.DefaultConfig(w, f, b)
	cfg.Jobs = jobs
	cfg.Slots = slots
	cfg.Load = load
	cfg.Seed = seed
	if dag > 1 {
		cfg.DAGLength = dag
	}
	jl, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jl)
	}
	st := trace.Summarize(cfg, jl)
	fmt.Printf("workload=%s framework=%s bound=%s jobs=%d tasks=%d meanTasks=%.1f span=%.1f\n",
		st.Workload, st.Framework, bound, st.Jobs, st.TotalTasks, st.MeanTasks, st.Span)
	for _, bin := range task.AllBins {
		fmt.Printf("  bin %-8s %d jobs\n", bin, st.BinCounts[bin])
	}
	fmt.Printf("%-6s %10s %8s %6s %12s %10s\n", "job", "arrival", "tasks", "dag", "bound", "value")
	for i, j := range jl {
		if i >= 15 {
			fmt.Printf("... (%d more)\n", len(jl)-15)
			break
		}
		val := j.Bound.Deadline
		if j.Bound.Kind == task.ErrorBound {
			val = j.Bound.Epsilon
		}
		fmt.Printf("%-6d %10.2f %8d %6d %12s %10.3f\n",
			j.ID, j.Arrival, j.NumTasks(), j.DAGLength(), j.Bound.Kind, val)
	}
	return nil
}
