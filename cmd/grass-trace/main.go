// Command grass-trace generates synthetic workloads and imports real
// cluster traces.
//
// With no subcommand it generates a synthetic workload and prints its
// Table-1-style summary plus a per-job listing (optionally as JSON for
// external tooling):
//
//	grass-trace -workload bing -framework spark -bound error -jobs 100
//	grass-trace -json > trace.json
//
// Subcommands operate on real trace files (internal/traceio — SWIM/Facebook
// workload files and Google cluster-data v2 task_events, plain or .gz),
// streaming with bounded memory however large the file:
//
//	grass-trace validate -format swim -in fb_trace.tsv
//	grass-trace stat     -format google -in task_events.csv.gz
//	grass-trace convert  -format swim -in fb_trace.tsv -out jobs.json
//
// validate decodes every record and reports the first malformed one with
// its file:line:column position; stat prints the Table-1-style summary of
// the imported jobs; convert writes the simulator's JSON job form (the
// same shape `grass-trace -json` emits) to -out or stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/approx-analytics/grass/internal/task"
	"github.com/approx-analytics/grass/internal/trace"
	"github.com/approx-analytics/grass/internal/traceio"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "convert", "validate", "stat":
			if err := runImport(os.Args[1], os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "grass-trace:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		workload  = flag.String("workload", "facebook", "facebook | bing")
		framework = flag.String("framework", "hadoop", "hadoop | spark")
		bound     = flag.String("bound", "deadline", "deadline | error | exact | mixed")
		jobs      = flag.Int("jobs", 100, "number of jobs")
		slots     = flag.Int("slots", 400, "cluster slots (calibration)")
		load      = flag.Float64("load", 1.0, "offered load")
		dag       = flag.Int("dag", 1, "DAG length")
		seed      = flag.Int64("seed", 1, "seed")
		asJSON    = flag.Bool("json", false, "emit the full trace as JSON")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "grass-trace: unknown subcommand %q (want convert | validate | stat, or flags only for synthetic generation)\n", flag.Arg(0))
		os.Exit(1)
	}
	if err := run(*workload, *framework, *bound, *jobs, *slots, *load, *dag, *seed, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "grass-trace:", err)
		os.Exit(1)
	}
}

// runImport executes one trace-import subcommand (convert/validate/stat)
// with its own flag set, so import flags never collide with the synthetic
// generator's.
func runImport(cmd string, args []string) error {
	fs := flag.NewFlagSet("grass-trace "+cmd, flag.ExitOnError)
	var (
		format       = fs.String("format", "", "trace file format: swim | google (required)")
		in           = fs.String("in", "", "input trace file, .gz transparently decompressed (required)")
		out          = fs.String("out", "", "convert: output JSON file (default stdout)")
		bytesPerTask = fs.Float64("bytes-per-task", 128<<20, "input bytes per map task (the HDFS split size)")
		workScale    = fs.Float64("work-scale", 10, "intrinsic work of one full task, simulation units")
		timeScale    = fs.Float64("time-scale", 0, "trace time units to simulation units (0 = format default: SWIM seconds 1:1, Google microseconds 1e-6)")
		boundMode    = fs.String("bound", "mixed", "bound assignment for imported jobs: mixed | deadline | error | exact")
		slots        = fs.Int("slots", 400, "cluster slots used to calibrate assigned deadlines")
		seed         = fs.Int64("seed", 1, "bound-assignment seed")
		maxTasks     = fs.Int("max-tasks", 100_000, "reject records mapping to more tasks than this")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("%s: unexpected argument %q (all inputs are flags)", cmd, fs.Arg(0))
	}
	if *in == "" {
		return fmt.Errorf("%s: -in is required (the trace file to read)", cmd)
	}
	if *format == "" {
		return fmt.Errorf("%s: -format is required (swim | google)", cmd)
	}
	f, err := traceio.ParseFormat(*format)
	if err != nil {
		return err
	}
	if _, err := os.Stat(*in); err != nil {
		return fmt.Errorf("%s: %w (give a readable trace file)", cmd, err)
	}
	o := traceio.DefaultOptions()
	o.BytesPerTask = *bytesPerTask
	o.WorkScale = *workScale
	o.TimeScale = *timeScale
	o.Slots = *slots
	o.Seed = *seed
	o.MaxTasks = *maxTasks
	if o.Bound, err = trace.ParseBound(*boundMode); err != nil {
		return err
	}
	if err := o.Validate(); err != nil {
		return err
	}

	switch cmd {
	case "validate", "stat":
		st, err := traceio.Scan(nil, *in, f, o)
		if err != nil {
			return err
		}
		if st.Jobs == 0 {
			return fmt.Errorf("%s: %s contains no jobs (empty or comment-only trace)", cmd, *in)
		}
		if cmd == "validate" {
			fmt.Printf("%s: OK: %d jobs, %d tasks\n", *in, st.Jobs, st.Tasks)
			return nil
		}
		fmt.Printf("format=%s jobs=%d tasks=%d meanTasks=%.1f span=%.1f totalWork=%.0f reduceJobs=%d\n",
			f, st.Jobs, st.Tasks, st.MeanTasks, st.Span, st.TotalWork, st.Phases)
		for i, bin := range task.AllBins {
			fmt.Printf("  bin %-8s %d jobs\n", bin, st.Bins[i])
		}
		return nil
	case "convert":
		src, err := traceio.NewSource(nil, *in, f, o)
		if err != nil {
			return err
		}
		defer src.Close()
		w := os.Stdout
		if *out != "" {
			w, err = os.Create(*out)
			if err != nil {
				return err
			}
			defer w.Close()
		}
		n, err := traceio.WriteJobsJSON(w, src)
		if err != nil {
			return err
		}
		if serr := src.Err(); serr != nil {
			return serr
		}
		if n == 0 {
			return fmt.Errorf("convert: %s contains no jobs (empty or comment-only trace)", *in)
		}
		fmt.Fprintf(os.Stderr, "converted %d jobs\n", n)
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

func run(workload, framework, bound string, jobs, slots int, load float64, dag int, seed int64, asJSON bool) error {
	w, err := trace.ParseWorkload(workload)
	if err != nil {
		return err
	}
	f, err := trace.ParseFramework(framework)
	if err != nil {
		return err
	}
	b, err := trace.ParseBound(bound)
	if err != nil {
		return err
	}
	cfg := trace.DefaultConfig(w, f, b)
	cfg.Jobs = jobs
	cfg.Slots = slots
	cfg.Load = load
	cfg.Seed = seed
	if dag > 1 {
		cfg.DAGLength = dag
	}
	jl, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jl)
	}
	st := trace.Summarize(cfg, jl)
	fmt.Printf("workload=%s framework=%s bound=%s jobs=%d tasks=%d meanTasks=%.1f span=%.1f\n",
		st.Workload, st.Framework, bound, st.Jobs, st.TotalTasks, st.MeanTasks, st.Span)
	for _, bin := range task.AllBins {
		fmt.Printf("  bin %-8s %d jobs\n", bin, st.BinCounts[bin])
	}
	fmt.Printf("%-6s %10s %8s %6s %12s %10s\n", "job", "arrival", "tasks", "dag", "bound", "value")
	for i, j := range jl {
		if i >= 15 {
			fmt.Printf("... (%d more)\n", len(jl)-15)
			break
		}
		val := j.Bound.Deadline
		if j.Bound.Kind == task.ErrorBound {
			val = j.Bound.Epsilon
		}
		fmt.Printf("%-6d %10.2f %8d %6d %12s %10.3f\n",
			j.ID, j.Arrival, j.NumTasks(), j.DAGLength(), j.Bound.Kind, val)
	}
	return nil
}
