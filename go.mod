module github.com/approx-analytics/grass

go 1.22
