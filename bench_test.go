// Benchmarks regenerating every table and figure of the paper's evaluation.
// One benchmark per artifact; each runs the full experiment (trace
// generation + paired policy simulations + reduction) once per iteration.
//
//	go test -bench=BenchmarkFig5 -benchtime 1x
//
// regenerates Figure 5. Benchmark metrics report the headline number of
// each experiment (improvement %, ratio, …) so `go test -bench=.` doubles
// as a results summary; cmd/grass-bench prints the full tables.
//
// These are *result* benchmarks. The *performance* benchmarks of the
// simulator's dispatch hot path (BenchmarkSimulatorQuick, BenchmarkDispatch,
// BenchmarkBuildViews, and BenchmarkLargeJobReplay's incremental-vs-rebuild
// candidate-view comparison) live in internal/sched; their per-event
// numbers are tracked across PRs in BENCH_sim.json, and
// `grass-bench -profile <prefix>` writes pprof profiles for digging into
// regressions.
package grass_test

import (
	"testing"

	"github.com/approx-analytics/grass/internal/exp"
)

// benchCfg is the reduced experiment size used for benchmarks: one seed and
// a shorter trace keep `go test -bench=.` tractable; cmd/grass-bench -full
// produces the EXPERIMENTS.md numbers. Workers = 0 fans each experiment's
// (policy, seed) simulations out across every core; the harness guarantees
// byte-identical tables for any worker count, so parallelism changes only
// the wall clock, never the reported metrics.
var benchCfg = func() exp.Config {
	c := exp.Quick()
	c.Jobs = 80
	c.Seeds = []int64{1}
	c.Workers = 0
	return c
}()

// runExperiment executes one experiment per iteration and reports the value
// at (row, col) of its table as a benchmark metric.
func runExperiment(b *testing.B, run func(exp.Config) (*exp.Table, error), metric string, row, col int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" && row < len(t.Rows) && col < len(t.Rows[row].Values) {
			b.ReportMetric(t.Rows[row].Values[col], metric)
		}
	}
}

// BenchmarkTable1TraceDetails regenerates Table 1 (trace details); the
// metric is the Facebook trace's mean tasks per job.
func BenchmarkTable1TraceDetails(b *testing.B) {
	runExperiment(b, exp.Table1, "meanTasks", 0, 2)
}

// BenchmarkFig3HillPlot regenerates Figure 3; the metric is the Hill
// estimate of β at the deepest tail point (paper: 1.259).
func BenchmarkFig3HillPlot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig3Hill(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Values[1], "beta")
	}
}

// BenchmarkFig4ReactivePolicies regenerates Figure 4; the metric is the
// worst normalized response-time ratio across the ω grid for 5-wave jobs.
func BenchmarkFig4ReactivePolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig4Reactive()
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range t.Rows {
			if v := r.Values[4]; v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst, "worst-ratio-5w")
	}
}

// BenchmarkPotentialGains regenerates §2.3's headroom study; the metric is
// the oracle's deadline-accuracy gain over LATE on the Facebook workload.
func BenchmarkPotentialGains(b *testing.B) {
	runExperiment(b, exp.PotentialGains, "fb-dl-%", 0, 0)
}

// BenchmarkFig5DeadlineAccuracy regenerates Figure 5; the metric is the
// overall FB/Hadoop accuracy improvement over LATE.
func BenchmarkFig5DeadlineAccuracy(b *testing.B) {
	runExperiment(b, exp.Fig5Deadline, "fb-had-%", 3, 0)
}

// BenchmarkFig6BoundBins regenerates Figure 6; the metric is the gain in
// the tightest deadline bin (2–5%).
func BenchmarkFig6BoundBins(b *testing.B) {
	runExperiment(b, exp.Fig6Bounds, "tight-dl-%", 0, 0)
}

// BenchmarkFig7ErrorSpeedup regenerates Figure 7; the metric is the overall
// FB/Hadoop speedup over LATE.
func BenchmarkFig7ErrorSpeedup(b *testing.B) {
	runExperiment(b, exp.Fig7Error, "fb-had-%", 3, 0)
}

// BenchmarkFig8Optimality regenerates Figure 8; the metric is the gap
// between GRASS's and the oracle's overall deadline gains (small = GRASS is
// near-optimal).
func BenchmarkFig8Optimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig8Optimality(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		all := t.Rows[len(t.Rows)-1]
		b.ReportMetric(all.Values[1]-all.Values[0], "gap-to-optimal")
	}
}

// BenchmarkFig9DAG regenerates Figure 9; the metric is the FB deadline gain
// at DAG length 2.
func BenchmarkFig9DAG(b *testing.B) {
	runExperiment(b, exp.Fig9DAG, "dag2-%", 0, 0)
}

// BenchmarkFig10SwitchingDeadline regenerates Figure 10; the metric is
// GRASS's overall Hadoop gain.
func BenchmarkFig10SwitchingDeadline(b *testing.B) {
	runExperiment(b, exp.Fig10SwitchingDeadline, "grass-%", 3, 2)
}

// BenchmarkFig11SwitchingError regenerates Figure 11; the metric is GRASS's
// overall Hadoop gain.
func BenchmarkFig11SwitchingError(b *testing.B) {
	runExperiment(b, exp.Fig11SwitchingError, "grass-%", 3, 2)
}

// BenchmarkFig12Strawman regenerates Figure 12; the metric is GRASS's
// overall deadline gain minus the strawman's.
func BenchmarkFig12Strawman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig12Strawman(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		all := t.Rows[len(t.Rows)-1]
		b.ReportMetric(all.Values[1]-all.Values[0], "learn-vs-straw")
	}
}

// BenchmarkFig13FactorsDeadline regenerates Figure 13; the metric is the
// full three-factor design's overall Hadoop gain.
func BenchmarkFig13FactorsDeadline(b *testing.B) {
	runExperiment(b, exp.Fig13FactorsDeadline, "all3-%", 3, 3)
}

// BenchmarkFig14FactorsError regenerates Figure 14; same metric for
// error-bound jobs.
func BenchmarkFig14FactorsError(b *testing.B) {
	runExperiment(b, exp.Fig14FactorsError, "all3-%", 3, 3)
}

// BenchmarkFig15Perturbation regenerates Figure 15; the metric is the FB
// deadline gain at the paper's ξ = 15%.
func BenchmarkFig15Perturbation(b *testing.B) {
	runExperiment(b, exp.Fig15Perturbation, "xi15-%", 3, 0)
}

// BenchmarkExactJobs regenerates §6.2.2's exact-computation speedup; the
// metric is the Facebook speedup over LATE.
func BenchmarkExactJobs(b *testing.B) {
	runExperiment(b, exp.ExactJobs, "fb-%", 0, 0)
}

// BenchmarkTheorem1 regenerates the Theorem 1 table; the metric is the
// early-wave copy count for β = 1.259 (σ = 2/β ≈ 1.59).
func BenchmarkTheorem1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Theorem1Table()
		b.ReportMetric(t.Rows[0].Values[0], "sigma")
	}
}

// BenchmarkAblationTail regenerates the straggler-tail ablation; the metric
// is the heavy-tail speedup minus the light-tail speedup (Guideline 1 says
// it should be large and positive).
func BenchmarkAblationTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationTail(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].Values[0]-t.Rows[1].Values[0], "tail-delta-%")
	}
}

// BenchmarkAblationEstimation regenerates the estimation-noise ablation;
// the metric is GRASS's gain under default noise.
func BenchmarkAblationEstimation(b *testing.B) {
	runExperiment(b, exp.AblationEstimation, "gain-%", 0, 0)
}

// BenchmarkHarnessWorkers measures the experiment harness's parallel
// fan-out: the same PotentialGains experiment (4 scenarios × 3 policies ×
// 2 seeds = 24 simulations) with a single worker versus one worker per
// core. The tables produced are byte-identical; only wall clock differs.
func BenchmarkHarnessWorkers(b *testing.B) {
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"allcores", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := exp.Quick()
			cfg.Jobs = 80
			cfg.Workers = bench.workers
			for i := 0; i < b.N; i++ {
				if _, err := exp.PotentialGains(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
