package grass_test

import (
	"reflect"
	"testing"

	grass "github.com/approx-analytics/grass"
)

// smallSim returns a fast simulator configuration for facade tests.
func smallSim(seed int64) grass.SimConfig {
	cfg := grass.DefaultSimConfig()
	cfg.Cluster.Machines = 20
	cfg.Seed = seed
	return cfg
}

func smallTrace(b grass.BoundMode, seed int64) grass.TraceConfig {
	tc := grass.DefaultTraceConfig(grass.Facebook, grass.Hadoop, b)
	tc.Jobs = 30
	tc.Slots = 40
	tc.Seed = seed
	return tc
}

func TestQuickstartFlow(t *testing.T) {
	jobs, err := grass.GenerateTrace(smallTrace(grass.DeadlineBound, 1))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := grass.Simulate(smallSim(1), "grass", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Results) != 30 {
		t.Fatalf("%d results", len(stats.Results))
	}
	acc := grass.MeanAccuracy(stats.Results)
	if acc <= 0 || acc > 1 {
		t.Fatalf("mean accuracy %v", acc)
	}
}

func TestHandBuiltJobs(t *testing.T) {
	work := make([]float64, 60)
	for i := range work {
		work[i] = 1
	}
	jobs := []*grass.Job{
		{ID: 0, InputWork: work, Bound: grass.NewError(0.1)},
		{ID: 1, Arrival: 1, InputWork: work[:20], Bound: grass.Exact(),
			Phases: []grass.Phase{{NumTasks: 4, WorkScale: 1}}},
		{ID: 2, Arrival: 2, InputWork: work[:10], Bound: grass.NewDeadline(5)},
	}
	stats, err := grass.Simulate(smallSim(2), "ras", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results[0].Accuracy < 0.89 {
		t.Fatalf("error-bound job accuracy %v", stats.Results[0].Accuracy)
	}
	if stats.Results[1].Accuracy != 1 {
		t.Fatalf("exact job accuracy %v", stats.Results[1].Accuracy)
	}
	if stats.Results[1].DAGLength != 2 {
		t.Fatal("DAG length lost")
	}
}

// TestStreamedSimulationMatchesMaterialized pins the public streaming API:
// StreamTrace+SimulateStream reproduce GenerateTrace+Simulate exactly, and
// the fold variant delivers the same per-job results without accumulating.
func TestStreamedSimulationMatchesMaterialized(t *testing.T) {
	tc := smallTrace(grass.MixedBound, 4)
	jobs, err := grass.GenerateTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := grass.Simulate(smallSim(4), "grass", jobs)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := grass.StreamTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := grass.SimulateStream(smallSim(4), "grass", stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed stats differ from materialized:\n got: %+v\nwant: %+v", got, want)
	}

	stream2, err := grass.StreamTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	folded := make([]grass.JobResult, len(jobs))
	agg, err := grass.SimulateStreamFold(smallSim(4), "grass", stream2, func(r grass.JobResult) {
		folded[r.JobID] = r
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Results != nil {
		t.Fatal("fold variant still accumulated results")
	}
	if !reflect.DeepEqual(folded, want.Results) {
		t.Fatal("folded results differ from materialized results")
	}
	if _, err := grass.SimulateStreamFold(smallSim(4), "grass", stream2, nil); err == nil {
		t.Fatal("nil fold func accepted")
	}
}

func TestOraclePolicyAutoMode(t *testing.T) {
	jobs, _ := grass.GenerateTrace(smallTrace(grass.ErrorBound, 3))
	stats, err := grass.Simulate(smallSim(3), "oracle", jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle mode leaves the estimator untouched (cold-start accuracy 0.5).
	if stats.EstimatorAccuracy != 0.5 {
		t.Fatalf("oracle run touched the estimator: %v", stats.EstimatorAccuracy)
	}
}

func TestCustomGrassPolicy(t *testing.T) {
	cfg := grass.DefaultGrassConfig()
	cfg.Xi = 0.3
	cfg.Seed = 4
	f, err := grass.NewGrassPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, _ := grass.GenerateTrace(smallTrace(grass.ErrorBound, 4))
	if _, err := grass.SimulateWith(smallSim(4), f, jobs); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownPolicy(t *testing.T) {
	jobs, _ := grass.GenerateTrace(smallTrace(grass.ErrorBound, 5))
	if _, err := grass.Simulate(smallSim(5), "nope", jobs); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMetricsHelpers(t *testing.T) {
	jobs, _ := grass.GenerateTrace(smallTrace(grass.ErrorBound, 6))
	late, err := grass.Simulate(smallSim(6), "late", jobs)
	if err != nil {
		t.Fatal(err)
	}
	ras, err := grass.Simulate(smallSim(6), "ras", jobs)
	if err != nil {
		t.Fatal(err)
	}
	// The helpers must agree with manual computation.
	sp := grass.SpeedupPct(late.Results, ras.Results)
	want := (grass.MeanDuration(late.Results) - grass.MeanDuration(ras.Results)) /
		grass.MeanDuration(late.Results) * 100
	if sp != want {
		t.Fatalf("speedup %v != %v", sp, want)
	}
	small := grass.FilterBin(late.Results, grass.Small)
	for _, r := range small {
		if r.Bin != grass.Small {
			t.Fatal("filter leaked other bins")
		}
	}
}

// TestSimulateTraceOptions pins the options-pattern entry point: with no
// options it reproduces SimulateStream exactly; with partitions the output
// is invariant to the shard (worker) count; and WithFold streams results
// in ascending JobID order without accumulating.
func TestSimulateTraceOptions(t *testing.T) {
	tc := smallTrace(grass.MixedBound, 7)
	stream, err := grass.StreamTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := grass.SimulateStream(smallSim(7), "gs", stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := grass.SimulateTrace(smallSim(7), tc, "gs")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SimulateTrace (no options) differs from SimulateStream:\n got: %+v\nwant: %+v", got, want)
	}

	part2, err := grass.SimulateTrace(smallSim(7), tc, "gs", grass.WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		again, err := grass.SimulateTrace(smallSim(7), tc, "gs",
			grass.WithPartitions(2), grass.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, part2) {
			t.Fatalf("WithShards(%d) changed partitioned output", shards)
		}
	}
	if len(part2.Results) != tc.Jobs {
		t.Fatalf("partitioned run returned %d results, want %d", len(part2.Results), tc.Jobs)
	}

	next := 0
	folded, err := grass.SimulateTrace(smallSim(7), tc, "gs",
		grass.WithPartitions(2), grass.WithShards(2),
		grass.WithFold(func(r grass.JobResult) {
			if r.JobID != next {
				t.Fatalf("fold got job %d at position %d — not ascending JobID order", r.JobID, next)
			}
			if !reflect.DeepEqual(r, part2.Results[next]) {
				t.Fatalf("folded job %d differs from accumulated result", r.JobID)
			}
			next++
		}))
	if err != nil {
		t.Fatal(err)
	}
	if next != tc.Jobs {
		t.Fatalf("fold saw %d jobs, want %d", next, tc.Jobs)
	}
	if len(folded.Results) != 0 {
		t.Fatal("WithFold still accumulated results")
	}

	if _, err := grass.SimulateTrace(smallSim(7), tc, "nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	bad := tc
	bad.Jobs = 0
	if _, err := grass.SimulateTrace(smallSim(7), bad, "gs"); err == nil {
		t.Fatal("invalid trace config accepted")
	}
}
