#!/usr/bin/env bash
# Perf-regression wall: fails when the simulator's per-event allocation
# budget regresses. Allocation counts are deterministic (unlike ns/op, which
# depends on the machine), so CI can gate on them exactly:
#
#   - BenchmarkDispatch must stay at 0 allocs/op: the dispatch round has
#     been allocation-free since PR 2.
#   - BenchmarkSimulatorQuick's allocs/event must stay below the PR-2
#     BENCH_sim.json figures (gs 3.37, ras 2.54, late 2.36). PR 3's event
#     pooling put them at ~1.6/1.3/1.2; the wall holds the PR-2 ceiling so
#     an accidental revert of either optimization fails CI while normal
#     jitter does not. Tighten the thresholds when BENCH_sim.json advances.
#
# Usage: scripts/perfwall.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test ./internal/sched -run '^$' \
	-bench 'BenchmarkSimulatorQuick|BenchmarkDispatch' \
	-benchtime 20x -benchmem)
echo "$out"
fail=0

# Dispatch rounds must not allocate at all. An empty parse (renamed or
# restructured benchmark) fails too: a wall that checks nothing is no wall.
dispatched=0
while read -r name allocs; do
	dispatched=$((dispatched + 1))
	if [ "$allocs" != "0" ]; then
		echo "PERF WALL: $name allocated $allocs allocs/op, want 0" >&2
		fail=1
	fi
done < <(echo "$out" | awk '/^BenchmarkDispatch\// {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $1, $(i-1) }')
if [ "$dispatched" -eq 0 ]; then
	echo "PERF WALL: no BenchmarkDispatch allocs/op lines parsed" >&2
	fail=1
else
	echo "perf wall: $dispatched dispatch benches at 0 allocs/op ok"
fi

# Full-simulation allocations per event, gated per policy.
check() { # check <sub-benchmark> <wall>
	local sub=$1 wall=$2 v
	# The -N GOMAXPROCS suffix is absent on single-core runners; match the
	# sub-benchmark exactly either way (so "gs" never matches "gs-stream").
	v=$(echo "$out" | awk -v re="^BenchmarkSimulatorQuick/$sub(-[0-9]+)?\$" '
		$1 ~ re {
			for (i = 1; i <= NF; i++) if ($i == "allocs/event") print $(i-1) }' | head -1)
	if [ -z "$v" ]; then
		echo "PERF WALL: no allocs/event metric for $sub" >&2
		fail=1
	elif awk -v v="$v" -v w="$wall" 'BEGIN { exit !(v > w) }'; then
		echo "PERF WALL: $sub at $v allocs/event exceeds the wall of $wall" >&2
		fail=1
	else
		echo "perf wall: $sub $v allocs/event <= $wall ok"
	fi
}
check gs 3.37
check ras 2.54
check late 2.36
# The streaming admission path (same workload via RunSource) must not
# regress either; it shares gs's ceiling.
check gs-stream 3.37

exit $fail
