#!/usr/bin/env bash
# Perf-regression wall: fails when the simulator's per-event allocation
# budget regresses, and sanity-checks the sharded execution path.
# Allocation counts are deterministic (unlike ns/op, which depends on the
# machine), so CI can gate on them exactly:
#
#   - BenchmarkDispatch must stay at 0 allocs/op: the dispatch round has
#     been allocation-free since PR 2.
#   - BenchmarkSimulatorQuick's allocs/event must stay below the PR-7
#     BENCH_sim.json figures plus a small headroom. PR 7 moved the hot
#     per-task run state into one struct-of-arrays block per job (no more
#     per-phase taskRun/pointer slices), which cut the plain variants to
#     gs 0.887, ras 0.805, late 0.682, gs-stream 0.988 and the -inc
#     variants (incremental candidate views forced for every phase) to
#     gs-inc 0.935, ras-inc 0.849, late-inc 0.715. The walls sit ~6%
#     above so an accidental revert of the PR-2 dispatch, PR-3 pooling,
#     PR-4 views, PR-5 jobState recycling or PR-7 task block fails CI
#     while normal jitter does not. These same ceilings are the
#     "per-event ceiling at K=1" gate for the sharded engine: one
#     partition IS the plain engine, so the plain walls hold for sharded
#     K=1 by construction. Tighten the thresholds when BENCH_sim.json
#     advances.
#   - BenchmarkShardedReplay's "balance" metric (Σ partition walls / max
#     partition wall at 4 partitions) must stay ≥ 2.5: it is the
#     machine-independent ceiling on what 4 shard workers can gain, so a
#     partitioner change that skews load (and silently caps -shards
#     speedup below the acceptance floor) fails here even on a single-core
#     runner. Unlike the alloc gates this one is timing-derived, so the
#     wall takes the BEST balance across the three workers= variants
#     (identical model and work per variant — a transient runner stall
#     would have to hit all three independent runs to fake a skew);
#     round-robin partitioning keeps every sample at ~3.6-4.0.
#
# These exact walls double as the zero-cost gate for fault injection
# (PR 10): every benchmark here runs with faults disabled, where the
# simulator builds no injector and the hot path pays only nil checks —
# so a change that lets the fault machinery allocate or reorder events
# on a benign cluster fails the same exact ceilings. The priced fault
# path itself is tracked by BenchmarkSimulatorFaults in BENCH_sim.json.
#
# Usage: scripts/perfwall.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

# Record the environment alongside the numbers: ns/op comparisons are only
# meaningful within one machine, and the alloc gates assume the recorded
# GOMAXPROCS (benchmark names carry a -N suffix once it exceeds 1).
echo "perf wall env: $(go env GOVERSION) GOMAXPROCS=${GOMAXPROCS:-$(nproc)} NumCPU=$(nproc)"

out=$(go test ./internal/sched -run '^$' \
	-bench 'BenchmarkSimulatorQuick|BenchmarkDispatch' \
	-benchtime 20x -benchmem)
echo "$out"
fail=0

# Dispatch rounds must not allocate at all. An empty parse (renamed or
# restructured benchmark) fails too: a wall that checks nothing is no wall.
dispatched=0
while read -r name allocs; do
	dispatched=$((dispatched + 1))
	if [ "$allocs" != "0" ]; then
		echo "PERF WALL: $name allocated $allocs allocs/op, want 0" >&2
		fail=1
	fi
done < <(echo "$out" | awk '/^BenchmarkDispatch\// {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $1, $(i-1) }')
if [ "$dispatched" -eq 0 ]; then
	echo "PERF WALL: no BenchmarkDispatch allocs/op lines parsed" >&2
	fail=1
else
	echo "perf wall: $dispatched dispatch benches at 0 allocs/op ok"
fi

# Full-simulation allocations per event, gated per policy.
check() { # check <sub-benchmark> <wall>
	local sub=$1 wall=$2 v
	# The -N GOMAXPROCS suffix is absent on single-core runners; match the
	# sub-benchmark exactly either way (so "gs" never matches "gs-stream").
	v=$(echo "$out" | awk -v re="^BenchmarkSimulatorQuick/$sub(-[0-9]+)?\$" '
		$1 ~ re {
			for (i = 1; i <= NF; i++) if ($i == "allocs/event") print $(i-1) }' | head -1)
	if [ -z "$v" ]; then
		echo "PERF WALL: no allocs/event metric for $sub" >&2
		fail=1
	elif awk -v v="$v" -v w="$wall" 'BEGIN { exit !(v > w) }'; then
		echo "PERF WALL: $sub at $v allocs/event exceeds the wall of $wall" >&2
		fail=1
	else
		echo "perf wall: $sub $v allocs/event <= $wall ok"
	fi
}
check gs 0.94
check ras 0.85
check late 0.72
# The streaming admission path (same workload via RunSource) must not
# regress either; it shares gs's headroom.
check gs-stream 1.05
# The incremental-views path forced onto every phase (its small-job worst
# case): PR 5's jobState/ViewSet pooling removed the ~0.3 allocs/event of
# per-job slices, and these walls keep it removed.
check gs-inc 0.99
check ras-inc 0.90
check late-inc 0.76
# The heap reference queue under the same workload: slightly cheaper in
# allocs (no bucket-array resizes) but must not drift either.
check gs-heap 0.80
# The GRASS learning policy under both learner stores. Record/Aggregate
# ride job lifecycle events, not the per-event hot path, so the mergeable
# sketch learner (PR 9) must stay within noise of the ring store: both
# measured ~1.64 allocs/event.
check grass 1.74
check grass-sketch 1.74

# Sharded execution: partition balance at 4 partitions. All three
# workers= variants compute the identical model, so their balance samples
# are three independent measurements of the same structural quantity —
# gate on the best one so a single stalled run cannot fail the wall.
sharded=$(go test ./internal/sched -run '^$' \
	-bench 'BenchmarkShardedReplay' -benchtime 1x)
echo "$sharded"
bal=$(echo "$sharded" | awk '/^BenchmarkShardedReplay\// {
	for (i = 1; i <= NF; i++) if ($i == "balance") print $(i-1) }' |
	sort -g | tail -1)
if [ -z "$bal" ]; then
	echo "PERF WALL: no balance metric from BenchmarkShardedReplay" >&2
	fail=1
elif awk -v v="$bal" 'BEGIN { exit !(v < 2.5) }'; then
	echo "PERF WALL: best shard balance $bal below 2.5 at 4 partitions — partitioning is skewed" >&2
	fail=1
else
	echo "perf wall: best shard balance $bal >= 2.5 ok"
fi

exit $fail
