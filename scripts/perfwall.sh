#!/usr/bin/env bash
# Perf-regression wall: fails when the simulator's per-event allocation
# budget regresses. Allocation counts are deterministic (unlike ns/op, which
# depends on the machine), so CI can gate on them exactly:
#
#   - BenchmarkDispatch must stay at 0 allocs/op: the dispatch round has
#     been allocation-free since PR 2.
#   - BenchmarkSimulatorQuick's allocs/event must stay below the PR-4
#     BENCH_sim.json figures plus a small headroom: the plain variants
#     (small-job workload on the rebuild walk) measured gs 1.637,
#     ras 1.292, late 1.193, gs-stream 1.618, and the -inc variants
#     (incremental candidate views forced for every phase) gs-inc 1.976,
#     ras-inc 1.630, late-inc 1.465. The walls sit ~5% above so an
#     accidental revert of the PR-2 dispatch, PR-3 pooling or PR-4 view
#     optimizations fails CI while normal jitter does not. Tighten the
#     thresholds when BENCH_sim.json advances.
#
# Usage: scripts/perfwall.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test ./internal/sched -run '^$' \
	-bench 'BenchmarkSimulatorQuick|BenchmarkDispatch' \
	-benchtime 20x -benchmem)
echo "$out"
fail=0

# Dispatch rounds must not allocate at all. An empty parse (renamed or
# restructured benchmark) fails too: a wall that checks nothing is no wall.
dispatched=0
while read -r name allocs; do
	dispatched=$((dispatched + 1))
	if [ "$allocs" != "0" ]; then
		echo "PERF WALL: $name allocated $allocs allocs/op, want 0" >&2
		fail=1
	fi
done < <(echo "$out" | awk '/^BenchmarkDispatch\// {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $1, $(i-1) }')
if [ "$dispatched" -eq 0 ]; then
	echo "PERF WALL: no BenchmarkDispatch allocs/op lines parsed" >&2
	fail=1
else
	echo "perf wall: $dispatched dispatch benches at 0 allocs/op ok"
fi

# Full-simulation allocations per event, gated per policy.
check() { # check <sub-benchmark> <wall>
	local sub=$1 wall=$2 v
	# The -N GOMAXPROCS suffix is absent on single-core runners; match the
	# sub-benchmark exactly either way (so "gs" never matches "gs-stream").
	v=$(echo "$out" | awk -v re="^BenchmarkSimulatorQuick/$sub(-[0-9]+)?\$" '
		$1 ~ re {
			for (i = 1; i <= NF; i++) if ($i == "allocs/event") print $(i-1) }' | head -1)
	if [ -z "$v" ]; then
		echo "PERF WALL: no allocs/event metric for $sub" >&2
		fail=1
	elif awk -v v="$v" -v w="$wall" 'BEGIN { exit !(v > w) }'; then
		echo "PERF WALL: $sub at $v allocs/event exceeds the wall of $wall" >&2
		fail=1
	else
		echo "perf wall: $sub $v allocs/event <= $wall ok"
	fi
}
check gs 1.72
check ras 1.36
check late 1.26
# The streaming admission path (same workload via RunSource) must not
# regress either; it shares gs's ceiling.
check gs-stream 1.72
# The incremental-views path forced onto every phase (its small-job worst
# case): the per-job ViewSet slices cost ~0.3 allocs/event over the
# rebuild walk, and the wall keeps that overhead from creeping.
check gs-inc 2.08
check ras-inc 1.72
check late-inc 1.54

exit $fail
