#!/usr/bin/env bash
# Real-trace import smoke: decode the vendored SWIM and Google sample
# traces, replay them through the sharded streaming pipeline (4 partitions
# on 4 workers), and require the output to match the checked-in goldens
# BYTE-IDENTICALLY. The simulation is deterministic — same trace, same
# options, same partition count means the same events in the same order on
# every platform — so the goldens gate the whole import path end to end:
# file opening, gzip, record decoding, the record→job mapping rules, bound
# assignment, the sharded split and the merge. Only genuinely
# machine-dependent lines (wall clock, heap sizes, shard balance) are
# stripped before comparing.
#
# Regenerate after an intentional mapping/model change with:
#
#   scripts/trace_smoke.sh --update
#
# and commit the new goldens with the change that moved them.
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES=internal/traceio/testdata/samples
GOLDEN=internal/traceio/testdata/golden
SWIM=$SAMPLES/swim_fb_sample.tsv
GOOGLE=$SAMPLES/google_task_events_sample.csv.gz

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  mkdir -p "$GOLDEN"
fi

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/" ./cmd/grass-trace ./cmd/grass-bench

# canon strips the machine-dependent lines from a replay's output: the
# wall-clock suffix on the header, the shard-balance line (timing-derived)
# and the heap high-water line. Everything else is simulation output and
# must be byte-identical everywhere.
canon() {
  sed -E 's/ \[[0-9a-z.]+s?\]$//' \
    | grep -v '^sharded execution' \
    | grep -v '^memory high-water'
}

check() { # check <name> <golden-file> ... produces stdin
  local name=$1 golden=$2
  local got
  got=$(cat)
  if [ "$update" = 1 ]; then
    printf '%s\n' "$got" > "$golden"
    echo "updated $golden"
    return 0
  fi
  if ! printf '%s\n' "$got" | diff -u "$golden" - ; then
    echo "FAIL: $name output diverged from $golden" >&2
    echo "      (scripts/trace_smoke.sh --update regenerates after an intentional change)" >&2
    return 1
  fi
  echo "OK: $name matches $golden"
}

# Validation must succeed and report the pinned job/task counts.
"$bin/grass-trace" validate -format swim -in "$SWIM" | check "swim validate" "$GOLDEN/swim_validate.txt"
"$bin/grass-trace" validate -format google -in "$GOOGLE" | check "google validate" "$GOLDEN/google_validate.txt"

# The Table-1-style import summaries are pure functions of file + options.
"$bin/grass-trace" stat -format swim -in "$SWIM" | check "swim stat" "$GOLDEN/swim_stat.txt"
"$bin/grass-trace" stat -format google -in "$GOOGLE" | check "google stat" "$GOLDEN/google_stat.txt"

# End-to-end sharded replays of both formats through the real simulator.
"$bin/grass-bench" -trace-file "$SWIM" -trace-format swim -shards 4 -policy gs \
  | canon | check "swim sharded replay" "$GOLDEN/swim_replay.txt"
"$bin/grass-bench" -trace-file "$GOOGLE" -trace-format google -shards 4 -policy gs \
  | canon | check "google sharded replay" "$GOLDEN/google_replay.txt"

# Converter round-trip: the JSON stream must decode and stay stable too.
"$bin/grass-trace" convert -format swim -in "$SWIM" 2>/dev/null | sha256sum | awk '{print $1}' \
  | check "swim convert digest" "$GOLDEN/swim_convert.sha256"

# Flag-validation contract: the new inputs must fail loudly, not silently.
for bad in \
  "validate -format swim" \
  "validate -in $SWIM" \
  "validate -format borg -in $SWIM" \
  "stat -format swim -in $SAMPLES/no-such-file.tsv"; do
  if "$bin/grass-trace" $bad >/dev/null 2>&1; then
    echo "FAIL: grass-trace $bad should have failed" >&2
    exit 1
  fi
done
if "$bin/grass-bench" -trace-file "$SAMPLES/no-such-file.tsv" >/dev/null 2>&1; then
  echo "FAIL: grass-bench -trace-file on a missing file should have failed" >&2
  exit 1
fi
if "$bin/grass-bench" -trace-file "$SWIM" -jobs 5 >/dev/null 2>&1; then
  echo "FAIL: grass-bench -trace-file with -jobs should have failed" >&2
  exit 1
fi
empty=$(mktemp --suffix=.tsv)
printf '# only a comment\n' > "$empty"
if "$bin/grass-bench" -trace-file "$empty" -trace-format swim >/dev/null 2>&1; then
  echo "FAIL: grass-bench -trace-file on an empty trace should have failed" >&2
  rm -f "$empty"
  exit 1
fi
rm -f "$empty"
echo "OK: flag validation rejects bad inputs"

echo "trace import smoke: all checks passed"
