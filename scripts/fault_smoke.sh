#!/usr/bin/env bash
# Fault-injection smoke: replay synthetic traces under the named fault
# scenarios through the sharded streaming pipeline and require the output
# to match the checked-in goldens BYTE-IDENTICALLY. The fault schedule is
# drawn from its own seed stream and partitioned with the cluster, so the
# same flags produce the same crashes, storms and interference bursts — in
# the same order, with the same respeculation — on every platform. The
# goldens therefore gate the whole fault path end to end: scenario preset
# resolution, the per-partition schedule split, crash/restart slot
# accounting, kill-and-respeculate, slowdown storms, interference seizure
# and the merged fault counters in the rendered summary. Only genuinely
# machine-dependent lines (wall clock, heap high-water, shard balance) are
# stripped before comparing.
#
# Regenerate after an intentional model change with:
#
#   scripts/fault_smoke.sh --update
#
# and commit the new goldens with the change that moved them.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN=internal/fault/testdata/golden

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  mkdir -p "$GOLDEN"
fi

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/" ./cmd/grass-bench

# canon strips the machine-dependent lines from a replay's output: the
# wall-clock suffix on the header, the shard-balance line (timing-derived)
# and the heap high-water line. Everything else is simulation output and
# must be byte-identical everywhere.
canon() {
  sed -E 's/ \[[0-9a-z.]+s?\]$//' \
    | grep -v '^sharded execution' \
    | grep -v '^memory high-water'
}

check() { # check <name> <golden-file> ... produces stdin
  local name=$1 golden=$2
  local got
  got=$(cat)
  if [ "$update" = 1 ]; then
    printf '%s\n' "$got" > "$golden"
    echo "updated $golden"
    return 0
  fi
  if ! printf '%s\n' "$got" | diff -u "$golden" - ; then
    echo "FAIL: $name output diverged from $golden" >&2
    echo "      (scripts/fault_smoke.sh --update regenerates after an intentional change)" >&2
    return 1
  fi
  echo "OK: $name matches $golden"
}

# The scale gate: 100K mixed jobs under machine crash/restart, partitioned
# 4 ways. Crashes kill running copies mid-flight and force respeculation,
# so this exercises the Lost accounting and the restart slot bookkeeping at
# trace scale, across the partition split and the deterministic merge.
"$bin/grass-bench" -jobs 100000 -scenario crashy -shards 4 -policy gs \
  | canon | check "crashy sharded replay" "$GOLDEN/crashy_replay_100k.txt"

# Preset coverage: every other named scenario at a size CI can afford.
for sc in rack-storm contended overload-mixed; do
  "$bin/grass-bench" -jobs 1000 -scenario "$sc" -shards 2 -policy gs \
    | canon | check "$sc replay" "$GOLDEN/${sc}_replay_1k.txt"
done

# -fault-seed must move the fault timeline without touching anything else:
# the same rack-storm replay under a pinned fault seed has to diverge from
# the default-derived schedule (if it doesn't, the flag is dead).
reseeded=$("$bin/grass-bench" -jobs 1000 -scenario rack-storm -shards 2 -policy gs -fault-seed 42 | canon)
if printf '%s\n' "$reseeded" | diff -q "$GOLDEN/rack-storm_replay_1k.txt" - >/dev/null 2>&1; then
  echo "FAIL: -fault-seed 42 produced the default fault timeline" >&2
  exit 1
fi
echo "OK: -fault-seed moves the fault timeline"

# "-scenario none" and no flag at all are the same benign cluster, and a
# benign replay must render no fault-scenario line.
plain=$("$bin/grass-bench" -jobs 1000 -shards 2 -policy gs | canon)
none=$("$bin/grass-bench" -jobs 1000 -shards 2 -policy gs -scenario none | canon)
if [ "$plain" != "$none" ]; then
  echo "FAIL: -scenario none diverged from the benign default" >&2
  exit 1
fi
if printf '%s\n' "$plain" | grep -q '^fault scenario'; then
  echo "FAIL: benign replay rendered a fault-scenario line" >&2
  exit 1
fi
echo "OK: -scenario none is the benign default"

# Flag-validation contract: bad fault flags must fail loudly.
if "$bin/grass-bench" -jobs 100 -scenario no-such-scenario >/dev/null 2>&1; then
  echo "FAIL: unknown -scenario should have failed" >&2
  exit 1
fi
if "$bin/grass-bench" -scenario crashy >/dev/null 2>&1; then
  echo "FAIL: -scenario without a replay should have failed" >&2
  exit 1
fi
if "$bin/grass-bench" -fault-seed 7 >/dev/null 2>&1; then
  echo "FAIL: -fault-seed without a replay should have failed" >&2
  exit 1
fi
echo "OK: flag validation rejects bad inputs"

echo "fault smoke: all checks passed"
